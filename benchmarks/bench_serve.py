#!/usr/bin/env python
"""Load bench for ``dpz serve``: writes ``BENCH_pr10.json``.

Packs the 64^3 isotropic-turbulence field into a ``dpzs`` store
(sz codec, ``eps=1e-3``, 16^3 chunks), starts a :class:`ServeApp` on a
loopback port, and hammers it with concurrent
:class:`~repro.serve.ServeClient` threads under two workloads:

* **zipf** -- rank-skewed region popularity (a few hot chunks take
  most of the traffic), the access pattern the coalescing chunk cache
  is built for,
* **uniform** -- every chunk-aligned region equally likely, the
  cache-hostile baseline.

Each workload reports p50/p99 request latency, sustained throughput
(ok requests / wall time), the store-cache hit rate, and the
request-coalescing counters -- all scraped from the server's own
``/metrics.json``.  Every response is compared bit-for-bit against an
in-process ``Store.get_region`` reference, so the bench doubles as an
end-to-end integrity check under real concurrency.

The ``"serve"`` section of the output extends the ``BENCH_*.json``
trajectory: ``benchmarks/compare.py --serve-p99-max/--serve-hit-rate-min/
--serve-throughput-min/--serve-coalesce-min`` gate it in CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI quick
    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_pr10.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import tempfile
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.datasets.registry import get_dataset  # noqa: E402
from repro.errors import ServeBusyError  # noqa: E402
from repro.observability import get_registry  # noqa: E402
from repro.serve import (  # noqa: E402
    BackgroundServer,
    ServeApp,
    ServeClient,
    StoreRegistry,
)
from repro.store import Store  # noqa: E402

FIELD = "Isotropic"
CHUNK = (16, 16, 16)
REGION_EDGE = 16
EPS = 1e-3
ZIPF_S = 1.2          # rank exponent for the skewed workload
MAX_RETRIES = 100     # per request, on 503 shed
WARMUP = 2            # untimed requests per client before the clock


def _quantile(samples: list[float], q: float) -> float:
    """Nearest-rank quantile of a non-empty sample list."""
    xs = sorted(samples)
    idx = min(len(xs) - 1, max(0, int(round(q * (len(xs) - 1)))))
    return xs[idx]


def _aligned_regions(shape: tuple[int, ...]) -> list[tuple[slice, ...]]:
    """Every chunk-aligned 16^3 region of the field, in rank order."""
    steps = [range(0, n, REGION_EDGE) for n in shape]
    out = []
    for i in steps[0]:
        for j in steps[1]:
            for k in steps[2]:
                out.append((slice(i, i + REGION_EDGE),
                            slice(j, j + REGION_EDGE),
                            slice(k, k + REGION_EDGE)))
    return out


def _workload(app: ServeApp, alias: str, regions, ref,
              *, weights, n_clients: int, n_requests: int,
              target_rps: float, seed: int) -> dict:
    """Drive ``n_clients`` paced threads x ``n_requests`` each.

    Clients hold the aggregate *offered* rate at ``target_rps`` (each
    thread fires every ``n_clients / target_rps`` seconds, phase-
    desynchronised).  That makes the reported latency a service-level
    measurement instead of pure queueing delay: if the server cannot
    sustain the target, the sleeps vanish, throughput falls below the
    target and the latency gate fails -- which is exactly the signal
    we want from a load test.

    Before the timed phase every client fires ``WARMUP`` untimed
    requests at once -- a deliberate thundering herd into the cold
    cache that exercises the coalescing path (hundreds of concurrent
    misses on the same hot chunks) and brings the cache to steady
    state, so the timed quantiles measure service latency rather than
    the one-off cold-start decode storm.  Warmup responses are still
    checked bit-for-bit and still counted by the server's metrics.
    """
    interval = n_clients / target_rps
    warm_barrier = threading.Barrier(n_clients + 1)
    barrier = threading.Barrier(n_clients + 1)
    latencies: list[list[float]] = [[] for _ in range(n_clients)]
    sheds = [0] * n_clients
    mismatches: list[object] = []

    def fetch(c: ServeClient, idx: int, pick: int):
        """One request with shed-retry; returns the array or None."""
        for _ in range(MAX_RETRIES):
            try:
                return c.region(alias, "field", regions[pick])
            except ServeBusyError as exc:
                sheds[idx] += 1
                time.sleep(max(exc.retry_after, 0.005))
        return None

    def client(idx: int) -> None:
        rng = np.random.default_rng(seed + idx)
        warm_picks = rng.choice(len(regions), size=WARMUP, p=weights)
        picks = rng.choice(len(regions), size=n_requests, p=weights)
        try:
            with ServeClient(app.host, app.port, timeout=60.0) as c:
                c.healthz()  # establish the connection before timing
                warm_barrier.wait()
                for pick in warm_picks:
                    arr = fetch(c, idx, int(pick))
                    if arr is not None and \
                            not np.array_equal(arr, ref[int(pick)]):
                        mismatches.append(regions[int(pick)])
                barrier.wait()
                # Spread the clients across the pacing interval so the
                # offered load is smooth, not a thundering herd.
                next_t = (time.perf_counter()
                          + rng.uniform(0.0, interval))
                for pick in picks:
                    now = time.perf_counter()
                    if now < next_t:
                        time.sleep(next_t - now)
                    next_t += interval
                    t0 = time.perf_counter()
                    arr = fetch(c, idx, int(pick))
                    if arr is None:
                        mismatches.append("starved by backpressure")
                        continue
                    latencies[idx].append(time.perf_counter() - t0)
                    if not np.array_equal(arr, ref[int(pick)]):
                        mismatches.append(regions[int(pick)])
        except Exception as exc:  # noqa: BLE001 -- report, don't hang
            mismatches.append(exc)
            for b in (warm_barrier, barrier):
                try:
                    b.wait(timeout=1.0)
                except threading.BrokenBarrierError:
                    pass

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(n_clients)]
    for t in threads:
        t.start()
    warm_barrier.wait(timeout=600.0)
    barrier.wait(timeout=600.0)
    t0 = time.perf_counter()
    for t in threads:
        t.join(timeout=600.0)
    wall = time.perf_counter() - t0
    if any(t.is_alive() for t in threads):
        raise RuntimeError("bench clients did not finish in time")
    if mismatches:
        raise RuntimeError(f"served responses diverged: {mismatches[:3]}")

    flat = [lat for per in latencies for lat in per]
    with ServeClient(app.host, app.port) as c:
        counters = c.metrics_json()["counters"]
    hits = counters.get("store.cache.hits", 0)
    misses = counters.get("store.cache.misses", 0)
    co_hits = counters.get("serve.coalesce.hits", 0)
    co_waits = counters.get("serve.coalesce.waits", 0)
    n_ok = len(flat)
    return {
        "n_clients": n_clients,
        "requests_per_client": n_requests,
        "target_rps": target_rps,
        "n_ok": n_ok,
        "n_shed": int(sum(sheds)),
        "wall_s": round(wall, 6),
        "throughput_rps": round(n_ok / wall, 1) if wall > 0 else 0.0,
        "p50_ms": round(_quantile(flat, 0.50) * 1e3, 3),
        "p99_ms": round(_quantile(flat, 0.99) * 1e3, 3),
        "cache_hit_rate": round(hits / (hits + misses), 4)
        if hits + misses else 0.0,
        "coalesce_hits": int(co_hits),
        "coalesce_waits": int(co_waits),
        "coalesce_rate": round((co_hits + co_waits) / n_ok, 4)
        if n_ok else 0.0,
    }


def bench_serve(size: str, n_clients: int, n_requests: int,
                workers: int, target_rps: float, tmpdir: str) -> dict:
    """Pack the field, serve it, and run both workloads against it."""
    data = get_dataset(FIELD, size)
    path = pathlib.Path(tmpdir) / "bench.dpzs"
    with Store.create(path) as st:
        st.add("field", data, codec="sz", chunk_shape=CHUNK,
               eps=EPS, n_jobs=2)

    regions = _aligned_regions(data.shape)
    with Store.open(path, cache_bytes=0) as ref_store:
        ref = [ref_store.get_region("field", r) for r in regions]

    ranks = np.arange(1, len(regions) + 1, dtype=np.float64)
    zipf = ranks ** -ZIPF_S
    zipf /= zipf.sum()
    uniform = np.full(len(regions), 1.0 / len(regions))

    registry = StoreRegistry([f"bench={path}"], cache_bytes=1 << 26)
    app = ServeApp(registry, port=0, workers=workers,
                   max_queue=max(64, n_clients * 4))
    result: dict = {
        "field": FIELD,
        "shape": list(data.shape),
        "chunk_shape": list(CHUNK),
        "codec": "sz",
        "eps": EPS,
        "workers": workers,
        "n_regions": len(regions),
        "workloads": {},
    }
    with BackgroundServer(app):
        for name, weights in (("zipf", zipf), ("uniform", uniform)):
            # Each workload starts from a cold cache and zeroed
            # counters so its hit/coalesce rates are its own.
            registry.get("bench")  # force lazy open
            cache = registry.cache("bench")
            if cache is not None:
                cache.clear()
            get_registry().clear()
            stats = _workload(app, "bench", regions, ref,
                              weights=weights, n_clients=n_clients,
                              n_requests=n_requests,
                              target_rps=target_rps, seed=9000)
            result["workloads"][name] = stats
            print(f"[bench]   {name:<8} {stats['n_ok']} ok / "
                  f"{stats['n_shed']} shed  "
                  f"p50 {stats['p50_ms']:.2f} ms  "
                  f"p99 {stats['p99_ms']:.2f} ms  "
                  f"{stats['throughput_rps']:.0f} req/s  "
                  f"hit {stats['cache_hit_rate']:.0%}  "
                  f"coalesce {stats['coalesce_hits']}h/"
                  f"{stats['coalesce_waits']}w", flush=True)
    result["bit_identical"] = True  # _workload raises on any mismatch
    return result


def run(*, size: str = "small", smoke: bool = False,
        workers: int = 4, target_rps: float | None = None,
        out: str | None = None) -> dict:
    """Run the serve bench; returns (and optionally writes) the record."""
    n_clients = 32 if smoke else 256
    n_requests = 8 if smoke else 16
    if target_rps is None:
        target_rps = 500.0 if smoke else 1000.0
    result: dict = {
        "bench": "pr10-serve",
        "size": size,
        "smoke": smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }
    print(f"[bench] {FIELD} served region storm "
          f"({n_clients} clients x {n_requests} requests, "
          f"offered {target_rps:.0f} req/s) ...", flush=True)
    with tempfile.TemporaryDirectory() as tmpdir:
        result["serve"] = bench_serve(size, n_clients, n_requests,
                                      workers, target_rps, tmpdir)
    if out:
        p = pathlib.Path(out)
        record = result
        if p.exists():
            # Merge into an existing bench record so one BENCH_*.json
            # can carry both compression fields and the serve section.
            try:
                existing = json.loads(p.read_text())
            except (OSError, json.JSONDecodeError):
                existing = None
            if isinstance(existing, dict) and "fields" in existing:
                existing["serve"] = result["serve"]
                record = existing
        p.write_text(json.dumps(record, indent=2) + "\n")
        print(f"[bench] wrote {out}", flush=True)
    return result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--size", choices=["small", "full"], default="small")
    ap.add_argument("--smoke", action="store_true",
                    help="fewer clients and requests (CI)")
    ap.add_argument("--workers", type=int, default=4,
                    help="server worker threads (default 4)")
    ap.add_argument("--target-rps", type=float, default=None,
                    help="aggregate offered request rate "
                         "(default 1000, or 500 with --smoke)")
    ap.add_argument("--out", default=str(
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr10.json"))
    args = ap.parse_args(argv)
    run(size=args.size, smoke=args.smoke, workers=args.workers,
        target_rps=args.target_rps, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
