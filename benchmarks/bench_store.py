#!/usr/bin/env python
"""Region-retrieval bench for the chunked store: writes ``BENCH_pr8.json``.

Packs the 64^3 isotropic-turbulence field into a ``dpzs`` store with
16^3 chunks (sz codec, ``eps=1e-3``, two compression workers) and
measures what the chunked layout buys for partial reads:

* **pack** wall time and the on-disk compression ratio,
* **whole-field decode** via ``Store.get`` and, for reference, via the
  monolithic :class:`~repro.archive.FieldArchive` (which always decodes
  everything),
* **region reads** -- a seeded sequence of random 16^3 regions through
  ``Store.get_region``, run twice on the same handle.  The **cold**
  pass starts from an empty decoded-chunk cache; the **warm** pass
  replays the identical sequence against the populated cache.  Each
  pass reports p50/p95 latency, the **decoded-byte amplification**
  (bytes decompressed / bytes returned, from the store's own metrics)
  and the cache hit/miss/eviction counters.  A perfectly aligned 16^3
  read decodes exactly one chunk (amplification 1.0); a worst-case
  straddling read touches 8 chunks (amplification 8.0); a fully warm
  cache decodes nothing (amplification 0.0).  The whole-archive
  alternative decodes all 64 chunks every time,
* **dpz pack with basis reuse** -- the same field packed with the DPZ
  codec, reporting the ``store.basis.*`` counters (one representative
  fit, siblings verified against the cached basis).

The ``"store"`` section of the output extends the ``BENCH_*.json``
trajectory: ``benchmarks/compare.py`` gates region-read p50/p95 when
both records carry it, and ``--amplification-max`` gates the warm-pass
amplification.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py            # full run
    PYTHONPATH=src python benchmarks/bench_store.py --smoke    # CI quick
    PYTHONPATH=src python benchmarks/bench_store.py --out BENCH_pr8.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.archive import FieldArchive  # noqa: E402
from repro.datasets.registry import get_dataset  # noqa: E402
from repro.observability import (  # noqa: E402
    Tracer,
    counters_snapshot,
    metrics_reset,
    use_tracer,
)
from repro.store import Store  # noqa: E402

FIELD = "Isotropic"
CHUNK = (16, 16, 16)
REGION_EDGE = 16
EPS = 1e-3


def _quantile(samples: list[float], q: float) -> float:
    """Nearest-rank quantile of a non-empty sample list."""
    xs = sorted(samples)
    idx = min(len(xs) - 1, max(0, int(round(q * (len(xs) - 1)))))
    return xs[idx]


def bench_store(size: str, n_regions: int, repeats: int,
                tmpdir: str) -> dict:
    """Pack, whole-decode, and region-read measurements for one field."""
    data = get_dataset(FIELD, size)
    path = pathlib.Path(tmpdir) / "bench.dpzs"

    # -- pack (best-of-N; the store file is rebuilt each repeat) ----------
    best_pack = float("inf")
    for _ in range(repeats):
        path.unlink(missing_ok=True)
        t0 = time.perf_counter()
        with Store.create(path) as st:
            st.add("field", data, codec="sz", chunk_shape=CHUNK,
                   eps=EPS, n_jobs=2)
        best_pack = min(best_pack, time.perf_counter() - t0)
    compressed = path.stat().st_size

    # -- whole-field decode via the store (fresh handle per repeat, so
    # the number stays a *cold* decode comparable across the trajectory)
    best_whole = float("inf")
    for _ in range(repeats):
        with Store.open(path) as st:
            t0 = time.perf_counter()
            whole = st.get("field")
            best_whole = min(best_whole, time.perf_counter() - t0)
        assert whole.shape == data.shape

    # -- seeded random region reads: cold pass, then warm replay ----------
    rng = np.random.default_rng(1234)
    starts = [
        tuple(int(rng.integers(0, n - REGION_EDGE + 1))
              for n in data.shape)
        for _ in range(n_regions)
    ]
    bytes_returned = n_regions * REGION_EDGE ** data.ndim * data.itemsize

    def region_pass(st: Store) -> dict:
        latencies: list[float] = []
        metrics_reset()
        with use_tracer(Tracer()):
            for lo in starts:
                region = tuple(slice(a, a + REGION_EDGE) for a in lo)
                t0 = time.perf_counter()
                out = st.get_region("field", region)
                latencies.append(time.perf_counter() - t0)
                assert out.shape == (REGION_EDGE,) * len(lo)
            counters = counters_snapshot()
        bytes_decoded = counters.get("store.bytes.decoded", 0)
        return {
            "edge": REGION_EDGE,
            "n_reads": n_regions,
            "p50_s": round(_quantile(latencies, 0.50), 6),
            "p95_s": round(_quantile(latencies, 0.95), 6),
            "mean_s": round(sum(latencies) / len(latencies), 6),
            "bytes_decoded": int(bytes_decoded),
            "bytes_returned": int(bytes_returned),
            "amplification": round(bytes_decoded / bytes_returned, 3),
            "cache": {
                key: int(counters.get(f"store.cache.{key}", 0))
                for key in ("hits", "misses", "evictions")
            },
        }

    with Store.open(path) as st:
        cold = region_pass(st)   # fresh handle: empty cache
        warm = region_pass(st)   # same handle: populated cache

    # -- monolithic-archive reference (always decodes everything) ---------
    ar = FieldArchive()
    ar.add("field", data, codec="sz", eps=EPS)
    blob = ar.to_bytes()
    best_ar = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        FieldArchive.from_bytes(blob).get("field")
        best_ar = min(best_ar, time.perf_counter() - t0)

    return {
        "field": FIELD,
        "shape": list(data.shape),
        "chunk_shape": list(CHUNK),
        "codec": "sz",
        "eps": EPS,
        "original_nbytes": int(data.nbytes),
        "compressed_nbytes": int(compressed),
        "cr": round(data.nbytes / compressed, 4),
        "pack_s": round(best_pack, 6),
        "whole_decode_s": round(best_whole, 6),
        "archive_decode_s": round(best_ar, 6),
        "region": cold,
        "region_warm": warm,
        "dpz_pack": bench_dpz_pack(data, pathlib.Path(tmpdir)),
    }


def bench_dpz_pack(data: np.ndarray, tmpdir: pathlib.Path) -> dict:
    """DPZ-codec pack of the same field, with basis-reuse telemetry."""
    path = tmpdir / "bench_dpz.dpzs"
    metrics_reset()
    with use_tracer(Tracer()):
        t0 = time.perf_counter()
        with Store.create(path) as st:
            st.add("field", data, codec="dpz", chunk_shape=CHUNK,
                   n_jobs=2, scheme="s", tve_nines=6)
        pack_s = time.perf_counter() - t0
        counters = counters_snapshot()
    compressed = path.stat().st_size
    return {
        "codec": "dpz",
        "pack_s": round(pack_s, 6),
        "cr": round(data.nbytes / compressed, 4),
        "basis": {
            key: int(counters.get(f"store.basis.{key}", 0))
            for key in ("fits", "reuses", "refits")
        },
    }


def run(*, size: str = "small", smoke: bool = False,
        out: str | None = None) -> dict:
    """Run the store bench; returns (and optionally writes) the record."""
    n_regions = 8 if smoke else 64
    repeats = 2 if smoke else 3
    result: dict = {
        "bench": "pr7-store",
        "size": size,
        "smoke": smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }
    print(f"[bench] {FIELD} pack + region reads ...", flush=True)
    with tempfile.TemporaryDirectory() as tmpdir:
        result["store"] = bench_store(size, n_regions, repeats, tmpdir)
    s = result["store"]
    r = s["region"]
    print(f"[bench]   CR {s['cr']:.2f}x  pack {s['pack_s'] * 1e3:.0f} ms  "
          f"whole decode {s['whole_decode_s'] * 1e3:.0f} ms  "
          f"(archive {s['archive_decode_s'] * 1e3:.0f} ms)", flush=True)
    w = s["region_warm"]
    print(f"[bench]   region {r['edge']}^3 x{r['n_reads']} cold: "
          f"p50 {r['p50_s'] * 1e3:.2f} ms  p95 {r['p95_s'] * 1e3:.2f} ms  "
          f"amplification {r['amplification']:.2f}x "
          f"(cache {r['cache']['hits']}h/{r['cache']['misses']}m)",
          flush=True)
    print(f"[bench]   region {w['edge']}^3 x{w['n_reads']} warm: "
          f"p50 {w['p50_s'] * 1e3:.2f} ms  p95 {w['p95_s'] * 1e3:.2f} ms  "
          f"amplification {w['amplification']:.2f}x "
          f"(cache {w['cache']['hits']}h/{w['cache']['misses']}m)",
          flush=True)
    d = s["dpz_pack"]
    print(f"[bench]   dpz pack {d['pack_s'] * 1e3:.0f} ms  "
          f"CR {d['cr']:.2f}x  basis {d['basis']['fits']} fit / "
          f"{d['basis']['reuses']} reused / {d['basis']['refits']} refit",
          flush=True)
    if out:
        p = pathlib.Path(out)
        record = result
        if p.exists():
            # Merge into an existing run_bench record so one
            # BENCH_pr8.json carries both the compress-throughput
            # fields and the store section.
            try:
                existing = json.loads(p.read_text())
            except (OSError, json.JSONDecodeError):
                existing = None
            if isinstance(existing, dict) and "fields" in existing:
                existing["store"] = result["store"]
                record = existing
        p.write_text(json.dumps(record, indent=2) + "\n")
        print(f"[bench] wrote {out}", flush=True)
    return result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--size", choices=["small", "full"], default="small")
    ap.add_argument("--smoke", action="store_true",
                    help="fewer regions and repeats (CI)")
    ap.add_argument("--out", default=str(
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr8.json"))
    args = ap.parse_args(argv)
    run(size=args.size, smoke=args.smoke, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
