#!/usr/bin/env python
"""Bench-regression gate: diff two ``BENCH_*.json`` files.

Compares a candidate bench record against a committed baseline,
per field:

* **compression ratio** -- a relative *drop* beyond ``--cr-tol`` fails
  (CR is machine-independent, so the default tolerance is tight);
* **throughput** (compress and decompress MB/s) -- a relative drop
  beyond ``--throughput-tol`` fails.  Wall-clock numbers shift with the
  host, so the default is loose; CI pins a machine-drift-tolerant value
  and relies on the trajectory of same-machine reruns for precision;
* **stage shares** -- any stage whose share of compress time *grows* by
  more than ``--share-tol`` (absolute) fails, catching a stage-level
  regression even when total time hides it;
* **chunk latency** -- when both records embed a metric-registry
  snapshot with a ``parallel.chunk.seconds`` histogram, its p50/p95
  may not grow by more than ``--chunk-latency-tol`` (relative).  The
  quantiles come from fixed log-scale buckets, so they are comparable
  across runs; records predating the snapshot (BENCH_pr1/pr2) skip
  this check silently;
* **region-read latency** -- when both records are store bench output
  (``bench_store.py``, a ``store.region`` section), its p50/p95 may
  not grow by more than ``--region-latency-tol`` (relative).  Other
  record kinds skip this check silently;
* **throughput floor** (``--throughput-min-ratio``, off by default) --
  the inverse gate for perf PRs: candidate compress throughput must
  reach at least that multiple of the baseline on at least
  ``--min-ratio-fields`` fields;
* **amplification cap** (``--amplification-max``, off by default) --
  the candidate's warm-cache region amplification (decoded bytes /
  returned bytes, machine-independent) may not exceed the cap.

Exit status is 0 when everything is within tolerance, 1 otherwise, so
CI can gate on it directly.  ``--run`` benches the current tree first
(writing ``--out``) and compares that, which is the one-command local
workflow::

    PYTHONPATH=src python benchmarks/compare.py BENCH_pr7.json --run \
        --out BENCH_fresh.json
    PYTHONPATH=src python benchmarks/compare.py BENCH_pr3.json BENCH_pr7.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

__all__ = ["compare", "main"]


def _check(failures: list[str], ok: bool, msg: str) -> str:
    if not ok:
        failures.append(msg)
    return "FAIL" if not ok else "ok"


def _chunk_latency_gate(failures: list[str], baseline: dict,
                        candidate: dict, tol: float, log) -> None:
    """p50/p95 gate on the embedded ``parallel.chunk.seconds`` histogram.

    Applies only when *both* records carry the histogram with observed
    samples; older baselines (or runs where nothing went parallel) skip
    silently so the gate stays usable across the whole trajectory.
    """
    def hist(rec: dict) -> dict:
        return (rec.get("metrics", {}).get("histograms", {})
                .get("parallel.chunk.seconds", {}))

    b, c = hist(baseline), hist(candidate)
    if not b.get("count") or not c.get("count"):
        return
    log("[compare] chunk latency (parallel.chunk.seconds)")
    for q in ("p50", "p95"):
        bv, cv = float(b[q]), float(c[q])
        rel = (cv - bv) / bv if bv > 0 else 0.0
        st = _check(failures, rel <= tol,
                    f"chunk latency {q} grew {rel:.1%} (> {tol:.1%}): "
                    f"{bv * 1e3:.3f} -> {cv * 1e3:.3f} ms")
        log(f"[compare]   {q:<12}{bv * 1e3:>10.3f} -> {cv * 1e3:>10.3f} ms"
            f"  ({rel:+.2%})  {st}")


def _region_latency_gate(failures: list[str], baseline: dict,
                         candidate: dict, tol: float, log) -> None:
    """p50/p95 gate on the store bench's region-read latency.

    Applies only when *both* records carry a ``store.region`` section
    with read samples (``bench_store.py`` output); records from the
    other bench harnesses skip silently.
    """
    def region(rec: dict) -> dict:
        return rec.get("store", {}).get("region", {})

    b, c = region(baseline), region(candidate)
    if not b.get("n_reads") or not c.get("n_reads"):
        return
    if (b["n_reads"], b.get("edge")) != (c["n_reads"], c.get("edge")):
        # Different seeded read sequences (e.g. full baseline vs smoke
        # candidate) produce incomparable quantiles; skip, the
        # amplification cap still applies.
        log(f"[compare] region-read latency skipped: baseline ran "
            f"{b['n_reads']} reads, candidate {c['n_reads']}")
        return
    log("[compare] region-read latency (store.region)")
    for q in ("p50_s", "p95_s"):
        bv, cv = float(b[q]), float(c[q])
        rel = (cv - bv) / bv if bv > 0 else 0.0
        st = _check(failures, rel <= tol,
                    f"region latency {q} grew {rel:.1%} (> {tol:.1%}): "
                    f"{bv * 1e3:.3f} -> {cv * 1e3:.3f} ms")
        log(f"[compare]   {q:<12}{bv * 1e3:>10.3f} -> {cv * 1e3:>10.3f} ms"
            f"  ({rel:+.2%})  {st}")


def _throughput_min_gate(failures: list[str], baseline: dict,
                         candidate: dict, ratio: float,
                         min_fields: int, log) -> None:
    """Require ``>= min_fields`` fields to *gain* ``ratio``x throughput.

    The inverse of the regression gates: a perf PR claims a speedup,
    and this check fails unless the candidate's compress throughput is
    at least ``ratio`` times the baseline's on at least ``min_fields``
    of the common fields.
    """
    base_fields = baseline.get("fields", {})
    cand_fields = candidate.get("fields", {})
    common = sorted(set(base_fields) & set(cand_fields))
    if not common:
        failures.append("throughput-min-ratio: no common fields")
        return
    log(f"[compare] throughput floor (>= {ratio:.2f}x baseline on "
        f">= {min_fields} fields)")
    hits = 0
    for name in common:
        bv = float(base_fields[name]["throughput_mb_s"])
        cv = float(cand_fields[name]["throughput_mb_s"])
        r = cv / bv if bv > 0 else float("inf")
        ok = r >= ratio
        hits += ok
        log(f"[compare]   {name:<12}{bv:>10.1f} -> {cv:>10.1f} MB/s"
            f"  ({r:.2f}x)  {'ok' if ok else '--'}")
    _check(failures, hits >= min_fields,
           f"compress throughput reached {ratio:.2f}x baseline on only "
           f"{hits} field(s); {min_fields} required")


def _amplification_gate(failures: list[str], candidate: dict,
                        max_amp: float, log) -> None:
    """Cap the candidate's warm-cache region-read amplification.

    Byte-based and machine-independent, so the cap is exact: the warm
    pass (``store.region_warm``, falling back to ``store.region`` for
    records predating the cache) may not decode more than ``max_amp``
    times the bytes it returns.  Skips records with no store section.
    """
    store = candidate.get("store", {})
    region = store.get("region_warm") or store.get("region", {})
    if not region.get("n_reads"):
        return
    amp = float(region["amplification"])
    st = _check(failures, amp <= max_amp,
                f"warm region amplification {amp:.3f}x exceeds cap "
                f"{max_amp:.3f}x")
    log(f"[compare] warm region amplification {amp:.3f}x "
        f"(cap {max_amp:.3f}x)  {st}")


def _serve_gate(failures: list[str], candidate: dict, *,
                p99_max_ms: float | None, hit_rate_min: float | None,
                throughput_min: float | None,
                coalesce_min: float | None, log) -> None:
    """Absolute SLO caps on the ``bench_serve.py`` load-test section.

    Candidate-only (no baseline needed): the serve bench paces its
    offered load, so p99 latency, sustained throughput, the zipf
    cache-hit rate, and the zipf coalescing rate are service-level
    numbers a single record must clear.  Skips records with no
    ``serve`` section so the gate stays usable across the trajectory.
    """
    workloads = candidate.get("serve", {}).get("workloads", {})
    if not workloads:
        return
    log("[compare] serve load test (bench_serve)")
    for name, w in sorted(workloads.items()):
        log(f"[compare]   {name:<8} p99 {w['p99_ms']:>8.2f} ms  "
            f"{w['throughput_rps']:>7.1f} req/s  "
            f"hit {w['cache_hit_rate']:.1%}  "
            f"coalesce {w['coalesce_rate']:.2%}")
        if p99_max_ms is not None:
            _check(failures, float(w["p99_ms"]) <= p99_max_ms,
                   f"serve {name}: p99 {w['p99_ms']:.2f} ms exceeds "
                   f"cap {p99_max_ms:.2f} ms")
        if throughput_min is not None:
            _check(failures,
                   float(w["throughput_rps"]) >= throughput_min,
                   f"serve {name}: {w['throughput_rps']:.1f} req/s "
                   f"below floor {throughput_min:.1f}")
    zipf = workloads.get("zipf")
    if zipf is not None:
        if hit_rate_min is not None:
            _check(failures,
                   float(zipf["cache_hit_rate"]) >= hit_rate_min,
                   f"serve zipf: cache hit rate "
                   f"{zipf['cache_hit_rate']:.1%} below floor "
                   f"{hit_rate_min:.1%}")
        if coalesce_min is not None:
            _check(failures,
                   float(zipf["coalesce_rate"]) > coalesce_min,
                   f"serve zipf: coalesce rate "
                   f"{zipf['coalesce_rate']:.2%} not above "
                   f"{coalesce_min:.2%}")


def compare(baseline: dict, candidate: dict, *, cr_tol: float = 0.02,
            throughput_tol: float = 0.5, share_tol: float = 0.10,
            chunk_latency_tol: float = 1.0,
            region_latency_tol: float = 1.0,
            throughput_min_ratio: float | None = None,
            min_ratio_fields: int = 2,
            amplification_max: float | None = None,
            serve_p99_max: float | None = None,
            serve_hit_rate_min: float | None = None,
            serve_throughput_min: float | None = None,
            serve_coalesce_min: float | None = None,
            log=print) -> list[str]:
    """Diff two bench records; returns the list of failure messages."""
    failures: list[str] = []
    base_fields = baseline.get("fields", {})
    cand_fields = candidate.get("fields", {})
    if "fields" not in candidate:
        # A store-only record (bench_store.py output) carries no
        # compress-throughput fields; only the store gates apply.
        base_fields = {}
    missing = sorted(set(base_fields) - set(cand_fields))
    if missing:
        failures.append(f"fields missing from candidate: {missing}")
    for name in sorted(set(base_fields) & set(cand_fields)):
        b, c = base_fields[name], cand_fields[name]
        log(f"[compare] {name}")

        rel = (c["cr"] - b["cr"]) / b["cr"]
        st = _check(failures, rel >= -cr_tol,
                    f"{name}: cr dropped {-rel:.1%} (> {cr_tol:.1%}): "
                    f"{b['cr']} -> {c['cr']}")
        log(f"[compare]   cr          {b['cr']:>10.3f} -> {c['cr']:>10.3f}"
            f"  ({rel:+.2%})  {st}")

        for key in ("throughput_mb_s", "decompress_mb_s"):
            rel = (c[key] - b[key]) / b[key]
            st = _check(failures, rel >= -throughput_tol,
                        f"{name}: {key} dropped {-rel:.1%} "
                        f"(> {throughput_tol:.1%}): {b[key]} -> {c[key]}")
            log(f"[compare]   {key:<12}{b[key]:>10.1f} -> {c[key]:>10.1f}"
                f"  ({rel:+.2%})  {st}")

        for stage, b_share in sorted(b.get("stage_shares", {}).items()):
            c_share = c.get("stage_shares", {}).get(stage, 0.0)
            delta = c_share - b_share
            st = _check(failures, delta <= share_tol,
                        f"{name}: stage '{stage}' share grew "
                        f"{delta:+.3f} (> +{share_tol}): "
                        f"{b_share:.3f} -> {c_share:.3f}")
            log(f"[compare]   share {stage:<14}{b_share:>7.3f} -> "
                f"{c_share:>7.3f}  ({delta:+.3f})  {st}")
    _chunk_latency_gate(failures, baseline, candidate,
                        chunk_latency_tol, log)
    _region_latency_gate(failures, baseline, candidate,
                         region_latency_tol, log)
    if throughput_min_ratio is not None:
        _throughput_min_gate(failures, baseline, candidate,
                             throughput_min_ratio, min_ratio_fields, log)
    if amplification_max is not None:
        _amplification_gate(failures, candidate, amplification_max, log)
    _serve_gate(failures, candidate, p99_max_ms=serve_p99_max,
                hit_rate_min=serve_hit_rate_min,
                throughput_min=serve_throughput_min,
                coalesce_min=serve_coalesce_min, log=log)
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed BENCH_*.json to compare against")
    ap.add_argument("candidate", nargs="?", default=None,
                    help="fresh BENCH_*.json (omit with --run)")
    ap.add_argument("--run", action="store_true",
                    help="bench the current tree into --out, then compare")
    ap.add_argument("--out", default=str(
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr7.json"),
        help="where --run writes the fresh bench record")
    ap.add_argument("--smoke", action="store_true",
                    help="pass --smoke through to the bench run")
    ap.add_argument("--cr-tol", type=float, default=0.02,
                    help="max relative CR drop (default 0.02)")
    ap.add_argument("--throughput-tol", type=float, default=0.5,
                    help="max relative throughput drop (default 0.5; "
                         "loose because wall clock tracks the host)")
    ap.add_argument("--share-tol", type=float, default=0.10,
                    help="max absolute stage-share growth (default 0.10)")
    ap.add_argument("--chunk-latency-tol", type=float, default=1.0,
                    help="max relative p50/p95 chunk-latency growth "
                         "(default 1.0 = 2x; loose because per-chunk "
                         "wall clock tracks host load)")
    ap.add_argument("--region-latency-tol", type=float, default=1.0,
                    help="max relative p50/p95 region-read latency "
                         "growth for store bench records (default "
                         "1.0 = 2x; wall clock tracks the host)")
    ap.add_argument("--throughput-min-ratio", type=float, default=None,
                    help="require candidate compress throughput to be "
                         "at least this multiple of the baseline on "
                         "--min-ratio-fields fields (a speedup floor, "
                         "off by default)")
    ap.add_argument("--min-ratio-fields", type=int, default=2,
                    help="how many fields must clear "
                         "--throughput-min-ratio (default 2)")
    ap.add_argument("--amplification-max", type=float, default=None,
                    help="cap on the candidate's warm-cache region "
                         "amplification (byte-based, machine-"
                         "independent; off by default)")
    ap.add_argument("--serve-p99-max", type=float, default=None,
                    help="cap on each serve workload's p99 latency "
                         "in ms (off by default)")
    ap.add_argument("--serve-hit-rate-min", type=float, default=None,
                    help="floor on the serve zipf workload's cache "
                         "hit rate, 0..1 (off by default)")
    ap.add_argument("--serve-throughput-min", type=float, default=None,
                    help="floor on each serve workload's sustained "
                         "req/s (off by default)")
    ap.add_argument("--serve-coalesce-min", type=float, default=None,
                    help="the serve zipf coalesce rate must be "
                         "strictly above this, 0..1 (off by default; "
                         "pass 0 to require any coalescing)")
    args = ap.parse_args(argv)

    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    if args.run:
        sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
        from run_bench import run
        candidate = run(smoke=args.smoke, out=args.out)
    elif args.candidate:
        candidate = json.loads(pathlib.Path(args.candidate).read_text())
    else:
        ap.error("either a candidate file or --run is required")

    failures = compare(baseline, candidate, cr_tol=args.cr_tol,
                       throughput_tol=args.throughput_tol,
                       share_tol=args.share_tol,
                       chunk_latency_tol=args.chunk_latency_tol,
                       region_latency_tol=args.region_latency_tol,
                       throughput_min_ratio=args.throughput_min_ratio,
                       min_ratio_fields=args.min_ratio_fields,
                       amplification_max=args.amplification_max,
                       serve_p99_max=args.serve_p99_max,
                       serve_hit_rate_min=args.serve_hit_rate_min,
                       serve_throughput_min=args.serve_throughput_min,
                       serve_coalesce_min=args.serve_coalesce_min)
    if failures:
        print(f"[compare] REGRESSION: {len(failures)} check(s) failed")
        for msg in failures:
            print(f"[compare]   - {msg}")
        return 1
    print("[compare] all checks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
