"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact (table or figure) via the
harnesses in :mod:`repro.experiments`, asserts the paper's qualitative
claims on the result, and archives the paper-shaped text report under
``benchmarks/results/`` so EXPERIMENTS.md can quote it.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_SIZE=full`` to use the paper's full dataset
dimensions (slow: gigabyte-scale fields).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_size() -> str:
    """Dataset size preset for the whole benchmark session."""
    return os.environ.get("REPRO_BENCH_SIZE", "small")


@pytest.fixture(scope="session")
def save_report():
    """Callable writing an artifact's text report to benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(artifact: str, text: str) -> None:
        (RESULTS_DIR / f"{artifact}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
