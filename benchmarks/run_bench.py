#!/usr/bin/env python
"""Perf-trajectory bench harness: writes ``BENCH_pr8.json``.

Measures, for one field of each of the paper's three dataset families
(turbulence / climate / cosmology):

* DPZ compression and decompression **throughput** (MB/s of original
  data),
* the end-to-end **compression ratio**, and
* **per-stage time shares** from the observability tracer (the stage
  vocabulary of the paper's Tables III/IV and Fig. 9).

It also measures the **tracing overhead**: compression wall time with
the tracer installed vs. disabled on the 64^3 isotropic field.  The
acceptance bar for the instrumentation layer is that disabled-path
overhead stays unmeasurable (<1%); enabled overhead is reported for
the record.

The output JSON extends the ``BENCH_*.json`` trajectory that later PRs
compare against: re-run after a perf change and diff the numbers with
``benchmarks/compare.py``.  Full (non-smoke) runs also record a Huffman
decode micro-benchmark (vectorized vs. reference scalar decoder on a
1M-symbol seeded stream).

The record additionally embeds a full **metric-registry snapshot**
(``"metrics"``) from one untimed, quality-telemetry-on, ``n_jobs=2``
compress+decompress of the isotropic field.  The timed repeats above
stay quality-off so throughput numbers remain comparable across the
trajectory; the snapshot pass exists so the gate can check
histogram-derived chunk-latency quantiles (``parallel.chunk.seconds``
p50/p95) and so every bench record carries a quality data point.

Each field record also carries the **eigensolver telemetry** of the
raw-speed PR: which ``fit_kpca`` path ran (``pca.solver.*`` counters
from the timed compress) and a **solver ablation** -- best-of-N
compress wall time with ``pca_solver="dense"`` forced vs. the ``auto``
default -- so the randomized-solver speedup is a number in the record,
not an anecdote.

The telemetry-plane PR adds a **worker-telemetry** section
(``"worker_telemetry"``): the same traced store pack run serially and
pooled (``n_jobs=4``), recording that every ``store.*`` counter total
and the chunk-compress histogram are exactly ``n_jobs``-invariant
after the parent merges the workers' snapshot frames, plus how many
frames were merged and whether any merge had to fall back to the lossy
midpoint path.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --smoke    # CI quick
    PYTHONPATH=src python benchmarks/run_bench.py --out BENCH_pr8.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from dataclasses import replace  # noqa: E402

from repro.core.compressor import DPZCompressor  # noqa: E402
from repro.core.config import DPZ_L  # noqa: E402
from repro.datasets.registry import get_dataset, get_spec  # noqa: E402
from repro.observability import (  # noqa: E402
    Tracer,
    counters_reset,
    counters_snapshot,
    metrics_reset,
    metrics_snapshot,
    trace_summary,
    use_quality,
    use_tracer,
)

#: One field per dataset family, Table-I names.
DEFAULT_FIELDS = ("Isotropic", "FLDSC", "HACC-x")

_FAMILY = {
    "Turbulence simulation": "turbulence",
    "Climate simulation": "climate",
    "Cosmology particle simulation": "cosmology",
}


def bench_field(name: str, size: str, repeats: int) -> dict:
    """Traced compress+decompress measurements for one field."""
    spec = get_spec(name)
    data = get_dataset(name, size)
    comp = DPZCompressor(DPZ_L)

    best_c = best_d = float("inf")
    stats = None
    tracer_c = tracer_d = None
    blob = b""
    solver_counters: dict = {}
    for _ in range(repeats):
        counters_reset()
        tc = Tracer()
        t0 = time.perf_counter()
        with use_tracer(tc):
            blob, stats = comp.compress_with_stats(data)
            dt_c = time.perf_counter() - t0
            solver_counters = {
                k.rsplit(".", 1)[-1]: v
                for k, v in counters_snapshot().items()
                if k.startswith("pca.solver.")
            }
        td = Tracer()
        t0 = time.perf_counter()
        with use_tracer(td):
            recon = DPZCompressor.decompress(blob)
        dt_d = time.perf_counter() - t0
        assert recon.shape == data.shape
        if dt_c < best_c:
            best_c, tracer_c = dt_c, tc
        if dt_d < best_d:
            best_d, tracer_d = dt_d, td

    # Solver ablation: the same compress with the dense eigensolver
    # forced, so the record quantifies what the randomized path buys.
    dense_comp = DPZCompressor(replace(DPZ_L, pca_solver="dense"))
    best_dense = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        dense_comp.compress(data)
        best_dense = min(best_dense, time.perf_counter() - t0)

    mb = data.nbytes / 1e6
    summary_c = trace_summary(tracer_c, prefix="dpz.")
    summary_d = trace_summary(tracer_d, prefix="dpz.")
    return {
        "family": _FAMILY.get(spec.kind, spec.kind),
        "shape": list(data.shape),
        "original_nbytes": int(data.nbytes),
        "compressed_nbytes": len(blob),
        "cr": round(stats.cr, 4),
        "k": stats.k,
        "m_blocks": stats.m_blocks,
        "compress_s": round(best_c, 6),
        "decompress_s": round(best_d, 6),
        "throughput_mb_s": round(mb / best_c, 3),
        "decompress_mb_s": round(mb / best_d, 3),
        "stage_times_s": summary_c["stage_times_s"],
        "stage_shares": summary_c["stage_shares"],
        "decompress_stage_shares": summary_d["stage_shares"],
        "pca_solver": solver_counters,
        "solver_ablation": {
            "dense_s": round(best_dense, 6),
            "auto_s": round(best_c, 6),
            "speedup": round(best_dense / best_c, 3),
        },
    }


def capture_metrics_snapshot(size: str) -> dict:
    """One untimed, fully-instrumented run; returns the registry snapshot.

    Runs quality telemetry on and ``n_jobs=2`` (the DPZ_L default of 1
    bypasses ``parallel_map`` entirely, so the chunk-latency histogram
    would stay empty).  Output is n_jobs-deterministic, so this pass
    measures the same pipeline the timed repeats ran.
    """
    data = get_dataset("Isotropic", size)
    comp = DPZCompressor(replace(DPZ_L, n_jobs=2))
    counters_reset()
    metrics_reset()
    with use_tracer(Tracer()), use_quality():
        blob, stats = comp.compress_with_stats(data)
        recon = DPZCompressor.decompress(blob)
    assert recon.shape == data.shape
    snap = metrics_snapshot()
    snap["snapshot_field"] = "Isotropic"
    snap["snapshot_cr"] = round(stats.cr, 4)
    return snap


def measure_tracing_overhead(size: str, repeats: int) -> dict:
    """Best-of-N compress wall time, tracer off vs. on (Isotropic)."""
    data = get_dataset("Isotropic", size)
    comp = DPZCompressor(DPZ_L)
    comp.compress(data)  # warm caches / JIT-free but fair

    def best(traced: bool) -> float:
        times = []
        for _ in range(repeats):
            if traced:
                t0 = time.perf_counter()
                with use_tracer(Tracer()):
                    comp.compress(data)
                times.append(time.perf_counter() - t0)
            else:
                t0 = time.perf_counter()
                comp.compress(data)
                times.append(time.perf_counter() - t0)
        return min(times)

    off = best(traced=False)
    on = best(traced=True)

    # Direct cost of the disabled fast path: one span() call is a global
    # load + None test.  A traced compress on this field emits ~12 DPZ
    # spans plus a handful of codec spans; scale the per-call cost by a
    # generous 100 call sites to bound the disabled-path overhead.
    from repro.observability import span as _span
    n_calls = 1_000_000
    t0 = time.perf_counter()
    for _ in range(n_calls):
        _span("bench.noop")
    per_call_s = (time.perf_counter() - t0) / n_calls
    disabled_pct = 100.0 * (100 * per_call_s) / off

    return {
        "disabled_s": round(off, 6),
        "enabled_s": round(on, 6),
        "enabled_overhead_pct": round(100.0 * (on - off) / off, 2),
        "disabled_span_call_ns": round(per_call_s * 1e9, 1),
        "disabled_overhead_pct_bound": round(disabled_pct, 4),
    }


def measure_huffman_microbench(n_symbols: int = 1_000_000,
                               repeats: int = 3) -> dict:
    """Vectorized vs. reference scalar Huffman decode on a seeded stream."""
    from repro.codecs.huffman import (
        HuffmanTable,
        _decode_scalar,
        huffman_decode,
        huffman_encode,
    )

    rng = np.random.default_rng(42)
    p = 1.0 / np.arange(1, 257)
    symbols = rng.choice(256, size=n_symbols, p=p / p.sum()).astype(np.int64)
    table = HuffmanTable.from_symbols(symbols, alphabet_size=256)
    blob = huffman_encode(symbols, table)

    best_new = best_ref = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        got, _ = huffman_decode(blob, table)
        best_new = min(best_new, time.perf_counter() - t0)
    assert np.array_equal(got, symbols)

    sym_tab, len_tab, L = table.decode_tables()
    # Skip the uvarint header exactly as huffman_decode does.
    from repro.codecs.varint import decode_uvarint
    count, pos = decode_uvarint(blob)
    buf = np.frombuffer(blob, dtype=np.uint8, offset=pos)
    for _ in range(repeats):
        t0 = time.perf_counter()
        ref, _ = _decode_scalar(buf, count, sym_tab, len_tab, L)
        best_ref = min(best_ref, time.perf_counter() - t0)
    assert np.array_equal(ref, symbols)

    return {
        "n_symbols": n_symbols,
        "vectorized_s": round(best_new, 6),
        "scalar_s": round(best_ref, 6),
        "speedup_vs_scalar": round(best_ref / best_new, 2),
    }


def measure_worker_telemetry(size: str) -> dict:
    """Traced store pack, serial vs. pooled: the merged worker frames
    must make every ``store.*`` counter and the chunk-compress
    histogram exactly ``n_jobs``-invariant."""
    from repro.observability import get_registry
    from repro.store import Store
    from repro.store.backends.memory import MemoryStore

    data = get_dataset("Isotropic", size)

    def packed(n_jobs: int) -> dict:
        get_registry().clear()
        with use_tracer(Tracer()):
            st = Store.create(MemoryStore())
            st.add("vx", data, codec="dpz", chunk_shape=16, n_jobs=n_jobs)
        snap = metrics_snapshot()
        get_registry().clear()
        return snap

    serial = packed(1)
    pooled = packed(4)
    store_keys = sorted(
        k for k in set(serial["counters"]) | set(pooled["counters"])
        if k.startswith("store."))
    mismatched = [k for k in store_keys
                  if serial["counters"].get(k, 0)
                  != pooled["counters"].get(k, 0)]
    # Bucket placement of a *timing* histogram varies run to run (the
    # values are wall-clock durations); the merge invariant is that no
    # observation is lost, i.e. the total counts match exactly.
    hist_s = serial["histograms"].get("store.chunk.compress.seconds", {})
    hist_p = pooled["histograms"].get("store.chunk.compress.seconds", {})
    return {
        "n_jobs": 4,
        "chunks": int(serial["counters"].get("store.chunks.compressed", 0)),
        "merged_frames": int(
            pooled["counters"].get("worker.snapshots.merged", 0)),
        "lossy_merges": int(
            pooled["counters"].get("worker.merge.lossy", 0)),
        "counters_equal_serial": not mismatched,
        "mismatched_counters": mismatched,
        "histogram_count_serial": int(hist_s.get("count", 0)),
        "histogram_count_pooled": int(hist_p.get("count", 0)),
        "histogram_counts_equal": (
            hist_s.get("count", 0) == hist_p.get("count", -1)),
        "store_counters": {
            k: int(pooled["counters"].get(k, 0)) for k in store_keys},
    }


#: Keys the CI smoke job asserts on (keep in sync with the workflow).
EXPECTED_FIELD_KEYS = (
    "family", "cr", "throughput_mb_s", "decompress_mb_s",
    "stage_shares", "stage_times_s", "pca_solver", "solver_ablation",
)


def run(fields=DEFAULT_FIELDS, *, size: str = "small", repeats: int = 3,
        smoke: bool = False, out: str | None = None) -> dict:
    """Run the bench; returns (and optionally writes) the JSON record."""
    if smoke:
        # Best-of-2: a single repeat makes the stage shares flaky enough
        # to trip the CI regression gate on a one-off scheduler stall.
        repeats = 2
    result: dict = {
        "bench": "pr8-telemetry-plane",
        "size": size,
        "repeats": repeats,
        "smoke": smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "fields": {},
    }
    for name in fields:
        print(f"[bench] {name} ...", flush=True)
        result["fields"][name] = bench_field(name, size, repeats)
        f = result["fields"][name]
        print(f"[bench]   CR {f['cr']:.2f}x  "
              f"compress {f['throughput_mb_s']:.1f} MB/s  "
              f"decompress {f['decompress_mb_s']:.1f} MB/s", flush=True)
        ab = f["solver_ablation"]
        print(f"[bench]   solver {f['pca_solver'] or {}} "
              f"dense {ab['dense_s'] * 1e3:.1f} ms -> "
              f"auto {ab['auto_s'] * 1e3:.1f} ms "
              f"({ab['speedup']:.2f}x)", flush=True)
    print("[bench] metrics snapshot pass (quality on, n_jobs=2) ...",
          flush=True)
    result["metrics"] = capture_metrics_snapshot(size)
    chunk = result["metrics"]["histograms"].get("parallel.chunk.seconds", {})
    if chunk:
        print(f"[bench]   chunk latency p50 {chunk['p50'] * 1e3:.2f} ms  "
              f"p95 {chunk['p95'] * 1e3:.2f} ms  "
              f"({chunk['count']} chunks)", flush=True)
    psnr = result["metrics"]["gauges"].get("quality.psnr_db")
    if psnr is not None:
        print(f"[bench]   quality PSNR {psnr:.2f} dB", flush=True)
    print("[bench] worker telemetry (serial vs n_jobs=4 pack) ...",
          flush=True)
    result["worker_telemetry"] = measure_worker_telemetry(size)
    wt = result["worker_telemetry"]
    print(f"[bench]   {wt['chunks']} chunks, "
          f"{wt['merged_frames']} frames merged, "
          f"counters equal: {wt['counters_equal_serial']}, "
          f"histogram equal: {wt['histogram_counts_equal']}", flush=True)
    if not smoke:
        print("[bench] tracing overhead ...", flush=True)
        result["tracing_overhead"] = measure_tracing_overhead(
            size, max(repeats, 5))
        print(f"[bench]   enabled-tracer overhead "
              f"{result['tracing_overhead']['enabled_overhead_pct']:+.1f}%",
              flush=True)
        print("[bench] huffman micro-bench ...", flush=True)
        result["huffman_microbench"] = measure_huffman_microbench(
            repeats=max(repeats, 3))
        hm = result["huffman_microbench"]
        print(f"[bench]   decode speedup {hm['speedup_vs_scalar']:.1f}x "
              f"({hm['scalar_s'] * 1e3:.0f} ms -> "
              f"{hm['vectorized_s'] * 1e3:.0f} ms)", flush=True)
    if out:
        pathlib.Path(out).write_text(json.dumps(result, indent=2) + "\n")
        print(f"[bench] wrote {out}", flush=True)
    return result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fields", nargs="+", default=list(DEFAULT_FIELDS),
                    help="Table-I dataset names to bench")
    ap.add_argument("--size", choices=["small", "full"], default="small")
    ap.add_argument("--repeats", type=int, default=3,
                    help="best-of-N timing repeats")
    ap.add_argument("--smoke", action="store_true",
                    help="single repeat, skip the overhead study (CI)")
    ap.add_argument("--out", default=str(
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_pr8.json"))
    args = ap.parse_args(argv)
    run(args.fields, size=args.size, repeats=args.repeats,
        smoke=args.smoke, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
