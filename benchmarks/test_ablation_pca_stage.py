"""Ablation bench: the value of DPZ's k-PCA stage (DPZ vs DCTZ).

DPZ = DCTZ + k-PCA (Section VI: DCTZ "is the predecessor of DPZ").
The comparison that isolates the stage is **at a fixed quantizer bound
P**: both compressors use the identical symmetric quantizer with
P = 1e-3, so any compression-ratio difference comes from the k-PCA
truncation DPZ inserts.  There the stage's gain is structural
(roughly M/k on collinear block data) and the bench asserts it.

The report also prints DCTZ at looser bounds for context: with P
*free*, DCTZ can trade pointwise coefficient error for ratio and
becomes competitive at matched PSNR -- a trade the paper's
feature-preservation argument (bounded in-range error while dropping
only incoherent tail variance) deliberately avoids.
"""

from __future__ import annotations

from repro.analysis.metrics import psnr
from repro.baselines.dctz import dctz_compress, dctz_decompress
from repro.datasets.registry import get_dataset
from repro.experiments.common import TABLE_DATASETS, dpz_config, format_table, \
    run_dpz


def _compare(name: str, size: str):
    data = get_dataset(name, size)
    # Same quantizer bound on both sides: P = 1e-3, 1-byte indices.
    dpz_nb, dpz_rec = run_dpz(data, dpz_config("l", 4))
    dctz_blob = dctz_compress(data, p=1e-3)
    dctz_rec = dctz_decompress(dctz_blob)
    # Context row: DCTZ allowed a 10x looser bound.
    loose_blob = dctz_compress(data, p=1e-2)
    loose_rec = dctz_decompress(loose_blob)
    return {
        "dataset": name,
        "dpz_cr": data.nbytes / dpz_nb,
        "dpz_psnr": psnr(data, dpz_rec),
        "dctz_cr": data.nbytes / len(dctz_blob),
        "dctz_psnr": psnr(data, dctz_rec),
        "loose_cr": data.nbytes / len(loose_blob),
        "loose_psnr": psnr(data, loose_rec),
    }


def test_ablation_pca_stage(benchmark, bench_size, save_report):
    rows = benchmark.pedantic(
        lambda: [_compare(n, bench_size) for n in TABLE_DATASETS],
        rounds=1, iterations=1,
    )
    gains = {r["dataset"]: r["dpz_cr"] / r["dctz_cr"] for r in rows}
    # At fixed P, the PCA stage must buy CR on the collinear-block
    # datasets (its structural M/k gain).
    for name in ("CLDHGH", "PHIS", "Channel", "Isotropic"):
        assert gains[name] > 1.2, f"{name}: PCA stage gained only " \
                                  f"{gains[name]:.2f}x at fixed P"
    # DPZ trades some PSNR for its CR gain (it drops tail variance per
    # the TVE setting, which DCTZ keeps); quality must remain in the
    # usable medium-accuracy band.
    for r in rows:
        assert r["dpz_psnr"] > 30.0
        assert r["dpz_psnr"] > r["dctz_psnr"] - 25.0

    table = [[r["dataset"],
              f"{r['dctz_cr']:8.2f}", f"{r['dctz_psnr']:7.2f}",
              f"{r['dpz_cr']:8.2f}", f"{r['dpz_psnr']:7.2f}",
              f"{gains[r['dataset']]:6.2f}x",
              f"{r['loose_cr']:8.2f}", f"{r['loose_psnr']:7.2f}"]
             for r in rows]
    save_report("ablation_pca_stage", format_table(
        ["dataset", "DCTZ CR", "DCTZ dB", "DPZ CR", "DPZ dB",
         "PCA gain@P", "DCTZ(10P) CR", "dB"],
        table,
        title="Ablation -- the k-PCA stage at fixed quantizer bound "
              "P=1e-3 (DPZ-l@4-nines vs DCTZ), with loose-P DCTZ "
              "context"))
