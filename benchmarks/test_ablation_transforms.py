"""Ablation bench: PCA in other transform domains (paper Section III-B2
and future work).

The paper conjectures that "PCA in other transform domains (e.g.,
wavelet transforms) should also work if the coefficients show normality
[and] high information preservation".  This ablation swaps stage 1b's
DCT for the Haar and CDF 5/3 wavelets and for *no transform at all*,
holding the rest of the pipeline fixed (uncentered PCA, k at five
nines, DPZ-l quantizer geometry), and compares the k needed and the
resulting reconstruction PSNR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import psnr
from repro.core.decompose import decompose, reassemble
from repro.datasets.registry import get_dataset
from repro.experiments.common import format_table
from repro.transforms.dct import dct1d, idct1d
from repro.transforms.pca import PCA
from repro.transforms.wavelet import multilevel_forward, multilevel_inverse


@dataclass
class AblationPoint:
    transform: str
    k: int
    tve: float
    psnr: float


def _wavelet_fwd(blocks: np.ndarray, kind: str) -> tuple[np.ndarray, list]:
    bands = multilevel_forward(blocks, levels=3, wavelet=kind)
    sizes = [b.shape[-1] for b in bands]
    return np.concatenate(bands, axis=-1), sizes


def _wavelet_inv(coeffs: np.ndarray, sizes: list, kind: str) -> np.ndarray:
    bands = []
    start = 0
    for s in sizes:
        bands.append(coeffs[..., start : start + s])
        start += s
    return multilevel_inverse(bands, wavelet=kind)


def _run_variant(data, transform: str) -> AblationPoint:
    lo, hi = float(data.min()), float(data.max())
    norm = (data.astype(np.float64) - lo) / (hi - lo) - 0.5
    blocks, plan = decompose(norm)
    sizes = None
    if transform == "dct":
        coeffs = dct1d(blocks, axis=1)
    elif transform in ("haar", "cdf53"):
        coeffs, sizes = _wavelet_fwd(blocks, transform)
    else:  # identity
        coeffs = blocks
    pca = PCA(center=False).fit(coeffs.T)
    k = pca.components_for_tve(1 - 1e-5)
    scores = pca.transform(coeffs.T, k=k)
    feats = pca.inverse_transform(scores).T
    if transform == "dct":
        rec_blocks = idct1d(feats, axis=1)
    elif transform in ("haar", "cdf53"):
        rec_blocks = _wavelet_inv(feats, sizes, transform)
    else:
        rec_blocks = feats
    recon = (reassemble(rec_blocks, plan) + 0.5) * (hi - lo) + lo
    return AblationPoint(transform=transform, k=k,
                         tve=float(pca.tve_curve()[k - 1]),
                         psnr=psnr(data, recon.astype(np.float32)))


def test_ablation_transform_domain(benchmark, bench_size, save_report):
    data = get_dataset("FLDSC", bench_size)

    def run_all():
        return [_run_variant(data, t)
                for t in ("identity", "dct", "haar", "cdf53")]

    points = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by = {p.transform: p for p in points}

    # All transform-domain variants must reconstruct sensibly.
    for p in points:
        assert p.psnr > 40.0, f"{p.transform}: PSNR {p.psnr:.1f}"
    # The orthonormal-transform variants span the same feature subspace
    # family; k should be in the same ballpark as identity (Eq. 6 says
    # DCT is exactly equal; wavelets approximately).
    assert abs(by["dct"].k - by["identity"].k) <= max(
        3, by["identity"].k // 3)

    rows = [[p.transform, str(p.k), f"{p.tve:.7f}", f"{p.psnr:7.2f}"]
            for p in points]
    save_report("ablation_transforms", format_table(
        ["stage-1 transform", "k @ 5-nines", "TVE@k", "PSNR"],
        rows, title="Ablation -- PCA in different transform domains "
                    "(FLDSC)"))
