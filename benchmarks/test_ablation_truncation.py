"""Ablation bench: DCT-coefficient truncation before PCA.

The paper's future work proposes "analyz[ing] the effect of DCT
coefficients truncation before applying PCA".  This bench sweeps the
truncation threshold on FLDSC and Isotropic and reports the zeroed
fraction, selected k, CR and PSNR -- quantifying the trade the paper
left open: mild truncation denoises the covariance at negligible
quality cost, aggressive truncation erases real signal.
"""

from __future__ import annotations

from dataclasses import replace

import repro
from repro.analysis.metrics import psnr
from repro.datasets.registry import get_dataset
from repro.experiments.common import format_table

THRESHOLDS = (0.0, 1e-6, 1e-4, 1e-2)


def _sweep(name: str, size: str):
    data = get_dataset(name, size)
    rows = []
    for thr in THRESHOLDS:
        cfg = replace(repro.DPZ_S.with_tve_nines(5), dct_truncate=thr)
        blob, st = repro.DPZCompressor(cfg).compress_with_stats(data)
        recon = repro.DPZCompressor.decompress(blob)
        rows.append({
            "dataset": name, "threshold": thr,
            "zeroed": st.truncated_fraction, "k": st.k,
            "cr": data.nbytes / len(blob), "psnr": psnr(data, recon),
        })
    return rows


def test_ablation_pre_pca_truncation(benchmark, bench_size, save_report):
    rows = benchmark.pedantic(
        lambda: _sweep("FLDSC", bench_size) + _sweep("Isotropic",
                                                     bench_size),
        rounds=1, iterations=1,
    )
    by = {(r["dataset"], r["threshold"]): r for r in rows}
    for name in ("FLDSC", "Isotropic"):
        base = by[(name, 0.0)]
        mild = by[(name, 1e-6)]
        hard = by[(name, 1e-2)]
        # Mild truncation must be essentially free.
        assert mild["psnr"] > base["psnr"] - 2.0
        assert mild["cr"] > base["cr"] * 0.8
        # Aggressive truncation zeroes a large share of coefficients.
        assert hard["zeroed"] > mild["zeroed"]

    table_rows = [[r["dataset"], f"{r['threshold']:g}",
                   f"{100 * r['zeroed']:6.2f}%", str(r["k"]),
                   f"{r['cr']:8.2f}", f"{r['psnr']:7.2f}"] for r in rows]
    save_report("ablation_truncation", format_table(
        ["dataset", "threshold", "zeroed", "k", "CR", "PSNR"],
        table_rows,
        title="Ablation -- pre-PCA coefficient truncation (DPZ-s, "
              "5-nines)"))
