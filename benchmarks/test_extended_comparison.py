"""Extended comparison bench: the full compressor zoo on 3-D data.

Beyond the paper's DPZ/SZ/ZFP panel, this bench adds the three
related-work compressor families the paper discusses but does not
evaluate -- DCTZ (its predecessor), TTHRESH-style Tucker truncation and
MGARD-style multigrid -- on the Isotropic volume, at roughly matched
medium accuracy.  It
documents where each family sits: Tucker excels on low-rank volumes,
DCTZ trails DPZ for want of the PCA stage, SZ/ZFP behave per Fig. 6.
"""

from __future__ import annotations

from repro.analysis.metrics import psnr
from repro.baselines.dctz import dctz_compress, dctz_decompress
from repro.baselines.mgard import mgard_compress, mgard_decompress
from repro.baselines.tucker import tucker_compress, tucker_decompress
from repro.datasets.registry import get_dataset
from repro.experiments.common import dpz_config, format_table, run_dpz, \
    run_sz, run_zfp


def _zoo(size: str):
    data = get_dataset("Isotropic", size)
    rows = []

    nb, rec = run_dpz(data, dpz_config("s", 5))
    rows.append(("DPZ-s @5-nines", data.nbytes / nb, psnr(data, rec)))

    nb, rec = run_sz(data, 1e-4)
    rows.append(("SZ rel 1e-4", data.nbytes / nb, psnr(data, rec)))

    nb, rec = run_zfp(data, 8.0)
    rows.append(("ZFP rate 8", data.nbytes / nb, psnr(data, rec)))

    blob = dctz_compress(data, p=1e-4, index_bytes=2)
    rows.append(("DCTZ P=1e-4", data.nbytes / len(blob),
                 psnr(data, dctz_decompress(blob))))

    blob = tucker_compress(data, target=0.99999)
    rows.append(("Tucker 5-nines", data.nbytes / len(blob),
                 psnr(data, tucker_decompress(blob))))

    blob = mgard_compress(data, rel_eps=1e-4)
    rows.append(("MGARD rel 1e-4", data.nbytes / len(blob),
                 psnr(data, mgard_decompress(blob))))
    return rows


def test_extended_comparison(benchmark, bench_size, save_report):
    rows = benchmark.pedantic(lambda: _zoo(bench_size), rounds=1,
                              iterations=1)
    by = {name: (cr, q) for name, cr, q in rows}

    # Every compressor round-trips at sane quality.
    for name, (cr, quality) in by.items():
        assert cr > 0.5, name
        assert quality > 20.0, name
    # DPZ (with PCA) beats its predecessor DCTZ on CR at comparable
    # accuracy on this volume.
    assert by["DPZ-s @5-nines"][0] > by["DCTZ P=1e-4"][0]

    save_report("extended_comparison", format_table(
        ["compressor", "CR", "PSNR(dB)"],
        [[n, f"{cr:8.2f}", f"{q:7.2f}"] for n, cr, q in rows],
        title="Extended comparison -- Isotropic (3-D), medium-high "
              "accuracy"))
