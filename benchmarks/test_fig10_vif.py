"""Bench: Fig. 10 -- VIF distributions of sampled block features."""

from __future__ import annotations

from repro.experiments import fig10


def test_fig10_vif_distributions(benchmark, bench_size, save_report):
    rows = benchmark.pedantic(
        lambda: fig10.run(size=bench_size, rates=(0.025, 0.01)),
        rounds=1, iterations=1,
    )
    stats = {(r.dataset, r.sampling_rate): r.stats for r in rows}

    # Paper claims: HACC-vx sits below the cutoff of 5 at both rates;
    # Isotropic and PHIS sit above; already the 1% probe separates them.
    for rate in (0.025, 0.01):
        assert stats[("HACC-vx", rate)]["median"] < 5.0
        assert stats[("Isotropic", rate)]["median"] > 5.0
        assert stats[("PHIS", rate)]["median"] > 5.0
    # HACC-vx's mean VIF is the smallest, consistent with Fig. 6.
    for name in ("Isotropic", "PHIS"):
        assert stats[("HACC-vx", 0.025)]["mean"] < \
            stats[(name, 0.025)]["mean"]
    save_report("fig10", fig10.format_report(rows))
