"""Bench: Fig. 1 -- FLDSC distribution before/after block DCT."""

from __future__ import annotations

from repro.experiments import fig1


def test_fig1_dct_energy_concentration(benchmark, bench_size, save_report):
    res = benchmark.pedantic(
        lambda: fig1.run("FLDSC", size=bench_size), rounds=1, iterations=1
    )
    # Paper claim: the transform concentrates energy -- a tiny fraction
    # of coefficients carries 99% of the energy, far fewer than the raw
    # values need.
    assert res.frac_coeffs_for_99pct_energy < 0.05
    assert res.frac_coeffs_for_99pct_energy < \
        res.frac_values_for_99pct_energy / 5
    # The coefficient histogram is peaked: its modal bin dominates.
    assert res.coeff_hist.max() > 0.8 * res.coeff_hist.sum()
    save_report("fig1", fig1.format_report(res))
