"""Bench: Fig. 2 -- PCA component representativeness on FLDSC."""

from __future__ import annotations

from repro.experiments import fig2


def test_fig2_component_spread_collapses(benchmark, bench_size, save_report):
    res = benchmark.pedantic(
        lambda: fig2.run("FLDSC", size=bench_size, ranks=(1, 2, 30)),
        rounds=1, iterations=1,
    )
    # Paper claim: PC1 captures the overall trend; deep components are
    # far less representative.
    assert res.score_std[1] > res.score_std[2]
    assert res.score_std[1] > 20 * res.score_std[30]
    # Eigenvalues sorted descending by construction.
    assert res.eigenvalues[0] >= res.eigenvalues[1]
    save_report("fig2", fig2.format_report(res))
