"""Bench: Fig. 3 -- information preservation & PSNR vs #features."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig3


def test_fig3_information_curves(benchmark, bench_size, save_report):
    res = benchmark.pedantic(
        lambda: fig3.run("FLDSC", size=bench_size, n_eval=10),
        rounds=1, iterations=1,
    )
    # Paper claim: ~1% of features contain >90% of the information for
    # both retrieval methods.
    assert res.features_for_info(0.90, "dct") <= 0.02
    assert res.features_for_info(0.90, "pca") <= 0.02
    # Paper claim: PCA reaches a given (high) PSNR with fewer features
    # than DCT on this dataset.
    target = min(75.0, float(min(res.psnr_dct[-1], res.psnr_pca[-1])) - 1)
    f_dct = res.features_for_psnr(target, "dct")
    f_pca = res.features_for_psnr(target, "pca")
    assert f_pca <= f_dct or np.isnan(f_dct)
    # Information curves are monotone in kept features.
    assert np.all(np.diff(res.tve_pca) >= -1e-9)
    save_report("fig3", fig3.format_report(res))
