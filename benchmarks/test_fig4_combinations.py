"""Bench: Fig. 4 -- error of transform combinations at fixed 5x."""

from __future__ import annotations

from repro.experiments import fig4


def test_fig4_combination_ordering(benchmark, bench_size, save_report):
    res = benchmark.pedantic(
        lambda: fig4.run("FLDSC", size=bench_size, ratio=5.0),
        rounds=1, iterations=1,
    )
    order = res.ordering()
    # Paper claim 1: DCT-on-PCA (selection in two stages) is the worst.
    assert order[-1] == "dct_on_pca"
    # Paper claim 2: PCA-on-DCT sits in the best group.  (It is exactly
    # the same subspace as spatial PCA by Eq. 6, so "best" here means
    # within 5% MSE of the front-runner.)
    best_mse = res.errors[order[0]].mse
    assert res.errors["pca_on_dct"].mse <= best_mse * 1.05
    # And it clearly beats the two-stage combination.
    assert res.errors["pca_on_dct"].mse < res.errors["dct_on_pca"].mse
    save_report("fig4", fig4.format_report(res))
