"""Bench: Fig. 6 -- rate-distortion, DPZ-l/DPZ-s vs SZ vs ZFP.

One benchmark per dataset so the timing table mirrors the figure's
panels; a final aggregate test checks the cross-dataset claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import fig6
from repro.experiments.common import RD_DATASETS

_RESULTS: dict[str, fig6.Fig6Result] = {}

#: Thinned sweeps keep each panel's runtime in seconds at small size.
_NINES = (3, 5, 7)
_SZ = (1e-2, 1e-3, 1e-4)
_ZFP = (2.0, 4.0, 8.0, 16.0)


@pytest.mark.parametrize("dataset", RD_DATASETS)
def test_fig6_panel(dataset, benchmark, bench_size, save_report):
    res = benchmark.pedantic(
        lambda: fig6.run(dataset, size=bench_size, nines=_NINES,
                         sz_eps=_SZ, zfp_rates=_ZFP),
        rounds=1, iterations=1,
    )
    _RESULTS[dataset] = res
    for comp in ("DPZ-l", "DPZ-s", "SZ", "ZFP"):
        assert res.curves[comp], f"no points for {comp}"
    # DPZ-s PSNR climbs monotonically with TVE (up to measurement noise).
    dpz_s = [p.psnr for p in res.curves["DPZ-s"]]
    assert dpz_s[-1] >= dpz_s[0]
    save_report(f"fig6_{dataset}", fig6.format_report(res))


def test_fig6_paper_claims(benchmark, save_report):
    """Cross-panel claims from Section V-C1."""
    # The analysis itself is instant; the benchmark fixture wrapper is
    # what lets this run under --benchmark-only alongside the panels.
    benchmark.pedantic(lambda: len(_RESULTS), rounds=1, iterations=1)
    assert len(_RESULTS) == len(RD_DATASETS), "panels must run first"

    def best_cr_at(res, lo, hi):
        pts = [p for c in ("DPZ-l", "DPZ-s") for p in res.curves[c]
               if lo <= p.psnr <= hi]
        return max((p.cr for p in pts), default=0.0)

    def baseline_cr_at(res, lo, hi):
        pts = [p for c in ("SZ", "ZFP") for p in res.curves[c]
               if lo <= p.psnr <= hi]
        return max((p.cr for p in pts), default=np.inf)

    # Claim: DPZ outperforms SZ and ZFP at medium accuracy (30-70 dB)
    # on most of the 2-D/3-D datasets.
    wins = 0
    panels = [n for n in RD_DATASETS if not n.startswith("HACC")]
    for name in panels:
        res = _RESULTS[name]
        if best_cr_at(res, 30, 70) > baseline_cr_at(res, 30, 70):
            wins += 1
    assert wins >= len(panels) - 1, f"DPZ won only {wins}/{len(panels)}"

    # Claim: DPZ-l saturates in PSNR while DPZ-s keeps climbing.
    for name in panels:
        res = _RESULTS[name]
        top_l = max(p.psnr for p in res.curves["DPZ-l"])
        top_s = max(p.psnr for p in res.curves["DPZ-s"])
        assert top_s >= top_l - 1.0

    save_report("fig6_all", fig6.format_report(list(_RESULTS.values())))
