"""Bench: Fig. 7 -- CLDHGH visualization operating points."""

from __future__ import annotations

import pathlib

from repro.experiments import fig7

RESULTS = pathlib.Path(__file__).parent / "results"


def test_fig7_operating_points(benchmark, bench_size, save_report):
    res = benchmark.pedantic(
        lambda: fig7.run("CLDHGH", size=bench_size, cr_target=10.5,
                         psnr_target=26.0),
        rounds=1, iterations=1,
    )
    cr_pts = {p.compressor: p for p in res.matched_cr}
    psnr_pts = {p.compressor: p for p in res.matched_psnr}

    # Paper, matched CR ~10.5x: DPZ-s beats ZFP's PSNR decisively
    # (66.9 vs 26.8 dB in the paper) and is at least competitive with SZ.
    assert cr_pts["DPZ-s"].psnr > cr_pts["ZFP"].psnr
    assert cr_pts["DPZ-s"].psnr > cr_pts["SZ"].psnr - 10.0

    # Paper, matched PSNR ~26 dB: DPZ's CR is the largest by a wide
    # margin (489x vs 154x vs 11x in the paper).
    assert psnr_pts["DPZ-s"].cr > psnr_pts["ZFP"].cr
    assert psnr_pts["DPZ-s"].cr > psnr_pts["SZ"].cr * 0.8

    # Export the panel images (PGM, no plotting dependencies).
    RESULTS.mkdir(exist_ok=True)
    fig7.write_pgm(str(RESULTS / "fig7_original.pgm"), res.original)
    for p in res.matched_cr:
        fig7.write_pgm(
            str(RESULTS / f"fig7_cr_{p.compressor}.pgm"), p.reconstruction
        )
    save_report("fig7", fig7.format_report(res))
