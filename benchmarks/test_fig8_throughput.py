"""Bench: Fig. 8 -- compression/decompression time vs CR."""

from __future__ import annotations

from repro.experiments import fig8


def test_fig8_throughput(benchmark, bench_size, save_report):
    points = benchmark.pedantic(
        lambda: fig8.run("Isotropic", size=bench_size),
        rounds=1, iterations=1,
    )
    by_comp: dict[str, list] = {}
    for p in points:
        by_comp.setdefault(p.compressor, []).append(p)

    # Every compressor produced a sweep with sane timings.
    for comp, pts in by_comp.items():
        assert all(p.compress_seconds > 0 for p in pts)
        assert all(p.decompress_seconds > 0 for p in pts)

    # Paper shape: DPZ decompression is much faster than its
    # compression (inverse projection is one matmul, no eigenanalysis).
    for scheme in ("DPZ-l", "DPZ-s"):
        for p in by_comp[scheme]:
            assert p.decompress_seconds < p.compress_seconds

    save_report("fig8", fig8.format_report(points))
