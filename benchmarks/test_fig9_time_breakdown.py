"""Bench: Fig. 9 -- DPZ per-stage compression-time breakdown."""

from __future__ import annotations

from repro.experiments import fig9
from repro.experiments.common import TABLE_DATASETS


def test_fig9_stage_times(benchmark, bench_size, save_report):
    results = benchmark.pedantic(
        lambda: fig9.run(datasets=TABLE_DATASETS, size=bench_size,
                         scheme="l", nines=5),
        rounds=1, iterations=1,
    )
    assert len(results) == len(TABLE_DATASETS)
    for r in results:
        # Paper claim: stage 2 (PCA) and stage 3 (quantize+encode)
        # dominate the compression time.
        heavy = (r.fraction("pca") + r.fraction("quantize")
                 + r.fraction("encode"))
        light = r.fraction("decompose")
        assert heavy > 0.5, f"{r.dataset}: heavy stages only {heavy:.0%}"
        assert light < 0.2
    save_report("fig9", fig9.format_report(results))
