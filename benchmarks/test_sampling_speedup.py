"""Bench: Section V-C5 -- compression speedup from the sampling strategy.

The paper reports that DPZ "in conjunction with our sampling strategy
improves the overall compression speed by 1.23X, on average".  The gain
comes from replacing the dense O(M^3) eigendecomposition with a
k-truncated solve seeded by the subset estimate, so it materializes at
the paper's full-scale M (1024-1800); at the scaled-down default sizes
the dense solve already costs milliseconds and the subset probes add
overhead.  This bench measures both configurations and asserts only
that sampling never costs more than a small constant factor at small
scale (run with ``REPRO_BENCH_SIZE=full`` to see the speedup regime).
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig8 import sampling_speedup


def test_sampling_speedup(benchmark, bench_size, save_report):
    datasets = ("Isotropic", "CLDHGH", "PHIS")

    def run_all():
        return {name: sampling_speedup(name, bench_size, nines=5)
                for name in datasets}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (t_plain, t_samp) in results.items():
        ratio = t_plain / max(t_samp, 1e-9)
        rows.append([name, f"{t_plain * 1e3:8.1f}", f"{t_samp * 1e3:8.1f}",
                     f"{ratio:5.2f}x"])
        # Sampling must never be catastrophically slower, at any scale.
        assert t_samp < 5.0 * t_plain, f"{name}: sampling {t_samp:.3f}s " \
                                       f"vs plain {t_plain:.3f}s"

    save_report("sampling_speedup", format_table(
        ["dataset", "plain ms", "sampling ms", "speedup"],
        rows,
        title="Section V-C5 analogue -- compression time, plain vs "
              "sampling-assisted k selection (paper: 1.23x average at "
              "full scale)"))
