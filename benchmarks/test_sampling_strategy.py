"""Bench: Section V-C6 -- sampling-strategy CR prediction accuracy."""

from __future__ import annotations

from repro.experiments import sampling_eval
from repro.experiments.common import TABLE_DATASETS


def test_sampling_prediction(benchmark, bench_size, save_report):
    trials = benchmark.pedantic(
        lambda: sampling_eval.run(datasets=TABLE_DATASETS,
                                  size=bench_size,
                                  nines_sweep=(3, 5),
                                  subset_counts=(5, 10)),
        rounds=1, iterations=1,
    )
    assert len(trials) == len(TABLE_DATASETS) * 2 * 2

    rate5 = sampling_eval.hit_rate(trials, 5)
    rate10 = sampling_eval.hit_rate(trials, 10)
    # Paper: hit rates of 63.3% (S=5) and 76.6% (S=10); assert the
    # predictions are usefully accurate and S=10 is no worse than S=5.
    assert rate10 >= 0.5
    assert rate10 >= rate5 - 0.15
    # The k estimate never exceeds the feature count.
    for t in trials:
        assert t.k_estimate >= 1
    save_report("sampling_eval", sampling_eval.format_report(trials))
