"""Bench: Table I -- dataset inventory generation."""

from __future__ import annotations

from repro.datasets.registry import clear_cache
from repro.experiments import table1


def test_table1_inventory(benchmark, bench_size, save_report):
    def gen():
        clear_cache()
        return table1.run(size=bench_size)

    rows = benchmark.pedantic(gen, rounds=1, iterations=1)
    assert len(rows) == 9
    # Every field is single precision, as in the paper's Table I.
    assert all(r.dtype == "float32" for r in rows)
    # Bounded fields really are bounded.
    bounded = {"CLDHGH", "CLDLOW", "FREQSH"}
    for r in rows:
        if r.name in bounded:
            assert 0.0 <= r.value_range[0] and r.value_range[1] <= 1.0
    save_report("table1", table1.format_report(rows))
