"""Bench: Table II -- knee-point detection compression."""

from __future__ import annotations

import numpy as np

from repro.experiments import table2
from repro.experiments.common import TABLE_DATASETS


def test_table2_kneepoint(benchmark, bench_size, save_report):
    cells = benchmark.pedantic(
        lambda: table2.run(datasets=TABLE_DATASETS, size=bench_size),
        rounds=1, iterations=1,
    )
    assert len(cells) == len(TABLE_DATASETS) * 4

    by = {(c.dataset, c.scheme, c.fit): c for c in cells}
    for name in TABLE_DATASETS:
        for scheme in ("l", "s"):
            oned = by[(name, scheme, "1d")]
            poly = by[(name, scheme, "polyn")]
            # Paper: polynomial fitting improves accuracy but reduces
            # CR "between 1.5x and 5x" -- assert the direction plus a
            # generous band on the magnitude.
            assert poly.k >= oned.k
            assert poly.cr <= oned.cr * 1.05
            assert poly.psnr >= oned.psnr - 1.0
            # Errors stay bounded and finite.
            assert np.isfinite(oned.mean_theta)

    # Paper: knee-point mode produces aggressive CRs on the
    # climate-like datasets.
    assert by[("CLDHGH", "l", "1d")].cr > 10.0
    assert by[("PHIS", "l", "1d")].cr > 10.0
    save_report("table2", table2.format_report(cells))
