"""Bench: Table III -- per-stage compression-ratio breakdown."""

from __future__ import annotations

from repro.experiments import table3
from repro.experiments.common import NINES_SWEEP, TABLE_DATASETS


def test_table3_breakdown(benchmark, bench_size, save_report):
    cells = benchmark.pedantic(
        lambda: table3.run(datasets=TABLE_DATASETS, size=bench_size,
                           nines_sweep=NINES_SWEEP),
        rounds=1, iterations=1,
    )
    by = {(c.dataset, c.scheme, c.nines): c for c in cells}

    for name in TABLE_DATASETS:
        # Stage 1&2 CR shrinks as TVE tightens (more components kept).
        for scheme in ("l", "s"):
            seq = [by[(name, scheme, n)].cr_stage12 for n in NINES_SWEEP]
            assert all(a >= b - 1e-9 for a, b in zip(seq, seq[1:]))
        # DPZ-s stage 3 ~2x (32->16 bit); paper: "close to 2X".
        for n in NINES_SWEEP:
            assert 1.8 <= by[(name, "s", n)].cr_stage3 <= 2.2
        # DPZ-l stage 3 in the paper's 2-4x band at tight TVE.
        assert 2.0 <= by[(name, "l", NINES_SWEEP[-1])].cr_stage3 <= 4.2
        # zlib add-on contributes >= 1x (never expands) and <= ~10x.
        for scheme in ("l", "s"):
            for n in NINES_SWEEP:
                assert 0.95 <= by[(name, scheme, n)].cr_zlib <= 12.0

    # Cross-dataset ordering at loose TVE: climate fields beat HACC-vx.
    assert by[("CLDHGH", "l", 3)].cr_stage12 > \
        by[("HACC-vx", "l", 3)].cr_stage12
    assert by[("PHIS", "l", 3)].cr_stage12 > \
        by[("HACC-vx", "l", 3)].cr_stage12
    save_report("table3", table3.format_report(cells))
