"""Bench: Table IV -- accuracy loss between stages (delta PSNR)."""

from __future__ import annotations

from repro.experiments import table4
from repro.experiments.common import NINES_SWEEP, TABLE_DATASETS


def test_table4_delta_psnr(benchmark, bench_size, save_report):
    cells = benchmark.pedantic(
        lambda: table4.run(datasets=TABLE_DATASETS, size=bench_size,
                           nines_sweep=NINES_SWEEP),
        rounds=1, iterations=1,
    )
    by = {(c.dataset, c.scheme, c.nines): c for c in cells}

    for name in TABLE_DATASETS:
        for scheme in ("l", "s"):
            # Quantization never improves accuracy.
            for n in NINES_SWEEP:
                assert by[(name, scheme, n)].delta >= -0.01
            # Paper: the delta grows as TVE tightens (truncation error
            # shrinks below the quantization floor).
            loose = by[(name, scheme, NINES_SWEEP[0])].delta
            tight = by[(name, scheme, NINES_SWEEP[-1])].delta
            assert tight >= loose - 0.5
        # Paper: DPZ-l (coarse quantizer) loses much more at tight TVE
        # than DPZ-s.
        assert by[(name, "l", NINES_SWEEP[-1])].delta >= \
            by[(name, "s", NINES_SWEEP[-1])].delta - 0.1

    save_report("table4", table4.format_report(cells))
