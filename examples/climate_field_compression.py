#!/usr/bin/env python
"""Climate-archive scenario: compare DPZ / SZ / ZFP on CESM-like fields.

A climate modeling center archiving atmosphere history files wants the
best compressor per field at a target quality.  This example sweeps all
five CESM-analogue fields, runs the three compressors at comparable
accuracy, and prints a per-field recommendation -- the workflow the
paper's Fig. 6 supports.

Run::

    python examples/climate_field_compression.py [--full]
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis import psnr
from repro.datasets.registry import get_dataset

FIELDS = ("CLDHGH", "CLDLOW", "PHIS", "FREQSH", "FLDSC")


def evaluate(field_name: str, size: str) -> list[tuple[str, float, float]]:
    """Run the three compressors; returns (name, CR, PSNR) rows."""
    data = get_dataset(field_name, size)
    rows = []

    blob = repro.dpz_compress(data, scheme="s", tve_nines=5)
    rows.append(("DPZ-s @5-nines", data.nbytes / len(blob),
                 psnr(data, repro.dpz_decompress(blob))))

    blob = repro.sz_compress(data, rel_eps=1e-4)
    rows.append(("SZ rel 1e-4", data.nbytes / len(blob),
                 psnr(data, repro.sz_decompress(blob))))

    blob = repro.zfp_compress(data, rate=8)
    rows.append(("ZFP rate 8", data.nbytes / len(blob),
                 psnr(data, repro.zfp_decompress(blob))))
    return rows


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--full", action="store_true",
                    help="use the paper's 1800x3600 grids (slow)")
    args = ap.parse_args()
    size = "full" if args.full else "small"

    print(f"{'field':8s} {'compressor':16s} {'CR':>9s} {'PSNR(dB)':>9s}")
    print("-" * 46)
    for name in FIELDS:
        rows = evaluate(name, size)
        # Recommend the best CR among configs above 50 dB; fall back to
        # the highest-PSNR config otherwise.
        good = [r for r in rows if r[2] >= 50.0]
        pick = max(good or rows, key=lambda r: r[1])
        for comp, cr, quality in rows:
            mark = " <- pick" if comp == pick[0] else ""
            print(f"{name:8s} {comp:16s} {cr:9.2f} {quality:9.2f}{mark}")
        print("-" * 46)


if __name__ == "__main__":
    main()
