#!/usr/bin/env python
"""Survey compressibility of the whole dataset suite before compressing.

Storage planners need to know, per field, how much a lossy pass will
buy *before* running it on petabytes.  This example runs DPZ's sampling
strategy (Alg. 2) across all nine Table-I analogues and prints the VIF
verdict, estimated k, and predicted compression-ratio range, then spot
checks two predictions against real compressions.

Run::

    python examples/compressibility_probe.py
"""

from __future__ import annotations

import repro
from repro.datasets.registry import all_dataset_names, get_dataset


def main() -> None:
    print(f"{'dataset':10s} {'VIF mean':>9s} {'linearity':>10s} "
          f"{'k_e':>5s} {'CR_p range':>16s}")
    print("-" * 56)
    reports = {}
    for name in all_dataset_names():
        data = get_dataset(name, "small")
        rep = repro.dpz_probe(data, scheme="l", tve_nines=5)
        reports[name] = rep
        print(f"{name:10s} {rep.vif_mean:9.2f} "
              f"{'LOW' if rep.low_linearity else 'high':>10s} "
              f"{rep.k_estimate:5d} "
              f"{rep.cr_low:7.1f}..{rep.cr_high:6.1f}x")

    print("\nspot-checking the best and worst predictions:")
    ranked = sorted(reports, key=lambda n: reports[n].cr_high)
    for name in (ranked[-1], ranked[0]):
        data = get_dataset(name, "small")
        blob = repro.dpz_compress(data, scheme="l", tve_nines=5)
        cr = data.nbytes / len(blob)
        rep = reports[name]
        print(f"  {name}: predicted {rep.cr_low:.1f}..{rep.cr_high:.1f}x, "
              f"achieved {cr:.1f}x")


if __name__ == "__main__":
    main()
