#!/usr/bin/env python
"""Cosmology-particle scenario: probe-before-compress on HACC-like data.

The paper's hardest case is HACC particle data: positions compress
moderately, velocities barely (VIF below the cutoff).  A production
pipeline should *detect* this before wasting cycles -- exactly what
DPZ's sampling strategy (Alg. 2) provides.  This example:

1. probes both arrays and prints the VIF verdicts and predicted CR;
2. compresses with DPZ where the probe is favourable, and falls back
   to the error-bounded SZ baseline where it is not;
3. verifies the prediction against the achieved ratio.

Run::

    python examples/cosmology_particles.py
"""

from __future__ import annotations

import repro
from repro.analysis import psnr
from repro.datasets.registry import get_dataset


def main() -> None:
    for name in ("HACC-x", "HACC-vx"):
        data = get_dataset(name, "small")
        print(f"\n=== {name}: {data.size:,} particles, "
              f"{data.nbytes / 1e6:.1f} MB ===")

        report = repro.dpz_probe(data, scheme="l", tve_nines=3)
        print(f"probe: VIF mean {report.vif_mean:.2f} -> "
              f"{'LOW linearity' if report.low_linearity else 'high linearity'}, "
              f"k_e={report.k_estimate}, "
              f"predicted CR {report.cr_low:.1f}..{report.cr_high:.1f}x")

        if report.low_linearity:
            # DPZ's own guidance: poor fit for linear-feature retrieval;
            # use the prediction-based baseline with a strict bound.
            blob = repro.sz_compress(data, rel_eps=1e-4)
            recon = repro.sz_decompress(blob)
            print(f"fallback SZ (rel 1e-4): CR "
                  f"{data.nbytes / len(blob):.2f}x, "
                  f"PSNR {psnr(data, recon):.2f} dB")
        else:
            blob = repro.dpz_compress(data, scheme="l", tve_nines=3)
            recon = repro.dpz_decompress(blob)
            cr = data.nbytes / len(blob)
            inside = report.cr_low * 0.75 <= cr <= report.cr_high * 1.25
            print(f"DPZ-l @3-nines: CR {cr:.2f}x "
                  f"({'inside' if inside else 'outside'} the predicted "
                  f"range), PSNR {psnr(data, recon):.2f} dB")


if __name__ == "__main__":
    main()
