#!/usr/bin/env python
"""Quickstart: compress a scientific field with DPZ in five lines.

Generates a CESM-like 2-D climate field, compresses it with both of the
paper's schemes, and prints compression ratio and quality.  Run::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.analysis import mean_relative_error, psnr


def main() -> None:
    # 1. A dataset: the FLDSC analogue (downwelling clear-sky flux).
    field = repro.datasets.fldsc((450, 900))
    print(f"field: {field.shape} {field.dtype}, "
          f"range [{field.min():.1f}, {field.max():.1f}] W/m^2, "
          f"{field.nbytes / 1e6:.1f} MB")

    # 2. Compress with both paper schemes at "five-nine" TVE.
    for scheme, label in (("l", "DPZ-l (loose, P=1e-3)"),
                          ("s", "DPZ-s (strict, P=1e-4)")):
        blob = repro.dpz_compress(field, scheme=scheme, tve_nines=5)
        recon = repro.dpz_decompress(blob)
        print(f"{label}: CR {field.nbytes / len(blob):6.2f}x  "
              f"PSNR {psnr(field, recon):6.2f} dB  "
              f"mean theta {mean_relative_error(field, recon):.2e}")

    # 3. Or let knee-point detection pick the operating point.
    blob = repro.dpz_compress(field, scheme="l", knee=True)
    recon = repro.dpz_decompress(blob)
    print(f"DPZ-l + knee-point: CR {field.nbytes / len(blob):6.2f}x  "
          f"PSNR {psnr(field, recon):6.2f} dB")

    # 4. Probe compressibility without compressing (Alg. 2).
    report = repro.dpz_probe(field, scheme="l", tve_nines=5)
    print(f"sampling probe: k_e={report.k_estimate}, "
          f"VIF mean {report.vif_mean:.1f} "
          f"({'low' if report.low_linearity else 'high'} linearity), "
          f"predicted CR {report.cr_low:.1f}..{report.cr_high:.1f}x")

    # 5. Verify the round trip is well-behaved.
    assert recon.shape == field.shape and recon.dtype == field.dtype
    print("round-trip OK")


if __name__ == "__main__":
    main()
