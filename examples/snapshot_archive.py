#!/usr/bin/env python
"""Snapshot archiving: one bundle, per-field codecs, hard error bounds.

A simulation writes a snapshot with several fields of very different
character.  This example builds one `.dpza` archive choosing the right
tool per field -- DPZ for the collinear climate fields, SZ for the
noisy velocities (strict pointwise bound), DPZ's own max-error mode
where a hard bound *and* IR-style compression are both wanted, and raw
(lossless) for a small field that must be bit-exact -- then verifies
every contract on extraction.

Run::

    python examples/snapshot_archive.py
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import replace

import numpy as np

import repro
from repro.analysis import max_abs_error, psnr
from repro.archive import FieldArchive
from repro.datasets.registry import get_dataset


def main() -> None:
    cloud = get_dataset("CLDHGH", "small")
    flux = get_dataset("FLDSC", "small")
    vx = get_dataset("HACC-vx", "small")
    grid_weights = np.cos(
        np.linspace(-np.pi / 2, np.pi / 2, cloud.shape[0], dtype=np.float32)
    )  # tiny metadata field: must be lossless

    archive = FieldArchive()
    # Smooth, collinear fields: DPZ at tight TVE.
    archive.add("CLDHGH", cloud, codec="dpz", scheme="s", tve_nines=5)
    # DPZ with the strict max-error extension: IR compression AND a
    # hard pointwise bound of 1e-3 of the range.
    cfg = replace(repro.DPZ_L.with_tve_nines(4), max_error=1e-3)
    archive.add("FLDSC", flux, codec="dpz", config=cfg)
    # Low-VIF velocities: SZ with a strict relative bound.
    archive.add("vx", vx, codec="sz", rel_eps=1e-4)
    # Bit-exact metadata.
    archive.add("grid_weights", grid_weights, codec="raw")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "snapshot.dpza")
        archive.save(path)
        size = os.path.getsize(path)
        orig = sum(a.nbytes for a in (cloud, flux, vx, grid_weights))
        print(f"archive: {size / 1e6:.2f} MB for {orig / 1e6:.2f} MB of "
              f"fields (total CR {orig / size:.2f}x)\n")

        restored = FieldArchive.load(path)
        print(f"{'field':14s} {'codec':6s} {'CR':>7s}  contract")
        for name in restored.names():
            info = restored.info(name)
            out = restored.get(name)
            if name == "CLDHGH":
                note = f"PSNR {psnr(cloud, out):.1f} dB"
            elif name == "FLDSC":
                bound = 1e-3 * float(flux.max() - flux.min())
                err = max_abs_error(flux, out)
                note = (f"max err {err:.3g} <= bound {bound:.3g}: "
                        f"{'OK' if err <= bound else 'VIOLATED'}")
            elif name == "vx":
                bound = 1e-4 * float(vx.max() - vx.min())
                err = max_abs_error(vx, out)
                note = (f"max err {err:.3g} <= bound {bound:.3g}: "
                        f"{'OK' if err <= bound else 'VIOLATED'}")
            else:
                exact = np.array_equal(out, grid_weights)
                note = f"bit-exact: {'OK' if exact else 'VIOLATED'}"
            print(f"{name:14s} {info['codec']:6s} {info['cr']:7.2f}  {note}")


if __name__ == "__main__":
    main()
