#!/usr/bin/env python
"""Checkpoint/restart scenario on 3-D turbulence data.

An HPC simulation checkpoints a velocity field every N steps; lossy
compression shrinks checkpoint I/O but the restart must not perturb
the physics.  This example compresses a JHTDB-like isotropic snapshot
across DPZ quality settings and reports, per setting:

* checkpoint size and effective write amplification saved,
* reconstruction PSNR,
* the physics-side acceptance criteria: relative error in total
  kinetic energy and in the energy spectrum's inertial range slope.

Run::

    python examples/turbulence_checkpoint.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import psnr, spectral_slope
from repro.datasets.registry import get_dataset


def kinetic_energy(u: np.ndarray) -> float:
    """Total kinetic energy of one velocity component (per unit mass)."""
    return float(0.5 * np.sum(np.asarray(u, dtype=np.float64) ** 2))


def spectrum_slope(u: np.ndarray) -> float:
    """Inertial-range slope via the shared spectral diagnostics."""
    return spectral_slope(u, k_lo=0.03, k_hi=0.35)


def main() -> None:
    field = get_dataset("Isotropic", "small")
    ke0 = kinetic_energy(field)
    slope0 = spectrum_slope(field)
    print(f"snapshot: {field.shape}, {field.nbytes / 1e6:.1f} MB, "
          f"KE={ke0:.4e}, spectrum slope={slope0:.2f}")
    print(f"\n{'setting':18s} {'size MB':>8s} {'CR':>7s} {'PSNR':>7s} "
          f"{'dKE/KE':>9s} {'dslope':>7s}  verdict")

    for label, kwargs in (
        ("DPZ-l knee", dict(scheme="l", knee=True)),
        ("DPZ-l 4-nines", dict(scheme="l", tve_nines=4)),
        ("DPZ-s 5-nines", dict(scheme="s", tve_nines=5)),
        ("DPZ-s 7-nines", dict(scheme="s", tve_nines=7)),
    ):
        blob = repro.dpz_compress(field, **kwargs)
        recon = repro.dpz_decompress(blob)
        d_ke = abs(kinetic_energy(recon) - ke0) / ke0
        d_slope = abs(spectrum_slope(recon) - slope0)
        ok = d_ke < 1e-3 and d_slope < 0.1
        print(f"{label:18s} {len(blob) / 1e6:8.2f} "
              f"{field.nbytes / len(blob):7.2f} "
              f"{psnr(field, recon):7.2f} {d_ke:9.2e} {d_slope:7.3f}  "
              f"{'ACCEPT' if ok else 'reject'}")

    print("\nGuidance: pick the loosest setting the physics accepts; "
          "the paper's DPZ-s at tight TVE preserves both invariants.")


if __name__ == "__main__":
    main()
