"""Legacy setup shim for offline environments lacking the wheel package.

`pip install -e . --no-build-isolation` needs bdist_wheel; when the
`wheel` package is unavailable, `python setup.py develop` (or
`pip install -e . --no-use-pep517`) uses this shim instead.  Metadata
mirrors pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "DPZ: information-retrieval-based lossy compression for "
        "scientific data (CLUSTER 2021 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={"console_scripts": ["dpz = repro.cli:main"]},
)
