"""repro: a full reproduction of DPZ (CLUSTER 2021).

DPZ is a lossy compressor for scientific floating-point data built on
multi-stage information retrieval: block decomposition, per-block
DCT-II, PCA in the DCT domain with knee-point / TVE component
selection, symmetric uniform quantization, and a zlib add-on.  This
package implements DPZ and everything its evaluation depends on -- the
SZ-style and ZFP-style baselines, entropy-coding and transform
substrates, synthetic stand-ins for the paper's datasets, and the
experiment harnesses regenerating every table and figure.

Quick start
-----------
>>> import numpy as np, repro
>>> field = repro.datasets.fldsc()             # CESM-like 2-D field
>>> blob = repro.dpz_compress(field, scheme="s", tve_nines=5)
>>> recon = repro.dpz_decompress(blob)
>>> repro.analysis.psnr(field, recon)          # doctest: +SKIP

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro import (
    analysis,
    baselines,
    codecs,
    core,
    datasets,
    observability,
    store,
    transforms,
)
from repro.archive import FieldArchive
from repro.api import dpz_compress, dpz_decompress, dpz_probe, scheme_config
from repro.baselines import (
    sz_compress,
    sz_decompress,
    zfp_compress,
    zfp_decompress,
)
from repro.core import DPZ_L, DPZ_S, DPZCompressor, DPZConfig
from repro.store import Store
from repro.errors import (
    CodecError,
    ConfigError,
    DataShapeError,
    FormatError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "dpz_compress",
    "dpz_decompress",
    "dpz_probe",
    "scheme_config",
    "DPZCompressor",
    "DPZConfig",
    "DPZ_L",
    "DPZ_S",
    "sz_compress",
    "sz_decompress",
    "zfp_compress",
    "zfp_decompress",
    "FieldArchive",
    "Store",
    "analysis",
    "baselines",
    "codecs",
    "core",
    "datasets",
    "observability",
    "store",
    "transforms",
    "ReproError",
    "CodecError",
    "FormatError",
    "ConfigError",
    "DataShapeError",
    "__version__",
]
