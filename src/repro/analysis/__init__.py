"""Analysis substrate: compression-quality metrics and IR measures.

* :mod:`repro.analysis.metrics` -- PSNR, MSE, relative errors, bit-rate
  and compression-ratio conversions (the paper's evaluation metrics).
* :mod:`repro.analysis.information` -- ECR (Eq. 1), TVE (Eq. 2) and
  Shannon entropy.
* :mod:`repro.analysis.vif` -- variance inflation factor, the paper's
  compressibility indicator (Section IV-D2, Fig. 10).
* :mod:`repro.analysis.knee` -- Kneedle-style knee-point detection with
  1-D and polynomial spline fitting (Alg. 1, Method 1).
* :mod:`repro.analysis.ratedistortion` -- sweep driver producing the
  (bit-rate, PSNR) series of Fig. 6.
"""

from repro.analysis.information import ecr_curve, shannon_entropy, tve_curve
from repro.analysis.knee import KneeResult, detect_knee
from repro.analysis.metrics import (
    bitrate_from_cr,
    compression_ratio,
    cr_from_bitrate,
    max_abs_error,
    mean_relative_error,
    mse,
    nrmse,
    psnr,
)
from repro.analysis.ratedistortion import RDPoint, rate_distortion_sweep
from repro.analysis.spectrum import (
    radial_power_spectrum,
    spectral_distortion,
    spectral_slope,
)
from repro.analysis.vif import variance_inflation_factors

__all__ = [
    "psnr",
    "mse",
    "nrmse",
    "max_abs_error",
    "mean_relative_error",
    "compression_ratio",
    "bitrate_from_cr",
    "cr_from_bitrate",
    "ecr_curve",
    "tve_curve",
    "shannon_entropy",
    "variance_inflation_factors",
    "detect_knee",
    "KneeResult",
    "RDPoint",
    "rate_distortion_sweep",
    "radial_power_spectrum",
    "spectral_slope",
    "spectral_distortion",
]
