"""Information-preservation measures: ECR, TVE, entropy.

The paper formulates how much information a retrieval method keeps as a
function of the number of selected features (Section III-A3):

* **ECR** (Eq. 1) for deterministic transforms: cumulative energy of the
  ``k`` largest-magnitude coefficients over total energy.
* **TVE** (Eq. 2) for PCA: cumulative eigenvalue mass of the ``k``
  leading components over total variance.

Both are returned as full curves (index ``k-1`` -> value at ``k``) so
callers can plot Fig. 3 or threshold them.  Shannon entropy is included
as the contrasting "inherent information" measure the paper mentions
when motivating VIF (Section IV-D2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataShapeError

__all__ = ["ecr_curve", "tve_curve", "shannon_entropy", "nines_to_tve",
           "tve_to_nines"]


def ecr_curve(coefficients: np.ndarray) -> np.ndarray:
    """Energy compaction ratio curve over coefficients sorted by |.|.

    ``ecr_curve(f)[k-1]`` is Eq. 1 evaluated at ``k``: the fraction of
    total energy carried by the ``k`` largest-magnitude coefficients.
    A zero-energy input yields an all-ones curve (every selection
    trivially preserves all the energy there is).
    """
    f = np.asarray(coefficients, dtype=np.float64).reshape(-1)
    if f.size == 0:
        raise DataShapeError("ecr_curve needs at least one coefficient")
    energy = np.sort(f * f)[::-1]
    total = energy.sum()
    if total == 0.0:
        return np.ones(f.size)
    return np.cumsum(energy) / total


def tve_curve(eigenvalues: np.ndarray) -> np.ndarray:
    """Total-variance-explained curve from PCA eigenvalues (Eq. 2).

    Eigenvalues may arrive unsorted; they are sorted descending first.
    A zero-variance spectrum yields an all-ones curve.
    """
    lam = np.asarray(eigenvalues, dtype=np.float64).reshape(-1)
    if lam.size == 0:
        raise DataShapeError("tve_curve needs at least one eigenvalue")
    lam = np.sort(np.maximum(lam, 0.0))[::-1]
    total = lam.sum()
    if total == 0.0:
        return np.ones(lam.size)
    return np.cumsum(lam) / total


def shannon_entropy(values: np.ndarray, bins: int = 256) -> float:
    """Shannon entropy (bits) of the histogram of ``values``.

    Continuous data is binned; ``bins`` controls the resolution.  This
    is the "inherent data information level" estimator the paper
    contrasts with VIF.
    """
    x = np.asarray(values, dtype=np.float64).reshape(-1)
    if x.size == 0:
        raise DataShapeError("entropy of empty array is undefined")
    hist, _ = np.histogram(x, bins=bins)
    p = hist[hist > 0].astype(np.float64)
    p /= p.sum()
    return float(-(p * np.log2(p)).sum())


def nines_to_tve(nines: int) -> float:
    """The paper's "n-nine" TVE notation: 2 -> 0.99, 3 -> 0.999, ...

    Section IV-B2 sweeps "two-nine" (99%) through "eight-nine"
    (99.999999%).
    """
    if nines < 1:
        raise DataShapeError(f"nines must be >= 1, got {nines}")
    return 1.0 - 10.0 ** (-nines)


def tve_to_nines(tve: float) -> float:
    """Inverse of :func:`nines_to_tve` (continuous)."""
    if not 0.0 < tve < 1.0:
        raise DataShapeError(f"tve must be in (0, 1), got {tve}")
    return float(-np.log10(1.0 - tve))
