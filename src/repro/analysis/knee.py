"""Knee-point detection on cumulative information curves (Alg. 1, Method 1).

DPZ defines the knee as "the point of maximum curvature of the fitted
cumulative total variance explained curve" -- beyond it, extra
components buy diminishing information per bit.  Following the paper
(and its citation of Satopaa et al.'s *Kneedle*), the procedure is:

1. fit the discrete TVE curve with either 1-D (piecewise-linear)
   interpolation or polynomial interpolation (``sf`` in Alg. 1);
2. normalize the fitted curve to the unit square;
3. evaluate the signed curvature
   ``K(x) = f''(x) / (1 + f'(x)^2)^(3/2)``;
4. return the first local maximum of ``|K|`` as the knee.

The two fitting methods trade off as the paper reports (Table II):
polynomial fitting smooths the curve, pushing the detected knee to a
larger ``k`` -- higher accuracy, lower compression ratio.

Implementation note: the curvature formula is only meaningful on a
*smooth* fit.  A piecewise-linear (``'1d'``) interpolation has zero
curvature everywhere except delta spikes at the joints, so for that
method we use Kneedle's equivalent difference-curve criterion --
``argmax(y(x) - x)`` on the unit square, i.e. the point where the
normalized curve is farthest above the diagonal, which coincides with
the maximum-curvature point for smooth concave curves.  The ``'polyn'``
method evaluates the analytic curvature of the fitted polynomial, as
Alg. 1 writes it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.interpolate import interp1d

from repro.errors import ConfigError, DataShapeError

__all__ = ["KneeResult", "detect_knee", "FIT_METHODS"]

FIT_METHODS = ("1d", "polyn")

#: Dense-grid resolution used to evaluate the fitted spline.
_GRID = 512

#: Default polynomial degree for the ``polyn`` fit; chosen to track the
#: saturating-exponential shape of TVE curves without ringing.
_POLY_DEGREE = 7


@dataclass(frozen=True)
class KneeResult:
    """Outcome of knee detection.

    Attributes
    ----------
    k:
        1-based number of features to keep (the knee's abscissa mapped
        back to the discrete curve and rounded up).
    x, y:
        Knee location on the normalized unit-square curve.
    curvature:
        Curvature value at the knee.
    method:
        The fitting method that produced it (``'1d'`` or ``'polyn'``).
    """

    k: int
    x: float
    y: float
    curvature: float
    method: str


def _fit_curve(xs: np.ndarray, ys: np.ndarray, method: str,
               degree: int) -> tuple[np.ndarray, np.ndarray]:
    grid = np.linspace(0.0, 1.0, _GRID)
    if method == "1d":
        f = interp1d(xs, ys, kind="linear", assume_sorted=True)
        return grid, f(grid)
    coeffs = np.polyfit(xs, ys, deg=min(degree, max(1, xs.size - 1)))
    fitted = np.polyval(coeffs, grid)
    # Keep the fit inside the unit square and monotone enough for
    # curvature to be meaningful.
    return grid, np.clip(fitted, 0.0, 1.0)


def detect_knee(curve: np.ndarray, *, method: str = "1d",
                degree: int = _POLY_DEGREE) -> KneeResult:
    """Find the knee of a cumulative curve ``curve[k-1] = value at k``.

    Parameters
    ----------
    curve:
        Nondecreasing cumulative curve (e.g. TVE from
        :meth:`repro.transforms.PCA.tve_curve` or an ECR curve).
    method:
        ``'1d'`` piecewise-linear fit (aggressive, earlier knee) or
        ``'polyn'`` polynomial fit (smoother, later knee).
    degree:
        Polynomial degree for ``'polyn'``.

    Returns
    -------
    :class:`KneeResult` with the selected 1-based ``k``.

    Notes
    -----
    Degenerate inputs fall back gracefully: a flat curve (already
    saturated at k=1) returns ``k=1``; a linear ramp (no curvature)
    returns the midpoint.
    """
    if method not in FIT_METHODS:
        raise ConfigError(f"unknown fitting method {method!r}; use one of "
                          f"{FIT_METHODS}")
    y_raw = np.asarray(curve, dtype=np.float64).reshape(-1)
    m = y_raw.size
    if m < 2:
        if m == 0:
            raise DataShapeError("cannot detect a knee on an empty curve")
        return KneeResult(k=1, x=0.0, y=1.0, curvature=0.0, method=method)

    # Normalize to the unit square (Alg. 1 step 4).
    xs = np.linspace(0.0, 1.0, m)
    lo, hi = float(y_raw.min()), float(y_raw.max())
    if hi - lo < 1e-15:
        return KneeResult(k=1, x=0.0, y=1.0, curvature=0.0, method=method)
    ys = (y_raw - lo) / (hi - lo)

    grid, fitted = _fit_curve(xs, ys, method, degree)
    if method == "1d":
        # Kneedle difference curve: farthest point above the diagonal.
        diff = fitted - grid
        idx = int(np.argmax(diff))
        curvature_at = float(diff[idx])
    else:
        step = grid[1] - grid[0]
        d1 = np.gradient(fitted, step)
        d2 = np.gradient(d1, step)
        curvature = np.abs(d2) / np.power(1.0 + d1 * d1, 1.5)
        # First local maximum of curvature (Alg. 1 step 6), ignoring
        # the two boundary samples whose second derivative is one-sided.
        interior = curvature[1:-1]
        local_max = np.flatnonzero(
            (interior >= np.concatenate(([interior[0]], interior[:-1]))) &
            (interior > np.concatenate((interior[1:], [interior[-1]])))
        )
        if local_max.size:
            idx = int(local_max[0]) + 1
        else:
            idx = int(np.argmax(curvature))
        curvature_at = float(curvature[idx])
        # A degenerate (near-linear) curve has no real knee: its unit-
        # square curvature stays small everywhere and the "first local
        # maximum" is numerical noise near a boundary.  Fall back to
        # the difference-curve criterion, which degrades gracefully.
        if curvature_at < 2.0:
            idx = int(np.argmax(fitted - grid))
            curvature_at = float(curvature[idx])
    x_knee = float(grid[idx])
    # Map back to a 1-based discrete k (round up: keep at least the knee).
    k = int(np.ceil(x_knee * (m - 1))) + 1
    k = max(1, min(k, m))
    return KneeResult(k=k, x=x_knee, y=float(fitted[idx]),
                      curvature=curvature_at, method=method)
