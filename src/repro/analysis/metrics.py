"""Compression quality and size metrics.

These are the quantities the paper's evaluation reports:

* **PSNR** (Section III-A4): ``20 log10(range) - 10 log10(MSE)`` in dB.
* **mean relative error** (theta in Table II): mean absolute error
  divided by the data range.
* **compression ratio** (CR): original bytes / compressed bytes.
* **bit-rate** (Section V-B): bits per value after compression,
  ``bits_per_value(dtype) / CR``.

All error metrics take (original, reconstructed) in that order and are
symmetric except where range normalization makes order matter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataShapeError

__all__ = [
    "mse",
    "psnr",
    "nrmse",
    "max_abs_error",
    "mean_relative_error",
    "compression_ratio",
    "bitrate_from_cr",
    "cr_from_bitrate",
    "value_range",
]


def _pair(original: np.ndarray, reconstructed: np.ndarray) -> tuple[np.ndarray,
                                                                    np.ndarray]:
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise DataShapeError(
            f"shape mismatch: original {a.shape} vs reconstructed {b.shape}"
        )
    return a, b


def value_range(x: np.ndarray) -> float:
    """Peak-to-peak range of the data (PSNR's "data range")."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise DataShapeError("cannot take the range of an empty array")
    return float(x.max() - x.min())


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    a, b = _pair(original, reconstructed)
    return float(np.mean((a - b) ** 2))


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB.

    Returns ``inf`` for an exact reconstruction.  A constant original
    (zero range) with any error yields ``-inf``.
    """
    err = mse(original, reconstructed)
    rng = value_range(original)
    if err == 0.0:
        return float("inf")
    if rng == 0.0:
        return float("-inf")
    return float(20.0 * np.log10(rng) - 10.0 * np.log10(err))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-squared error normalized by the data range."""
    rng = value_range(original)
    if rng == 0.0:
        return 0.0 if mse(original, reconstructed) == 0.0 else float("inf")
    return float(np.sqrt(mse(original, reconstructed)) / rng)


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """L-infinity error; what SZ's error bound constrains."""
    a, b = _pair(original, reconstructed)
    return float(np.max(np.abs(a - b))) if a.size else 0.0


def mean_relative_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean absolute error over the data range (Table II's mean theta)."""
    a, b = _pair(original, reconstructed)
    rng = value_range(a)
    if rng == 0.0:
        return 0.0 if np.array_equal(a, b) else float("inf")
    return float(np.mean(np.abs(a - b)) / rng)


def compression_ratio(original_nbytes: int, compressed_nbytes: int) -> float:
    """Original size over compressed size."""
    if compressed_nbytes <= 0:
        raise DataShapeError("compressed size must be positive")
    return original_nbytes / compressed_nbytes


def bitrate_from_cr(cr: float, bits_per_value: int = 32) -> float:
    """Average bits per datapoint at compression ratio ``cr``."""
    if cr <= 0:
        raise DataShapeError("compression ratio must be positive")
    return bits_per_value / cr


def cr_from_bitrate(bitrate: float, bits_per_value: int = 32) -> float:
    """Inverse of :func:`bitrate_from_cr`."""
    if bitrate <= 0:
        raise DataShapeError("bit-rate must be positive")
    return bits_per_value / bitrate
