"""Rate-distortion sweep driver (produces the Fig. 6 series).

A *rate-distortion curve* plots reconstruction quality (PSNR, dB)
against bit-rate (bits per value).  Each compressor contributes one
curve per dataset; "upper-left is better".  This module runs any
compressor conforming to the tiny protocol below over a parameter
sweep and collects the points.

Compressor protocol
-------------------
A callable ``run(data, param) -> (compressed_nbytes, reconstructed)``.
Adapters for DPZ, SZ and ZFP live in :mod:`repro.experiments.common`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.analysis.metrics import bitrate_from_cr, compression_ratio, psnr

__all__ = ["RDPoint", "rate_distortion_sweep", "pareto_front"]

RunFn = Callable[[np.ndarray, object], tuple[int, np.ndarray]]


@dataclass(frozen=True)
class RDPoint:
    """One operating point of a compressor on a dataset."""

    param: object
    compressed_nbytes: int
    cr: float
    bitrate: float
    psnr: float

    def row(self) -> str:
        """Fixed-width textual row for harness output."""
        return (f"param={self.param!s:>14}  CR={self.cr:9.2f}  "
                f"bitrate={self.bitrate:7.4f}  PSNR={self.psnr:8.2f} dB")


def rate_distortion_sweep(data: np.ndarray, run: RunFn,
                          params: Iterable[object], *,
                          bits_per_value: int = 32) -> list[RDPoint]:
    """Evaluate ``run`` at every parameter and return RD points.

    ``bits_per_value`` should match the nominal dtype of the dataset
    (the paper's datasets are 32-bit floats).
    """
    original_nbytes = data.size * (bits_per_value // 8)
    points: list[RDPoint] = []
    for p in params:
        nbytes, recon = run(data, p)
        cr = compression_ratio(original_nbytes, nbytes)
        points.append(RDPoint(
            param=p,
            compressed_nbytes=nbytes,
            cr=cr,
            bitrate=bitrate_from_cr(cr, bits_per_value),
            psnr=psnr(data, recon),
        ))
    return points


def pareto_front(points: Sequence[RDPoint]) -> list[RDPoint]:
    """Non-dominated subset: no other point has both lower bit-rate and
    higher PSNR.  Sorted by bit-rate ascending."""
    ordered = sorted(points, key=lambda p: (p.bitrate, -p.psnr))
    front: list[RDPoint] = []
    best = float("-inf")
    for p in ordered:
        if p.psnr > best:
            front.append(p)
            best = p.psnr
    return front
