"""Radial power spectra and spectral-fidelity diagnostics.

Domain scientists judge lossy compression of turbulence and climate
fields by *spectral* fidelity, not just PSNR: a compressor that damps
the inertial range changes the physics even at high PSNR.  These
helpers compute isotropic (radially averaged) power spectra, fit
log-log slopes over a wavenumber band, and compare original vs
reconstructed spectra -- used by the turbulence example and available
as acceptance criteria for checkpoint/restart workflows.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataShapeError

__all__ = ["radial_power_spectrum", "spectral_slope", "spectral_distortion"]


def radial_power_spectrum(field: np.ndarray,
                          bins: int = 32) -> tuple[np.ndarray, np.ndarray]:
    """Radially averaged power spectrum of an n-D field.

    Returns ``(k_centers, power)`` with wavenumbers in cycles/sample
    (Nyquist = 0.5).  Power is the mean squared FFT magnitude within
    each logarithmic radial bin; empty bins are dropped.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim < 1 or field.size < 16:
        raise DataShapeError("field too small for a spectrum")
    spec = np.abs(np.fft.fftn(field - field.mean())) ** 2
    grids = np.meshgrid(*[np.fft.fftfreq(n) for n in field.shape],
                        indexing="ij", sparse=True)
    k = np.sqrt(sum(g * g for g in grids))
    k_min = 1.0 / max(field.shape)
    edges = np.geomspace(k_min, 0.5, bins + 1)
    centers, power = [], []
    flat_k = k.reshape(-1)
    flat_s = spec.reshape(-1)
    idx = np.digitize(flat_k, edges)
    for b in range(1, bins + 1):
        mask = idx == b
        if mask.any():
            centers.append(np.sqrt(edges[b - 1] * edges[b]))
            power.append(float(flat_s[mask].mean()))
    return np.asarray(centers), np.asarray(power)


def spectral_slope(field: np.ndarray, *, k_lo: float = 0.03,
                   k_hi: float = 0.35, bins: int = 32) -> float:
    """Log-log slope of the radial spectrum over ``[k_lo, k_hi]``.

    For 3-D Kolmogorov turbulence synthesized by
    :mod:`repro.datasets.turbulence` this sits near the -11/3 PSD law
    (modulated by the dissipation cutoff).
    """
    k, p = radial_power_spectrum(field, bins)
    band = (k >= k_lo) & (k <= k_hi) & (p > 0)
    if band.sum() < 3:
        raise DataShapeError("too few spectral bins in the fit band")
    return float(np.polyfit(np.log(k[band]), np.log(p[band]), 1)[0])


def spectral_distortion(original: np.ndarray, reconstructed: np.ndarray,
                        bins: int = 32) -> float:
    """Mean absolute log10 power ratio across radial bins.

    0 means the reconstruction preserves the spectrum exactly; 1 means
    the power is off by 10x on average.  Insensitive to phase, so it
    complements PSNR.
    """
    k1, p1 = radial_power_spectrum(original, bins)
    k2, p2 = radial_power_spectrum(reconstructed, bins)
    n = min(p1.size, p2.size)
    p1, p2 = p1[:n], p2[:n]
    good = (p1 > 0) & (p2 > 0)
    if not good.any():
        raise DataShapeError("no overlapping spectral support")
    return float(np.mean(np.abs(np.log10(p2[good] / p1[good]))))
