"""Variance inflation factor (VIF) as a compressibility indicator.

Paper Section IV-D2: DPZ's k-PCA compression ratio depends on the
*collinearity* between block features -- the more each block is a
linear combination of the others, the fewer principal components carry
the variance.  VIF quantifies exactly that: for feature *i*,

    VIF_i = 1 / (1 - R_i^2)

with ``R_i^2`` the coefficient of determination of regressing feature
*i* on all the others.  The paper uses the conventional cutoff of 5:
data whose sampled VIFs sit below 5 is flagged low-linearity (HACC-vx
in Fig. 10) and gets feature standardization in stage 2.

Implementation: rather than M separate regressions, all VIFs are read
off the diagonal of the inverse correlation matrix (a standard
identity), with a pseudo-inverse fallback for singular cases.  Feature
and sample subsampling keep the cost bounded on wide matrices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataShapeError

__all__ = ["variance_inflation_factors", "vif_summary", "VIF_CUTOFF"]

#: Conventional collinearity cutoff; below it DPZ treats data as
#: low-linearity (paper Alg. 2 step 2).
VIF_CUTOFF = 5.0

#: VIFs are clipped here: a perfectly collinear feature has R^2 = 1 and
#: an infinite VIF, which would poison summary statistics.
VIF_CLIP = 1e12


def variance_inflation_factors(X: np.ndarray, *,
                               max_features: int | None = None,
                               contiguous: bool = True,
                               rng: np.random.Generator | None = None,
                               seed: int = 0
                               ) -> np.ndarray:
    """Per-feature VIFs of an ``(n_samples, n_features)`` matrix.

    Parameters
    ----------
    X:
        Data matrix; columns are the features (DPZ's blocks).
    max_features:
        If set and smaller than ``n_features``, a column subset of that
        size is probed (keeps the correlation-matrix inverse tractable
        on very wide block matrices).  The returned array then has
        ``max_features`` entries.
    contiguous:
        Probe a contiguous run of columns starting at a random offset
        (default) rather than a uniform random subset.  DPZ's
        decomposition makes *adjacent* blocks collinear (the locality
        argument of Section IV-A), so a contiguous window is the right
        probe for the compressibility DPZ can actually exploit; a
        scattered subset would under-report it on data whose
        correlations are local (e.g. turbulence).
    rng:
        Random generator for the feature subset.  When omitted, a
        generator seeded with ``seed`` is used, so repeated calls on
        the same matrix probe the same columns.
    seed:
        Seed for the fallback generator (default 0).  Ignored when
        ``rng`` is given.

    Returns
    -------
    VIF per (possibly subsampled) feature, clipped to ``[1, 1e12]``.
    Constant features (zero variance) get VIF 1.0 -- they carry no
    variance to inflate.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataShapeError(f"VIF expects a 2-D matrix, got {X.ndim}-D")
    n, f = X.shape
    if n < 3:
        raise DataShapeError("VIF needs at least 3 samples")
    if f < 2:
        raise DataShapeError("VIF needs at least 2 features")
    # VIF needs the feature correlation matrix to be well conditioned,
    # which requires clearly more samples than features; cap the feature
    # subset accordingly (an under-determined regression would report
    # R^2 -> 1 and a meaningless, huge VIF for every feature).
    cap = max(2, (n - 1) // 2)
    if max_features is None:
        max_features = f
    max_features = min(max_features, cap)
    if max_features < f:
        rng = rng if rng is not None else np.random.default_rng(seed)
        if contiguous:
            start = int(rng.integers(0, f - max_features + 1))
            cols = np.arange(start, start + max_features)
        else:
            cols = np.sort(rng.choice(f, size=max_features, replace=False))
        X = X[:, cols]
        f = max_features

    std = X.std(axis=0)
    live = std > 0
    out = np.ones(f, dtype=np.float64)
    if live.sum() < 2:
        return out
    Xl = (X[:, live] - X[:, live].mean(axis=0)) / std[live]
    corr = (Xl.T @ Xl) / n
    # Tiny ridge keeps the inverse finite when features are exactly
    # collinear; the clip below caps the resulting huge VIFs.
    corr[np.diag_indices_from(corr)] += 1e-12
    try:
        inv_diag = np.diag(np.linalg.inv(corr))
    except np.linalg.LinAlgError:
        inv_diag = np.diag(np.linalg.pinv(corr))
    out[live] = np.clip(inv_diag, 1.0, VIF_CLIP)
    return out


def vif_summary(vifs: np.ndarray) -> dict[str, float]:
    """Boxplot-style summary of a VIF sample (drives Fig. 10 rows)."""
    v = np.asarray(vifs, dtype=np.float64)
    if v.size == 0:
        raise DataShapeError("empty VIF sample")
    q1, med, q3 = np.percentile(v, [25, 50, 75])
    return {
        "min": float(v.min()),
        "q1": float(q1),
        "median": float(med),
        "q3": float(q3),
        "max": float(v.max()),
        "mean": float(v.mean()),
        "frac_below_cutoff": float(np.mean(v < VIF_CUTOFF)),
    }
