"""One-call convenience API.

For scripts and notebooks that just want bytes in, array out::

    from repro import dpz_compress, dpz_decompress
    blob = dpz_compress(field, scheme="s", tve_nines=5)
    recon = dpz_decompress(blob)

Everything here delegates to :class:`repro.core.DPZCompressor`; use
that class directly for stats, sampling probes, or custom configs.
"""

from __future__ import annotations

import numpy as np

from repro.core.compressor import DPZCompressor
from repro.core.config import DPZ_L, DPZ_S, DPZConfig
from repro.core.sampling import SamplingReport
from repro.errors import ConfigError

__all__ = ["dpz_compress", "dpz_decompress", "dpz_probe", "scheme_config"]


def scheme_config(scheme: str = "l", *, tve_nines: int | None = None,
                  knee: bool = False, knee_fit: str = "1d",
                  use_sampling: bool = False) -> DPZConfig:
    """Build a config from the paper's scheme vocabulary.

    Parameters
    ----------
    scheme:
        ``'l'`` (loose: P=1e-3, 1-byte) or ``'s'`` (strict: P=1e-4,
        2-byte).
    tve_nines:
        Select ``k`` at this many nines of TVE (Method 2); the paper
        sweeps 3..8.  Ignored when ``knee`` is set.
    knee:
        Use knee-point detection (Method 1) instead of a TVE threshold.
    knee_fit:
        ``'1d'`` or ``'polyn'`` spline fit for the knee.
    use_sampling:
        Enable the Alg. 2 sampling strategy for k selection.
    """
    base = {"l": DPZ_L, "s": DPZ_S}.get(scheme.lower())
    if base is None:
        raise ConfigError(f"unknown scheme {scheme!r}; use 'l' or 's'")
    if knee:
        cfg = base.with_knee(knee_fit)
    elif tve_nines is not None:
        cfg = base.with_tve_nines(tve_nines)
    else:
        cfg = base
    if use_sampling:
        from dataclasses import replace
        cfg = replace(cfg, use_sampling=True)
    return cfg


def dpz_compress(data: np.ndarray, scheme: str = "l", *,
                 tve_nines: int | None = None, knee: bool = False,
                 knee_fit: str = "1d", use_sampling: bool = False,
                 config: DPZConfig | None = None) -> bytes:
    """Compress ``data`` with DPZ; returns self-describing bytes.

    Either pass a full ``config`` or use the scheme shorthand (see
    :func:`scheme_config`).
    """
    cfg = config or scheme_config(scheme, tve_nines=tve_nines, knee=knee,
                                  knee_fit=knee_fit,
                                  use_sampling=use_sampling)
    return DPZCompressor(cfg).compress(data)


def dpz_decompress(blob: bytes) -> np.ndarray:
    """Decompress DPZ bytes back to an array (original shape/dtype)."""
    return DPZCompressor.decompress(blob)


def dpz_probe(data: np.ndarray, scheme: str = "l", *,
              tve_nines: int | None = None) -> SamplingReport:
    """Estimate compressibility without compressing (Alg. 2)."""
    cfg = scheme_config(scheme, tve_nines=tve_nines)
    return DPZCompressor(cfg).probe(data)
