"""Multi-field archives: bundle many named fields into one artifact.

Scientific outputs rarely travel alone -- a CESM history file carries
dozens of variables, an HACC snapshot several particle attributes.
:class:`FieldArchive` bundles any number of named arrays, each
compressed with its own codec and settings, into a single
self-describing byte stream / file:

>>> from repro.archive import FieldArchive
>>> ar = FieldArchive()
>>> ar.add("CLDHGH", cloud, codec="dpz", scheme="s", tve_nines=5)
>>> ar.add("vx", velocities, codec="sz", rel_eps=1e-4)
>>> ar.save("snapshot.dpza")
...
>>> ar = FieldArchive.load("snapshot.dpza")
>>> ar.names()
['CLDHGH', 'vx']
>>> recon = ar.get("CLDHGH")

Codecs: ``dpz`` (default), ``sz``, ``zfp``, ``mgard``, ``dctz``,
``tucker``, plus ``raw`` (lossless float32/64 + zlib) for fields that
must not lose a bit.  Per-field keyword arguments are forwarded to the
codec's one-call API.  The CLI exposes this as ``dpz pack`` /
``dpz unpack`` / ``dpz list``.

Codec resolution goes through :mod:`repro.codecs.registry`: this
module registers the built-in set at import, and anything registered
later (``register_codec("bitshuffle", ...)``) is usable here and in
the chunked store immediately.  :data:`CODECS` is kept as a live
mapping view of the registry for backward compatibility.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.api import dpz_compress, dpz_decompress
from repro.baselines.dctz import dctz_compress, dctz_decompress
from repro.baselines.mgard import mgard_compress, mgard_decompress
from repro.baselines.sz import sz_compress, sz_decompress
from repro.baselines.tucker import tucker_compress, tucker_decompress
from repro.baselines.zfp import zfp_compress, zfp_decompress
from repro.codecs.container import pack_sections, unpack_sections
from repro.codecs.registry import (
    CodecTable,
    codec_functions,
    codec_ids,
    have_codec,
    register_codec,
)
from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.codecs.zlibc import zlib_compress, zlib_decompress
from repro.errors import CodecError, ConfigError, FormatError

__all__ = ["FieldArchive", "CODECS"]

_MAGIC = b"DPZA"
_VERSION = 1

# Raw payload bytes are little-endian on every host; compare dtype
# *kinds* (byte-order-insensitively) and pin "<"-dtypes when packing.
_RAW_DTYPES = {"f4": np.dtype("<f4"), "f8": np.dtype("<f8")}


def _raw_compress(data: np.ndarray, **_kw) -> bytes:
    """Lossless fallback codec: dtype tag + shape + zlib payload."""
    data = np.asarray(data)
    if data.dtype.newbyteorder("=") == np.float32:
        tag = b"f4"
        data = np.ascontiguousarray(data, dtype="<f4")
    else:
        tag = b"f8"
        data = np.ascontiguousarray(data, dtype="<f8")
    head = bytearray(tag)
    head += encode_uvarint(data.ndim)
    for n in data.shape:
        head += encode_uvarint(n)
    return bytes(head) + zlib_compress(data)


def _raw_decompress(blob: bytes) -> np.ndarray:
    tag = blob[:2].decode()
    if tag not in _RAW_DTYPES:
        raise FormatError(f"unknown raw dtype tag {tag!r}")
    ndim, pos = decode_uvarint(blob, 2)
    shape = []
    for _ in range(ndim):
        n, pos = decode_uvarint(blob, pos)
        shape.append(n)
    data = np.frombuffer(zlib_decompress(blob[pos:]),
                         dtype=_RAW_DTYPES[tag])
    return data.reshape(shape).copy()


#: The built-in codec set and its kind labels, registered below.
_BUILTIN_CODECS = {
    "dpz": (dpz_compress, dpz_decompress, "lossy"),
    "sz": (sz_compress, sz_decompress, "lossy"),
    "zfp": (zfp_compress, zfp_decompress, "lossy"),
    "mgard": (mgard_compress, mgard_decompress, "lossy"),
    "dctz": (dctz_compress, dctz_decompress, "lossy"),
    "tucker": (tucker_compress, tucker_decompress, "lossy"),
    "raw": (_raw_compress, _raw_decompress, "lossless"),
}

for _name, (_c, _d, _kind) in _BUILTIN_CODECS.items():
    # overwrite=True keeps re-registration idempotent if this module
    # body ever runs twice (importlib.reload in tests).
    register_codec(_name, _c, _d, kind=_kind, source="builtin",
                   overwrite=True)

#: codec name -> (compress(data, **kw) -> bytes, decompress(bytes) -> array).
#: A live view of :mod:`repro.codecs.registry`, not a private table.
CODECS = CodecTable()


@dataclass
class _Entry:
    name: str
    codec: str
    original_nbytes: int
    payload: bytes


class FieldArchive:
    """An ordered bundle of independently compressed named fields."""

    def __init__(self) -> None:
        self._entries: dict[str, _Entry] = {}

    # -- building ---------------------------------------------------------

    def add(self, name: str, data: np.ndarray, codec: str = "dpz",
            **codec_kwargs) -> None:
        """Compress ``data`` with ``codec`` and store it under ``name``.

        Keyword arguments go to the codec's one-call API (e.g.
        ``scheme=, tve_nines=`` for dpz; ``eps=``/``rel_eps=`` for
        sz/mgard; ``rate=`` for zfp).

        All input validation happens *before* any compression work:
        a duplicate field name, an empty array, a malformed name or an
        unknown codec each raise :class:`~repro.errors.ConfigError`
        up front rather than failing (or silently clobbering a field)
        after seconds of codec time.
        """
        if not name or "\x00" in name:
            raise ConfigError(f"invalid field name {name!r}")
        if name in self._entries:
            raise ConfigError(
                f"field {name!r} already exists in archive; archives "
                f"are append-only bundles of distinct names")
        if not have_codec(codec):
            raise ConfigError(
                f"unknown codec {codec!r}; use one of {codec_ids()}"
            )
        data = np.asarray(data)
        if data.size == 0:
            raise ConfigError(
                f"field {name!r} is empty (shape {data.shape}); "
                f"refusing to archive a zero-element array")
        compress, _ = codec_functions(codec)
        self._entries[name] = _Entry(
            name=name, codec=codec, original_nbytes=int(data.nbytes),
            payload=compress(data, **codec_kwargs),
        )

    # -- reading ----------------------------------------------------------

    def names(self) -> list[str]:
        """Field names in insertion order."""
        return list(self._entries)

    def get(self, name: str) -> np.ndarray:
        """Decompress and return one field.

        A payload that fails to decode (bit rot, truncation that the
        frame checks could not see) raises
        :class:`~repro.errors.FormatError`.
        """
        entry = self._require(name)
        _, decompress = codec_functions(entry.codec)
        try:
            return decompress(entry.payload)
        except FormatError:
            raise
        except (struct.error, IndexError, ValueError, KeyError,
                OverflowError, CodecError) as exc:
            raise FormatError(
                f"field {name!r} payload is corrupt: {exc}"
            ) from exc

    def info(self, name: str) -> dict:
        """Metadata for one field (codec, sizes, CR) without decoding."""
        entry = self._require(name)
        return {
            "name": entry.name,
            "codec": entry.codec,
            "original_nbytes": entry.original_nbytes,
            "compressed_nbytes": len(entry.payload),
            "cr": entry.original_nbytes / max(len(entry.payload), 1),
        }

    def total_cr(self) -> float:
        """Aggregate compression ratio over all fields."""
        orig = sum(e.original_nbytes for e in self._entries.values())
        comp = sum(len(e.payload) for e in self._entries.values())
        return orig / max(comp, 1)

    def _require(self, name: str) -> _Entry:
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigError(
                f"no field {name!r} in archive; have {self.names()}"
            ) from None

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the whole archive."""
        sections: list[bytes] = []
        for entry in self._entries.values():
            head = bytearray()
            name_b = entry.name.encode()
            head += encode_uvarint(len(name_b))
            head += name_b
            codec_b = entry.codec.encode()
            head += encode_uvarint(len(codec_b))
            head += codec_b
            head += encode_uvarint(entry.original_nbytes)
            sections.append(bytes(head) + entry.payload)
        return pack_sections(_MAGIC, _VERSION, sections)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "FieldArchive":
        """Parse :meth:`to_bytes` output.

        Raises :class:`~repro.errors.FormatError` on any corruption --
        truncated frame, mangled entry header, or undecodable name --
        rather than leaking low-level parsing exceptions.
        """
        try:
            return cls._from_bytes(blob)
        except FormatError:
            raise
        except (IndexError, ValueError, KeyError, OverflowError,
                CodecError) as exc:
            raise FormatError(f"corrupt field archive: {exc}") from exc

    @classmethod
    def _from_bytes(cls, blob: bytes) -> "FieldArchive":
        archive = cls()
        for sec in unpack_sections(blob, _MAGIC, _VERSION):
            nlen, pos = decode_uvarint(sec, 0)
            if pos + nlen > len(sec):
                raise FormatError("truncated entry name")
            name = sec[pos : pos + nlen].decode()
            pos += nlen
            clen, pos = decode_uvarint(sec, pos)
            if pos + clen > len(sec):
                raise FormatError("truncated entry codec tag")
            codec = sec[pos : pos + clen].decode()
            pos += clen
            orig, pos = decode_uvarint(sec, pos)
            if not have_codec(codec):
                raise FormatError(f"archive uses unknown codec {codec!r}")
            archive._entries[name] = _Entry(
                name=name, codec=codec, original_nbytes=orig,
                payload=sec[pos:],
            )
        return archive

    def save(self, path) -> None:
        """Write the archive to a file."""
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())

    @classmethod
    def load(cls, path) -> "FieldArchive":
        """Read an archive from a file."""
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())
