"""Baseline compressors the paper compares DPZ against.

Both baselines are full, from-scratch Python implementations of the
respective compressor *families* (see DESIGN.md for the fidelity
notes):

* :mod:`repro.baselines.sz` -- SZ-style error-bounded prediction-based
  compression (Lorenzo + per-block regression predictors, linear-scaling
  quantization, canonical Huffman, zlib).  Hard contract:
  ``max |x - x_hat| <= eps``.
* :mod:`repro.baselines.zfp` -- ZFP-style fixed-rate / fixed-precision /
  fixed-accuracy transform coding (4^d blocks, block-floating-point,
  lifted decorrelating transform, negabinary, embedded bit-plane coding
  with group testing).
* :mod:`repro.baselines.dctz` -- DCTZ-style block-DCT + quantization
  (DPZ's predecessor; also the no-PCA ablation of DPZ).
* :mod:`repro.baselines.tucker` -- TTHRESH-family Tucker/HOSVD
  truncation compression (extended comparator for 3-D volumes).
* :mod:`repro.baselines.mgard` -- MGARD-family multigrid
  interpolation-residual compression with a strict pointwise bound.
"""

from repro.baselines.dctz import (
    DCTZCompressor,
    dctz_compress,
    dctz_decompress,
)
from repro.baselines.tucker import (
    TuckerCompressor,
    tucker_compress,
    tucker_decompress,
)
from repro.baselines.mgard import (
    MGARDCompressor,
    mgard_compress,
    mgard_decompress,
)
from repro.baselines.sz import SZCompressor, sz_compress, sz_decompress
from repro.baselines.zfp import ZFPCompressor, zfp_compress, zfp_decompress

__all__ = [
    "SZCompressor",
    "sz_compress",
    "sz_decompress",
    "ZFPCompressor",
    "zfp_compress",
    "zfp_decompress",
    "DCTZCompressor",
    "dctz_compress",
    "dctz_decompress",
    "TuckerCompressor",
    "tucker_compress",
    "tucker_decompress",
    "MGARDCompressor",
    "mgard_compress",
    "mgard_decompress",
]
