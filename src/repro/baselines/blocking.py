"""Shared fixed-size block partitioning for the baseline codecs.

Both the SZ-style (block edge 6-8) and ZFP-style (block edge 4) coders
partition the input into equal hypercubes, padding the boundary by edge
replication.  Edge replication (rather than zero padding) keeps padded
samples statistically similar to their block, which matters for both
regression fits and block-floating-point exponents.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataShapeError

__all__ = ["split_blocks", "merge_blocks"]


def split_blocks(arr: np.ndarray, bs: int) -> tuple[np.ndarray,
                                                    tuple[int, ...]]:
    """Pad (edge-replicate) and split into ``(n_blocks, bs, ..., bs)``.

    Blocks are ordered C-style over the block grid.  Returns the block
    stack and the padded array shape (needed to invert).
    """
    if arr.ndim < 1:
        raise DataShapeError("cannot block a 0-D array")
    if bs < 1:
        raise DataShapeError(f"block size must be >= 1, got {bs}")
    pad = [(0, (-n) % bs) for n in arr.shape]
    padded = np.pad(arr, pad, mode="edge") if any(p[1] for p in pad) else arr
    shape = padded.shape
    d = arr.ndim
    counts = [n // bs for n in shape]
    view = padded.reshape([v for n in counts for v in (n, bs)])
    order = list(range(0, 2 * d, 2)) + list(range(1, 2 * d, 2))
    blocks = view.transpose(order).reshape(int(np.prod(counts)), *([bs] * d))
    return np.ascontiguousarray(blocks), shape


def merge_blocks(blocks: np.ndarray, padded_shape: tuple[int, ...],
                 orig_shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`split_blocks`, cropping away the padding."""
    d = len(padded_shape)
    bs = blocks.shape[1]
    counts = [n // bs for n in padded_shape]
    arr = blocks.reshape(counts + [bs] * d)
    order: list[int] = []
    for i in range(d):
        order.extend([i, d + i])
    arr = arr.transpose(order).reshape(padded_shape)
    return arr[tuple(slice(0, n) for n in orig_shape)]
