"""DCTZ-style compressor: block DCT + symmetric quantization, no PCA.

DCTZ (Zhang et al., MSST'19) is DPZ's predecessor by the same group:
it normalizes the input, applies a blockwise DCT, quantizes the
coefficients with the same symmetric equal-width bin-center quantizer
DPZ later reused for its stage 3, and finishes with zlib.  DPZ's
contribution over DCTZ is exactly the k-PCA stage in between -- so
this implementation doubles as the **ablation** isolating that stage's
value (``benchmarks/test_ablation_pca_stage.py``).

Pipeline::

    data -> unit-range normalization
         -> fixed-size 1-D blocks (default 64), orthonormal DCT-II each
         -> symmetric quantizer (bound P, B bins, escape for outliers)
         -> zlib add-on -> container

Like DPZ (and unlike SZ), the error bound ``P`` applies to transform
coefficients, so the data-domain error is controlled in an L2 sense
(energy), not pointwise.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.codecs.container import pack_sections, unpack_sections
from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.codecs.zlibc import zlib_compress, zlib_decompress
from repro.core.quantize import (
    QuantizedScores,
    dequantize_scores,
    quantize_scores,
)
from repro.errors import ConfigError, DataShapeError, FormatError
from repro.observability import span
from repro.transforms.dct import dct1d, idct1d

__all__ = ["DCTZCompressor", "dctz_compress", "dctz_decompress"]

_MAGIC = b"DCZ1"
_VERSION = 1
_DTYPES = {"f4": np.float32, "f8": np.float64}


@dataclass(frozen=True)
class DCTZCompressor:
    """Configured DCTZ-style compressor.

    Parameters
    ----------
    p:
        Quantizer error bound on the normalized-domain DCT
        coefficients (DPZ's loose scheme value by default).
    index_bytes:
        1 or 2 (bin count ``B = 2**(8*index_bytes) - 1``).
    block_size:
        1-D DCT block length (DCTZ's default regime is 64).
    zlib_level:
        Lossless add-on level.
    """

    p: float = 1e-3
    index_bytes: int = 1
    block_size: int = 64
    zlib_level: int = 6

    def __post_init__(self) -> None:
        if self.p <= 0:
            raise ConfigError(f"p must be positive, got {self.p}")
        if self.index_bytes not in (1, 2):
            raise ConfigError("index_bytes must be 1 or 2")
        if self.block_size < 4:
            raise ConfigError("block_size must be >= 4")
        if not 0 <= self.zlib_level <= 9:
            raise ConfigError("zlib_level must be in [0, 9]")

    @property
    def n_bins(self) -> int:
        """Quantizer bin count (one escape code reserved)."""
        return (1 << (8 * self.index_bytes)) - 1

    # -- compression -------------------------------------------------------

    def compress(self, data: np.ndarray) -> bytes:
        """Compress an arbitrary-dimensional float array."""
        data = np.asarray(data)
        if data.dtype.newbyteorder("=") == np.float32:
            dtype_tag = "f4"
        elif data.dtype.newbyteorder("=") == np.float64:
            dtype_tag = "f8"
        else:
            data = data.astype(np.float64)
            dtype_tag = "f8"
        if data.size == 0:
            raise DataShapeError("cannot compress an empty array")

        with span("dctz.compress", bytes_in=int(data.nbytes)):
            dmin = float(data.min())
            rng = float(data.max()) - dmin
            if rng == 0.0:
                rng = 1.0
            flat = (data.reshape(-1).astype(np.float64) - dmin) / rng - 0.5
            bs = self.block_size
            pad = (-flat.size) % bs
            if pad:
                flat = np.concatenate([flat, np.full(pad, flat[-1])])
            blocks = flat.reshape(-1, bs)
            coeffs = dct1d(blocks, axis=1)
            q = quantize_scores(coeffs, self.p, self.n_bins)

            meta = bytearray()
            meta += dtype_tag.encode()
            meta += struct.pack("<d", self.p)
            meta += struct.pack("<d", dmin)
            meta += struct.pack("<d", rng)
            meta += encode_uvarint(self.n_bins)
            meta += encode_uvarint(self.index_bytes)
            meta += encode_uvarint(bs)
            meta += encode_uvarint(data.ndim)
            for n in data.shape:
                meta += encode_uvarint(n)
            meta += encode_uvarint(int(q.outliers.size))

            idx = zlib_compress(
                np.ascontiguousarray(
                    q.indices,
                    dtype="<u1" if self.index_bytes == 1 else "<u2",
                ),
                self.zlib_level,
            )
            outl = zlib_compress(np.ascontiguousarray(q.outliers,
                                                      dtype="<f4"),
                                 self.zlib_level)
            return pack_sections(_MAGIC, _VERSION, [bytes(meta), idx, outl])

    # -- decompression -----------------------------------------------------

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`."""
        meta, idx, outl = unpack_sections(blob, _MAGIC, _VERSION)
        dtype_tag = meta[:2].decode()
        if dtype_tag not in _DTYPES:
            raise FormatError(f"unknown dtype tag {dtype_tag!r}")
        pos = 2
        (p,) = struct.unpack_from("<d", meta, pos)
        pos += 8
        (dmin,) = struct.unpack_from("<d", meta, pos)
        pos += 8
        (rng,) = struct.unpack_from("<d", meta, pos)
        pos += 8
        n_bins, pos = decode_uvarint(meta, pos)
        index_bytes, pos = decode_uvarint(meta, pos)
        bs, pos = decode_uvarint(meta, pos)
        ndim, pos = decode_uvarint(meta, pos)
        shape = []
        for _ in range(ndim):
            n, pos = decode_uvarint(meta, pos)
            shape.append(n)
        n_outliers, pos = decode_uvarint(meta, pos)

        with span("dctz.decompress", bytes_in=len(blob)):
            idx_dtype = np.dtype("<u1") if index_bytes == 1 \
                else np.dtype("<u2")
            indices = np.frombuffer(zlib_decompress(idx), dtype=idx_dtype)
            outliers = np.frombuffer(zlib_decompress(outl), dtype="<f4")
            if outliers.size != n_outliers:
                raise FormatError("outlier section size mismatch")
            total = int(np.prod(shape))
            padded = total + ((-total) % bs)
            if indices.size != padded:
                raise FormatError(
                    f"index count {indices.size} != padded size {padded}"
                )
            q = QuantizedScores(indices=indices.astype(
                                    np.uint8 if index_bytes == 1
                                    else np.uint16),
                                outliers=outliers.copy(),
                                p=p, n_bins=n_bins,
                                shape=(padded // bs, bs))
            coeffs = dequantize_scores(q)
            flat = idct1d(coeffs, axis=1).reshape(-1)[:total]
            out = (flat + 0.5) * rng + dmin
            return out.reshape(shape).astype(_DTYPES[dtype_tag])


def dctz_compress(data: np.ndarray, p: float = 1e-3, *,
                  index_bytes: int = 1, block_size: int = 64) -> bytes:
    """One-call DCTZ compression; see :class:`DCTZCompressor`."""
    return DCTZCompressor(p=p, index_bytes=index_bytes,
                          block_size=block_size).compress(data)


def dctz_decompress(blob: bytes) -> np.ndarray:
    """One-call DCTZ decompression."""
    return DCTZCompressor.decompress(blob)
