"""Lorenzo prediction on the error-bound integer lattice.

SZ's decorrelation step predicts each value from its already-decoded
neighbors; the classic predictor is the *Lorenzo* predictor, whose
residual in n dimensions is the alternating-sign sum over the corner
hypercube -- equivalently, the composition of first differences along
every axis.

This module uses the **integer-lattice formulation**, which is what
makes a pure-NumPy SZ practical: values are first snapped to the
lattice ``2 * eps * round(x / (2 * eps))`` (each value moves at most
``eps``, which *is* the error bound), and Lorenzo prediction is then
performed exactly on the lattice integers.  Because prediction is exact
integer arithmetic on already-quantized values, the encoder and decoder
see identical neighborhoods without any sequential decode-predict loop:
the forward transform is ``np.diff`` per axis and the inverse is
``np.cumsum`` per axis.

The error contract is therefore structural: the only lossy operation is
the initial snap, so ``max |x - x_hat| <= eps`` always.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "lattice_quantize",
    "lattice_dequantize",
    "lorenzo_forward",
    "lorenzo_inverse",
]


def lattice_quantize(data: np.ndarray, eps: float) -> np.ndarray:
    """Snap values to the lattice of spacing ``2*eps``; returns int64.

    Reconstruction via :func:`lattice_dequantize` satisfies
    ``|x - x_hat| <= eps`` elementwise.
    """
    if eps <= 0:
        raise ConfigError(f"error bound must be positive, got {eps}")
    scaled = np.asarray(data, dtype=np.float64) / (2.0 * eps)
    if scaled.size and np.max(np.abs(scaled)) >= 2 ** 62:
        raise ConfigError(
            "error bound too small relative to data magnitude: lattice "
            "indices overflow int64"
        )
    return np.rint(scaled).astype(np.int64)


def lattice_dequantize(codes: np.ndarray, eps: float) -> np.ndarray:
    """Map lattice integers back to float values."""
    if eps <= 0:
        raise ConfigError(f"error bound must be positive, got {eps}")
    return np.asarray(codes, dtype=np.float64) * (2.0 * eps)


def lorenzo_forward(lattice: np.ndarray) -> np.ndarray:
    """n-D Lorenzo residuals of an integer lattice array.

    Separable: first difference along each axis in turn, with the
    leading element on each axis kept verbatim (predicted from an
    implicit zero boundary).  Exact inverse: :func:`lorenzo_inverse`.
    """
    out = np.asarray(lattice, dtype=np.int64).copy()
    for axis in range(out.ndim):
        out = np.concatenate(
            [np.take(out, [0], axis=axis),
             np.diff(out, axis=axis)],
            axis=axis,
        )
    return out


def lorenzo_inverse(residuals: np.ndarray) -> np.ndarray:
    """Invert :func:`lorenzo_forward` (cumulative sum per axis)."""
    out = np.asarray(residuals, dtype=np.int64).copy()
    for axis in range(out.ndim - 1, -1, -1):
        out = np.cumsum(out, axis=axis)
    return out
