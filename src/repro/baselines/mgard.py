"""MGARD-family baseline: multigrid interpolation-residual compression.

The paper's related work lists MGARD as the multigrid-based family:
"decomposes data into multi-grid levels" and "provides different norms
to control data distortion".  This module implements the family's core
mechanism on uniform grids, as the fourth related-work comparator:

1. **Dyadic grid hierarchy.**  Level ``l+1`` is level ``l`` subsampled
   by 2 along every axis; the points dropped between levels are
   predicted by separable (multi)linear interpolation from the coarser
   grid and only the prediction **residuals** are stored.  This is the
   uniform-grid special case of MGARD's multilevel decomposition, with
   interpolation standing in for the Galerkin projection (the standard
   simplification).
2. **Closed-loop residuals.**  Residuals are computed against the
   *decoded* coarser grid, exactly as the decoder will predict, so
   quantization errors never compound across levels: every sample's
   error is its own residual's quantization error.
3. **Level-weighted quantization.**  Level ``l``'s residuals use bound
   ``eps * 2**(-gamma * l)`` (0 = finest): ``gamma = 0`` spends the
   budget uniformly; ``gamma > 0`` gives coarse levels -- whose values
   influence many fine samples through interpolation smoothness --
   tighter bounds, qualitatively MGARD's smoothness-norm knob ``s``.
4. **Entropy coding**: zigzag + Huffman + zlib, shared with the SZ
   baseline.

Hard contract (tests enforce it): ``max |x - x_hat| <= eps`` for every
``gamma >= 0``, because each decoded sample is (decoded prediction) +
(quantized residual) with the residual measured against that same
decoded prediction.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.baselines.lorenzo import lattice_dequantize, lattice_quantize
from repro.baselines.szstream import decode_residuals, encode_residuals
from repro.codecs.container import pack_sections, unpack_sections
from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.errors import ConfigError, DataShapeError, FormatError
from repro.observability import span

__all__ = ["MGARDCompressor", "mgard_compress", "mgard_decompress"]

_MAGIC = b"MGR1"
_VERSION = 1
_DTYPES = {"f4": np.float32, "f8": np.float64}


def _upsample_axis(coarse: np.ndarray, axis: int,
                   full_len: int) -> np.ndarray:
    """Linear interpolation of a 2x-subsampled axis back to full length.

    The coarse samples sit at even indices; odd indices become neighbor
    averages (the final odd index, when there is no right neighbor,
    copies the last coarse sample).
    """
    moved = np.moveaxis(coarse, axis, 0)
    out = np.empty((full_len,) + moved.shape[1:], dtype=np.float64)
    out[0::2] = moved
    pairs = (full_len - 1) // 2
    if pairs > 0:
        out[1 : 2 * pairs + 1 : 2] = 0.5 * (moved[:pairs]
                                            + moved[1 : pairs + 1])
    if full_len % 2 == 0:
        out[-1] = moved[-1]
    return np.moveaxis(out, 0, axis)


def _upsample(coarse: np.ndarray, full_shape: tuple[int, ...]) -> np.ndarray:
    """Separable multilinear upsampling to ``full_shape``.

    Exact at the coarse lattice points: ``up[::2, ::2, ...] == coarse``.
    """
    out = np.asarray(coarse, dtype=np.float64)
    for axis, n in enumerate(full_shape):
        out = _upsample_axis(out, axis, n)
    return out


def _odd_mask(shape: tuple[int, ...]) -> np.ndarray:
    """Points NOT on the next-coarser lattice (any index odd)."""
    mask = np.zeros(shape, dtype=bool)
    for axis in range(len(shape)):
        idx = [slice(None)] * len(shape)
        idx[axis] = slice(1, None, 2)
        mask[tuple(idx)] = True
    return mask


def _ladder(shape: tuple[int, ...], levels: int) -> list[tuple[int, ...]]:
    """Grid shapes from finest (index 0) to coarsest (index ``levels``)."""
    shapes = [tuple(shape)]
    for _ in range(levels):
        shapes.append(tuple((n + 1) // 2 for n in shapes[-1]))
    return shapes


@dataclass(frozen=True)
class MGARDCompressor:
    """Configured MGARD-style compressor.

    Parameters
    ----------
    eps:
        Absolute pointwise error bound (exclusive with ``rel_eps``).
    rel_eps:
        Range-relative bound, resolved at compression time.
    levels:
        Hierarchy depth; clipped so the coarsest grid keeps >= 2
        samples along every axis.
    gamma:
        Coarse-level tightening exponent (see module docs), >= 0.
    """

    eps: float | None = None
    rel_eps: float | None = None
    levels: int = 4
    gamma: float = 0.5

    def __post_init__(self) -> None:
        if (self.eps is None) == (self.rel_eps is None):
            raise ConfigError("specify exactly one of eps / rel_eps")
        bound = self.eps if self.eps is not None else self.rel_eps
        if bound is None or bound <= 0:
            raise ConfigError(f"error bound must be positive, got {bound}")
        if self.levels < 1:
            raise ConfigError(f"levels must be >= 1, got {self.levels}")
        if self.gamma < 0:
            raise ConfigError(f"gamma must be >= 0, got {self.gamma}")

    def _resolve_eps(self, data: np.ndarray) -> float:
        if self.eps is not None:
            return float(self.eps)
        rng = float(data.max() - data.min()) if data.size else 0.0
        return float(self.rel_eps) * (rng if rng > 0 else 1.0)

    def _effective_levels(self, shape: tuple[int, ...]) -> int:
        levels = self.levels
        while levels > 1 and min(shape) >> levels < 2:
            levels -= 1
        if min(shape) >> levels < 2:
            levels = 1
        return max(1, levels)

    # -- compression -------------------------------------------------------

    def compress(self, data: np.ndarray) -> bytes:
        """Compress an n-D float array with a strict pointwise bound."""
        data = np.asarray(data)
        if data.dtype.newbyteorder("=") == np.float32:
            dtype_tag = "f4"
        elif data.dtype.newbyteorder("=") == np.float64:
            dtype_tag = "f8"
        else:
            data = data.astype(np.float64)
            dtype_tag = "f8"
        if data.size == 0:
            raise DataShapeError("cannot compress an empty array")
        if data.ndim > 4:
            raise DataShapeError("MGARD baseline supports up to 4-D")
        if min(data.shape) < 4:
            raise DataShapeError("every axis needs extent >= 4")

        with span("mgard.compress", bytes_in=int(data.nbytes)):
            return self._compress_body(data, dtype_tag)

    def _compress_body(self, data: np.ndarray, dtype_tag: str) -> bytes:
        eps = self._resolve_eps(data)
        # Shave one float32 ULP so the bound survives the output cast
        # (same correction as the SZ baseline).
        if dtype_tag == "f4" and data.size:
            ulp = float(np.spacing(np.float32(np.max(np.abs(data)))))
            if eps > 2.0 * ulp:
                eps = eps - ulp
        levels = self._effective_levels(data.shape)
        shapes = _ladder(data.shape, levels)

        # Grid ladder (plain subsampling of the original).
        grids = [data.astype(np.float64)]
        for _ in range(levels):
            grids.append(grids[-1][tuple([slice(None, None, 2)]
                                         * data.ndim)])

        # Closed loop: encode the base, then residuals against the
        # decoded prediction level by level.
        base_bound = eps * (2.0 ** (-self.gamma * levels))
        base_q = lattice_quantize(grids[-1], base_bound)
        decoded = lattice_dequantize(base_q, base_bound)
        sections = [b"", encode_residuals(base_q)]

        level_payloads: list[bytes] = []
        for lvl in range(levels - 1, -1, -1):
            pred = _upsample(decoded, shapes[lvl])
            mask = _odd_mask(shapes[lvl])
            bound = eps * (2.0 ** (-self.gamma * lvl))
            res_q = lattice_quantize(grids[lvl][mask] - pred[mask], bound)
            level_payloads.append(encode_residuals(res_q))
            decoded = pred
            decoded[mask] += lattice_dequantize(res_q, bound)

        meta = bytearray()
        meta += dtype_tag.encode()
        meta += struct.pack("<d", eps)
        meta += struct.pack("<d", self.gamma)
        meta += encode_uvarint(levels)
        meta += encode_uvarint(data.ndim)
        for n in data.shape:
            meta += encode_uvarint(n)
        sections[0] = bytes(meta)
        return pack_sections(_MAGIC, _VERSION, sections + level_payloads)

    # -- decompression -----------------------------------------------------

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`."""
        with span("mgard.decompress", bytes_in=len(blob)):
            return MGARDCompressor._decompress_body(blob)

    @staticmethod
    def _decompress_body(blob: bytes) -> np.ndarray:
        sections = unpack_sections(blob, _MAGIC, _VERSION)
        meta = sections[0]
        dtype_tag = meta[:2].decode()
        if dtype_tag not in _DTYPES:
            raise FormatError(f"unknown dtype tag {dtype_tag!r}")
        pos = 2
        (eps,) = struct.unpack_from("<d", meta, pos)
        pos += 8
        (gamma,) = struct.unpack_from("<d", meta, pos)
        pos += 8
        levels, pos = decode_uvarint(meta, pos)
        ndim, pos = decode_uvarint(meta, pos)
        shape = []
        for _ in range(ndim):
            n, pos = decode_uvarint(meta, pos)
            shape.append(n)
        if len(sections) != 2 + levels:
            raise FormatError("level section count mismatch")

        shapes = _ladder(tuple(shape), levels)
        base_bound = eps * (2.0 ** (-gamma * levels))
        base_count = int(np.prod(shapes[-1]))
        decoded = lattice_dequantize(
            decode_residuals(sections[1], base_count).reshape(shapes[-1]),
            base_bound,
        )
        for i, lvl in enumerate(range(levels - 1, -1, -1)):
            pred = _upsample(decoded, shapes[lvl])
            mask = _odd_mask(shapes[lvl])
            count = int(mask.sum())
            bound = eps * (2.0 ** (-gamma * lvl))
            res = lattice_dequantize(
                decode_residuals(sections[2 + i], count), bound
            )
            decoded = pred
            decoded[mask] += res
        return decoded.astype(_DTYPES[dtype_tag])


def mgard_compress(data: np.ndarray, eps: float | None = None, *,
                   rel_eps: float | None = None, levels: int = 4,
                   gamma: float = 0.5) -> bytes:
    """One-call MGARD-style compression; see :class:`MGARDCompressor`."""
    return MGARDCompressor(eps=eps, rel_eps=rel_eps, levels=levels,
                           gamma=gamma).compress(data)


def mgard_decompress(blob: bytes) -> np.ndarray:
    """One-call MGARD-style decompression."""
    return MGARDCompressor.decompress(blob)
