"""Per-block linear-regression predictor (SZ 2.0's second predictor).

SZ 2.0 splits the array into small blocks and, per block, chooses
between the Lorenzo predictor and a fitted hyperplane
``f(i, j, k) = c0 + c1*i + c2*j + c3*k``; smooth regions regress well
and rough regions fall back to Lorenzo.  This module provides the
regression half, fully vectorized across blocks:

* one shared design matrix (and its pseudo-inverse) serves every block
  of a given shape, so fitting all blocks is a single matmul;
* fitted coefficients are rounded to float32 *before* residuals are
  computed, so encoder and decoder predict from identical coefficients;
* residuals are snapped to the error-bound lattice, preserving the
  ``max |x - x_hat| <= eps`` contract.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataShapeError

__all__ = ["design_matrix", "fit_blocks", "predict_blocks"]

_PINV_CACHE: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}


def design_matrix(block_shape: tuple[int, ...]) -> np.ndarray:
    """Regression design matrix for one block: columns [1, i, j, ...].

    Coordinates are centered and scaled to [-1, 1] so coefficient
    magnitudes stay comparable across block sizes (important because
    coefficients are stored as float32).
    """
    if not block_shape:
        raise DataShapeError("block shape must be non-empty")
    grids = np.meshgrid(
        *[np.linspace(-1.0, 1.0, n) if n > 1 else np.zeros(1)
          for n in block_shape],
        indexing="ij",
    )
    cols = [np.ones(int(np.prod(block_shape)))]
    cols.extend(g.reshape(-1) for g in grids)
    return np.stack(cols, axis=1)


def _design_and_pinv(block_shape: tuple[int, ...]) -> tuple[np.ndarray,
                                                            np.ndarray]:
    key = tuple(block_shape)
    cached = _PINV_CACHE.get(key)
    if cached is None:
        X = design_matrix(block_shape)
        cached = (X, np.linalg.pinv(X))
        if len(_PINV_CACHE) > 16:
            _PINV_CACHE.clear()
        _PINV_CACHE[key] = cached
    return cached


def fit_blocks(blocks: np.ndarray) -> np.ndarray:
    """Least-squares hyperplane fit for every block at once.

    Parameters
    ----------
    blocks:
        ``(n_blocks, *block_shape)`` array.

    Returns
    -------
    ``(n_blocks, 1 + ndim)`` float32 coefficients (rounded for storage;
    use these same values for prediction).
    """
    if blocks.ndim < 2:
        raise DataShapeError("blocks array must be (n_blocks, *block_shape)")
    nb = blocks.shape[0]
    block_shape = blocks.shape[1:]
    _, pinv = _design_and_pinv(block_shape)
    flat = blocks.reshape(nb, -1).astype(np.float64)
    coef = flat @ pinv.T
    return coef.astype(np.float32)


def predict_blocks(coef: np.ndarray,
                   block_shape: tuple[int, ...]) -> np.ndarray:
    """Evaluate the fitted hyperplanes: ``(n_blocks, *block_shape)``.

    ``coef`` is the float32 output of :func:`fit_blocks` (or the same
    values recovered from a container).
    """
    X, _ = _design_and_pinv(tuple(block_shape))
    pred = coef.astype(np.float64) @ X.T
    return pred.reshape((coef.shape[0],) + tuple(block_shape))
