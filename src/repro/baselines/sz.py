"""SZ-style error-bounded lossy compressor.

A from-scratch Python implementation of the prediction-based compressor
family the paper benchmarks as "SZ v2.0".  The pipeline is the same
four conceptual steps as real SZ:

1. **decorrelation by prediction** -- global Lorenzo prediction, or
   (SZ 2.0-style) a per-block choice between block-local Lorenzo and a
   fitted linear-regression hyperplane;
2. **linear-scaling quantization** honoring a strict absolute error
   bound ``eps`` (via the integer-lattice formulation of
   :mod:`repro.baselines.lorenzo`, which keeps everything vectorized);
3. **canonical Huffman coding** of the quantization codes, with an
   escape channel for unpredictable values;
4. **zlib** on the side streams.

Hard contract, enforced structurally and by the test suite::

    max |x - decompress(compress(x, eps))| <= eps

Usage
-----
>>> from repro.baselines import sz_compress, sz_decompress
>>> blob = sz_compress(data, eps=1e-3)          # absolute bound
>>> blob = sz_compress(data, rel_eps=1e-4)      # range-relative bound
>>> recon = sz_decompress(blob)
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.blocking import merge_blocks as _merge_blocks
from repro.baselines.blocking import split_blocks as _split_blocks
from repro.baselines.lorenzo import (
    lattice_dequantize,
    lattice_quantize,
    lorenzo_forward,
    lorenzo_inverse,
)
from repro.baselines.regression import fit_blocks, predict_blocks
from repro.baselines.szstream import (
    DEFAULT_ALPHABET,
    decode_residuals,
    encode_residuals,
    pack_sections,
    unpack_sections,
)
from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.codecs.zlibc import zlib_compress, zlib_decompress
from repro.errors import ConfigError, DataShapeError, FormatError
from repro.observability import counter_inc, gauge_set, observe, span

__all__ = ["SZCompressor", "sz_compress", "sz_decompress", "MODES"]

_MAGIC = b"SZR1"
_VERSION = 1

MODES = ("lorenzo", "regression", "auto")
_MODE_ID = {m: i for i, m in enumerate(MODES)}

_DTYPES = {"f4": np.float32, "f8": np.float64}


def _block_lorenzo_forward(blocks: np.ndarray) -> np.ndarray:
    """Lorenzo residuals computed independently inside every block."""
    out = blocks.copy()
    for axis in range(1, out.ndim):
        out = np.concatenate(
            [np.take(out, [0], axis=axis), np.diff(out, axis=axis)],
            axis=axis,
        )
    return out


def _block_lorenzo_inverse(res: np.ndarray) -> np.ndarray:
    out = res.copy()
    for axis in range(out.ndim - 1, 0, -1):
        out = np.cumsum(out, axis=axis)
    return out


def _residual_cost(res: np.ndarray) -> np.ndarray:
    """Per-block entropy proxy: sum of log2(1 + |residual|)."""
    flat = np.abs(res.reshape(res.shape[0], -1)).astype(np.float64)
    return np.log2(1.0 + flat).sum(axis=1)


@dataclass(frozen=True)
class SZCompressor:
    """Configured SZ-style compressor.

    Parameters
    ----------
    eps:
        Absolute error bound (exclusive with ``rel_eps``).
    rel_eps:
        Range-relative error bound; resolved to
        ``rel_eps * (max - min)`` at compression time (SZ's ``-P REL``).
    mode:
        ``'lorenzo'`` (global prediction, any ndim), ``'regression'``
        (per-block hyperplanes), or ``'auto'`` (per-block best of both,
        SZ 2.0 behavior).  ``'auto'`` falls back to ``'lorenzo'`` on
        1-D inputs, where a per-block line fit cannot beat Lorenzo.
    block_size:
        Block edge for the blockwise modes (SZ 2.0 uses 6-8).
    alphabet:
        Huffman symbol budget, including the escape symbol.
    """

    eps: float | None = None
    rel_eps: float | None = None
    mode: str = "auto"
    block_size: int = 8
    alphabet: int = DEFAULT_ALPHABET

    def __post_init__(self) -> None:
        if (self.eps is None) == (self.rel_eps is None):
            raise ConfigError("specify exactly one of eps / rel_eps")
        bound = self.eps if self.eps is not None else self.rel_eps
        if bound is None or bound <= 0:
            raise ConfigError(f"error bound must be positive, got {bound}")
        if self.mode not in MODES:
            raise ConfigError(f"unknown SZ mode {self.mode!r}; use {MODES}")
        if self.block_size < 2:
            raise ConfigError(f"block_size must be >= 2, got {self.block_size}")

    # -- helpers -----------------------------------------------------------

    def _resolve_eps(self, data: np.ndarray) -> float:
        if self.eps is not None:
            return float(self.eps)
        rng = float(np.max(data) - np.min(data)) if data.size else 0.0
        if rng == 0.0:
            # Constant data: any positive bound works; pick the rel bound
            # itself so the lattice is well defined.
            return float(self.rel_eps)
        return float(self.rel_eps) * rng

    # -- compression -------------------------------------------------------

    def compress(self, data: np.ndarray) -> bytes:
        """Compress an n-D float array to a self-describing byte string."""
        t_start = time.perf_counter()
        data = np.asarray(data)
        if data.dtype.newbyteorder("=") == np.float32:
            dtype_tag = "f4"
        elif data.dtype.newbyteorder("=") == np.float64:
            dtype_tag = "f8"
        else:
            data = data.astype(np.float64)
            dtype_tag = "f8"
        if data.ndim < 1 or data.ndim > 4:
            raise DataShapeError(f"SZ supports 1-4 dimensions, got {data.ndim}")
        if data.size == 0:
            raise DataShapeError("cannot compress an empty array")

        eps = self._resolve_eps(data)
        # The pipeline works in float64 but float32 outputs are rounded
        # once more on the final cast (up to one ULP of the largest
        # value).  Shave that off the lattice bound so the error
        # contract holds on the *returned* array, not just internally.
        if dtype_tag == "f4" and data.size:
            ulp = float(np.spacing(np.float32(np.max(np.abs(data)))))
            if eps > 2.0 * ulp:
                eps = eps - ulp
        mode = self.mode
        if mode == "auto" and data.ndim == 1:
            mode = "lorenzo"

        work = data.astype(np.float64, copy=False)
        selectors = b""
        coeffs = b""
        with span("sz.predict", bytes_in=int(work.nbytes), mode=mode):
            if mode == "lorenzo":
                residuals = lorenzo_forward(lattice_quantize(work, eps))
                padded_shape = work.shape
            else:
                blocks, padded_shape = _split_blocks(work, self.block_size)
                coef = fit_blocks(blocks)
                pred = predict_blocks(coef, blocks.shape[1:])
                reg_res = lattice_quantize(blocks - pred, eps)
                if mode == "regression":
                    choose_reg = np.ones(blocks.shape[0], dtype=bool)
                    lor_res = None
                else:
                    lor_res = _block_lorenzo_forward(
                        lattice_quantize(blocks, eps))
                    choose_reg = (_residual_cost(reg_res)
                                  < _residual_cost(lor_res))
                nb = blocks.shape[0]
                res = np.empty_like(reg_res)
                res[choose_reg] = reg_res[choose_reg]
                if lor_res is not None:
                    res[~choose_reg] = lor_res[~choose_reg]
                residuals = res
                selectors = zlib_compress(np.packbits(choose_reg).tobytes())
                # Only regression blocks need their coefficients.
                coeffs = zlib_compress(
                    np.ascontiguousarray(coef[choose_reg], dtype="<f4"))

        meta = bytearray()
        meta += encode_uvarint(_MODE_ID[mode])
        meta += dtype_tag.encode()
        meta += struct.pack("<d", eps)
        meta += encode_uvarint(self.block_size)
        meta += encode_uvarint(data.ndim)
        for n in data.shape:
            meta += encode_uvarint(n)
        for n in padded_shape:
            meta += encode_uvarint(n)
        meta += encode_uvarint(self.alphabet)

        with span("sz.encode", bytes_in=int(residuals.nbytes)) as sp:
            payload = encode_residuals(residuals, self.alphabet)
            blob = pack_sections(_MAGIC, _VERSION,
                                 [bytes(meta), selectors, coeffs, payload])
            sp.add(bytes_out=len(blob))
        counter_inc("sz.compress.runs")
        counter_inc("sz.compress.bytes_in", int(data.nbytes))
        counter_inc("sz.compress.bytes_out", len(blob))
        gauge_set("sz.last.cr", data.nbytes / max(len(blob), 1))
        observe("sz.compress.seconds", time.perf_counter() - t_start)
        return blob

    # -- decompression -----------------------------------------------------

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`."""
        t_start = time.perf_counter()
        counter_inc("sz.decompress.runs")
        counter_inc("sz.decompress.bytes_in", len(blob))
        meta, selectors, coeffs, payload = unpack_sections(
            blob, _MAGIC, _VERSION
        )
        mode_id, pos = decode_uvarint(meta, 0)
        mode = MODES[mode_id]
        dtype_tag = meta[pos : pos + 2].decode()
        pos += 2
        if dtype_tag not in _DTYPES:
            raise FormatError(f"unknown dtype tag {dtype_tag!r}")
        (eps,) = struct.unpack_from("<d", meta, pos)
        pos += 8
        block_size, pos = decode_uvarint(meta, pos)
        ndim, pos = decode_uvarint(meta, pos)
        shape = []
        for _ in range(ndim):
            n, pos = decode_uvarint(meta, pos)
            shape.append(n)
        padded_shape = []
        for _ in range(ndim):
            n, pos = decode_uvarint(meta, pos)
            padded_shape.append(n)
        alphabet, pos = decode_uvarint(meta, pos)
        shape_t = tuple(shape)
        padded_t = tuple(padded_shape)

        if mode == "lorenzo":
            with span("sz.decode", bytes_in=len(payload), mode=mode):
                count = int(np.prod(shape_t))
                residuals = decode_residuals(payload, count, alphabet)
            with span("sz.reconstruct", mode=mode):
                lattice = lorenzo_inverse(residuals.reshape(shape_t))
                out = lattice_dequantize(lattice, eps)
            observe("sz.decompress.seconds", time.perf_counter() - t_start)
            return out.astype(_DTYPES[dtype_tag])

        nb = int(np.prod([n // block_size for n in padded_t]))
        bshape = (nb,) + (block_size,) * ndim
        count = int(np.prod(bshape))
        with span("sz.decode", bytes_in=len(payload), mode=mode):
            residuals = decode_residuals(payload, count,
                                         alphabet).reshape(bshape)
        with span("sz.reconstruct", mode=mode):
            choose_reg = np.unpackbits(
                np.frombuffer(zlib_decompress(selectors), dtype=np.uint8)
            )[:nb].astype(bool)
            blocks = np.empty(bshape, dtype=np.float64)
            n_reg = int(choose_reg.sum())
            if n_reg:
                coef = np.frombuffer(zlib_decompress(coeffs),
                                     dtype="<f4")
                coef = coef.reshape(n_reg, 1 + ndim)
                pred = predict_blocks(coef, bshape[1:])
                blocks[choose_reg] = pred + lattice_dequantize(
                    residuals[choose_reg], eps
                )
            if n_reg < nb:
                lor = _block_lorenzo_inverse(residuals[~choose_reg])
                blocks[~choose_reg] = lattice_dequantize(lor, eps)
            out = _merge_blocks(blocks, padded_t, shape_t)
        observe("sz.decompress.seconds", time.perf_counter() - t_start)
        return out.astype(_DTYPES[dtype_tag])


def sz_compress(data: np.ndarray, eps: float | None = None, *,
                rel_eps: float | None = None, mode: str = "auto",
                block_size: int = 8) -> bytes:
    """One-call SZ compression; see :class:`SZCompressor`."""
    return SZCompressor(eps=eps, rel_eps=rel_eps, mode=mode,
                        block_size=block_size).compress(data)


def sz_decompress(blob: bytes) -> np.ndarray:
    """One-call SZ decompression."""
    return SZCompressor.decompress(blob)
