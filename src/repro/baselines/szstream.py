"""Symbol coding and container format for the SZ-style baseline.

Residual coding
---------------
Lattice residuals are signed integers sharply peaked at zero.  They are
zigzag-mapped to unsigned, values below the escape threshold become
Huffman symbols, and rarer large values are replaced by a reserved
escape symbol whose true magnitudes travel in a zlib-framed uvarint
side stream -- the same "unpredictable data" split real SZ performs.

Container
---------
A tiny section-based format: ``magic || version ||
uvarint(n_sections) || (uvarint(len) || bytes)*``.  Sections are
opaque byte strings whose meaning is positional, defined by
:mod:`repro.baselines.sz`.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.huffman import HuffmanTable, huffman_decode, huffman_encode
from repro.codecs.varint import (
    decode_uvarint,
    encode_uvarint,
    zigzag_decode,
    zigzag_encode,
)
from repro.codecs.zlibc import zlib_compress, zlib_decompress
from repro.codecs.container import pack_sections, unpack_sections
from repro.errors import CodecError

__all__ = [
    "encode_residuals",
    "decode_residuals",
    "pack_sections",
    "unpack_sections",
    "DEFAULT_ALPHABET",
]

#: Symbol alphabet size (including the escape symbol).  65536 mirrors
#: SZ's default of 65536 quantization intervals.
DEFAULT_ALPHABET = 65536


def encode_residuals(residuals: np.ndarray,
                     alphabet: int = DEFAULT_ALPHABET) -> bytes:
    """Entropy-code an int64 residual array.

    Layout: ``uvarint(alphabet) || huffman_table || huffman_payload ||
    uvarint(len(escapes_frame)) || escapes_frame``.
    """
    if alphabet < 2:
        raise CodecError(f"alphabet must be >= 2, got {alphabet}")
    flat = np.asarray(residuals, dtype=np.int64).reshape(-1)
    unsigned = zigzag_encode(flat)
    escape = alphabet - 1
    over = unsigned >= escape
    symbols = np.where(over, np.uint64(escape), unsigned).astype(np.int64)

    escapes = unsigned[over]
    side = bytearray(encode_uvarint(int(escapes.size)))
    for v in escapes.tolist():
        side += encode_uvarint(v)
    side_frame = zlib_compress(bytes(side))

    used = int(symbols.max()) + 1 if symbols.size else 1
    table = HuffmanTable.from_symbols(symbols, alphabet_size=used)
    payload = huffman_encode(symbols, table)
    return (encode_uvarint(used) + table.to_bytes() + payload
            + encode_uvarint(len(side_frame)) + bytes(side_frame))


def decode_residuals(data: bytes, count: int,
                     alphabet: int = DEFAULT_ALPHABET) -> np.ndarray:
    """Inverse of :func:`encode_residuals`; ``count`` is the residual count."""
    used, pos = decode_uvarint(data, 0)
    table, pos = HuffmanTable.from_bytes(data, pos)
    if table.alphabet_size != used:
        raise CodecError("Huffman table alphabet mismatch")
    symbols, pos = huffman_decode(data, table, pos)
    if symbols.size != count:
        raise CodecError(
            f"decoded {symbols.size} residual symbols, expected {count}"
        )
    side_len, pos = decode_uvarint(data, pos)
    side = zlib_decompress(data[pos : pos + side_len])
    n_esc, spos = decode_uvarint(side, 0)
    escape = alphabet - 1
    unsigned = symbols.astype(np.uint64)
    if n_esc:
        esc_vals = np.empty(n_esc, dtype=np.uint64)
        for i in range(n_esc):
            v, spos = decode_uvarint(side, spos)
            esc_vals[i] = v
        idx = np.flatnonzero(symbols == escape)
        if idx.size != n_esc:
            raise CodecError(
                f"escape count mismatch: {idx.size} markers, {n_esc} values"
            )
        unsigned[idx] = esc_vals
    return zigzag_decode(unsigned)
