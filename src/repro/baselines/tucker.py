"""TTHRESH-family baseline: Tucker (HOSVD) truncation compression.

The paper's related work describes TTHRESH as "a tensor
decomposition-based compressor ... designed for high dimensional visual
data, which could achieve a high compression rate with smooth visual
degradation".  This module implements the family's core mechanism as an
extended comparator for the 3-D datasets:

1. **HOSVD**: factor matrices ``U_i`` from the SVD of each mode
   unfolding; core ``C = X x_1 U1^T x_2 U2^T x_3 U3^T``.
2. **Rank truncation**: per mode, keep the smallest rank whose singular
   values carry a target fraction of the energy (the tensor analogue of
   DPZ's TVE selection).
3. **Core quantization**: the truncated core is quantized with the same
   symmetric escape-coded quantizer as DPZ's stage 3 (scaled to the
   core's magnitude), factors are stored float32; zlib everywhere.

Reconstruction is ``C x_1 U1 x_2 U2 x_3 U3``.  Compared to real
TTHRESH this swaps its adaptive bit-plane core coding for the simpler
quantizer, which shifts absolute ratios but keeps the family's
signature behaviour: excellent on smooth/low-Tucker-rank volumes and
graceful, global degradation as the energy target loosens.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.codecs.container import pack_sections, unpack_sections
from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.codecs.zlibc import zlib_compress, zlib_decompress
from repro.core.quantize import (
    QuantizedScores,
    dequantize_scores,
    quantize_scores,
)
from repro.errors import ConfigError, DataShapeError, FormatError
from repro.observability import span

__all__ = ["TuckerCompressor", "tucker_compress", "tucker_decompress",
           "hosvd", "mode_product"]

_MAGIC = b"TKR1"
_VERSION = 1
_DTYPES = {"f4": np.float32, "f8": np.float64}


def _unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding: ``(n_mode, prod(other dims))``."""
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def mode_product(tensor: np.ndarray, matrix: np.ndarray,
                 mode: int) -> np.ndarray:
    """n-mode product ``tensor x_mode matrix``.

    ``matrix`` is ``(r, n_mode)``; the result replaces that mode's
    extent with ``r``.
    """
    moved = np.moveaxis(tensor, mode, 0)
    shape = moved.shape
    out = matrix @ moved.reshape(shape[0], -1)
    return np.moveaxis(out.reshape((matrix.shape[0],) + shape[1:]), 0, mode)


def hosvd(tensor: np.ndarray) -> tuple[np.ndarray, list[np.ndarray],
                                       list[np.ndarray]]:
    """Full higher-order SVD.

    Returns ``(core, factors, singular_values)`` with
    ``factors[i]`` of shape ``(n_i, n_i)`` (orthonormal columns) and
    ``tensor == core x_1 U1 ... x_d Ud`` to fp tolerance.
    """
    factors: list[np.ndarray] = []
    svals: list[np.ndarray] = []
    for mode in range(tensor.ndim):
        u, s, _ = np.linalg.svd(_unfold(tensor, mode), full_matrices=False)
        factors.append(u)
        svals.append(s)
    core = tensor
    for mode, u in enumerate(factors):
        core = mode_product(core, u.T, mode)
    return core, factors, svals


def _ranks_for_energy(svals: list[np.ndarray],
                      target: float) -> list[int]:
    """Per-mode smallest rank with cumulative s^2 >= target."""
    ranks = []
    for s in svals:
        energy = s.astype(np.float64) ** 2
        total = energy.sum()
        if total == 0:
            ranks.append(1)
            continue
        curve = np.cumsum(energy) / total
        ranks.append(int(np.searchsorted(curve, target - 1e-12)) + 1)
    return ranks


@dataclass(frozen=True)
class TuckerCompressor:
    """Configured Tucker-truncation compressor.

    Parameters
    ----------
    target:
        Per-mode energy fraction to preserve (0 < target <= 1); the
        tensor analogue of DPZ's TVE knob.
    p:
        Core quantizer error bound, relative to the core's largest
        magnitude.
    index_bytes:
        1 or 2 byte bin indices for the core quantizer.
    """

    target: float = 0.9999
    p: float = 1e-4
    index_bytes: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.target <= 1.0:
            raise ConfigError(f"target must be in (0, 1], got {self.target}")
        if self.p <= 0:
            raise ConfigError(f"p must be positive, got {self.p}")
        if self.index_bytes not in (1, 2):
            raise ConfigError("index_bytes must be 1 or 2")

    @property
    def n_bins(self) -> int:
        """Core quantizer bin count."""
        return (1 << (8 * self.index_bytes)) - 1

    # -- compression -------------------------------------------------------

    def compress(self, data: np.ndarray) -> bytes:
        """Compress a 2-D or 3-D float array."""
        data = np.asarray(data)
        if data.dtype.newbyteorder("=") == np.float32:
            dtype_tag = "f4"
        elif data.dtype.newbyteorder("=") == np.float64:
            dtype_tag = "f8"
        else:
            data = data.astype(np.float64)
            dtype_tag = "f8"
        if data.ndim not in (2, 3):
            raise DataShapeError(
                f"Tucker compression supports 2-D/3-D, got {data.ndim}-D"
            )
        if min(data.shape) < 2:
            raise DataShapeError("every mode needs extent >= 2")

        with span("tucker.compress", bytes_in=int(data.nbytes)):
            work = data.astype(np.float64)
            _, factors, svals = hosvd(work)
            ranks = _ranks_for_energy(svals, self.target)
            trunc = [u[:, :r].astype("<f4") for u, r in zip(factors,
                                                            ranks)]
            core = work
            for mode, u in enumerate(trunc):
                core = mode_product(core, u.astype(np.float64).T, mode)

            peak = float(np.max(np.abs(core))) if core.size else 1.0
            scale = peak if peak > 0 else 1.0
            q = quantize_scores(core / scale, self.p, self.n_bins)

            meta = bytearray()
            meta += dtype_tag.encode()
            meta += struct.pack("<d", self.p)
            meta += struct.pack("<d", scale)
            meta += encode_uvarint(self.n_bins)
            meta += encode_uvarint(self.index_bytes)
            meta += encode_uvarint(data.ndim)
            for n in data.shape:
                meta += encode_uvarint(n)
            for r in ranks:
                meta += encode_uvarint(r)
            meta += encode_uvarint(int(q.outliers.size))

            fbytes = b"".join(u.tobytes() for u in trunc)
            sections = [
                bytes(meta),
                zlib_compress(fbytes),
                zlib_compress(np.ascontiguousarray(
                    q.indices,
                    dtype="<u1" if self.index_bytes == 1 else "<u2",
                )),
                zlib_compress(np.ascontiguousarray(q.outliers,
                                                   dtype="<f4")),
            ]
            return pack_sections(_MAGIC, _VERSION, sections)

    # -- decompression -----------------------------------------------------

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`."""
        meta, fsec, isec, osec = unpack_sections(blob, _MAGIC, _VERSION)
        dtype_tag = meta[:2].decode()
        if dtype_tag not in _DTYPES:
            raise FormatError(f"unknown dtype tag {dtype_tag!r}")
        pos = 2
        (p,) = struct.unpack_from("<d", meta, pos)
        pos += 8
        (scale,) = struct.unpack_from("<d", meta, pos)
        pos += 8
        n_bins, pos = decode_uvarint(meta, pos)
        index_bytes, pos = decode_uvarint(meta, pos)
        ndim, pos = decode_uvarint(meta, pos)
        shape = []
        for _ in range(ndim):
            n, pos = decode_uvarint(meta, pos)
            shape.append(n)
        ranks = []
        for _ in range(ndim):
            r, pos = decode_uvarint(meta, pos)
            ranks.append(r)
        n_outliers, pos = decode_uvarint(meta, pos)

        with span("tucker.decompress", bytes_in=len(blob)):
            raw = zlib_decompress(fsec)
            factors = []
            off = 0
            for n, r in zip(shape, ranks):
                count = n * r
                u = np.frombuffer(raw, dtype="<f4", count=count,
                                  offset=off).reshape(n, r)
                factors.append(u.astype(np.float64))
                off += count * 4
            idx_dtype = np.dtype("<u1") if index_bytes == 1 \
                else np.dtype("<u2")
            indices = np.frombuffer(zlib_decompress(isec), dtype=idx_dtype)
            outliers = np.frombuffer(zlib_decompress(osec), dtype="<f4")
            if outliers.size != n_outliers:
                raise FormatError("outlier section size mismatch")
            if indices.size != int(np.prod(ranks)):
                raise FormatError("core size mismatch")
            q = QuantizedScores(indices=indices.astype(
                                    np.uint8 if index_bytes == 1
                                    else np.uint16),
                                outliers=outliers.copy(),
                                p=p, n_bins=n_bins, shape=tuple(ranks))
            core = dequantize_scores(q) * scale
            out = core
            for mode, u in enumerate(factors):
                out = mode_product(out, u, mode)
            return out.astype(_DTYPES[dtype_tag])


def tucker_compress(data: np.ndarray, target: float = 0.9999, *,
                    p: float = 1e-4, index_bytes: int = 2) -> bytes:
    """One-call Tucker compression; see :class:`TuckerCompressor`."""
    return TuckerCompressor(target=target, p=p,
                            index_bytes=index_bytes).compress(data)


def tucker_decompress(blob: bytes) -> np.ndarray:
    """One-call Tucker decompression."""
    return TuckerCompressor.decompress(blob)
