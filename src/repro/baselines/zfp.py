"""ZFP-style fixed-rate / fixed-precision / fixed-accuracy compressor.

A from-scratch Python implementation of the transform-coding pipeline
of ZFP v0.5.x, the paper's second baseline:

1. partition the array into 4^d blocks (edge-replicated padding);
2. **block-floating-point**: express each block's values as fixed-point
   integers relative to the block's largest exponent;
3. the **lifted decorrelating transform** along each axis
   (:mod:`repro.baselines.zfptransform`, exact zfp step sequences);
4. reorder coefficients by **total sequency** (smooth first);
5. map to **negabinary** so magnitude ordering survives sign;
6. **embedded bit-plane coding** with group testing -- zfp's
   ``encode_ints``/``decode_ints`` control flow, ported bit-for-bit --
   from the most significant plane down, stopping per the mode:

   * ``fixed-rate``: exactly ``rate`` bits per value per block (random
     access preserved: every block occupies the same bit budget);
   * ``fixed-precision``: the top ``precision`` bit planes per block;
   * ``fixed-accuracy``: all planes above the requested absolute error
     tolerance.

The per-block bit streams are concatenated and stored in a sectioned
container together with the geometry header.

Performance note: plane extraction and all arithmetic are vectorized
across blocks; only the group-testing control flow (which is inherently
sequential per block) runs in Python, on native ints and strings.
"""

from __future__ import annotations

import math
import struct
import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.blocking import merge_blocks, split_blocks
from repro.baselines.szstream import pack_sections, unpack_sections
from repro.baselines.zfptransform import (
    fwd_transform,
    inv_transform,
    sequency_order,
)
from repro.codecs.negabinary import int_to_negabinary, negabinary_to_int
from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.errors import ConfigError, DataShapeError, FormatError
from repro.observability import counter_inc, gauge_set, observe, span

__all__ = ["ZFPCompressor", "zfp_compress", "zfp_decompress", "ZFP_MODES"]

_MAGIC = b"ZFR1"
_VERSION = 1

ZFP_MODES = ("rate", "precision", "accuracy")
_MODE_ID = {m: i for i, m in enumerate(ZFP_MODES)}
_DTYPES = {"f4": np.float32, "f8": np.float64}

#: Fixed-point fraction bits for the block-floating-point conversion.
FRAC_BITS = 44
#: Bit planes carried through coding (fraction bits + transform and
#: negabinary growth headroom).
INTPREC = 54
#: Bits used to store each block's common exponent (biased by 1075,
#: covering the full float64 exponent range).
EBITS = 12
_EBIAS = 1075


def _plane_ints(u: np.ndarray) -> np.ndarray:
    """``planes[k, b]`` = bit-plane ``k`` of block ``b`` as an integer.

    ``u`` is ``(n_blocks, size)`` uint64 negabinary coefficients with
    ``size <= 64``; bit ``i`` of ``planes[k, b]`` is coefficient ``i``'s
    bit ``k``.
    """
    nb, size = u.shape
    weights = (np.uint64(1) << np.arange(size, dtype=np.uint64))
    planes = np.empty((INTPREC, nb), dtype=np.uint64)
    for k in range(INTPREC):
        bits = (u >> np.uint64(k)) & np.uint64(1)
        planes[k] = (bits * weights).sum(axis=1, dtype=np.uint64)
    return planes


def _encode_block(planes_col, size: int, budget: int, kmin: int,
                  parts: list[str]) -> None:
    """Emit one block's plane bits (zfp ``encode_ints`` control flow).

    ``planes_col[k]`` is plane ``k`` of this block as a Python int.
    ``budget`` is the remaining bit budget (use a huge number for the
    unbounded modes).  Emitted bits are appended to ``parts`` as '0'/'1'
    strings, LSB-of-plane (coefficient 0) first.
    """
    bits_left = budget
    n = 0
    for k in range(INTPREC - 1, kmin - 1, -1):
        if bits_left <= 0:
            break
        x = planes_col[k]
        # Step 2: first n coefficient bits verbatim.
        m = min(n, bits_left)
        if m:
            parts.append(format(x & ((1 << m) - 1), f"0{m}b")[::-1])
            bits_left -= m
        x >>= m
        # Step 3: unary run-length encode the remainder (group testing).
        while n < size and bits_left > 0:
            bits_left -= 1
            if x:
                parts.append("1")
            else:
                parts.append("0")
                break
            while n < size - 1 and bits_left > 0:
                bits_left -= 1
                bit = x & 1
                parts.append("1" if bit else "0")
                if bit:
                    break
                x >>= 1
                n += 1
            else:
                x >>= 1
                n += 1
                continue
            x >>= 1
            n += 1


def _decode_block(s: str, pos: int, size: int, budget: int,
                  kmin: int) -> tuple[list[int], int]:
    """Invert :func:`_encode_block`; returns (coefficients, next_pos).

    ``s`` is the whole bitstream as a '0'/'1' string; ``pos`` the
    block's first bit.  Reads at most ``budget`` bits.
    """
    bits_left = budget
    n = 0
    u = [0] * size
    for k in range(INTPREC - 1, kmin - 1, -1):
        if bits_left <= 0:
            break
        m = min(n, bits_left)
        if m:
            seg = s[pos : pos + m]
            x = int(seg[::-1], 2) if seg else 0
            pos += m
            bits_left -= m
        else:
            x = 0
        while n < size and bits_left > 0:
            bits_left -= 1
            bit = s[pos]
            pos += 1
            if bit == "0":
                break
            while n < size - 1 and bits_left > 0:
                bits_left -= 1
                b = s[pos]
                pos += 1
                if b == "1":
                    break
                n += 1
            x |= 1 << n
            n += 1
        # Deposit plane k.
        xi = x
        i = 0
        while xi:
            if xi & 1:
                u[i] |= 1 << k
            xi >>= 1
            i += 1
    return u, pos


@dataclass(frozen=True)
class ZFPCompressor:
    """Configured ZFP-style compressor.

    Exactly one of the three mode parameters must be set:

    rate:
        Bits per value (fixed-rate).  Must leave room for the per-block
        header: ``rate * 4**ndim >= 1 + EBITS``.
    precision:
        Bit planes per block (fixed-precision), 1..INTPREC.
    tolerance:
        Absolute error tolerance (fixed-accuracy), > 0.
    """

    rate: float | None = None
    precision: int | None = None
    tolerance: float | None = None

    def __post_init__(self) -> None:
        set_count = sum(p is not None
                        for p in (self.rate, self.precision, self.tolerance))
        if set_count != 1:
            raise ConfigError(
                "set exactly one of rate / precision / tolerance"
            )
        if self.rate is not None and self.rate <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate}")
        if self.precision is not None and not 1 <= self.precision <= INTPREC:
            raise ConfigError(
                f"precision must be in [1, {INTPREC}], got {self.precision}"
            )
        if self.tolerance is not None and self.tolerance <= 0:
            raise ConfigError(
                f"tolerance must be positive, got {self.tolerance}"
            )

    @property
    def mode(self) -> str:
        """Which of the three modes is active."""
        if self.rate is not None:
            return "rate"
        if self.precision is not None:
            return "precision"
        return "accuracy"

    # -- compression -------------------------------------------------------

    def compress(self, data: np.ndarray) -> bytes:
        """Compress an n-D (1-3) float array."""
        t_start = time.perf_counter()
        data = np.asarray(data)
        if data.dtype.newbyteorder("=") == np.float32:
            dtype_tag = "f4"
        elif data.dtype.newbyteorder("=") == np.float64:
            dtype_tag = "f8"
        else:
            data = data.astype(np.float64)
            dtype_tag = "f8"
        if data.ndim < 1 or data.ndim > 3:
            raise DataShapeError(
                f"this ZFP implementation supports 1-3 dimensions, "
                f"got {data.ndim}"
            )
        if data.size == 0:
            raise DataShapeError("cannot compress an empty array")
        d = data.ndim
        size = 4 ** d
        if self.rate is not None and self.rate * size < 1 + EBITS:
            raise ConfigError(
                f"rate {self.rate} too small for {d}-D blocks: need at least "
                f"{(1 + EBITS) / size:.2f} bits/value for the block header"
            )

        with span("zfp.transform", bytes_in=int(data.nbytes), mode=self.mode):
            blocks, padded_shape = split_blocks(data.astype(np.float64), 4)
            nb = blocks.shape[0]
            flat = blocks.reshape(nb, size)
            maxabs = np.abs(flat).max(axis=1)
            tol = self.tolerance
            zero_block = ((maxabs == 0.0) if tol is None
                          else (maxabs <= tol / 2.0))

            _, exps = np.frexp(maxabs)
            exps = exps.astype(np.int64)  # maxabs in [2**(e-1), 2**e)
            scale = np.ldexp(1.0, (FRAC_BITS - 1) - exps)
            q = np.rint(blocks
                        * scale.reshape((nb,) + (1,) * d)).astype(np.int64)
            coeffs = fwd_transform(q).reshape(nb, size)[:, sequency_order(d)]
            u = int_to_negabinary(coeffs).astype(np.uint64)
            planes = _plane_ints(u)

        budget = (int(round(self.rate * size)) - (1 + EBITS)
                  if self.rate is not None else 1 << 60)
        if self.precision is not None:
            kmin_all = np.full(nb, INTPREC - self.precision, dtype=np.int64)
        elif tol is not None:
            # Planes below the tolerance (after accounting for the
            # fixed-point scale and transform gain) are not coded.
            log_tol = math.floor(math.log2(tol))
            kmin_all = log_tol - (exps - (FRAC_BITS - 1)) - 2 * d - 1
            kmin_all = np.clip(kmin_all, 0, INTPREC).astype(np.int64)
        else:
            kmin_all = np.zeros(nb, dtype=np.int64)

        with span("zfp.bitplane_encode", n_blocks=nb, mode=self.mode) as sp:
            parts: list[str] = []
            planes_list = planes.T.tolist()  # per block: [plane0, ...]
            zero_list = zero_block.tolist()
            exp_list = exps.tolist()
            kmin_list = kmin_all.tolist()
            block_bits = (int(round(self.rate * size))
                          if self.rate is not None else None)
            for b in range(nb):
                block_parts: list[str] = []
                if zero_list[b]:
                    block_parts.append("0")
                else:
                    block_parts.append("1")
                    block_parts.append(
                        format(exp_list[b] + _EBIAS, f"0{EBITS}b")[::-1])
                    _encode_block(planes_list[b], size, budget,
                                  int(kmin_list[b]), block_parts)
                if block_bits is not None:
                    used = sum(len(p) for p in block_parts)
                    if used > block_bits:
                        raise ConfigError(
                            "fixed-rate budget accounting error")
                    if used < block_bits:
                        block_parts.append("0" * (block_bits - used))
                parts.append("".join(block_parts))

            bitstring = "".join(parts)
            nbits = len(bitstring)
            if nbits:
                arr = np.frombuffer(bitstring.encode("ascii"), dtype=np.uint8)
                payload = np.packbits(arr - ord("0")).tobytes()
            else:
                payload = b""
            sp.add(bytes_out=len(payload))

        meta = bytearray()
        meta += encode_uvarint(_MODE_ID[self.mode])
        meta += dtype_tag.encode()
        if self.rate is not None:
            meta += struct.pack("<d", self.rate)
        elif self.precision is not None:
            meta += struct.pack("<d", float(self.precision))
        else:
            meta += struct.pack("<d", tol)
        meta += encode_uvarint(d)
        for nshape in data.shape:
            meta += encode_uvarint(nshape)
        for nshape in padded_shape:
            meta += encode_uvarint(nshape)
        meta += encode_uvarint(nbits)

        kmin_bytes = (kmin_all.astype(np.uint8).tobytes()
                      if tol is not None else b"")
        blob = pack_sections(_MAGIC, _VERSION,
                             [bytes(meta), kmin_bytes, payload])
        counter_inc("zfp.compress.runs")
        counter_inc("zfp.compress.bytes_in", int(data.nbytes))
        counter_inc("zfp.compress.bytes_out", len(blob))
        gauge_set("zfp.last.cr", data.nbytes / max(len(blob), 1))
        observe("zfp.compress.seconds", time.perf_counter() - t_start)
        return blob

    # -- decompression -----------------------------------------------------

    @staticmethod
    def decompress(blob: bytes) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`."""
        t_start = time.perf_counter()
        counter_inc("zfp.decompress.runs")
        counter_inc("zfp.decompress.bytes_in", len(blob))
        meta, kmin_bytes, payload = unpack_sections(blob, _MAGIC, _VERSION)
        mode_id, pos = decode_uvarint(meta, 0)
        mode = ZFP_MODES[mode_id]
        dtype_tag = meta[pos : pos + 2].decode()
        pos += 2
        if dtype_tag not in _DTYPES:
            raise FormatError(f"unknown dtype tag {dtype_tag!r}")
        (param,) = struct.unpack_from("<d", meta, pos)
        pos += 8
        d, pos = decode_uvarint(meta, pos)
        shape = []
        for _ in range(d):
            n, pos = decode_uvarint(meta, pos)
            shape.append(n)
        padded = []
        for _ in range(d):
            n, pos = decode_uvarint(meta, pos)
            padded.append(n)
        nbits, pos = decode_uvarint(meta, pos)

        size = 4 ** d
        nb = int(np.prod([n // 4 for n in padded]))
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))[:nbits]
        s = bits.tobytes().translate(bytes([48, 49] + [0] * 254)).decode()

        if mode == "rate":
            block_bits = int(round(param * size))
            budget = block_bits - (1 + EBITS)
        else:
            block_bits = None
            budget = 1 << 60
        if mode == "precision":
            kmin_global = INTPREC - int(param)
        else:
            kmin_global = 0
        kmin_arr = (np.frombuffer(kmin_bytes, dtype=np.uint8)
                    if mode == "accuracy" else None)

        with span("zfp.bitplane_decode", bytes_in=len(payload),
                  n_blocks=nb, mode=mode):
            u = np.zeros((nb, size), dtype=np.uint64)
            exps = np.zeros(nb, dtype=np.int64)
            nonzero = np.zeros(nb, dtype=bool)
            cursor = 0
            for b in range(nb):
                start = cursor
                flag = s[cursor]
                cursor += 1
                if flag == "1":
                    nonzero[b] = True
                    eseg = s[cursor : cursor + EBITS]
                    cursor += EBITS
                    exps[b] = int(eseg[::-1], 2) - _EBIAS
                    kmin = (int(kmin_arr[b]) if kmin_arr is not None
                            else kmin_global)
                    coeffs, cursor = _decode_block(s, cursor, size, budget,
                                                   kmin)
                    u[b] = np.asarray(coeffs, dtype=np.uint64)
                if block_bits is not None:
                    cursor = start + block_bits

        with span("zfp.inverse_transform", n_blocks=nb) as sp:
            perm = sequency_order(d)
            inv_perm = np.empty_like(perm)
            inv_perm[perm] = np.arange(size)
            coeff_int = negabinary_to_int(u)[:, inv_perm]
            q = inv_transform(coeff_int.reshape((nb,) + (4,) * d))
            scale = np.ldexp(1.0, (FRAC_BITS - 1) - exps)
            blocks = q.astype(np.float64) / scale.reshape((nb,) + (1,) * d)
            blocks[~nonzero] = 0.0
            out = merge_blocks(blocks, tuple(padded), tuple(shape))
            sp.add(bytes_out=int(out.nbytes))
        observe("zfp.decompress.seconds", time.perf_counter() - t_start)
        return out.astype(_DTYPES[dtype_tag])


def zfp_compress(data: np.ndarray, *, rate: float | None = None,
                 precision: int | None = None,
                 tolerance: float | None = None) -> bytes:
    """One-call ZFP compression; see :class:`ZFPCompressor`."""
    return ZFPCompressor(rate=rate, precision=precision,
                         tolerance=tolerance).compress(data)


def zfp_decompress(blob: bytes) -> np.ndarray:
    """One-call ZFP decompression."""
    return ZFPCompressor.decompress(blob)
