"""ZFP's integer lifting transform and coefficient ordering.

ZFP decorrelates each 4^d block with a fast, near-orthogonal integer
transform applied separably along every axis.  This module implements
the exact forward/inverse lifting step sequences of the reference
implementation (``fwd_lift`` / ``inv_lift``), vectorized across an
arbitrary leading batch of blocks, plus the total-sequency coefficient
permutation that orders transform coefficients from smooth to rough
before bit-plane coding.

The lifting uses arithmetic right shifts, so -- exactly like real zfp
-- the transform loses up to one integer ULP of the fixed-point grid
per round trip (the parity bit discarded by ``>> 1``).  At the
fixed-point precision used by :mod:`repro.baselines.zfp` this is far
below float32 resolution.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataShapeError

__all__ = [
    "fwd_lift",
    "inv_lift",
    "fwd_transform",
    "inv_transform",
    "sequency_order",
]


def fwd_lift(block: np.ndarray, axis: int) -> None:
    """In-place forward lifting along ``axis`` (length must be 4).

    The step sequence is zfp's::

        x += w; x >>= 1; w -= x
        z += y; z >>= 1; y -= z
        x += z; x >>= 1; z -= x
        w += y; w >>= 1; y -= w
        w += y >> 1; y -= w >> 1
    """
    if block.shape[axis] != 4:
        raise DataShapeError(
            f"zfp lifting needs length 4 along axis {axis}, "
            f"got {block.shape[axis]}"
        )
    sl = [slice(None)] * block.ndim

    def pick(i: int) -> np.ndarray:
        sl[axis] = i
        return block[tuple(sl)]

    x, y, z, w = pick(0).copy(), pick(1).copy(), pick(2).copy(), pick(3).copy()
    x += w; x >>= 1; w -= x
    z += y; z >>= 1; y -= z
    x += z; x >>= 1; z -= x
    w += y; w >>= 1; y -= w
    w += y >> 1; y -= w >> 1
    for i, v in enumerate((x, y, z, w)):
        sl[axis] = i
        block[tuple(sl)] = v


def inv_lift(block: np.ndarray, axis: int) -> None:
    """In-place inverse lifting along ``axis`` (zfp's ``inv_lift``)."""
    if block.shape[axis] != 4:
        raise DataShapeError(
            f"zfp lifting needs length 4 along axis {axis}, "
            f"got {block.shape[axis]}"
        )
    sl = [slice(None)] * block.ndim

    def pick(i: int) -> np.ndarray:
        sl[axis] = i
        return block[tuple(sl)]

    x, y, z, w = pick(0).copy(), pick(1).copy(), pick(2).copy(), pick(3).copy()
    y += w >> 1; w -= y >> 1
    y += w; w <<= 1; w -= y
    z += x; x <<= 1; x -= z
    y += z; z <<= 1; z -= y
    w += x; x <<= 1; x -= w
    for i, v in enumerate((x, y, z, w)):
        sl[axis] = i
        block[tuple(sl)] = v


def fwd_transform(blocks: np.ndarray) -> np.ndarray:
    """Forward transform of a ``(n_blocks, 4, ..., 4)`` int64 stack."""
    out = np.asarray(blocks, dtype=np.int64).copy()
    for axis in range(1, out.ndim):
        fwd_lift(out, axis)
    return out


def inv_transform(blocks: np.ndarray) -> np.ndarray:
    """Inverse transform (axes unwound in reverse order)."""
    out = np.asarray(blocks, dtype=np.int64).copy()
    for axis in range(out.ndim - 1, 0, -1):
        inv_lift(out, axis)
    return out


_ORDER_CACHE: dict[int, np.ndarray] = {}


def sequency_order(ndim: int) -> np.ndarray:
    """Permutation ordering 4^ndim coefficients by total sequency.

    Coefficients are sorted by the sum of their per-axis frequency
    indices (then lexicographically for determinism), mirroring zfp's
    ``PERM`` tables: low-frequency (smooth) coefficients -- which carry
    the most energy -- come first, so bit-plane coding reaches them
    earliest.  Returns indices into the C-order flattened block.
    """
    if ndim < 1 or ndim > 4:
        raise DataShapeError(f"zfp supports 1-4 dimensions, got {ndim}")
    cached = _ORDER_CACHE.get(ndim)
    if cached is not None:
        return cached
    coords = np.stack(
        np.meshgrid(*([np.arange(4)] * ndim), indexing="ij"), axis=-1
    ).reshape(-1, ndim)
    keys = [tuple(c) for c in coords]
    order = sorted(range(len(keys)),
                   key=lambda i: (sum(keys[i]), keys[i]))
    perm = np.asarray(order, dtype=np.int64)
    _ORDER_CACHE[ndim] = perm
    return perm
