"""Command-line interface: ``dpz`` (or ``python -m repro``).

Subcommands
-----------
compress
    ``dpz compress IN OUT [--scheme l|s] [--nines N | --knee] ...``
    Input is ``.npy`` or raw ``.f32`` (pass ``--shape``).
decompress
    ``dpz decompress IN OUT`` -- output format chosen by extension.
probe
    ``dpz probe IN`` -- run the sampling strategy (Alg. 2) and print
    the estimated k, VIF summary and preliminary CR range.
info
    ``dpz info IN`` -- show a compressed container's metadata.
datasets
    ``dpz datasets`` -- list the built-in synthetic datasets (Table I).
bench
    ``dpz bench ARTIFACT`` -- run one paper-artifact harness (e.g.
    ``table3``, ``fig6``, ``fig10``) and print its report.
trace
    ``dpz trace DATASET_OR_FILE [--out trace.ndjson]`` -- run a traced
    DPZ compress+decompress and emit per-stage NDJSON spans plus a
    stage-share summary (see ``repro.observability``).
pack / unpack / list
    Multi-field archives: ``dpz pack out.dpza NAME=FILE ...
    [--codec dpz] [--nines N]``, ``dpz unpack in.dpza NAME out.npy``,
    ``dpz list in.dpza``.
store
    Chunked random-access stores (``.dpzs``): ``dpz store pack
    out.dpzs NAME=FILE ... [--codec auto --budget 1e-3] [--chunk 16 16
    16] [--jobs N] [--backend auto|file|dir|memory]``, ``dpz store
    list in.dpzs``, ``dpz store get in.dpzs NAME out.npy``, ``dpz
    store region in.dpzs NAME 0:16,8:24,3 out.npy``, ``dpz store
    from-archive in.dpza out.dpzs``, ``dpz store codecs`` (list the
    registered codec ids).
serve
    ``dpz serve STORE ... [--port 8742 | --unix-socket PATH]
    [--workers N] [--cache-bytes B]`` -- serve store regions over the
    HTTP wire protocol (FORMATS.md), with request coalescing and
    queue-depth backpressure; SIGTERM/SIGINT drain gracefully.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.metrics import compression_ratio
from repro.api import dpz_decompress, dpz_probe, scheme_config
from repro.core.compressor import DPZCompressor
from repro.core.stream import deserialize
from repro.datasets.io import load_field, save_field
from repro.datasets.registry import all_dataset_names, get_spec
from repro.errors import ConfigError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    ap = argparse.ArgumentParser(
        prog="dpz",
        description="DPZ lossy compressor for scientific data "
                    "(CLUSTER 2021 reproduction)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    def add_input(p, out: bool = True):
        p.add_argument("input", help="input file (.npy or raw .f32)")
        if out:
            p.add_argument("output", help="output file")
        p.add_argument("--shape", type=int, nargs="+", default=None,
                       help="shape for raw float32 inputs, e.g. "
                            "--shape 1800 3600")

    pc = sub.add_parser("compress", help="compress a dataset")
    add_input(pc)
    pc.add_argument("--scheme", choices=["l", "s"], default="l",
                    help="DPZ-l (P=1e-3, 1-byte) or DPZ-s (P=1e-4, 2-byte)")
    group = pc.add_mutually_exclusive_group()
    group.add_argument("--nines", type=int, default=None,
                       help="TVE threshold as a number of nines (3..8)")
    group.add_argument("--knee", action="store_true",
                       help="select k by knee-point detection")
    pc.add_argument("--knee-fit", choices=["1d", "polyn"], default="1d")
    pc.add_argument("--sampling", action="store_true",
                    help="estimate k via the sampling strategy (Alg. 2)")
    pc.add_argument("--stats", action="store_true",
                    help="print per-stage timing and size breakdown")

    pd = sub.add_parser("decompress", help="decompress a DPZ container")
    pd.add_argument("input")
    pd.add_argument("output")

    pp = sub.add_parser("probe", help="estimate compressibility (Alg. 2)")
    add_input(pp, out=False)
    pp.add_argument("--scheme", choices=["l", "s"], default="l")
    pp.add_argument("--nines", type=int, default=5)

    pi = sub.add_parser("info", help="describe a DPZ container")
    pi.add_argument("input")

    sub.add_parser("datasets", help="list built-in synthetic datasets")

    pb = sub.add_parser("bench",
                        help="run one paper-artifact harness and print "
                             "its report")
    pb.add_argument("artifact", choices=sorted(_ARTIFACTS) + ["all"],
                    help="which table/figure to regenerate ('all' runs "
                         "every harness in sequence)")
    pb.add_argument("--size", choices=["small", "full"], default="small",
                    help="dataset size preset")

    pt = sub.add_parser("trace",
                        help="trace a DPZ compress+decompress run "
                             "(per-stage NDJSON spans)")
    pt.add_argument("input", nargs="?", default=None,
                    help="built-in dataset name (see 'dpz datasets') or "
                         "input file (.npy / raw .f32)")
    pt.add_argument("--shape", type=int, nargs="+", default=None,
                    help="shape for raw float32 inputs")
    pt.add_argument("--size", choices=["small", "full"], default="small",
                    help="size preset for built-in datasets")
    pt.add_argument("--scheme", choices=["l", "s"], default="l")
    pt.add_argument("--nines", type=int, default=None,
                    help="TVE threshold as a number of nines (3..8)")
    pt.add_argument("--out", default=None,
                    help="write NDJSON here instead of stdout (stdout "
                         "then carries the stage summary)")
    pt.add_argument("--flamegraph", default=None, metavar="OUT.html",
                    help="also render the trace as a self-contained "
                         "flamegraph HTML file")
    pt.add_argument("--profile", default=None, metavar="OUT.html",
                    help="run a wall-clock sampling profiler alongside "
                         "the trace and render the sampled stacks as a "
                         "flamegraph HTML file")
    pt.add_argument("--profile-interval", type=float, default=0.002,
                    metavar="SECONDS",
                    help="sampling period for --profile (default 2ms)")
    pt.add_argument("--diff", nargs=2, default=None,
                    metavar=("A.ndjson", "B.ndjson"),
                    help="compare two existing trace files per stage "
                         "instead of running a new trace")
    pt.add_argument("--runlog", default=None, metavar="PATH",
                    help="run-registry file to append to "
                         "(default: $DPZ_RUNLOG or ./runs.ndjson)")
    pt.add_argument("--no-runlog", action="store_true",
                    help="do not append this run to the run registry")

    po = sub.add_parser("top",
                        help="live terminal dashboard over the metric "
                             "registry (local or a telemetry endpoint)")
    po.add_argument("--url", default=None, metavar="URL",
                    help="poll this telemetry endpoint's /metrics.json "
                         "(e.g. http://127.0.0.1:9412); default: this "
                         "process's own registry")
    po.add_argument("--listen", type=int, default=None, metavar="PORT",
                    help="also serve /metrics, /healthz and /runs on "
                         "this port while the dashboard runs (0 = "
                         "ephemeral)")
    po.add_argument("--interval", type=float, default=1.0,
                    help="refresh period in seconds (default 1.0)")
    po.add_argument("--iterations", type=int, default=None, metavar="N",
                    help="render N frames then exit (default: until ^C)")
    po.add_argument("--once", action="store_true",
                    help="render a single frame without clearing the "
                         "screen (scripts, tests)")

    pr = sub.add_parser("runs",
                        help="inspect the persistent run registry "
                             "(runs.ndjson)")
    pr.add_argument("action", choices=["list", "show", "diff"],
                    help="list all runs, show one record as JSON, or "
                         "diff two records")
    pr.add_argument("keys", nargs="*",
                    help="run selector(s): an index (0, -1, ...) or a "
                         "run_id prefix; 'show' takes one, 'diff' two")
    pr.add_argument("--file", default=None, metavar="PATH",
                    help="registry file (default: $DPZ_RUNLOG or "
                         "./runs.ndjson)")

    pk = sub.add_parser("pack", help="bundle fields into an archive")
    pk.add_argument("output", help="archive file (.dpza)")
    pk.add_argument("fields", nargs="+", metavar="NAME=FILE",
                    help="named inputs, e.g. CLDHGH=cloud.npy")
    pk.add_argument("--codec", default="dpz",
                    help="codec for every field (dpz/sz/zfp/mgard/dctz/"
                         "tucker/raw)")
    pk.add_argument("--scheme", choices=["l", "s"], default="l",
                    help="DPZ scheme (dpz codec only)")
    pk.add_argument("--nines", type=int, default=None,
                    help="DPZ TVE nines (dpz codec only)")
    pk.add_argument("--rel-eps", type=float, default=1e-4,
                    help="relative bound (sz/mgard codecs)")
    pk.add_argument("--rate", type=float, default=8.0,
                    help="bits per value (zfp codec)")

    pu = sub.add_parser("unpack", help="extract one field from an archive")
    pu.add_argument("input")
    pu.add_argument("name")
    pu.add_argument("output", help="output file (.npy or raw .f32)")

    pl = sub.add_parser("list", help="list an archive's contents")
    pl.add_argument("input")

    ps = sub.add_parser("store",
                        help="chunked random-access stores (.dpzs)")
    ssub = ps.add_subparsers(dest="store_command", required=True)

    def _backend_arg(p) -> None:
        p.add_argument("--backend", default="auto",
                       choices=("auto", "file", "dir", "memory"),
                       help="storage backend: 'file' is the .dpzs "
                            "single file, 'dir' a sharded key "
                            "directory; 'auto' picks 'dir' for "
                            "existing directories / trailing '/'")

    sp = ssub.add_parser("pack",
                         help="chunk, compress and pack fields")
    sp.add_argument("output", help="store file (.dpzs) or directory")
    sp.add_argument("fields", nargs="+", metavar="NAME=FILE",
                    help="named inputs, e.g. vx=velocities.npy")
    _backend_arg(sp)
    sp.add_argument("--codec", default="dpz",
                    help="per-chunk codec (any registered id -- see "
                         "'dpz store codecs'); 'auto' selects per "
                         "chunk against --budget")
    sp.add_argument("--chunk", nargs="+", default=None,
                    help="chunk shape, e.g. --chunk 16 16 16, or "
                         "'auto' for plane-aligned chunks tuned for "
                         "slab reads (default: a per-ndim heuristic)")
    sp.add_argument("--budget", type=float, default=None,
                    help="absolute error budget (codec=auto)")
    sp.add_argument("--jobs", type=int, default=0,
                    help="parallel chunk-compression workers "
                         "(0 = all cores)")
    sp.add_argument("--scheme", choices=["l", "s"], default="l",
                    help="DPZ scheme (dpz codec only)")
    sp.add_argument("--nines", type=int, default=None,
                    help="DPZ TVE nines (dpz codec only)")
    sp.add_argument("--rel-eps", type=float, default=1e-4,
                    help="relative bound (sz/mgard codecs)")
    sp.add_argument("--rate", type=float, default=8.0,
                    help="bits per value (zfp codec)")

    sl = ssub.add_parser("list", help="describe a store's fields")
    sl.add_argument("input")
    _backend_arg(sl)

    sg = ssub.add_parser("get", help="extract one whole field")
    sg.add_argument("input")
    sg.add_argument("name")
    sg.add_argument("output", help="output file (.npy or raw .f32)")
    _backend_arg(sg)

    sr = ssub.add_parser("region",
                         help="extract a rectangular region of a field")
    sr.add_argument("input")
    sr.add_argument("name")
    sr.add_argument("region",
                    help="per-dim selectors, e.g. 0:16,8:24,3 "
                         "(unit-step slices and integer indices)")
    sr.add_argument("output", help="output file (.npy or raw .f32)")
    _backend_arg(sr)

    sa = ssub.add_parser("from-archive",
                         help="re-pack a .dpza archive as a chunked "
                              "store")
    sa.add_argument("input", help="archive file (.dpza)")
    sa.add_argument("output", help="store file (.dpzs) or directory")
    _backend_arg(sa)
    sa.add_argument("--chunk", nargs="+", default=None,
                    help="chunk shape for every field (ints or 'auto')")
    sa.add_argument("--jobs", type=int, default=0,
                    help="parallel workers (0 = all cores)")

    ssub.add_parser("codecs",
                    help="list the registered codec ids")

    pv = sub.add_parser("serve",
                        help="serve store regions over HTTP "
                             "(request coalescing + backpressure; "
                             "wire protocol in FORMATS.md)")
    pv.add_argument("stores", nargs="+", metavar="SPEC",
                    help="store path or ALIAS=PATH "
                         "(e.g. snap.dpzs hot=run42.dpzs)")
    pv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default 127.0.0.1)")
    pv.add_argument("--port", type=int, default=8742,
                    help="TCP port (0 = ephemeral; default 8742)")
    pv.add_argument("--unix-socket", default=None, metavar="PATH",
                    help="listen on a unix-domain socket instead of "
                         "TCP")
    pv.add_argument("--workers", type=int, default=4,
                    help="decode worker threads (default 4)")
    pv.add_argument("--max-queue", type=int, default=None,
                    help="queued+running decode cap before shedding "
                         "503s (default: workers * 8)")
    pv.add_argument("--cache-bytes", type=int, default=None,
                    help="decoded-chunk cache budget, split across "
                         "stores (default 64 MiB)")

    pn = sub.add_parser("lint",
                        help="run the repo-native static-analysis pass")
    pn.add_argument("paths", nargs="+",
                    help="files or directories to lint")
    pn.add_argument("--format", choices=("human", "json", "json-v1"),
                    default="human",
                    help="output format (json-v1 = frozen version-1 "
                         "schema for legacy report readers)")
    pn.add_argument("--select", default=None,
                    help="comma-separated rule ids to run "
                         "(default: all)")
    pn.add_argument("--out", default=None,
                    help="also write the report to this file")
    return ap


def _load(args) -> np.ndarray:
    shape = tuple(args.shape) if args.shape else None
    return load_field(args.input, shape)


def _cmd_compress(args) -> int:
    data = _load(args)
    cfg = scheme_config(args.scheme, tve_nines=args.nines, knee=args.knee,
                        knee_fit=args.knee_fit, use_sampling=args.sampling)
    comp = DPZCompressor(cfg)
    blob, stats = comp.compress_with_stats(data)
    with open(args.output, "wb") as fh:
        fh.write(blob)
    cr = compression_ratio(data.nbytes, len(blob))
    print(f"compressed {data.nbytes} -> {len(blob)} bytes "
          f"(CR {cr:.2f}x, k={stats.k}/{stats.m_blocks}, "
          f"TVE@k={stats.tve_at_k:.8f})")
    if args.stats:
        for stage, secs in stats.times.items():
            print(f"  {stage:<10s} {secs*1e3:9.2f} ms")
        print(f"  stage1&2 CR {stats.cr_stage12:.3f}  "
              f"stage3 CR {stats.cr_stage3:.3f}  "
              f"zlib CR {stats.cr_zlib:.3f}")
    return 0


def _cmd_decompress(args) -> int:
    with open(args.input, "rb") as fh:
        blob = fh.read()
    data = dpz_decompress(blob)
    save_field(args.output, data)
    print(f"decompressed to {args.output}: shape {data.shape}, "
          f"dtype {data.dtype}")
    return 0


def _cmd_probe(args) -> int:
    data = _load(args)
    report = dpz_probe(data, args.scheme, tve_nines=args.nines)
    print(f"estimated k:        {report.k_estimate} "
          f"(subsets: {list(report.subset_ks)})")
    print(f"VIF mean/median:    {report.vif_mean:.2f} / "
          f"{report.vif_median:.2f}")
    print(f"low linearity:      {report.low_linearity} "
          f"(cutoff 5.0 -> {'standardize' if report.low_linearity else 'no scaling'})")
    print(f"preliminary CR:     {report.cr_low:.2f}x .. {report.cr_high:.2f}x")
    return 0


def _cmd_info(args) -> int:
    with open(args.input, "rb") as fh:
        blob = fh.read()
    a = deserialize(blob)
    print(f"shape:        {a.shape}  dtype {a.dtype_tag}")
    print(f"blocks:       M={a.m_blocks} x N={a.n_points}")
    print(f"components:   k={a.k}  (ratio {a.k / a.m_blocks:.4f})")
    print(f"quantizer:    P={a.p:g}, {a.n_bins} bins, "
          f"{a.index_bytes}-byte indices")
    print(f"outliers:     {a.outliers.size} "
          f"({100.0 * a.outliers.size / max(a.indices.size, 1):.2f}% of scores)")
    print(f"standardized: {a.standardized}")
    print(f"container:    {len(blob)} bytes "
          f"(CR {int(np.prod(a.shape)) * (4 if a.dtype_tag == 'f4' else 8) / len(blob):.2f}x)")
    return 0


def _cmd_datasets(_args) -> int:
    print(f"{'name':10s} {'source':16s} {'dims':>6s} {'small':>16s} "
          f"{'full':>16s}  description")
    for name in all_dataset_names():
        spec = get_spec(name)
        print(f"{spec.name:10s} {spec.source:16s} {spec.ndim:>5d}D "
              f"{str(spec.small_shape):>16s} {str(spec.full_shape):>16s}  "
              f"{spec.description}")
    return 0


#: Artifact name -> experiment module (lazy import targets).
_ARTIFACTS = {
    "table1": "table1", "table2": "table2", "table3": "table3",
    "table4": "table4", "fig1": "fig1", "fig2": "fig2", "fig3": "fig3",
    "fig4": "fig4", "fig6": "fig6", "fig7": "fig7", "fig8": "fig8",
    "fig9": "fig9", "fig10": "fig10", "sampling": "sampling_eval",
}


def _run_artifact(artifact: str, size: str) -> None:
    import importlib

    mod = importlib.import_module(
        f"repro.experiments.{_ARTIFACTS[artifact]}"
    )
    if artifact == "fig6":
        result = mod.run_all(size=size)
    else:
        result = mod.run(size=size)
    print(mod.format_report(result))


def _cmd_bench(args) -> int:
    artifacts = (sorted(_ARTIFACTS) if args.artifact == "all"
                 else [args.artifact])
    for i, artifact in enumerate(artifacts):
        if i:
            print()
        _run_artifact(artifact, args.size)
    return 0


class _CLIError(Exception):
    """User-facing CLI failure: printed as one line, exit code 2."""


def _load_trace_input(args) -> tuple[str, np.ndarray]:
    """Resolve the trace input: registry name first, then file path."""
    try:
        get_spec(args.input)
    except ConfigError:
        shape = tuple(args.shape) if args.shape else None
        try:
            return args.input, load_field(args.input, shape)
        except FileNotFoundError:
            raise _CLIError(
                f"{args.input!r} is neither a built-in dataset (see "
                f"'dpz datasets') nor an existing file") from None
        except (ValueError, OSError) as exc:
            raise _CLIError(f"cannot load {args.input!r}: {exc}") from None
    from repro.datasets.registry import get_dataset
    return args.input, get_dataset(args.input, args.size)


def _cmd_trace(args) -> int:
    from repro.observability import (
        Tracer,
        append_record,
        build_record,
        counters_reset,
        metrics_reset,
        metrics_snapshot,
        trace_diff,
        use_quality,
        use_tracer,
        write_flamegraph,
        write_ndjson,
    )

    if args.diff:
        print(trace_diff(args.diff[0], args.diff[1]))
        return 0
    if args.input is None:
        raise _CLIError("trace needs a dataset/file argument "
                        "(or --diff A.ndjson B.ndjson)")

    import time as _time

    name, data = _load_trace_input(args)
    cfg = scheme_config(args.scheme, tve_nines=args.nines)
    comp = DPZCompressor(cfg)
    counters_reset()
    metrics_reset()
    tracer = Tracer()
    profiler = None
    if args.profile:
        from repro.observability import SamplingProfiler

        profiler = SamplingProfiler(
            tracer, interval=args.profile_interval).start()
    t0 = _time.perf_counter()
    try:
        with use_tracer(tracer), use_quality():
            blob, stats = comp.compress_with_stats(data)
            recon = DPZCompressor.decompress(blob)
    finally:
        if profiler is not None:
            profiler.stop()
    wall_s = _time.perf_counter() - t0
    snapshot = metrics_snapshot()
    meta = {
        "dataset": name, "shape": list(data.shape),
        "dtype": str(data.dtype), "scheme": args.scheme,
        "original_nbytes": int(data.nbytes),
        "compressed_nbytes": len(blob), "cr": round(stats.cr, 4),
        "k": stats.k, "m_blocks": stats.m_blocks,
    }
    if args.out:
        n_spans = write_ndjson(tracer, args.out, meta=meta)
        print(f"{name}: {n_spans} spans -> {args.out} "
              f"(CR {stats.cr:.2f}x, k={stats.k}/{stats.m_blocks})")
        total = sum(tracer.stage_times("dpz.").values())
        for stage, share in tracer.stage_shares("dpz.").items():
            secs = tracer.stage_times("dpz.")[stage]
            print(f"  {stage:<22s} {secs*1e3:9.2f} ms  {share:6.1%}")
        print(f"  {'total':<22s} {total*1e3:9.2f} ms")
    else:
        write_ndjson(tracer, sys.stdout, meta=meta)
    if args.flamegraph:
        n_roots = write_flamegraph(tracer, args.flamegraph,
                                   title=f"dpz trace: {name}")
        print(f"flamegraph ({n_roots} root frames) -> {args.flamegraph}")
    if profiler is not None:
        profiler.write_flamegraph(args.profile,
                                  title=f"dpz profile: {name}")
        print(f"profile ({profiler.total_samples} samples @ "
              f"{profiler.interval * 1e3:g}ms) -> {args.profile}")
    if not args.no_runlog:
        quality = {
            g[len("quality."):]: v for g, v in snapshot["gauges"].items()
            if g.startswith("quality.")
        }
        record = build_record(
            dataset=name, shape=data.shape, dtype=str(data.dtype),
            config=cfg, cr=stats.cr, compressed_nbytes=len(blob),
            original_nbytes=int(data.nbytes), wall_s=wall_s,
            tracer=tracer, k=stats.k, m_blocks=stats.m_blocks,
            quality=quality or None, metrics=snapshot,
            extra={"scheme": args.scheme},
        )
        path = append_record(record, args.runlog)
        # Keep stdout pure NDJSON when the trace itself went there.
        print(f"run {record['run_id']} -> {path}",
              file=sys.stdout if args.out else sys.stderr)
    # Tracing must not perturb the archive: quick shape sanity check.
    assert recon.shape == data.shape
    return 0


def _cmd_top(args) -> int:
    import json as _json
    import time as _time
    import urllib.error
    import urllib.request

    from repro.observability import metrics_snapshot
    from repro.observability.top import Dashboard

    server = None
    if args.listen is not None:
        from repro.observability.server import start_server

        server = start_server(args.listen)
        print(f"serving telemetry on {server.url}", file=sys.stderr)

    def fetch() -> dict:
        if args.url:
            url = args.url.rstrip("/") + "/metrics.json"
            try:
                with urllib.request.urlopen(url, timeout=5) as resp:
                    return _json.loads(resp.read())
            except (urllib.error.URLError, OSError, ValueError) as exc:
                reason = getattr(exc, "reason", exc)
                raise _CLIError(f"cannot fetch {url}: {reason}") from None
        return metrics_snapshot()

    dash = Dashboard()
    frames = 1 if args.once else args.iterations
    try:
        while True:
            rendered = dash.update(fetch())
            if not args.once:
                # Home + clear-to-end repaint: flicker-free in any
                # terminal, no curses dependency.
                sys.stdout.write("\x1b[H\x1b[J")
            sys.stdout.write(rendered)
            sys.stdout.flush()
            if frames is not None and dash.frames >= frames:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        if server is not None:
            server.close()


def _cmd_runs(args) -> int:
    import json as _json

    from repro.observability import (
        diff_runs,
        find_run,
        format_run_table,
        load_runs,
    )
    from repro.observability.runlog import resolve_runlog

    path = resolve_runlog(args.file)
    try:
        runs = load_runs(path)
    except FileNotFoundError:
        raise _CLIError(f"no run registry at {path!r} "
                        f"(run 'dpz trace DATASET --out t.ndjson' "
                        f"first)") from None
    if args.action == "list":
        if not runs:
            print(f"{path}: no runs recorded")
            return 0
        print(format_run_table(runs))
        return 0
    try:
        if args.action == "show":
            if len(args.keys) != 1:
                raise _CLIError("'runs show' takes exactly one run "
                                "selector (index or run_id prefix)")
            print(_json.dumps(find_run(runs, args.keys[0]), indent=2,
                              sort_keys=True))
            return 0
        if len(args.keys) != 2:
            raise _CLIError("'runs diff' takes exactly two run "
                            "selectors (index or run_id prefix)")
        print(diff_runs(find_run(runs, args.keys[0]),
                        find_run(runs, args.keys[1])))
        return 0
    except KeyError as exc:
        raise _CLIError(str(exc.args[0]) if exc.args else str(exc)) \
            from None


def _cmd_pack(args) -> int:
    from repro.archive import FieldArchive

    kw: dict = {}
    if args.codec == "dpz":
        kw["scheme"] = args.scheme
        if args.nines is not None:
            kw["tve_nines"] = args.nines
    elif args.codec in ("sz", "mgard"):
        kw["rel_eps"] = args.rel_eps
    elif args.codec == "zfp":
        kw["rate"] = args.rate
    archive = FieldArchive()
    for spec in args.fields:
        if "=" not in spec:
            raise SystemExit(f"field spec must be NAME=FILE, got {spec!r}")
        name, path = spec.split("=", 1)
        archive.add(name, load_field(path), codec=args.codec, **kw)
    archive.save(args.output)
    print(f"packed {len(archive.names())} fields "
          f"(total CR {archive.total_cr():.2f}x) -> {args.output}")
    return 0


def _cmd_unpack(args) -> int:
    from repro.archive import FieldArchive

    archive = FieldArchive.load(args.input)
    data = archive.get(args.name)
    save_field(args.output, data)
    print(f"extracted {args.name}: shape {data.shape}, dtype {data.dtype}")
    return 0


def _cmd_list(args) -> int:
    from repro.archive import FieldArchive

    archive = FieldArchive.load(args.input)
    print(f"{'field':16s} {'codec':8s} {'original':>12s} "
          f"{'compressed':>12s} {'CR':>8s}")
    for name in archive.names():
        info = archive.info(name)
        print(f"{info['name']:16s} {info['codec']:8s} "
              f"{info['original_nbytes']:>12d} "
              f"{info['compressed_nbytes']:>12d} {info['cr']:>8.2f}")
    print(f"total CR {archive.total_cr():.2f}x")
    return 0


def _parse_region_spec(spec: str) -> tuple:
    """Parse ``"0:16,8:24,3"`` into a tuple of slices and ints."""
    sels: list = []
    for part in spec.split(","):
        part = part.strip()
        if ":" in part:
            lo, _, hi = part.partition(":")
            try:
                sels.append(slice(int(lo) if lo else None,
                                  int(hi) if hi else None))
            except ValueError:
                raise _CLIError(
                    f"bad region selector {part!r} (want START:STOP "
                    f"or an integer index)") from None
        elif part:
            try:
                sels.append(int(part))
            except ValueError:
                raise _CLIError(
                    f"bad region selector {part!r} (want START:STOP "
                    f"or an integer index)") from None
        else:
            raise _CLIError(f"empty selector in region spec {spec!r}")
    return tuple(sels)


def _store_pack_kwargs(args) -> dict:
    kw: dict = {}
    if args.codec == "auto":
        kw["error_budget"] = args.budget
    elif args.codec == "dpz":
        kw["scheme"] = args.scheme
        if args.nines is not None:
            kw["tve_nines"] = args.nines
    elif args.codec in ("sz", "mgard"):
        kw["rel_eps"] = args.rel_eps
    elif args.codec == "zfp":
        kw["rate"] = args.rate
    return kw


def _parse_chunk(values):
    """``--chunk`` values -> ``Store.add`` chunk_shape argument."""
    if not values:
        return None
    if values == ["auto"]:
        return "auto"
    try:
        return tuple(int(v) for v in values)
    except ValueError:
        raise _CLIError(
            "--chunk takes integers or the single word 'auto', "
            f"got {values!r}") from None


def _cmd_store(args) -> int:
    from repro.store import Store

    if args.store_command == "codecs":
        from repro.codecs.registry import codec_ids, get_codec

        print(f"{'codec':14s} {'kind':10s} source")
        for name in codec_ids():
            spec = get_codec(name)
            print(f"{spec.name:14s} {spec.kind:10s} {spec.source}")
        return 0

    if args.store_command == "pack":
        chunk = _parse_chunk(args.chunk)
        kw = _store_pack_kwargs(args)
        store = Store.create(args.output, backend=args.backend)
        for spec in args.fields:
            if "=" not in spec:
                raise _CLIError(
                    f"field spec must be NAME=FILE, got {spec!r}")
            name, path = spec.split("=", 1)
            store.add(name, load_field(path), codec=args.codec,
                      chunk_shape=chunk, n_jobs=args.jobs, **kw)
        print(f"packed {len(store.names())} fields "
              f"(total CR {store.total_cr():.2f}x) -> {args.output}")
        return 0

    if args.store_command == "from-archive":
        from repro.archive import FieldArchive

        chunk = _parse_chunk(args.chunk)
        store = Store.from_archive(FieldArchive.load(args.input),
                                   args.output, backend=args.backend,
                                   chunk_shape=chunk,
                                   n_jobs=args.jobs)
        print(f"re-packed {len(store.names())} fields "
              f"(total CR {store.total_cr():.2f}x) -> {args.output}")
        return 0

    store = Store.open(args.input, backend=args.backend)
    if args.store_command == "list":
        print(f"{'field':16s} {'codec':8s} {'shape':>16s} "
              f"{'chunks':>14s} {'compressed':>12s} {'CR':>8s}")
        for name in store.names():
            info = store.info(name)
            chunks = "x".join(str(c) for c in info["chunk_shape"])
            print(f"{info['name']:16s} {info['codec']:8s} "
                  f"{str(info['shape']):>16s} "
                  f"{info['n_chunks']:>6d}@{chunks:<7s} "
                  f"{info['compressed_nbytes']:>12d} "
                  f"{info['cr']:>8.2f}")
        print(f"total CR {store.total_cr():.2f}x")
        return 0
    if args.store_command == "get":
        data = store.get(args.name)
        save_field(args.output, data)
        print(f"extracted {args.name}: shape {data.shape}, "
              f"dtype {data.dtype}")
        return 0
    # region
    region = _parse_region_spec(args.region)
    data = store.get_region(args.name, region)
    save_field(args.output, data)
    print(f"extracted {args.name}[{args.region}]: shape {data.shape}, "
          f"dtype {data.dtype}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.serve import ServeApp, StoreRegistry
    from repro.store.cache import DEFAULT_CACHE_BYTES

    cache_bytes = (DEFAULT_CACHE_BYTES if args.cache_bytes is None
                   else args.cache_bytes)
    registry = StoreRegistry(args.stores, cache_bytes=cache_bytes)
    app = ServeApp(registry, host=args.host, port=args.port,
                   unix_socket=args.unix_socket, workers=args.workers,
                   max_queue=args.max_queue)
    print(f"serving {registry.aliases()} on {app.url} "
          f"({app.workers} workers, queue cap {app.max_queue})",
          file=sys.stderr)

    async def _run() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platform without signal support; ^C still works
        await app.run(stop)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    print("serve: drained and shut down", file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    from repro.devtools.lint import (
        lint_paths,
        resolve_selection,
        to_json,
        to_json_v1,
        to_text,
    )

    rules = resolve_selection(args.select)
    report = lint_paths(args.paths, rules)
    renderers = {"json": to_json, "json-v1": to_json_v1, "human": to_text}
    rendered = renderers[args.format](report, rules)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
    print(rendered)
    return 1 if report.findings else 0


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "probe": _cmd_probe,
    "info": _cmd_info,
    "datasets": _cmd_datasets,
    "bench": _cmd_bench,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "runs": _cmd_runs,
    "pack": _cmd_pack,
    "unpack": _cmd_unpack,
    "list": _cmd_list,
    "store": _cmd_store,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Anticipated failures (bad input path, malformed container, unknown
    run id) print one line to stderr and exit 2 -- no traceback.

    ``DPZ_METRICS_PORT=<port>`` serves live ``/metrics`` / ``/healthz``
    / ``/runs`` for the duration of any command (and installs a tracer
    so the metrics actually flow), letting ``dpz top --url`` or a
    Prometheus scrape watch e.g. a long ``dpz store pack`` from
    another terminal.  ``dpz top`` itself is exempt: it has its own
    ``--listen`` flag and must not steal the port it wants to poll.
    """
    import os as _os

    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    server = None
    prev_tracer = _UNSET = object()
    try:
        if (_os.environ.get("DPZ_METRICS_PORT")
                and args.command != "top"):
            from repro.observability import Tracer, get_tracer, set_tracer
            from repro.observability.server import maybe_start_from_env

            server = maybe_start_from_env()
            if server is not None:
                print(f"serving telemetry on {server.url}",
                      file=sys.stderr)
                if get_tracer() is None:
                    prev_tracer = set_tracer(Tracer())
        return _COMMANDS[args.command](args)
    except (_CLIError, ReproError) as exc:
        print(f"dpz {args.command}: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if prev_tracer is not _UNSET:
            from repro.observability import set_tracer

            set_tracer(prev_tracer)
        if server is not None:
            server.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
