"""Entropy-coding and bit-level codec substrate.

This subpackage implements, from scratch, every low-level codec the DPZ
pipeline and the SZ/ZFP baselines need:

* :mod:`repro.codecs.bitio` -- MSB-first bit writer/reader over bytes.
* :mod:`repro.codecs.varint` -- LEB128 varints and zigzag signed mapping.
* :mod:`repro.codecs.negabinary` -- base(-2) integer mapping used by the
  ZFP-style coder.
* :mod:`repro.codecs.rle` -- run-length coding for sparse symbol planes.
* :mod:`repro.codecs.huffman` -- canonical Huffman coding with a
  serializable code table (vectorized encode/decode).
* :mod:`repro.codecs.zlibc` -- thin, framed wrapper around stdlib zlib.

All codecs are lossless and round-trip exactly; the property-based test
suite (:mod:`tests.codecs`) enforces this on adversarial inputs.
"""

from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.huffman import (
    HuffmanTable,
    huffman_decode,
    huffman_encode,
)
from repro.codecs.negabinary import int_to_negabinary, negabinary_to_int
from repro.codecs.rle import rle_decode, rle_encode
from repro.codecs.varint import (
    decode_uvarint,
    encode_uvarint,
    zigzag_decode,
    zigzag_encode,
)
from repro.codecs.zlibc import zlib_compress, zlib_decompress

__all__ = [
    "BitReader",
    "BitWriter",
    "HuffmanTable",
    "huffman_encode",
    "huffman_decode",
    "int_to_negabinary",
    "negabinary_to_int",
    "rle_encode",
    "rle_decode",
    "encode_uvarint",
    "decode_uvarint",
    "zigzag_encode",
    "zigzag_decode",
    "zlib_compress",
    "zlib_decompress",
]
