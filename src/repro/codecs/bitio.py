"""MSB-first bit-level I/O over byte buffers.

The ZFP-style coder and the Huffman codec both need to emit and consume
streams whose symbols are not byte aligned.  :class:`BitWriter` and
:class:`BitReader` provide that, with two performance-minded paths:

* scalar ``write``/``read`` of up to 64 bits at a time, and
* vectorized ``write_bits_array``/``read_bits_array`` that move whole
  NumPy arrays of fixed-width fields through the stream in one shot
  (used for bit-plane coding, where a plane is one bit per value).

Bit order is MSB-first within each byte: the first bit written becomes
the highest bit of the first byte.  This matches the conventional
"network" bit order and makes the streams easy to inspect in hex dumps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

__all__ = ["BitWriter", "BitReader"]

_BYTE_WEIGHTS = (1 << np.arange(7, -1, -1)).astype(np.uint8)


class BitWriter:
    """Accumulates bits MSB-first and renders them as :class:`bytes`.

    The writer buffers whole bits in a growable ``uint8`` array holding
    one bit per element (simple and fast to extend with NumPy), and
    packs to bytes only once in :meth:`getvalue`.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write(0b101, 3)
    >>> w.write(0b1, 1)
    >>> w.getvalue()
    b'\\xb0'
    """

    __slots__ = ("_chunks", "_nbits")

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._nbits = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._nbits

    def write(self, value: int, nbits: int) -> None:
        """Append the ``nbits`` low-order bits of ``value``, MSB first.

        ``value`` must be a non-negative integer that fits in ``nbits``
        bits; ``nbits`` may be 0 (a no-op).
        """
        if nbits < 0:
            raise CodecError(f"negative bit count: {nbits}")
        if nbits == 0:
            return
        value = int(value)
        if value < 0 or (nbits < 64 and value >> nbits):
            raise CodecError(f"value {value} does not fit in {nbits} bits")
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        bits = ((value >> shifts) & 1).astype(np.uint8)
        self._chunks.append(bits)
        self._nbits += nbits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self.write(bit & 1, 1)

    def write_bits_array(self, values: np.ndarray, nbits: int) -> None:
        """Append every element of ``values`` as an ``nbits``-wide field.

        Vectorized: the whole array is expanded to a bit matrix at once.
        ``values`` must be an unsigned (or non-negative) integer array.
        """
        values = np.ascontiguousarray(values).astype(np.uint64, copy=False)
        if nbits == 0 or values.size == 0:
            return
        if nbits < 64 and np.any(values >> np.uint64(nbits)):
            raise CodecError(f"some values do not fit in {nbits} bits")
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        bits = ((values.reshape(-1, 1) >> shifts) & np.uint64(1)).astype(np.uint8)
        self._chunks.append(bits.reshape(-1))
        self._nbits += nbits * values.size

    def write_bitplane(self, plane: np.ndarray) -> None:
        """Append a raw 0/1 plane (one bit per element, in array order)."""
        plane = np.ascontiguousarray(plane, dtype=np.uint8).reshape(-1)
        self._chunks.append(plane & 1)
        self._nbits += plane.size

    def getvalue(self) -> bytes:
        """Pack all written bits into bytes (zero-padded at the tail)."""
        if not self._chunks:
            return b""
        bits = np.concatenate(self._chunks)
        return np.packbits(bits).tobytes()


class BitReader:
    """Reads bits MSB-first from a byte buffer produced by :class:`BitWriter`.

    Raises :class:`~repro.errors.CodecError` on attempts to read past
    the end of the buffer.
    """

    __slots__ = ("_bits", "_pos")

    def __init__(self, data: bytes | bytearray | memoryview | np.ndarray) -> None:
        buf = np.frombuffer(bytes(data), dtype=np.uint8)
        self._bits = np.unpackbits(buf)
        self._pos = 0

    def __len__(self) -> int:
        """Total number of bits in the underlying buffer."""
        return int(self._bits.size)

    @property
    def position(self) -> int:
        """Current read offset in bits."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return int(self._bits.size) - self._pos

    def _take(self, nbits: int) -> np.ndarray:
        if nbits < 0:
            raise CodecError(f"negative bit count: {nbits}")
        end = self._pos + nbits
        if end > self._bits.size:
            raise CodecError(
                f"bitstream underrun: need {nbits} bits at offset "
                f"{self._pos}, only {self.remaining} remain"
            )
        out = self._bits[self._pos : end]
        self._pos = end
        return out

    def read(self, nbits: int) -> int:
        """Read ``nbits`` bits and return them as an unsigned integer."""
        if nbits == 0:
            return 0
        bits = self._take(nbits).astype(np.uint64)
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        return int((bits << shifts).sum())

    def read_bit(self) -> int:
        """Read a single bit."""
        return int(self._take(1)[0])

    def read_bits_array(self, count: int, nbits: int) -> np.ndarray:
        """Read ``count`` consecutive ``nbits``-wide fields as ``uint64``.

        Inverse of :meth:`BitWriter.write_bits_array`.
        """
        if count == 0 or nbits == 0:
            return np.zeros(count, dtype=np.uint64)
        bits = self._take(count * nbits).astype(np.uint64).reshape(count, nbits)
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        return (bits << shifts).sum(axis=1)

    def read_bitplane(self, count: int) -> np.ndarray:
        """Read ``count`` raw bits as a ``uint8`` 0/1 array."""
        return self._take(count).copy()

    def align_to_byte(self) -> None:
        """Skip forward to the next byte boundary (at most 7 bits)."""
        rem = self._pos % 8
        if rem:
            self._take(8 - rem)
