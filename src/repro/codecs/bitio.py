"""MSB-first bit-level I/O over byte buffers.

The ZFP-style coder and the Huffman codec both need to emit and consume
streams whose symbols are not byte aligned.  :class:`BitWriter` and
:class:`BitReader` provide that, with two performance-minded paths:

* scalar ``write``/``read`` of up to 64 bits at a time, and
* vectorized ``write_bits_array``/``read_bits_array`` that move whole
  NumPy arrays of fixed-width fields through the stream in one shot
  (used for bit-plane coding, where a plane is one bit per value).

Bit order is MSB-first within each byte: the first bit written becomes
the highest bit of the first byte.  This matches the conventional
"network" bit order and makes the streams easy to inspect in hex dumps.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.errors import CodecError

__all__ = ["BitWriter", "BitReader"]

_BYTE_WEIGHTS = (1 << np.arange(7, -1, -1)).astype(np.uint8)


class BitWriter:
    """Accumulates bits MSB-first and renders them as :class:`bytes`.

    Scalar writes pack straight into a Python-int accumulator and flush
    whole bytes into a :class:`bytearray` -- no per-call array
    allocation on the hot path (the ZFP-style coder calls
    :meth:`write` per value).  Vectorized writes expand to a bit array
    once and pack with ``np.packbits``, threading the sub-byte
    remainder through the same accumulator so scalar and array writes
    interleave freely.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write(0b101, 3)
    >>> w.write(0b1, 1)
    >>> w.getvalue()
    b'\\xb0'
    """

    __slots__ = ("_buf", "_acc", "_accbits", "_nbits")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._acc = 0        # pending sub-byte bits, MSB-aligned low
        self._accbits = 0    # number of pending bits, always < 8
        self._nbits = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._nbits

    def write(self, value: int, nbits: int) -> None:
        """Append the ``nbits`` low-order bits of ``value``, MSB first.

        ``value`` must be a non-negative integer that fits in ``nbits``
        bits; ``nbits`` may be 0 (a no-op).
        """
        if nbits < 0:
            raise CodecError(f"negative bit count: {nbits}")
        if nbits == 0:
            return
        value = int(value)
        if value < 0 or (nbits < 64 and value >> nbits):
            raise CodecError(f"value {value} does not fit in {nbits} bits")
        if nbits >= 64:
            value &= (1 << nbits) - 1
        acc = (self._acc << nbits) | value
        total = self._accbits + nbits
        rem = total & 7
        if total >= 8:
            self._buf += (acc >> rem).to_bytes(total >> 3, "big")
            acc &= (1 << rem) - 1
        self._acc = acc
        self._accbits = rem
        self._nbits += nbits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self.write(bit & 1, 1)

    def _append_bit_array(self, bits: NDArray[np.uint8]) -> None:
        """Append a 0/1 ``uint8`` array, honoring pending sub-byte bits."""
        nb = int(bits.size)
        if nb == 0:
            return
        a = self._accbits
        total = a + nb
        nfull = total >> 3
        rem = total & 7
        if nfull:
            head = np.empty(nfull * 8, dtype=np.uint8)
            acc = self._acc
            for i in range(a):
                head[i] = (acc >> (a - 1 - i)) & 1
            head[a:] = bits[: nfull * 8 - a]
            self._buf += np.packbits(head).tobytes()
            acc = 0
            for b in bits[nfull * 8 - a :].tolist():
                acc = (acc << 1) | b
            self._acc = acc
        else:
            acc = self._acc
            for b in bits.tolist():
                acc = (acc << 1) | b
            self._acc = acc
        self._accbits = rem
        self._nbits += nb

    def write_bits_array(self, values: NDArray[Any], nbits: int) -> None:
        """Append every element of ``values`` as an ``nbits``-wide field.

        Vectorized: the whole array is expanded to a bit matrix at once.
        ``values`` must be an unsigned (or non-negative) integer array.
        """
        values = np.ascontiguousarray(values).astype(np.uint64, copy=False)
        if nbits == 0 or values.size == 0:
            return
        if nbits < 64 and np.any(values >> np.uint64(nbits)):
            raise CodecError(f"some values do not fit in {nbits} bits")
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        bits = ((values.reshape(-1, 1) >> shifts) & np.uint64(1)).astype(np.uint8)
        self._append_bit_array(bits.reshape(-1))

    def write_bitplane(self, plane: NDArray[Any]) -> None:
        """Append a raw 0/1 plane (one bit per element, in array order)."""
        plane = np.ascontiguousarray(plane, dtype=np.uint8).reshape(-1)
        self._append_bit_array(plane & 1)

    def getvalue(self) -> bytes:
        """Pack all written bits into bytes (zero-padded at the tail).

        Non-destructive: the writer can keep appending afterwards.
        """
        if self._accbits:
            tail = (self._acc << (8 - self._accbits)) & 0xFF
            return bytes(self._buf) + bytes((tail,))
        return bytes(self._buf)


class BitReader:
    """Reads bits MSB-first from a byte buffer produced by :class:`BitWriter`.

    Raises :class:`~repro.errors.CodecError` on attempts to read past
    the end of the buffer.
    """

    __slots__ = ("_bits", "_pos")

    def __init__(self,
                 data: bytes | bytearray | memoryview | NDArray[Any]) -> None:
        raw = data.tobytes() if isinstance(data, np.ndarray) else bytes(data)
        buf = np.frombuffer(raw, dtype=np.uint8)
        self._bits = np.unpackbits(buf)
        self._pos = 0

    def __len__(self) -> int:
        """Total number of bits in the underlying buffer."""
        return int(self._bits.size)

    @property
    def position(self) -> int:
        """Current read offset in bits."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return int(self._bits.size) - self._pos

    def _take(self, nbits: int) -> NDArray[np.uint8]:
        if nbits < 0:
            raise CodecError(f"negative bit count: {nbits}")
        end = self._pos + nbits
        if end > self._bits.size:
            raise CodecError(
                f"bitstream underrun: need {nbits} bits at offset "
                f"{self._pos}, only {self.remaining} remain"
            )
        out = self._bits[self._pos : end]
        self._pos = end
        return out

    def read(self, nbits: int) -> int:
        """Read ``nbits`` bits and return them as an unsigned integer."""
        if nbits == 0:
            return 0
        bits = self._take(nbits).astype(np.uint64)
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        return int((bits << shifts).sum())

    def read_bit(self) -> int:
        """Read a single bit."""
        return int(self._take(1)[0])

    def read_bits_array(self, count: int, nbits: int) -> NDArray[np.uint64]:
        """Read ``count`` consecutive ``nbits``-wide fields as ``uint64``.

        Inverse of :meth:`BitWriter.write_bits_array`.
        """
        if count == 0 or nbits == 0:
            return np.zeros(count, dtype=np.uint64)
        bits = self._take(count * nbits).astype(np.uint64).reshape(count, nbits)
        shifts = np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        out: NDArray[np.uint64] = (bits << shifts).sum(axis=1,
                                                       dtype=np.uint64)
        return out

    def read_bitplane(self, count: int) -> NDArray[np.uint8]:
        """Read ``count`` raw bits as a ``uint8`` 0/1 array."""
        return self._take(count).copy()

    def align_to_byte(self) -> None:
        """Skip forward to the next byte boundary (at most 7 bits)."""
        rem = self._pos % 8
        if rem:
            self._take(8 - rem)
