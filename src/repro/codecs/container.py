"""Generic positional-section container format.

Every serialized artifact in this project (DPZ, SZ-style, ZFP-style
containers) shares one trivial frame: ``magic || uvarint(version) ||
uvarint(n_sections) || (uvarint(len) || bytes)*``.  Sections are opaque
byte strings whose meaning is positional and defined by each format
module.  Keeping the frame shared means one set of corruption checks
(magic, version, truncation) protects every format.
"""

from __future__ import annotations

from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.errors import CodecError, FormatError

__all__ = ["pack_sections", "unpack_sections"]


def pack_sections(magic: bytes, version: int,
                  sections: list[bytes]) -> bytes:
    """Serialize sections behind a magic/version header."""
    out = bytearray(magic)
    out += encode_uvarint(version)
    out += encode_uvarint(len(sections))
    for sec in sections:
        out += encode_uvarint(len(sec))
        out += sec
    return bytes(out)


def unpack_sections(data: bytes, magic: bytes,
                    expect_version: int) -> list[bytes]:
    """Parse :func:`pack_sections` output, validating magic and version.

    Every malformation -- bad magic, wrong version, a section count or
    section length that cannot fit in the remaining buffer, a varint
    truncated mid-byte -- raises :class:`~repro.errors.FormatError`
    naming the offending section index, *before* any oversized
    allocation or out-of-bounds slice can happen.  Length fields are
    additionally capped at the buffer size, so a forged multi-terabyte
    uvarint fails the same way a short one does.
    """
    if data[: len(magic)] != magic:
        raise FormatError(
            f"bad magic: expected {magic!r}, got {data[:len(magic)]!r}"
        )
    try:
        version, pos = decode_uvarint(data, len(magic))
        if version != expect_version:
            raise FormatError(
                f"unsupported version {version} (want {expect_version})"
            )
        n, pos = decode_uvarint(data, pos)
        # Each section costs at least one length byte, so a count
        # exceeding the remaining bytes is corrupt regardless of the
        # individual lengths -- reject before looping n times.
        if n > len(data) - pos:
            raise FormatError(
                f"section count {n} exceeds remaining buffer "
                f"({len(data) - pos} bytes)"
            )
        sections: list[bytes] = []
        for i in range(n):
            ln, pos = decode_uvarint(data, pos)
            if ln > len(data) - pos:
                raise FormatError(
                    f"section {i} length {ln} overruns buffer "
                    f"({len(data) - pos} bytes remain)"
                )
            sections.append(data[pos : pos + ln])
            pos += ln
    except CodecError as exc:
        raise FormatError(f"corrupt section frame: {exc}") from exc
    return sections
