"""Generic positional-section container format.

Every serialized artifact in this project (DPZ, SZ-style, ZFP-style
containers) shares one trivial frame: ``magic || uvarint(version) ||
uvarint(n_sections) || (uvarint(len) || bytes)*``.  Sections are opaque
byte strings whose meaning is positional and defined by each format
module.  Keeping the frame shared means one set of corruption checks
(magic, version, truncation) protects every format.
"""

from __future__ import annotations

from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.errors import FormatError

__all__ = ["pack_sections", "unpack_sections"]


def pack_sections(magic: bytes, version: int,
                  sections: list[bytes]) -> bytes:
    """Serialize sections behind a magic/version header."""
    out = bytearray(magic)
    out += encode_uvarint(version)
    out += encode_uvarint(len(sections))
    for sec in sections:
        out += encode_uvarint(len(sec))
        out += sec
    return bytes(out)


def unpack_sections(data: bytes, magic: bytes,
                    expect_version: int) -> list[bytes]:
    """Parse :func:`pack_sections` output, validating magic and version."""
    if data[: len(magic)] != magic:
        raise FormatError(
            f"bad magic: expected {magic!r}, got {data[:len(magic)]!r}"
        )
    version, pos = decode_uvarint(data, len(magic))
    if version != expect_version:
        raise FormatError(
            f"unsupported version {version} (want {expect_version})"
        )
    n, pos = decode_uvarint(data, pos)
    sections: list[bytes] = []
    for _ in range(n):
        ln, pos = decode_uvarint(data, pos)
        if pos + ln > len(data):
            raise FormatError("truncated section")
        sections.append(data[pos : pos + ln])
        pos += ln
    return sections
