"""Array filters registered as first-class codecs: delta, scale-offset.

zarr ships ``DeltaFilter`` and ``FixedScaleOffsetFilter`` alongside its
compressors (SNIPPETS.md snippet 2); this module is the repro
equivalent, and doubles as the reference for registering a codec from
outside the built-in table -- the store and the archive pick these up
purely through :mod:`repro.codecs.registry`, no store code changed.

* ``delta`` -- **lossless**.  First-differences of the raw IEEE bit
  pattern (wrapping unsigned arithmetic), then the framed zlib coder.
  Smooth fields turn into near-constant low words that deflate well;
  the inverse is an exact wrapping cumulative sum, so round-trips are
  bit-identical for any float32/float64 input, NaN and inf included.
* ``scale-offset`` -- **lossy, error-bounded**.  Uniform scalar
  quantization ``q = rint((x - offset) / (2 * eps))`` stored as packed
  little-endian integers; reconstruction ``offset + q * 2 * eps`` is
  within ``eps`` of the input everywhere (the bound every other lossy
  codec in this repo promises for its ``eps``).

Both payloads are self-describing positional-section containers
(``DLT1`` / ``SOF1``; see FORMATS.md).
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from repro.codecs.container import pack_sections, unpack_sections
from repro.codecs.registry import register_codec
from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.codecs.zlibc import zlib_compress, zlib_decompress
from repro.errors import ConfigError, DataShapeError, FormatError

__all__ = [
    "delta_compress",
    "delta_decompress",
    "scale_offset_compress",
    "scale_offset_decompress",
]

_DELTA_MAGIC = b"DLT1"
_SOF_MAGIC = b"SOF1"
_VERSION = 1

#: dtype tag -> (little-endian float dtype, same-width unsigned dtype).
_FLOAT_TAGS: dict[str, tuple[str, str]] = {
    "f4": ("<f4", "<u4"),
    "f8": ("<f8", "<u8"),
}


def _canonical_float(data: Any) -> tuple[
        "np.ndarray[Any, np.dtype[Any]]", str]:
    arr = np.asarray(data)
    if arr.size == 0:
        raise DataShapeError(
            f"cannot filter an empty array (shape {arr.shape})")
    if arr.dtype.newbyteorder("=") == np.dtype(np.float32):
        return np.ascontiguousarray(arr, dtype="<f4"), "f4"
    return np.ascontiguousarray(arr, dtype="<f8"), "f8"


def _encode_meta(tag: str, shape: tuple[int, ...]) -> bytearray:
    out = bytearray(tag.encode("ascii"))
    out += encode_uvarint(len(shape))
    for n in shape:
        out += encode_uvarint(n)
    return out


def _decode_meta(sec: bytes, what: str) -> tuple[str, tuple[int, ...], int]:
    if len(sec) < 2:
        raise FormatError(f"{what}: truncated metadata section")
    tag = sec[:2].decode("ascii")
    if tag not in _FLOAT_TAGS:
        raise FormatError(f"{what}: unknown dtype tag {tag!r}")
    ndim, pos = decode_uvarint(sec, 2)
    if ndim < 1 or ndim > 32:
        raise FormatError(f"{what}: implausible ndim {ndim}")
    shape = []
    for _ in range(ndim):
        n, pos = decode_uvarint(sec, pos)
        shape.append(n)
    return tag, tuple(shape), pos


# -- delta -----------------------------------------------------------------


def delta_compress(data: Any, **_kw: Any) -> bytes:
    """Losslessly encode first-differences of the raw bit pattern."""
    arr, tag = _canonical_float(data)
    _, utag = _FLOAT_TAGS[tag]
    words = arr.reshape(-1).view(utag)
    diffs = np.empty_like(words)
    diffs[0] = words[0]
    np.subtract(words[1:], words[:-1], out=diffs[1:])
    meta = _encode_meta(tag, tuple(arr.shape))
    return pack_sections(_DELTA_MAGIC, _VERSION,
                         [bytes(meta), zlib_compress(diffs)])


def delta_decompress(blob: bytes) -> "np.ndarray[Any, np.dtype[Any]]":
    """Exact inverse of :func:`delta_compress`."""
    sections = unpack_sections(blob, _DELTA_MAGIC, _VERSION)
    if len(sections) != 2:
        raise FormatError(
            f"delta payload has {len(sections)} sections (want 2)")
    tag, shape, _ = _decode_meta(sections[0], "delta payload")
    ftag, utag = _FLOAT_TAGS[tag]
    diffs = np.frombuffer(zlib_decompress(sections[1]), dtype=utag)
    n = int(np.prod(shape))
    if diffs.size != n:
        raise FormatError(
            f"delta payload carries {diffs.size} words, shape "
            f"{shape} needs {n}")
    words = np.cumsum(diffs, dtype=diffs.dtype)
    return words.view(ftag).reshape(shape).copy()


# -- scale-offset ----------------------------------------------------------


def scale_offset_compress(data: Any, eps: float = 1e-3,
                          **_kw: Any) -> bytes:
    """Uniform scalar quantization with guaranteed ``|err| <= eps``."""
    if not float(eps) > 0.0:
        raise ConfigError(
            f"scale-offset needs a positive eps, got {eps}")
    arr, tag = _canonical_float(data)
    flat = arr.reshape(-1).astype("<f8")
    if not np.all(np.isfinite(flat)):
        raise DataShapeError(
            "scale-offset cannot quantize non-finite values; "
            "use the lossless 'delta' or 'raw' codec")
    offset = float(flat.min())
    step = 2.0 * float(eps)
    q = np.rint((flat - offset) / step)
    qmax = float(q.max(initial=0.0))
    width = 4 if qmax < 2 ** 32 else 8
    codes = q.astype("<u4" if width == 4 else "<u8")
    meta = _encode_meta(tag, tuple(arr.shape))
    meta += struct.pack("<dd", offset, step)
    meta += encode_uvarint(width)
    return pack_sections(_SOF_MAGIC, _VERSION,
                         [bytes(meta), zlib_compress(codes)])


def scale_offset_decompress(blob: bytes) -> "np.ndarray[Any, np.dtype[Any]]":
    """Inverse of :func:`scale_offset_compress` (bin centers)."""
    sections = unpack_sections(blob, _SOF_MAGIC, _VERSION)
    if len(sections) != 2:
        raise FormatError(
            f"scale-offset payload has {len(sections)} sections (want 2)")
    sec = sections[0]
    tag, shape, pos = _decode_meta(sec, "scale-offset payload")
    if pos + 16 > len(sec):
        raise FormatError("scale-offset payload: truncated scale/offset")
    offset, step = struct.unpack("<dd", sec[pos : pos + 16])
    width, _ = decode_uvarint(sec, pos + 16)
    if width not in (4, 8):
        raise FormatError(
            f"scale-offset payload: invalid code width {width}")
    ftag, _ = _FLOAT_TAGS[tag]
    codes = np.frombuffer(zlib_decompress(sections[1]),
                          dtype="<u4" if width == 4 else "<u8")
    n = int(np.prod(shape))
    if codes.size != n:
        raise FormatError(
            f"scale-offset payload carries {codes.size} codes, shape "
            f"{shape} needs {n}")
    values = offset + codes.astype("<f8") * step
    return values.astype(ftag).reshape(shape)


register_codec("delta", delta_compress, delta_decompress,
               kind="lossless", source="repro.codecs.filters")
register_codec("scale-offset", scale_offset_compress,
               scale_offset_decompress, kind="filter",
               source="repro.codecs.filters")
