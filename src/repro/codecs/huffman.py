"""Canonical, length-limited Huffman coding.

This is the entropy-coding workhorse of the SZ-style baseline (SZ
Huffman-codes its quantization bins) and is exposed as a general codec
for any small-alphabet integer array.

Design notes
------------
* **Canonical codes.**  Only code *lengths* are serialized; both sides
  reconstruct identical codewords by assigning consecutive values to
  symbols sorted by (length, symbol).  The table header is therefore a
  few hundred bytes even for large alphabets.
* **Length limiting.**  Code lengths are capped at
  :data:`MAX_CODE_LENGTH` bits using the classic Kraft-repair
  heuristic (clamp, then lengthen the cheapest codes until the Kraft
  sum is <= 1, then shorten greedily where slack remains).  The cap
  enables a single flat ``2**L``-entry decode table.
* **Vectorized encode.**  Symbols are mapped to (code, length) arrays
  and the bitstream is emitted with one NumPy pass (per-bit expansion
  driven by ``np.repeat``), no per-symbol Python loop.
* **Near-vectorized decode.**  For every bit offset we precompute, via
  the flat table, the (symbol, length) that a decode starting there
  would produce; following the chain of offsets is then a tight loop
  over plain Python lists (~100 ns/symbol), which measures faster than
  any pure-NumPy alternative that respects the sequential dependency.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.codecs.zlibc import zlib_compress, zlib_decompress
from repro.errors import CodecError
from repro.observability import counter_add, span

__all__ = ["HuffmanTable", "huffman_encode", "huffman_decode", "MAX_CODE_LENGTH"]

#: Hard cap on codeword length; the flat decode table has 2**len entries.
MAX_CODE_LENGTH = 20


def _huffman_code_lengths(counts: np.ndarray) -> np.ndarray:
    """Compute unrestricted Huffman code lengths from symbol counts.

    Uses the standard two-queue/heap construction.  Symbols with zero
    count get length 0 (absent from the code).  A degenerate alphabet
    of one used symbol gets length 1.
    """
    used = np.flatnonzero(counts)
    lengths = np.zeros(counts.size, dtype=np.int64)
    if used.size == 0:
        return lengths
    if used.size == 1:
        lengths[used[0]] = 1
        return lengths
    # Heap of (weight, tiebreak, node). Leaves are ints; internal nodes
    # are [left, right] lists. We accumulate depths at the end.
    heap: list[tuple[int, int, object]] = [
        (int(counts[s]), int(s), int(s)) for s in used
    ]
    heapq.heapify(heap)
    tiebreak = int(counts.size)
    while len(heap) > 1:
        w1, _, n1 = heapq.heappop(heap)
        w2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (w1 + w2, tiebreak, [n1, n2]))
        tiebreak += 1
    # Iterative depth-first traversal assigning depths.
    stack = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, int):
            lengths[node] = max(depth, 1)
        else:
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
    return lengths


def _limit_lengths(lengths: np.ndarray, max_len: int) -> np.ndarray:
    """Repair code lengths so none exceeds ``max_len`` and Kraft holds.

    The Kraft inequality ``sum(2**-len) <= 1`` is what makes a prefix
    code realizable; clamping long codes breaks it, so we lengthen the
    currently-shortest codes (cheapest in expected bits) until it holds
    again, then shorten codes while slack remains.
    """
    lens = lengths.copy()
    used = np.flatnonzero(lens)
    if used.size == 0:
        return lens
    lens[used] = np.minimum(lens[used], max_len)
    # Work in units of 2**-max_len so everything is integral.
    unit = 1 << max_len
    kraft = int(np.sum(unit >> lens[used]))
    if kraft > unit:
        # Lengthen codes, shortest first (each increment halves its
        # Kraft contribution, the largest available single reduction).
        order = sorted(used, key=lambda s: (lens[s], s))
        i = 0
        while kraft > unit:
            s = order[i % len(order)]
            if lens[s] < max_len:
                kraft -= (unit >> lens[s]) - (unit >> (lens[s] + 1))
                lens[s] += 1
            i += 1
    # Optional improvement: shorten high-count symbols while slack remains.
    if kraft < unit:
        order = sorted(used, key=lambda s: (-lens[s], s))
        for s in order:
            while lens[s] > 1 and kraft + (unit >> lens[s]) <= unit:
                kraft += unit >> lens[s]
                lens[s] -= 1
    return lens


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords given per-symbol code lengths.

    Symbols are processed in (length, symbol) order; each receives the
    next available codeword at its length.  Returns a uint64 array of
    codewords (MSB-first significance, ``lengths[s]`` bits each).
    """
    codes = np.zeros(lengths.size, dtype=np.uint64)
    used = np.flatnonzero(lengths)
    if used.size == 0:
        return codes
    order = sorted(used, key=lambda s: (lengths[s], s))
    code = 0
    prev_len = int(lengths[order[0]])
    for s in order:
        ln = int(lengths[s])
        code <<= ln - prev_len
        codes[s] = code
        code += 1
        prev_len = ln
    if code > (1 << prev_len):
        raise CodecError("canonical code construction overflowed: bad lengths")
    return codes


@dataclass(frozen=True)
class HuffmanTable:
    """A canonical Huffman code over the alphabet ``0..len(lengths)-1``.

    Attributes
    ----------
    lengths:
        Per-symbol code lengths in bits (0 = symbol unused).
    codes:
        Per-symbol canonical codewords (uint64, MSB-significant).
    """

    lengths: np.ndarray
    codes: np.ndarray

    @classmethod
    def from_counts(cls, counts: np.ndarray,
                    max_len: int = MAX_CODE_LENGTH) -> "HuffmanTable":
        """Build an (approximately) optimal length-limited code.

        Parameters
        ----------
        counts:
            Non-negative symbol frequencies indexed by symbol value.
        max_len:
            Maximum codeword length; bounds decode-table memory at
            ``2**max_len`` entries.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 1:
            raise CodecError("counts must be 1-D")
        if counts.size and counts.min() < 0:
            raise CodecError("negative symbol count")
        lengths = _huffman_code_lengths(counts)
        lengths = _limit_lengths(lengths, max_len)
        return cls(lengths=lengths, codes=_canonical_codes(lengths))

    @classmethod
    def from_symbols(cls, symbols: np.ndarray,
                     alphabet_size: int | None = None,
                     max_len: int = MAX_CODE_LENGTH) -> "HuffmanTable":
        """Build a table from observed symbols (convenience)."""
        symbols = np.asarray(symbols).reshape(-1)
        if alphabet_size is None:
            alphabet_size = int(symbols.max()) + 1 if symbols.size else 1
        counts = np.bincount(symbols.astype(np.int64), minlength=alphabet_size)
        return cls.from_counts(counts, max_len=max_len)

    @property
    def alphabet_size(self) -> int:
        """Number of symbols in the alphabet (used or not)."""
        return int(self.lengths.size)

    @property
    def max_length(self) -> int:
        """Longest codeword in bits (0 for an empty code)."""
        return int(self.lengths.max()) if self.lengths.size else 0

    def expected_bits(self, counts: np.ndarray) -> int:
        """Total encoded payload size in bits for the given frequencies."""
        counts = np.asarray(counts, dtype=np.int64)
        return int(np.sum(counts * self.lengths))

    # -- serialization ---------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the table (code lengths only, zlib-framed)."""
        if self.max_length > 255:  # pragma: no cover - impossible by cap
            raise CodecError("code length exceeds one byte")
        body = zlib_compress(self.lengths.astype(np.uint8).tobytes())
        return encode_uvarint(self.alphabet_size) + encode_uvarint(len(body)) + body

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> tuple["HuffmanTable", int]:
        """Deserialize a table; returns ``(table, next_offset)``."""
        size, pos = decode_uvarint(data, offset)
        blen, pos = decode_uvarint(data, pos)
        raw = zlib_decompress(data[pos : pos + blen])
        pos += blen
        lengths = np.frombuffer(raw, dtype=np.uint8).astype(np.int64)
        if lengths.size != size:
            raise CodecError("Huffman table length array size mismatch")
        return cls(lengths=lengths, codes=_canonical_codes(lengths)), pos

    # -- decode table ----------------------------------------------------

    def decode_tables(self) -> tuple[np.ndarray, np.ndarray, int]:
        """Flat decode tables ``(symbol_at, length_at, L)``.

        Indexing either table with the next ``L`` stream bits (as an
        integer) yields the decoded symbol and its true code length.
        """
        L = self.max_length
        if L == 0:
            return (np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64), 0)
        sym_tab = np.zeros(1 << L, dtype=np.int64)
        len_tab = np.zeros(1 << L, dtype=np.int64)
        for s in np.flatnonzero(self.lengths):
            ln = int(self.lengths[s])
            base = int(self.codes[s]) << (L - ln)
            span = 1 << (L - ln)
            sym_tab[base : base + span] = s
            len_tab[base : base + span] = ln
        return sym_tab, len_tab, L


def huffman_encode(symbols: np.ndarray, table: HuffmanTable) -> bytes:
    """Encode an integer symbol array; returns ``uvarint(n) || bitstream``.

    Fully vectorized: per-symbol codeword bits are expanded with
    ``np.repeat`` and packed with ``np.packbits``.
    """
    symbols = np.asarray(symbols).reshape(-1).astype(np.int64, copy=False)
    n = symbols.size
    header = encode_uvarint(n)
    if n == 0:
        return header
    with span("huffman.encode", bytes_in=int(symbols.nbytes),
              n_symbols=n) as sp:
        if symbols.min() < 0 or symbols.max() >= table.alphabet_size:
            raise CodecError("symbol outside table alphabet")
        lens = table.lengths[symbols]
        if np.any(lens == 0):
            raise CodecError("symbol has no codeword (zero length)")
        codes = table.codes[symbols]
        total = int(lens.sum())
        # Bit position of each symbol's first bit, then per-bit index
        # within the symbol's codeword; extract that bit of the codeword.
        starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
        owner = np.repeat(np.arange(n), lens)        # symbol owning bit i
        within = np.arange(total) - starts[owner]    # bit index inside code
        shift = (lens[owner] - 1 - within).astype(np.uint64)
        bits = ((codes[owner] >> shift) & np.uint64(1)).astype(np.uint8)
        out = header + np.packbits(bits).tobytes()
        sp.add(bytes_out=len(out))
    counter_add("huffman.encode.symbols", n)
    counter_add("huffman.encode.bytes_out", len(out))
    return out


def huffman_decode(data: bytes, table: HuffmanTable,
                   offset: int = 0) -> tuple[np.ndarray, int]:
    """Decode ``huffman_encode`` output; returns ``(symbols, next_offset)``.

    ``next_offset`` is the byte offset just past the (byte-aligned)
    bitstream, so multiple sections can be concatenated.
    """
    n, pos = decode_uvarint(data, offset)
    if n == 0:
        return np.zeros(0, dtype=np.int64), pos
    counter_add("huffman.decode.symbols", n)
    with span("huffman.decode", n_symbols=n) as sp:
        sym_tab, len_tab, L = table.decode_tables()
        if L == 0:
            raise CodecError("cannot decode with an empty Huffman table")
        buf = np.frombuffer(data, dtype=np.uint8, offset=pos)
        bits = np.unpackbits(buf)
        if bits.size < 1:
            raise CodecError("empty Huffman bitstream")
        # value_at[i] = integer formed by bits[i:i+L] (zero padded at
        # tail).
        padded = np.concatenate((bits, np.zeros(L, dtype=np.uint8)))
        nb = bits.size
        window = np.zeros(nb, dtype=np.uint32)
        for j in range(L):
            window |= (padded[j : j + nb].astype(np.uint32)
                       << np.uint32(L - 1 - j))
        sym_at = sym_tab[window].tolist()
        len_at = len_tab[window].tolist()
        out = np.empty(n, dtype=np.int64)
        out_list = out.tolist()  # write into a list, assign back (fast loop)
        cursor = 0
        for k in range(n):
            if cursor >= nb:
                raise CodecError("Huffman bitstream underrun")
            ln = len_at[cursor]
            if ln == 0:
                raise CodecError("invalid codeword in Huffman bitstream")
            out_list[k] = sym_at[cursor]
            cursor += ln
        out = np.asarray(out_list, dtype=np.int64)
        nbytes = (cursor + 7) // 8
        sp.add(bytes_in=nbytes, bytes_out=int(out.nbytes))
    return out, pos + nbytes
