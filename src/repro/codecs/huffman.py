"""Canonical, length-limited Huffman coding.

This is the entropy-coding workhorse of the SZ-style baseline (SZ
Huffman-codes its quantization bins) and is exposed as a general codec
for any small-alphabet integer array.

Design notes
------------
* **Canonical codes.**  Only code *lengths* are serialized; both sides
  reconstruct identical codewords by assigning consecutive values to
  symbols sorted by (length, symbol).  The table header is therefore a
  few hundred bytes even for large alphabets.
* **Length limiting.**  Code lengths are capped at
  :data:`MAX_CODE_LENGTH` bits using the classic Kraft-repair
  heuristic (clamp, then lengthen the cheapest codes until the Kraft
  sum is <= 1, then shorten greedily where slack remains).  The cap
  enables a single flat ``2**L``-entry decode table.
* **Vectorized encode.**  Symbols are mapped to (code, length) arrays
  and the bitstream is emitted with one NumPy pass (per-bit expansion
  driven by ``np.repeat``), no per-symbol Python loop.
* **Chunked speculative decode.**  The bitstream is cut into
  fixed-width chunks that are decoded speculatively in lockstep -- one
  vectorized table gather per round across all chunks.  Huffman codes
  self-synchronize, so each chunk's speculative chain converges onto
  the true symbol chain within a few symbols; a sequential merge pass
  stitches the chains together by binary-searching each chunk's entry
  position.  Short streams fall back to the scalar cursor loop
  (:func:`_decode_scalar`), which doubles as the differential-test
  oracle.  Decode tables are built once per table instance and cached.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, cast

import numpy as np
from numpy.typing import NDArray

from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.codecs.zlibc import zlib_compress, zlib_decompress
from repro.errors import CodecError
from repro.observability import counter_add, observe, span

__all__ = ["HuffmanTable", "huffman_encode", "huffman_decode", "MAX_CODE_LENGTH"]

#: Hard cap on codeword length; the flat decode table has 2**len entries.
MAX_CODE_LENGTH = 20

#: Below this many symbols the scalar cursor loop wins (chunk
#: bookkeeping in the speculative decoder would dominate).
_SCALAR_CUTOFF = 1024

#: Target symbols per speculative chunk: sets the gather width
#: (``~n/256`` chunks per round) against the per-round Python overhead.
_CHUNK_SYMBOLS = 256


def _huffman_code_lengths(counts: NDArray[np.int64]) -> NDArray[np.int64]:
    """Compute unrestricted Huffman code lengths from symbol counts.

    Uses the standard two-queue/heap construction.  Symbols with zero
    count get length 0 (absent from the code).  A degenerate alphabet
    of one used symbol gets length 1.
    """
    used = np.flatnonzero(counts)
    lengths = np.zeros(counts.size, dtype=np.int64)
    if used.size == 0:
        return lengths
    if used.size == 1:
        lengths[used[0]] = 1
        return lengths
    # Heap of (weight, tiebreak, node). Leaves are ints; internal nodes
    # are [left, right] lists. We accumulate depths at the end.
    heap: list[tuple[int, int, object]] = [
        (int(counts[s]), int(s), int(s)) for s in used
    ]
    heapq.heapify(heap)
    tiebreak = int(counts.size)
    while len(heap) > 1:
        w1, _, n1 = heapq.heappop(heap)
        w2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (w1 + w2, tiebreak, [n1, n2]))
        tiebreak += 1
    # Iterative depth-first traversal assigning depths.
    stack = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, int):
            lengths[node] = max(depth, 1)
        else:
            children = cast("list[object]", node)
            stack.append((children[0], depth + 1))
            stack.append((children[1], depth + 1))
    return lengths


def _limit_lengths(lengths: NDArray[np.int64],
                   max_len: int) -> NDArray[np.int64]:
    """Repair code lengths so none exceeds ``max_len`` and Kraft holds.

    The Kraft inequality ``sum(2**-len) <= 1`` is what makes a prefix
    code realizable; clamping long codes breaks it, so we lengthen the
    currently-shortest codes (cheapest in expected bits) until it holds
    again, then shorten codes while slack remains.
    """
    lens = lengths.copy()
    used = np.flatnonzero(lens)
    if used.size == 0:
        return lens
    lens[used] = np.minimum(lens[used], max_len)
    # Work in units of 2**-max_len so everything is integral.
    unit = 1 << max_len
    kraft = int(np.sum(unit >> lens[used]))
    if kraft > unit:
        # Lengthen codes, shortest first (each increment halves its
        # Kraft contribution, the largest available single reduction).
        order = sorted(used, key=lambda s: (lens[s], s))
        i = 0
        while kraft > unit:
            s = order[i % len(order)]
            if lens[s] < max_len:
                kraft -= (unit >> lens[s]) - (unit >> (lens[s] + 1))
                lens[s] += 1
            i += 1
    # Optional improvement: shorten high-count symbols while slack remains.
    if kraft < unit:
        order = sorted(used, key=lambda s: (-lens[s], s))
        for s in order:
            while lens[s] > 1 and kraft + (unit >> lens[s]) <= unit:
                kraft += unit >> lens[s]
                lens[s] -= 1
    return lens


def _canonical_codes_ref(lengths: NDArray[np.int64]) -> NDArray[np.uint64]:
    """Reference scalar canonical-code assignment.

    The pre-vectorization implementation: a Python loop over used
    symbols in (length, symbol) order.  Kept as the differential-test
    oracle for :func:`_canonical_codes` and as the fallback for
    adversarial length arrays too wide for int64 arithmetic.
    """
    codes = np.zeros(lengths.size, dtype=np.uint64)
    used = np.flatnonzero(lengths)
    if used.size == 0:
        return codes
    order = sorted(used, key=lambda s: (lengths[s], s))
    code = 0
    prev_len = int(lengths[order[0]])
    for s in order:
        ln = int(lengths[s])
        code <<= ln - prev_len
        codes[s] = code
        code += 1
        prev_len = ln
    if code > (1 << prev_len):
        raise CodecError("canonical code construction overflowed: bad lengths")
    return codes


def _canonical_codes(lengths: NDArray[np.int64]) -> NDArray[np.uint64]:
    """Assign canonical codewords given per-symbol code lengths.

    Symbols are processed in (length, symbol) order; each receives the
    next available codeword at its length.  Returns a uint64 array of
    codewords (MSB-first significance, ``lengths[s]`` bits each).

    Vectorized: the first code of each length follows the RFC 1951
    recurrence ``first[l+1] = (first[l] + count[l]) << 1``, and every
    used symbol then gets ``first[len] + rank-within-its-length`` in
    one pass.
    """
    codes = np.zeros(lengths.size, dtype=np.uint64)
    used = np.flatnonzero(lengths)
    if used.size == 0:
        return codes
    lens_used = lengths[used].astype(np.int64, copy=False)
    max_len = int(lens_used.max())
    if max_len > 60:
        return _canonical_codes_ref(lengths)
    cnt = np.bincount(lens_used, minlength=max_len + 1)
    first = np.zeros(max_len + 1, dtype=np.int64)
    code = 0
    for ln in range(1, max_len + 1):
        first[ln] = code
        code = (code + int(cnt[ln])) << 1
    if int(first[max_len]) + int(cnt[max_len]) > (1 << max_len):
        raise CodecError("canonical code construction overflowed: bad lengths")
    order = np.argsort(lens_used, kind="stable")  # ties keep symbol order
    class_start = np.cumsum(cnt) - cnt  # sorted-order offset of each length
    ranks = np.arange(order.size, dtype=np.int64) - class_start[lens_used[order]]
    codes[used[order]] = (first[lens_used[order]] + ranks).astype(np.uint64)
    return codes


@lru_cache(maxsize=128)
def _table_from_lengths_bytes(
        raw: bytes) -> tuple[NDArray[np.int64], NDArray[np.uint64]]:
    """Rebuild ``(lengths, codes)`` from a serialized uint8 length array.

    Cached so multi-section archives sharing one table header don't
    re-derive canonical codes per section.  The returned arrays are
    marked read-only because they are shared across table instances.
    """
    lengths = np.frombuffer(raw, dtype=np.uint8).astype(np.int64)
    codes = _canonical_codes(lengths)
    lengths.setflags(write=False)
    codes.setflags(write=False)
    return lengths, codes


@dataclass(frozen=True)
class HuffmanTable:
    """A canonical Huffman code over the alphabet ``0..len(lengths)-1``.

    Attributes
    ----------
    lengths:
        Per-symbol code lengths in bits (0 = symbol unused).
    codes:
        Per-symbol canonical codewords (uint64, MSB-significant).
    """

    lengths: NDArray[np.int64]
    codes: NDArray[np.uint64]

    @classmethod
    def from_counts(cls, counts: NDArray[Any],
                    max_len: int = MAX_CODE_LENGTH) -> "HuffmanTable":
        """Build an (approximately) optimal length-limited code.

        Parameters
        ----------
        counts:
            Non-negative symbol frequencies indexed by symbol value.
        max_len:
            Maximum codeword length; bounds decode-table memory at
            ``2**max_len`` entries.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 1:
            raise CodecError("counts must be 1-D")
        if counts.size and counts.min() < 0:
            raise CodecError("negative symbol count")
        lengths = _huffman_code_lengths(counts)
        lengths = _limit_lengths(lengths, max_len)
        return cls(lengths=lengths, codes=_canonical_codes(lengths))

    @classmethod
    def from_symbols(cls, symbols: NDArray[Any],
                     alphabet_size: int | None = None,
                     max_len: int = MAX_CODE_LENGTH) -> "HuffmanTable":
        """Build a table from observed symbols (convenience)."""
        symbols = np.asarray(symbols).reshape(-1)
        if alphabet_size is None:
            alphabet_size = int(symbols.max()) + 1 if symbols.size else 1
        counts = np.bincount(symbols.astype(np.int64), minlength=alphabet_size)
        return cls.from_counts(counts, max_len=max_len)

    @property
    def alphabet_size(self) -> int:
        """Number of symbols in the alphabet (used or not)."""
        return int(self.lengths.size)

    @property
    def max_length(self) -> int:
        """Longest codeword in bits (0 for an empty code)."""
        return int(self.lengths.max()) if self.lengths.size else 0

    def expected_bits(self, counts: NDArray[Any]) -> int:
        """Total encoded payload size in bits for the given frequencies."""
        counts = np.asarray(counts, dtype=np.int64)
        return int(np.sum(counts * self.lengths))

    # -- serialization ---------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the table (code lengths only, zlib-framed)."""
        if self.max_length > 255:  # pragma: no cover - impossible by cap
            raise CodecError("code length exceeds one byte")
        body = zlib_compress(self.lengths.astype(np.uint8).tobytes())
        return encode_uvarint(self.alphabet_size) + encode_uvarint(len(body)) + body

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> tuple["HuffmanTable", int]:
        """Deserialize a table; returns ``(table, next_offset)``."""
        size, pos = decode_uvarint(data, offset)
        blen, pos = decode_uvarint(data, pos)
        raw = zlib_decompress(data[pos : pos + blen])
        pos += blen
        lengths, codes = _table_from_lengths_bytes(raw)
        if lengths.size != size:
            raise CodecError("Huffman table length array size mismatch")
        return cls(lengths=lengths, codes=codes), pos

    # -- decode table ----------------------------------------------------

    def decode_tables(
            self) -> tuple[NDArray[np.int64], NDArray[np.int64], int]:
        """Flat decode tables ``(symbol_at, length_at, L)``.

        Indexing either table with the next ``L`` stream bits (as an
        integer) yields the decoded symbol and its true code length.
        Built once per table instance and cached: the tables are
        ``2**L`` entries, and multi-section decodes reuse them.
        """
        cached = self.__dict__.get("_decode_cache")
        if cached is not None:
            return cast(
                "tuple[NDArray[np.int64], NDArray[np.int64], int]", cached
            )
        L = self.max_length
        if L > 32:
            raise CodecError(
                f"code length {L} exceeds the 32-bit decode-window cap"
            )
        if L == 0:
            tables = (np.zeros(1, dtype=np.int64),
                      np.zeros(1, dtype=np.int64), 0)
        else:
            sym_tab = np.zeros(1 << L, dtype=np.int64)
            len_tab = np.zeros(1 << L, dtype=np.int64)
            for s in np.flatnonzero(self.lengths):
                ln = int(self.lengths[s])
                base = int(self.codes[s]) << (L - ln)
                width = 1 << (L - ln)
                sym_tab[base : base + width] = s
                len_tab[base : base + width] = ln
            sym_tab.setflags(write=False)
            len_tab.setflags(write=False)
            tables = (sym_tab, len_tab, L)
        object.__setattr__(self, "_decode_cache", tables)
        return tables


def huffman_encode(symbols: NDArray[Any], table: HuffmanTable) -> bytes:
    """Encode an integer symbol array; returns ``uvarint(n) || bitstream``.

    Fully vectorized: per-symbol codeword bits are expanded with
    ``np.repeat`` and packed with ``np.packbits``.
    """
    symbols = np.asarray(symbols).reshape(-1).astype(np.int64, copy=False)
    n = symbols.size
    header = encode_uvarint(n)
    if n == 0:
        return header
    with span("huffman.encode", bytes_in=int(symbols.nbytes),
              n_symbols=n) as sp:
        if symbols.min() < 0 or symbols.max() >= table.alphabet_size:
            raise CodecError("symbol outside table alphabet")
        lens = table.lengths[symbols]
        if np.any(lens == 0):
            raise CodecError("symbol has no codeword (zero length)")
        codes = table.codes[symbols]
        total = int(lens.sum())
        # Bit position of each symbol's first bit, then per-bit index
        # within the symbol's codeword; extract that bit of the codeword.
        starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
        owner = np.repeat(np.arange(n), lens)        # symbol owning bit i
        within = np.arange(total) - starts[owner]    # bit index inside code
        shift = (lens[owner] - 1 - within).astype(np.uint64)
        bits = ((codes[owner] >> shift) & np.uint64(1)).astype(np.uint8)
        out = header + np.packbits(bits).tobytes()
        sp.add(bytes_out=len(out))
    counter_add("huffman.encode.symbols", n)
    counter_add("huffman.encode.bytes_out", len(out))
    observe("huffman.encode.symbols_per_call", n, lo=1.0, hi=1e9)
    return out


def _decode_scalar(buf: NDArray[np.uint8], n: int,
                   sym_tab: NDArray[np.int64], len_tab: NDArray[np.int64],
                   L: int) -> tuple[NDArray[np.int64], int]:
    """Reference decode: per-offset table gather + Python cursor loop.

    For every bit offset we precompute, via the flat table, the
    (symbol, length) a decode starting there would produce; following
    the chain of offsets is then a tight loop over plain Python lists.
    Used for short streams and as the differential-test oracle for
    :func:`_decode_vectorized`.  Returns ``(symbols, end_cursor)``.
    """
    bits = np.unpackbits(buf)
    nb = bits.size
    padded = np.concatenate((bits, np.zeros(L, dtype=np.uint8)))
    window = np.zeros(nb, dtype=np.uint32)
    for j in range(L):
        window |= (padded[j : j + nb].astype(np.uint32)
                   << np.uint32(L - 1 - j))
    sym_at = sym_tab[window].tolist()
    len_at = len_tab[window].tolist()
    out = [0] * n
    cursor = 0
    for k in range(n):
        if cursor >= nb:
            raise CodecError("Huffman bitstream underrun")
        ln = len_at[cursor]
        if ln == 0:
            raise CodecError("invalid codeword in Huffman bitstream")
        out[k] = sym_at[cursor]
        cursor += ln
    return np.asarray(out, dtype=np.int64), cursor


def _decode_vectorized(buf: NDArray[np.uint8], n: int,
                       sym_tab: NDArray[np.int64],
                       len_tab: NDArray[np.int64],
                       L: int) -> tuple[NDArray[np.int64], int]:
    """Chunked speculative decode (see module docstring).

    The stream is cut into ``S`` fixed-width bit chunks, each decoded
    speculatively from its own start offset, all in lockstep (one
    vectorized table gather per round over every still-active chunk).
    A chunk records every bit position it visits; a chunk whose cursor
    reaches its end records the exit position (the entry into the next
    chunk), and a chunk that hits an invalid window records the poison
    position instead.  The merge pass then walks the *true* chain:
    inside each chunk it binary-searches the entry position among the
    recorded positions and, on a hit, copies the agreeing tail
    wholesale; on a miss (speculation not yet synchronized) it decodes
    single symbols until the chains merge.  Returns
    ``(symbols, end_cursor)``.
    """
    nbytes_buf = int(buf.size)
    nb = nbytes_buf * 8
    # win[i] = the word starting at byte offset i, big-endian (zero
    # padded), so the L-bit window at bit t is
    # ``(win[t>>3] << (t&7)) >> (word_bits - L)``.  A 32-bit word holds
    # any L <= 25 window (25 = 32 - 7 shift slack), which covers the
    # default MAX_CODE_LENGTH; wider codes fall back to 64-bit words.
    if L <= 25:
        wdt, word_bits, passes = np.uint32, 32, 4
    else:
        wdt, word_bits, passes = np.uint64, 64, 8
    padded = np.zeros(nbytes_buf + passes, dtype=np.uint8)
    padded[:nbytes_buf] = buf
    w64 = np.zeros(nbytes_buf + 1, dtype=wdt)
    for j in range(passes):
        w64 |= (padded[j : j + nbytes_buf + 1].astype(wdt)
                << wdt(word_bits - 8 - 8 * j))
    down = wdt(word_bits - L)
    wmask = (1 << word_bits) - 1

    S = max(2, -(-n // _CHUNK_SYMBOLS))
    W = max(L, -(-nb // S))
    S = -(-nb // W)
    starts = np.arange(S, dtype=np.int64) * W
    ends = np.minimum(starts + W, nb)

    # Lockstep speculative rounds.  store[r, s] is the r-th position
    # chunk s visited; columns are strictly increasing and contiguous
    # in r because chunks are active from round 0 until they finish.
    store = np.empty((_CHUNK_SYMBOLS + 64, S), dtype=np.int64)
    cnt = np.zeros(S, dtype=np.int64)
    exit_pos = np.full(S, -1, dtype=np.int64)
    poison = np.full(S, -1, dtype=np.int64)
    cur = starts.copy()
    active = np.arange(S, dtype=np.int64)
    r = 0
    while active.size:
        if r == store.shape[0]:
            store = np.concatenate([store, np.empty_like(store)], axis=0)
        pos = cur[active]
        w = (w64[pos >> 3] << (pos & 7).astype(wdt)) >> down
        ln = len_tab[w]
        ok = ln != 0
        if not ok.all():
            poison[active[~ok]] = pos[~ok]
            active = active[ok]
            if active.size == 0:
                break
            pos = pos[ok]
            ln = ln[ok]
        store[r, active] = pos
        cnt[active] += 1
        nxt = pos + ln
        cur[active] = nxt
        done = nxt >= ends[active]
        if done.any():
            exit_pos[active[done]] = nxt[done]
            active = active[~done]
        r += 1

    # Phase 2: overshoot.  Speculative chains converge a few symbols
    # *after* a chunk boundary, so a chunk's true entry is rarely on
    # the next chunk's recorded chain.  Each chunk therefore keeps
    # decoding past its end (again in lockstep) until it lands on a
    # position some phase-1 chain visited -- normally the next chunk's
    # chain, a handful of rounds.  The overshoot positions themselves
    # are recorded: when chunk s is on the true chain, so is its
    # overshoot, which bridges the boundary into chunk s+1.
    rows = np.arange(store.shape[0], dtype=np.int64)
    flat = store.T[rows[None, :] < cnt[:, None]]
    offsets = np.concatenate(([0], np.cumsum(cnt)))
    visited = np.zeros(nb, dtype=bool)
    visited[flat] = True
    sync_pos = np.full(S, -1, dtype=np.int64)
    store2 = np.empty((64, S), dtype=np.int64)
    cnt2 = np.zeros(S, dtype=np.int64)
    cur = exit_pos.copy()
    active = np.flatnonzero((exit_pos >= 0) & (exit_pos < nb))
    r = 0
    while active.size and r < 1024:
        pos = cur[active]
        hit = visited[pos]
        if hit.any():
            sync_pos[active[hit]] = pos[hit]
            active = active[~hit]
            if active.size == 0:
                break
            pos = pos[~hit]
        if r == store2.shape[0]:
            store2 = np.concatenate([store2, np.empty_like(store2)], axis=0)
        w = (w64[pos >> 3] << (pos & 7).astype(wdt)) >> down
        ln = len_tab[w]
        ok = ln != 0
        if not ok.all():
            active = active[ok]
            if active.size == 0:
                break
            pos = pos[ok]
            ln = ln[ok]
        store2[r, active] = pos
        cnt2[active] += 1
        nxt = pos + ln
        cur[active] = nxt
        over = nxt >= nb
        if over.any():
            active = active[~over]
        r += 1

    # Merge pass along the true chain.  From an on-chain position,
    # trust extends over every consecutive chunk whose predecessor
    # overshot straight onto it; those chunks' chain tails and
    # overshoots are concatenated with one boolean-mask gather.
    rows2 = np.arange(store2.shape[0], dtype=np.int64)
    chunk_of_sync = np.where(sync_pos >= 0, sync_pos // W, -1)
    out_pos = np.empty(n, dtype=np.int64)
    filled = 0
    t = 0
    while filled < n:
        if t >= nb:
            raise CodecError("Huffman bitstream underrun")
        s = t // W
        col = store[: cnt[s], s]
        jj = int(np.searchsorted(col, t))
        if jj >= col.size or col[jj] != t:
            # Off-chain (no phase-1 chain visited t): decode one symbol
            # the slow way and retry the merge.
            w = ((int(w64[t >> 3]) << (t & 7)) & wmask) >> (word_bits - L)
            ln = int(len_tab[w])
            if ln == 0:
                raise CodecError("invalid codeword in Huffman bitstream")
            out_pos[filled] = t
            filled += 1
            t += ln
            continue
        g = np.empty(S - s, dtype=bool)
        g[0] = True
        g[1:] = chunk_of_sync[s:-1] == np.arange(s + 1, S)
        trusted = int(np.logical_and.accumulate(g).sum())
        q = np.empty(trusted, dtype=np.int64)
        q[0] = t
        q[1:] = sync_pos[s : s + trusted - 1]
        j = np.searchsorted(flat, q) - offsets[s : s + trusted]
        m1 = (rows[None, :] >= j[:, None]) \
            & (rows[None, :] < cnt[s : s + trusted, None])
        m2 = rows2[None, :] < cnt2[s : s + trusted, None]
        big = np.concatenate([store.T[s : s + trusted],
                              store2.T[s : s + trusted]], axis=1)
        chain = big[np.concatenate([m1, m2], axis=1)]
        take = min(chain.size, n - filled)
        out_pos[filled : filled + take] = chain[:take]
        filled += take
        if filled == n:
            break
        last = s + trusted - 1
        if sync_pos[last] >= 0:
            t = int(sync_pos[last])       # on some phase-1 chain
        elif exit_pos[last] < 0:
            t = int(poison[last])         # chain died inside the chunk
        else:
            t = int(cur[last])            # overshoot cursor (or stream end)

    last = int(out_pos[n - 1])
    w = ((int(w64[last >> 3]) << (last & 7)) & wmask) >> (word_bits - L)
    cursor = last + int(len_tab[w])
    wv = (w64[out_pos >> 3] << (out_pos & 7).astype(wdt)) >> down
    return sym_tab[wv], cursor


def huffman_decode(data: bytes, table: HuffmanTable,
                   offset: int = 0) -> tuple[NDArray[np.int64], int]:
    """Decode ``huffman_encode`` output; returns ``(symbols, next_offset)``.

    ``next_offset`` is the byte offset just past the (byte-aligned)
    bitstream, so multiple sections can be concatenated.
    """
    n, pos = decode_uvarint(data, offset)
    if n == 0:
        return np.zeros(0, dtype=np.int64), pos
    counter_add("huffman.decode.symbols", n)
    observe("huffman.decode.symbols_per_call", n, lo=1.0, hi=1e9)
    with span("huffman.decode", n_symbols=n) as sp:
        sym_tab, len_tab, L = table.decode_tables()
        if L == 0:
            raise CodecError("cannot decode with an empty Huffman table")
        buf = np.frombuffer(data, dtype=np.uint8, offset=pos)
        if buf.size < 1:
            raise CodecError("empty Huffman bitstream")
        # n symbols consume at most n*L bits; clip multi-section buffers
        # so decode work can't spill into later sections.
        max_bytes = (n * L + 7) // 8
        if buf.size > max_bytes:
            buf = buf[:max_bytes]
        if n < _SCALAR_CUTOFF:
            out, cursor = _decode_scalar(buf, n, sym_tab, len_tab, L)
        else:
            out, cursor = _decode_vectorized(buf, n, sym_tab, len_tab, L)
        nbytes = (cursor + 7) // 8
        sp.add(bytes_in=nbytes, bytes_out=int(out.nbytes))
    return out, pos + nbytes
