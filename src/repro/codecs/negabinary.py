"""Negabinary (base -2) integer mapping.

ZFP encodes signed transform coefficients in *negabinary* so that small
magnitudes -- positive or negative -- have their significant bits
concentrated in the low-order positions, which is what makes bit-plane
coding (most-significant plane first) effective on signed data without
a separate sign plane.

The mapping used here is the standard two's-complement-to-negabinary
bit trick (also the one the reference zfp implementation uses)::

    nb(x)   = (x + mask) XOR mask        with mask = 0xAAAA...AAAA
    x(nb)   = (nb XOR mask) - mask

where the XOR/add are performed in wrapping unsigned arithmetic.  The
mask has every odd-position bit set, i.e. the bits whose place value is
negative in base -2.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

__all__ = ["int_to_negabinary", "negabinary_to_int", "NB_MASK64"]

#: Alternating-bit mask: bits at odd positions (place value negative in
#: base -2) set, for 64-bit words.
NB_MASK64 = np.uint64(0xAAAAAAAAAAAAAAAA)


def int_to_negabinary(values: NDArray[Any]) -> NDArray[np.uint64]:
    """Map signed int64 values to their uint64 negabinary representation.

    Vectorized; the result can be bit-plane coded directly.  Inverse is
    :func:`negabinary_to_int`.
    """
    arr = np.asarray(values).astype(np.int64, copy=False)
    u = arr.astype(np.uint64)
    with np.errstate(over="ignore"):
        out: NDArray[np.uint64] = (u + NB_MASK64) ^ NB_MASK64
        return out


def negabinary_to_int(values: NDArray[Any]) -> NDArray[np.int64]:
    """Inverse of :func:`int_to_negabinary` (uint64 -> int64)."""
    u = np.asarray(values).astype(np.uint64, copy=False)
    with np.errstate(over="ignore"):
        return ((u ^ NB_MASK64) - NB_MASK64).astype(np.int64)
