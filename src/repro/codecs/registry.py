"""Dynamic codec registry: compressors resolve by id, not by table.

Modelled on zarr's ``codec_registry`` (SNIPPETS.md snippet 2): a codec
is a named pair of callables, and anything that can compress bytes --
the DPZ pipeline, the SZ/ZFP/MGARD baselines, the lossless ``raw``
fallback, or a user-defined filter -- registers under an id and is
looked up by that id everywhere (archives, the chunked store, the
CLI).  Adding a codec never touches store code::

    from repro.codecs.registry import register_codec

    register_codec("bitshuffle", bs_compress, bs_decompress,
                   kind="lossless")

Entry-point-style lookup: an id of the form ``"pkg.module:name"``
imports ``pkg.module`` (whose import side effect is expected to call
:func:`register_codec`) and then resolves ``name``.  That is the
no-setuptools equivalent of a ``zarr.codecs`` entry point: shipping a
codec in a separate module requires zero changes here.

Failure contract: duplicate registration and unknown-id lookup both
raise :class:`~repro.errors.ConfigError` naming the known ids --
never a bare ``KeyError``.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Protocol

import numpy as np

from repro.devtools.sanitize import checked_rlock
from repro.errors import ConfigError

__all__ = [
    "CompressFn",
    "DecompressFn",
    "CodecSpec",
    "register_codec",
    "unregister_codec",
    "get_codec",
    "codec_functions",
    "codec_ids",
    "have_codec",
    "CodecTable",
]


class CompressFn(Protocol):
    """``compress(data, **kwargs) -> bytes`` (self-describing payload)."""

    def __call__(self, data: Any, **kwargs: Any) -> bytes: ...


DecompressFn = Callable[[bytes], "np.ndarray[Any, np.dtype[Any]]"]

#: Registration kinds, used for documentation / filtering only.
KINDS = ("lossy", "lossless", "filter")


@dataclass(frozen=True)
class CodecSpec:
    """One registered codec: id, callables, and a coarse kind label."""

    name: str
    compress: CompressFn
    decompress: DecompressFn
    kind: str = "lossy"
    #: Where the registration came from ("builtin" or a module path).
    source: str = "user"

    pair: tuple[CompressFn, DecompressFn] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "pair", (self.compress, self.decompress))


# Reentrant: _ensure_builtins holds it while importing modules whose
# bodies call register_codec, which takes it again on the same thread.
_LOCK = checked_rlock("codecs.registry._LOCK")
_REGISTRY: dict[str, CodecSpec] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Lazily register the built-in codec set.

    The builtins live in modules that import heavy machinery
    (``repro.archive`` pulls in the whole DPZ pipeline), so they are
    imported on first *lookup*, not when this module loads -- that
    keeps ``repro.codecs`` importable from anywhere without cycles.
    """
    global _builtins_loaded
    with _LOCK:
        if _builtins_loaded:
            return
        # Flip the flag first: the archive module body calls
        # register_codec(), which must not recurse back in here.
        _builtins_loaded = True
        importlib.import_module("repro.archive")
        importlib.import_module("repro.codecs.filters")


def register_codec(name: str, compress: CompressFn,
                   decompress: DecompressFn, *, kind: str = "lossy",
                   source: str = "user",
                   overwrite: bool = False) -> CodecSpec:
    """Register ``(compress, decompress)`` under ``name``.

    ``kind`` is ``"lossy"``, ``"lossless"`` or ``"filter"``.  A second
    registration of the same id raises
    :class:`~repro.errors.ConfigError` unless ``overwrite=True`` (the
    escape hatch for tests and deliberate codec shadowing).
    """
    if not name or ":" in name or "/" in name or "\x00" in name:
        raise ConfigError(
            f"invalid codec id {name!r}: ids are plain names "
            f"(':' is reserved for module-qualified lookup)")
    if kind not in KINDS:
        raise ConfigError(
            f"invalid codec kind {kind!r} for {name!r}; "
            f"use one of {KINDS}")
    spec = CodecSpec(name=name, compress=compress,
                     decompress=decompress, kind=kind, source=source)
    with _LOCK:
        if name in _REGISTRY and not overwrite:
            raise ConfigError(
                f"codec {name!r} is already registered "
                f"(source {_REGISTRY[name].source!r}); known ids: "
                f"{sorted(_REGISTRY)}; pass overwrite=True to replace")
        _REGISTRY[name] = spec
    return spec


def unregister_codec(name: str) -> None:
    """Remove a registered codec (unknown ids raise ``ConfigError``)."""
    with _LOCK:
        if name not in _REGISTRY:
            raise ConfigError(
                f"cannot unregister unknown codec {name!r}; "
                f"known ids: {sorted(_REGISTRY)}")
        del _REGISTRY[name]


def get_codec(name: str) -> CodecSpec:
    """Resolve a codec id to its :class:`CodecSpec`.

    ``"pkg.module:name"`` first imports ``pkg.module`` (which is
    expected to register the codec as an import side effect), then
    resolves ``name``.  Unknown ids raise
    :class:`~repro.errors.ConfigError` listing every known id.
    """
    _ensure_builtins()
    lookup = name
    if ":" in name:
        module_path, _, lookup = name.partition(":")
        try:
            importlib.import_module(module_path)
        except ImportError as exc:
            raise ConfigError(
                f"codec id {name!r}: cannot import module "
                f"{module_path!r}: {exc}") from exc
    with _LOCK:
        try:
            return _REGISTRY[lookup]
        except KeyError:
            raise ConfigError(
                f"unknown codec {lookup!r}; known ids: "
                f"{sorted(_REGISTRY)}") from None


def codec_functions(name: str) -> tuple[CompressFn, DecompressFn]:
    """Shorthand: ``(compress, decompress)`` for a codec id."""
    return get_codec(name).pair


def codec_ids(kind: str | None = None) -> list[str]:
    """Sorted registered ids, optionally filtered by kind."""
    _ensure_builtins()
    with _LOCK:
        return sorted(n for n, s in _REGISTRY.items()
                      if kind is None or s.kind == kind)


def have_codec(name: str) -> bool:
    """True when ``name`` resolves without raising."""
    _ensure_builtins()
    with _LOCK:
        return name in _REGISTRY


class CodecTable(Mapping[str, tuple[CompressFn, DecompressFn]]):
    """Live read-only mapping view of the registry.

    This is the backward-compatible shape of the old hardcoded
    ``repro.archive.CODECS`` dict: iteration yields codec ids,
    indexing yields ``(compress, decompress)``.  Unlike a dict, an
    unknown id raises :class:`~repro.errors.ConfigError` naming the
    known ids, and codecs registered after import show up immediately.
    """

    def __getitem__(self, name: str) -> tuple[CompressFn, DecompressFn]:
        return codec_functions(name)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and have_codec(name)

    def __iter__(self) -> Iterator[str]:
        return iter(codec_ids())

    def __len__(self) -> int:
        return len(codec_ids())

    def __repr__(self) -> str:
        return f"CodecTable({codec_ids()})"
