"""Run-length coding over small-alphabet symbol arrays.

Quantizer index planes are frequently dominated by a single symbol
(the zero bin), so a simple (symbol, run-length) scheme in front of
zlib is a cheap win.  Runs are stored as ``(uvarint symbol, uvarint
length)`` pairs; the decoder therefore needs no alphabet metadata.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import DTypeLike, NDArray

from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.errors import CodecError

__all__ = ["rle_encode", "rle_decode"]


def rle_encode(values: NDArray[Any]) -> bytes:
    """Run-length encode a 1-D non-negative integer array.

    Returns a self-describing byte string: a uvarint element count, then
    (symbol, run) uvarint pairs.
    """
    arr = np.asarray(values).reshape(-1)
    if arr.size and arr.min() < 0:
        raise CodecError("rle_encode requires non-negative symbols")
    out = bytearray(encode_uvarint(arr.size))
    if arr.size == 0:
        return bytes(out)
    # Boundaries of equal-value runs.
    change = np.flatnonzero(np.diff(arr)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [arr.size]))
    for s, e in zip(starts, ends):
        out += encode_uvarint(int(arr[s]))
        out += encode_uvarint(int(e - s))
    return bytes(out)


def rle_decode(data: bytes, dtype: DTypeLike = np.int64) -> NDArray[Any]:
    """Inverse of :func:`rle_encode`."""
    total, pos = decode_uvarint(data, 0)
    symbols: list[int] = []
    runs: list[int] = []
    decoded = 0
    while decoded < total:
        sym, pos = decode_uvarint(data, pos)
        run, pos = decode_uvarint(data, pos)
        if run == 0:
            raise CodecError("zero-length run in RLE stream")
        symbols.append(sym)
        runs.append(run)
        decoded += run
    if decoded != total:
        raise CodecError(
            f"RLE stream inconsistent: runs sum to {decoded}, header says {total}"
        )
    if total == 0:
        return np.zeros(0, dtype=dtype)
    return np.repeat(np.asarray(symbols, dtype=dtype), np.asarray(runs))
