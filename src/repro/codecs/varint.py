"""LEB128 varints and zigzag signed-integer mapping.

Container headers throughout this project store lengths and counts as
unsigned LEB128 varints so small values cost one byte while 64-bit
values remain representable.  Signed quantities are first mapped to
unsigned via the zigzag transform (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...),
the same scheme protobuf uses.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.errors import CodecError

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "zigzag_encode",
    "zigzag_decode",
]


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128 bytes."""
    value = int(value)
    if value < 0:
        raise CodecError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes | memoryview, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 varint starting at ``offset``.

    Returns ``(value, next_offset)``.  Raises
    :class:`~repro.errors.CodecError` if the buffer ends mid-varint or
    the encoding exceeds 10 bytes (more than 64 bits of payload).
    """
    value = 0
    shift = 0
    pos = offset
    view = memoryview(data)
    while True:
        if pos >= len(view):
            raise CodecError("truncated uvarint")
        byte = view[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise CodecError("uvarint too long (exceeds 64 bits)")


def zigzag_encode(values: NDArray[Any] | int) -> NDArray[np.uint64] | int:
    """Map signed integers to unsigned: 0,-1,1,-2,... -> 0,1,2,3,...

    Accepts a scalar or an integer array; arrays are mapped elementwise
    to ``uint64``.
    """
    if isinstance(values, (int, np.integer)):
        v = int(values)
        return (v << 1) ^ (v >> 63) if v >= 0 else ((-v) << 1) - 1
    arr = np.asarray(values).astype(np.int64, copy=False)
    out: NDArray[np.uint64] = (
        (arr.astype(np.uint64) << np.uint64(1))
        ^ (arr >> np.int64(63)).astype(np.uint64)
    )
    return out


def zigzag_decode(values: NDArray[Any] | int) -> NDArray[np.int64] | int:
    """Inverse of :func:`zigzag_encode`."""
    if isinstance(values, (int, np.integer)):
        v = int(values)
        return (v >> 1) ^ -(v & 1)
    arr = np.asarray(values).astype(np.uint64, copy=False)
    out: NDArray[np.int64] = (
        (arr >> np.uint64(1)).astype(np.int64)
        ^ -(arr & np.uint64(1)).astype(np.int64)
    )
    return out
