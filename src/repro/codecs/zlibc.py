"""Framed zlib compression.

DPZ applies zlib as its final lossless add-on stage (paper, Section
IV-C).  This module wraps the stdlib implementation with a small frame
-- ``uvarint(raw_length) || deflate_payload`` -- so decoders can
pre-allocate and validate, and so an *incompressible* payload can be
stored raw (flag byte 0) instead of growing.
"""

from __future__ import annotations

import zlib
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.errors import CodecError
from repro.observability import counter_add, observe

__all__ = ["zlib_compress", "zlib_decompress", "DEFAULT_LEVEL"]

#: zlib level used across the project; 6 is zlib's own default and the
#: speed/ratio tradeoff the paper's "zlib add-on" implies.
DEFAULT_LEVEL = 6

_RAW = 0
_DEFLATE = 1


def zlib_compress(data: bytes | bytearray | memoryview | NDArray[Any],
                  level: int = DEFAULT_LEVEL) -> bytes:
    """Compress ``data`` with zlib inside a self-describing frame.

    Falls back to storing the payload raw when deflate would expand it,
    so the frame never costs more than ``len(data) + ~11`` bytes.
    """
    if isinstance(data, np.ndarray):
        raw = data.tobytes()
    else:
        raw = bytes(data)
    data = raw
    packed = zlib.compress(data, level)
    counter_add("zlib.compress.calls")
    counter_add("zlib.compress.bytes_in", len(data))
    observe("zlib.compress.frame_bytes",
            min(len(packed), len(data)), lo=1.0, hi=1e12)
    if data:
        observe("zlib.compress.ratio",
                len(data) / max(min(len(packed), len(data)), 1),
                lo=1e-3, hi=1e6)
    if len(packed) < len(data):
        counter_add("zlib.compress.bytes_out", len(packed))
        return bytes([_DEFLATE]) + encode_uvarint(len(data)) + packed
    counter_add("zlib.compress.bytes_out", len(data))
    counter_add("zlib.compress.stored_raw")
    return bytes([_RAW]) + encode_uvarint(len(data)) + data


def zlib_decompress(frame: bytes | memoryview) -> bytes:
    """Inverse of :func:`zlib_compress`."""
    frame = bytes(frame)
    if not frame:
        raise CodecError("empty zlib frame")
    counter_add("zlib.decompress.calls")
    counter_add("zlib.decompress.bytes_in", len(frame))
    mode = frame[0]
    raw_len, pos = decode_uvarint(frame, 1)
    payload = frame[pos:]
    if mode == _RAW:
        if len(payload) != raw_len:
            raise CodecError(
                f"raw zlib frame length mismatch: header {raw_len}, "
                f"payload {len(payload)}"
            )
        return payload
    if mode == _DEFLATE:
        try:
            out = zlib.decompress(payload)
        except zlib.error as exc:  # pragma: no cover - corrupt input path
            raise CodecError(f"zlib decompression failed: {exc}") from exc
        if len(out) != raw_len:
            raise CodecError(
                f"zlib frame length mismatch: header {raw_len}, got {len(out)}"
            )
        return out
    raise CodecError(f"unknown zlib frame mode {mode}")
