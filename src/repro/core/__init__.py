"""DPZ core: the paper's multi-stage IR-based lossy compressor.

Pipeline (paper Fig. 5)::

    data --(stage 1a: block decomposition)--> M x N block matrix
         --(stage 1b: per-block DCT-II)-----> DCT-domain features
         --(stage 2: k-PCA selection)-------> N x k component scores
         --(stage 3: symmetric quantization)-> indices + outliers
         --(lossless add-on: zlib)----------> container bytes

Modules map one-to-one onto the stages:

* :mod:`repro.core.config` -- :class:`DPZConfig` and the paper's two
  schemes (DPZ-l, DPZ-s).
* :mod:`repro.core.decompose` -- stage 1a.
* :mod:`repro.core.transform_stage` -- stage 1b.
* :mod:`repro.core.kpca` -- stage 2 (Alg. 1: knee-point / TVE).
* :mod:`repro.core.quantize` -- stage 3.
* :mod:`repro.core.stream` -- container serialization.
* :mod:`repro.core.sampling` -- Alg. 2 (k estimation, VIF probe,
  preliminary CR).
* :mod:`repro.core.compressor` -- the :class:`DPZCompressor` facade
  with per-stage instrumentation.
"""

from repro.core.compressor import DPZCompressor, DPZStats
from repro.core.config import DPZ_L, DPZ_S, DPZConfig
from repro.core.sampling import SamplingReport, sampling_probe

__all__ = [
    "DPZCompressor",
    "DPZStats",
    "DPZConfig",
    "DPZ_L",
    "DPZ_S",
    "SamplingReport",
    "sampling_probe",
]
