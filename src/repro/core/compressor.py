"""The DPZ compressor facade: compress / decompress with instrumentation.

Ties the stages together exactly as Fig. 5 draws them and exposes the
measurements the paper's evaluation needs:

* per-stage wall-clock timings (Fig. 9),
* per-stage compression factors (Table III),
* stage-1&2 vs stage-3 PSNR (Table IV), optionally, since it requires
  an extra reconstruction pass,
* the sampling report (Section V-C6) when sampling is enabled.

The compressed artifact is a self-describing byte string; decompression
needs no configuration.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import psnr
from repro.core.config import DPZ_L, DPZConfig
from repro.baselines.lorenzo import lattice_dequantize, lattice_quantize
from repro.core.decompose import (
    DecompositionPlan,
    decompose,
    reassemble,
)
from repro.core.encode import (
    forward_transform,
    inverse_transform,
    truncate_coefficients,
)
from repro.core.kpca import fit_kpca
from repro.core.quantize import (
    QuantizedScores,
    dequantize_scores,
    quantize_scores,
)
from repro.core.sampling import (
    SamplingReport,
    linearity_probe,
    sampling_probe,
)
from repro.core.stream import DPZArchive, deserialize, serialize
from repro.errors import DataShapeError
from repro.observability import counter_inc, gauge_set, observe, span
from repro.observability import quality as _quality
from repro.transforms.pca import PCA

__all__ = ["DPZCompressor", "DPZStats"]

_DTYPE_TAGS = {np.dtype(np.float32): "f4", np.dtype(np.float64): "f8"}

#: Extra components published in ``stats.basis`` beyond the k the
#: payload used.  A basis fitted at the *minimal* k for one chunk sits
#: exactly on the TVE threshold, so siblings would reject it almost
#: every time; the headroom gives a reusing chunk room to take one or
#: two more components and still skip its own eigendecomposition.
_BASIS_HEADROOM = 8


@contextmanager
def _stage(stats: "DPZStats", name: str, **span_kw):
    """Time one compression stage into ``stats.times`` and the tracer.

    The ``stats.times`` clock always runs (Fig. 9 reads it); the span
    is a no-op unless a tracer is installed.
    """
    t0 = time.perf_counter()
    with span("dpz." + name, **span_kw) as sp:
        yield sp
    stats.times[name] = time.perf_counter() - t0


@dataclass
class DPZStats:
    """Instrumentation gathered during one compression.

    Sizes are bytes; times are seconds; CRs are compression *factors*
    (>1 means smaller).  ``cr_stage12`` counts the k-PCA scores at
    float32 against the original, ``cr_stage3`` the quantized streams
    against those scores, and ``cr_zlib`` the lossless add-on's gain --
    their product tracks the end-to-end ratio up to header/basis
    overhead (which ``cr`` includes exactly).
    """

    original_nbytes: int = 0
    compressed_nbytes: int = 0
    m_blocks: int = 0
    n_points: int = 0
    k: int = 0
    tve_at_k: float = 0.0
    standardized: bool = False
    outlier_fraction: float = 0.0
    times: dict[str, float] = field(default_factory=dict)
    cr: float = 0.0
    cr_stage12: float = 0.0
    cr_stage3: float = 0.0
    cr_zlib: float = 0.0
    psnr_stage12: float | None = None
    psnr_final: float | None = None
    truncated_fraction: float = 0.0
    correction_fraction: float = 0.0
    sampling: SamplingReport | None = None
    #: The float32 projection basis actually used ((k, M)); callers such
    #: as the store cache it and feed it back via ``reuse_basis=``.
    basis: np.ndarray | None = None
    #: True when ``reuse_basis`` passed verification and the per-chunk
    #: eigendecomposition was skipped entirely.
    basis_reused: bool = False

    @property
    def delta_psnr(self) -> float | None:
        """Accuracy lost to stage 3 (Table IV's delta-PSNR)."""
        if self.psnr_stage12 is None or self.psnr_final is None:
            return None
        return self.psnr_stage12 - self.psnr_final

    @property
    def bitrate(self) -> float:
        """Bits per value of the compressed artifact."""
        values = self.original_nbytes / 4  # nominal 32-bit values
        return 8.0 * self.compressed_nbytes / values


class DPZCompressor:
    """DPZ lossy compressor (paper Sections IV-A..IV-D).

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.DPZConfig`; defaults to the
        paper's loose scheme (DPZ-l) with "three-nine" TVE selection.

    Examples
    --------
    >>> comp = DPZCompressor(DPZ_S.with_tve_nines(5))
    >>> blob = comp.compress(field)
    >>> recon = DPZCompressor.decompress(blob)
    """

    def __init__(self, config: DPZConfig = DPZ_L) -> None:
        self.config = config

    # -- probing ------------------------------------------------------------

    def probe(self, data: np.ndarray) -> SamplingReport:
        """Run the sampling strategy (Alg. 2) without compressing."""
        cfg = self.config
        data = np.asarray(data)
        # Same input normalization as compress(): the uncentered PCA's
        # spectrum (and hence k) is offset-sensitive.
        dmin = float(data.min())
        rng = float(data.max()) - dmin
        if rng == 0.0:
            rng = 1.0
        work = (data.astype(np.float64) - dmin) / rng - 0.5
        blocks, _ = decompose(work, cfg.max_ratio)
        coeffs = forward_transform(blocks, cfg.transform, cfg.n_jobs)
        return sampling_probe(
            coeffs.T, tve=cfg.tve, subsets=cfg.sampling_subsets,
            picks=cfg.sampling_picks, sampling_rate=cfg.sampling_rate,
            orig_nbytes=int(data.nbytes),
        )

    # -- compression ----------------------------------------------------------

    def compress(self, data: np.ndarray) -> bytes:
        """Compress; returns the container bytes."""
        blob, _ = self.compress_with_stats(data)
        return blob

    def compress_with_stats(self, data: np.ndarray, *,
                            stage_psnr: bool = False,
                            reuse_basis: np.ndarray | None = None
                            ) -> tuple[bytes, DPZStats]:
        """Compress and return ``(blob, stats)``.

        ``stage_psnr=True`` additionally reconstructs the data twice
        (once from unquantized and once from quantized scores) to fill
        ``psnr_stage12`` / ``psnr_final`` -- roughly doubling runtime.

        ``reuse_basis`` is an optional ``(k, M)`` float32 basis from a
        previous fit on like data (e.g. a sibling store chunk).  It is
        *verified, never trusted*: the data is projected onto it and the
        achieved TVE (captured energy over total energy) must still meet
        ``config.tve``, else the basis is discarded and a fresh fit runs.
        Reuse only applies on the plain path (TVE mode, no sampling, no
        standardization) where the verification is exact; the basis that
        ends up used either way is published as ``stats.basis``.
        """
        t_start = time.perf_counter()
        cfg = self.config
        data = np.asarray(data)
        # Byte-order-insensitive lookup: a '>f4' input is still an f4
        # field and must produce the same archive as its '<f4' twin.
        dtype_tag = _DTYPE_TAGS.get(data.dtype.newbyteorder("="))
        if dtype_tag is None:
            data = data.astype(np.float64)
            dtype_tag = "f8"
        if data.size == 0:
            raise DataShapeError("cannot compress an empty array")
        stats = DPZStats(original_nbytes=int(data.nbytes))

        # Input normalization to [-0.5, 0.5] (DCTZ-inherited): makes the
        # quantizer bound range-relative and the score scale universal.
        dmin = float(data.min())
        rng = float(data.max()) - dmin
        if rng == 0.0:
            rng = 1.0
        work = (np.asarray(data, dtype=np.float64) - dmin) / rng - 0.5

        # Stage 1a: decomposition.
        with _stage(stats, "decompose", bytes_in=stats.original_nbytes) as sp:
            blocks, plan = decompose(work, cfg.max_ratio)
            sp.add(m_blocks=plan.m_blocks, n_points=plan.n_points,
                   bytes_out=int(blocks.nbytes))
        stats.m_blocks, stats.n_points = plan.m_blocks, plan.n_points

        # Stage 1b: per-block transform (DCT by default), plus the
        # optional pre-PCA coefficient truncation extension.
        with _stage(stats, "dct", bytes_in=int(blocks.nbytes),
                    transform=cfg.transform, n_jobs=cfg.n_jobs) as sp:
            coeffs = forward_transform(blocks, cfg.transform, cfg.n_jobs)
            if cfg.dct_truncate > 0:
                coeffs, zeroed = truncate_coefficients(coeffs,
                                                       cfg.dct_truncate)
                stats.truncated_fraction = zeroed
            sp.add(bytes_out=int(coeffs.nbytes))
        features = coeffs.T  # (N samples, M features)

        # Optional sampling (Alg. 2): k estimate + linearity flag.  The
        # 'auto' standardize policy only needs the cheap VIF half.
        report: SamplingReport | None = None
        low_linearity = False
        shared_cov: np.ndarray | None = None
        if cfg.use_sampling:
            with _stage(stats, "sampling", bytes_in=int(features.nbytes)):
                # Second-moment matrix computed once, shared between the
                # probe's k refinement and the projection fit below.
                shared_cov = (features.T @ features) / (features.shape[0] - 1)
                report = sampling_probe(
                    features, tve=cfg.tve, subsets=cfg.sampling_subsets,
                    picks=cfg.sampling_picks,
                    sampling_rate=cfg.sampling_rate,
                    orig_nbytes=stats.original_nbytes, cov=shared_cov,
                )
            stats.sampling = report
            low_linearity = report.low_linearity
        elif cfg.standardize == "auto":
            with _stage(stats, "sampling", bytes_in=int(features.nbytes)):
                _, _, low_linearity = linearity_probe(
                    features, sampling_rate=cfg.sampling_rate)
        if cfg.standardize == "always":
            standardize = True
        elif cfg.standardize == "never":
            standardize = False
        else:
            standardize = low_linearity
        stats.standardized = standardize

        # Stage 2: k-PCA.
        with _stage(stats, "pca", bytes_in=int(features.nbytes),
                    standardized=standardize) as sp:
            reused = False
            if (reuse_basis is not None and not cfg.use_sampling
                    and not standardize and cfg.k_mode == "tve"
                    and reuse_basis.ndim == 2
                    and reuse_basis.shape[1] == features.shape[1]):
                # Project first, verify after: the achieved TVE of the
                # candidate basis on *this* data decides whether the
                # cached fit still meets the configured threshold, and
                # the smallest component prefix that clears it is kept
                # (per-component captured energies are additive over an
                # ordered orthonormal basis).  The energy identity
                # ||scores||^2 == captured energy only holds for
                # orthonormal rows, so a cheap Gram check guards it (a
                # non-orthonormal basis could inflate the score norms
                # and pass the threshold spuriously).
                basis = reuse_basis.astype(np.float64)
                gram_dev = float(np.abs(basis @ basis.T
                                        - np.eye(basis.shape[0])).max())
                if gram_dev < 1e-4:
                    full_scores = features @ basis.T
                    energy = float((features * features).sum())
                    cum = np.cumsum((full_scores * full_scores).sum(axis=0))
                    hits = np.flatnonzero(cum >= (cfg.tve - 1e-9) * energy)
                    if hits.size:
                        reused = True
                        k = int(hits[0]) + 1
                        comp32 = np.ascontiguousarray(
                            reuse_basis[:k], dtype=np.float32)
                        scores = np.ascontiguousarray(full_scores[:, :k])
                        tve_at_k = (min(float(cum[k - 1]) / energy, 1.0)
                                    if energy > 0 else 1.0)
                        pca_mean = np.zeros(features.shape[1])
                        pca_scale = None
            if not reused:
                if cfg.use_sampling:
                    k = min(report.k_estimate, plan.m_blocks)
                    if standardize or shared_cov is None:
                        pca = PCA(n_components=k, solver="eigsh",
                                  standardize=standardize,
                                  center=False).fit(features)
                    else:
                        pca = PCA.from_covariance(shared_cov, k)
                    curve = pca.tve_curve()
                    tve_at_k = float(curve[-1])
                else:
                    res = fit_kpca(
                        features, k_mode=cfg.k_mode, tve=cfg.tve,
                        knee_fit=cfg.knee_fit, fixed_k=cfg.fixed_k,
                        standardize=standardize, compute_scores=False,
                        solver=cfg.pca_solver,
                    )
                    pca, k, tve_at_k = res.pca, res.k, res.tve_at_k
                # Round the basis to its stored (float32) precision
                # *before* projecting, so encoder and decoder share one
                # basis exactly.
                comp32 = pca.components_[:k].astype(np.float32)
                basis = comp32.astype(np.float64)
                # (x - 0.0) is bitwise x: skip centering on the all-zero
                # mean of the uncentered default.
                centered = (features - pca.mean_ if pca.mean_.any()
                            else features)
                if pca.scale_ is not None:
                    centered = centered / pca.scale_
                scores = centered @ basis.T
                pca_mean = pca.mean_
                pca_scale = pca.scale_
            sp.add(k=k, basis_reused=reused, bytes_out=int(scores.nbytes))
        stats.k, stats.tve_at_k = k, tve_at_k
        stats.basis_reused = reused
        # Publish the reusable basis with headroom: the candidate as
        # received when it was reused, else the freshly fitted
        # components a little past k (see _BASIS_HEADROOM).
        stats.basis = (np.asarray(reuse_basis, dtype=np.float32) if reused
                       else pca.components_[:k + _BASIS_HEADROOM]
                       .astype(np.float32))

        # Stage 3: quantization.  Scores live in normalized-data units,
        # so 'range' mode uses p directly and 'absolute' converts.
        with _stage(stats, "quantize", bytes_in=int(scores.nbytes),
                    n_bins=cfg.n_bins) as sp:
            p = cfg.p if cfg.p_mode == "range" else cfg.p / rng
            # Standardization rescales features to unit variance,
            # inflating score magnitudes far past the quantizer's fixed
            # range; bring them back with a stored global divisor so
            # stage 3 keeps its in-range mass (error scales by the same
            # factor on inverse).
            score_scale = 1.0
            if standardize and scores.size:
                spread = float(np.percentile(np.abs(scores), 99.0))
                target = 0.9 * p * cfg.n_bins
                if spread > target:
                    score_scale = spread / target
            out_dtype = np.float64 if cfg.store_outliers_f64 else np.float32
            q = quantize_scores(scores / score_scale, p, cfg.n_bins,
                                outlier_dtype=out_dtype)
            sp.add(bytes_out=int(q.indices.nbytes + q.outliers.nbytes),
                   outlier_fraction=round(q.outlier_fraction, 6))
        stats.outlier_fraction = q.outlier_fraction

        # Lossless add-on + container.
        with _stage(stats, "encode",
                    bytes_in=int(q.indices.nbytes + q.outliers.nbytes)) as sp:
            archive = DPZArchive(
                shape=tuple(data.shape), dtype_tag=dtype_tag,
                m_blocks=plan.m_blocks, n_points=plan.n_points, k=k, p=p,
                n_bins=cfg.n_bins, index_bytes=cfg.index_bytes,
                standardized=standardize, norm_offset=dmin, norm_scale=rng,
                score_scale=score_scale, transform=cfg.transform,
                outlier_dtype_tag="f8" if cfg.store_outliers_f64 else "f4",
                components=comp32, mean=pca_mean,
                scale=pca_scale, indices=q.indices, outliers=q.outliers,
            )
            # Optional strict pointwise bound (extension; see DPZConfig).
            if cfg.max_error is not None:
                with _stage(stats, "correction",
                            bytes_in=stats.original_nbytes):
                    target = cfg.max_error * rng
                    if dtype_tag == "f4":
                        ulp = float(
                            np.spacing(np.float32(np.max(np.abs(data)))))
                        if target > 2.0 * ulp:
                            target -= ulp
                    recon = self._reconstruct(
                        archive, dequantize_scores(q) * score_scale,
                        raw=True)
                    resid = (data.astype(np.float64).reshape(-1)
                             - recon.reshape(-1))
                    bad = np.flatnonzero(np.abs(resid) > target)
                    if bad.size:
                        bound_c = target / 2.0
                        archive.corr_bound = bound_c
                        archive.corr_indices = bad.astype(np.int64)
                        archive.corr_codes = lattice_quantize(resid[bad],
                                                              bound_c)
                    stats.correction_fraction = bad.size / data.size

            with span("dpz.serialize") as ssp:
                blob, sizes = serialize(archive, cfg.zlib_level)
                ssp.add(bytes_out=len(blob),
                        sec_meta=sizes.meta, sec_components=sizes.components,
                        sec_mean_scale=sizes.mean_scale,
                        sec_indices=sizes.indices,
                        sec_outliers=sizes.outliers,
                        sec_corrections=sizes.corrections)
            sp.add(bytes_out=len(blob))

        # Size accounting.
        stats.compressed_nbytes = len(blob)
        stats.cr = stats.original_nbytes / len(blob)
        scores_f32 = scores.size * 4
        raw_stage3 = (q.indices.nbytes + q.outliers.nbytes)
        stats.cr_stage12 = stats.original_nbytes / max(scores_f32, 1)
        stats.cr_stage3 = scores_f32 / max(raw_stage3, 1)
        stats.cr_zlib = raw_stage3 / max(sizes.indices + sizes.outliers, 1)

        if stage_psnr:
            recon12 = self._reconstruct(archive, scores,
                                        corrections=False)
            stats.psnr_stage12 = psnr(data, recon12)
            recon3 = self._reconstruct(
                archive, dequantize_scores(q) * score_scale)
            stats.psnr_final = psnr(data, recon3)

        # Quality telemetry (opt-in, Z-checker style): reconstruct once
        # more and record the rate-distortion point as gauges + span
        # metadata.  Purely read-only -- the blob is already final, so
        # the archive stays byte-identical with telemetry on or off.
        if _quality.quality_enabled():
            with _stage(stats, "quality", bytes_in=stats.original_nbytes):
                recon_q = self._reconstruct(
                    archive, dequantize_scores(q) * score_scale)
                _quality.record_quality(data, recon_q, len(blob),
                                        tve_at_k=stats.tve_at_k)

        counter_inc("dpz.compress.runs")
        counter_inc("dpz.compress.bytes_in", stats.original_nbytes)
        counter_inc("dpz.compress.bytes_out", len(blob))
        gauge_set("dpz.last.cr", stats.cr)
        gauge_set("dpz.last.k", float(k))
        observe("dpz.compress.seconds", time.perf_counter() - t_start)
        return blob, stats

    # -- decompression --------------------------------------------------------

    @staticmethod
    def _reconstruct(archive: DPZArchive, scores: np.ndarray, *,
                     corrections: bool = True,
                     raw: bool = False) -> np.ndarray:
        """Shared inverse pipeline from scores to the data domain.

        ``corrections`` applies the optional max-error correction pass
        (disabled when measuring the uncorrected stage PSNRs);
        ``raw=True`` returns float64 before the output-dtype cast and
        skips corrections (used to *compute* them).
        """
        with span("dpz.inverse_pca", bytes_in=int(scores.nbytes)) as sp:
            basis = archive.components.astype(np.float64)
            feats = scores @ basis
            if archive.scale is not None:
                feats = feats * archive.scale
            feats = feats + archive.mean
            sp.add(bytes_out=int(feats.nbytes))
        coeffs = feats.T  # (M, N)
        with span("dpz.inverse_transform", bytes_in=int(coeffs.nbytes),
                  transform=archive.transform):
            blocks = inverse_transform(coeffs, archive.transform)
        plan = DecompositionPlan(
            shape=archive.shape,
            total_values=int(np.prod(archive.shape)),
            m_blocks=archive.m_blocks,
            n_points=archive.n_points,
        )
        with span("dpz.reassemble", bytes_in=int(blocks.nbytes)) as sp:
            out = reassemble(blocks, plan)
            out = (out + 0.5) * archive.norm_scale + archive.norm_offset
            sp.add(bytes_out=int(out.nbytes))
        if raw:
            return out
        if corrections and archive.corr_indices is not None:
            flat = out.reshape(-1)
            flat[archive.corr_indices] += lattice_dequantize(
                archive.corr_codes, archive.corr_bound
            )
        return out.astype(archive.original_dtype)

    @staticmethod
    def decompress(blob: bytes, *, k: int | None = None) -> np.ndarray:
        """Decompress a container produced by :meth:`compress`.

        ``k`` enables *progressive* reconstruction: only the leading
        ``k`` of the stored components contribute (the paper\'s
        "reconstruction at any level shows consistency" property --
        DPZ\'s components are ordered by information, so a truncated
        decode is the optimal lower-fidelity preview of the same
        archive).  The max-error correction channel, when present, is
        calibrated for the full-``k`` reconstruction and is skipped for
        partial decodes.
        """
        t_start = time.perf_counter()
        with span("dpz.deserialize", bytes_in=len(blob)):
            archive = deserialize(blob)
        with span("dpz.dequantize",
                  bytes_in=int(archive.indices.nbytes
                               + archive.outliers.nbytes)) as sp:
            q = QuantizedScores(
                indices=archive.indices, outliers=archive.outliers,
                p=archive.p, n_bins=archive.n_bins,
                shape=(archive.n_points, archive.k),
            )
            scores = dequantize_scores(q) * archive.score_scale
            sp.add(bytes_out=int(scores.nbytes))
        if k is not None:
            if not 1 <= k <= archive.k:
                raise DataShapeError(
                    f"progressive k must be in [1, {archive.k}], got {k}"
                )
            if k < archive.k:
                scores = scores.copy()
                scores[:, k:] = 0.0
                out = DPZCompressor._reconstruct(archive, scores,
                                                 corrections=False)
            else:
                out = DPZCompressor._reconstruct(archive, scores)
        else:
            out = DPZCompressor._reconstruct(archive, scores)
        counter_inc("dpz.decompress.runs")
        counter_inc("dpz.decompress.bytes_in", len(blob))
        counter_inc("dpz.decompress.bytes_out", int(out.nbytes))
        observe("dpz.decompress.seconds", time.perf_counter() - t_start)
        return out
