"""DPZ configuration and the paper's published schemes.

The evaluation (Section V-A) defines two operating schemes:

* **DPZ-l** ("loose"): quantizer error bound ``P = 1e-3`` with 1-byte
  bin indices;
* **DPZ-s** ("strict"): ``P = 1e-4`` with 2-byte bin indices.

Either combines with one of the k-selection policies of Alg. 1:
knee-point detection (``k_mode='knee'``) or explained variance
variation (``k_mode='tve'`` with a "n-nines" threshold).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.information import nines_to_tve
from repro.errors import ConfigError

__all__ = ["DPZConfig", "DPZ_L", "DPZ_S"]

_K_MODES = ("knee", "tve", "fixed")
_PCA_SOLVERS = ("auto", "dense", "randomized")
_KNEE_FITS = ("1d", "polyn")
_STANDARDIZE = ("auto", "always", "never")
_P_MODES = ("absolute", "range")


@dataclass(frozen=True)
class DPZConfig:
    """Full configuration of a DPZ compressor.

    Parameters
    ----------
    p:
        Stage-3 quantizer error bound ``P`` (paper: 1e-3 loose /
        1e-4 strict).  Applies to in-range k-PCA scores.
    p_mode:
        DPZ (like its predecessor DCTZ) normalizes the input to unit
        range before stage 1, so with the default ``'range'`` the bound
        ``p`` is *range-relative*: one config is portable across
        datasets of any magnitude, and the mean relative error theta
        scales directly with ``p``.  ``'absolute'`` instead interprets
        ``p`` in raw data units (it is divided by the data range
        internally).
    index_bytes:
        1 or 2; bin indices are stored as uint8/uint16.  Sets the bin
        count ``B = 2**(8*index_bytes) - 1`` (one code reserved for the
        out-of-range escape).
    k_mode:
        ``'knee'`` (Alg. 1 Method 1), ``'tve'`` (Method 2) or
        ``'fixed'`` (use ``fixed_k``; what the sampling strategy feeds).
    tve:
        TVE threshold for ``k_mode='tve'``; see
        :func:`repro.analysis.information.nines_to_tve` for the paper's
        "n-nines" values.
    knee_fit:
        Spline fit for knee detection: ``'1d'`` or ``'polyn'``.
    fixed_k:
        Component count for ``k_mode='fixed'``.
    standardize:
        ``'auto'`` standardizes features only when the sampling VIF
        probe reports low linearity (paper Alg. 2 step 2); ``'always'``
        / ``'never'`` override.
    pca_solver:
        Stage-2 eigensolver: ``'dense'`` (the exact paths), ``'randomized'``
        (seeded Halko range finder with an exactness fallback) or
        ``'auto'`` (randomized where it wins; see
        :func:`repro.core.kpca.fit_kpca`).
    use_sampling:
        Estimate ``k`` from subset PCA (Alg. 2) instead of a full-data
        eigenanalysis at the configured TVE.
    sampling_subsets:
        ``S`` of Alg. 2 (default 10).
    sampling_picks:
        ``T`` of Alg. 2 (default 3).
    sampling_rate:
        ``SR`` for the VIF compressibility probe (default 1%).
    transform:
        Stage-1b transform: ``'dct'`` (the paper), ``'haar'``,
        ``'cdf53'`` or ``'identity'`` -- the paper's "PCA in other
        transform domains" extension, first-class.
    dct_truncate:
        If > 0, zero transform coefficients below this fraction of the
        largest magnitude *before* the PCA (the paper's future-work
        item on coefficient truncation).  0 disables.
    max_ratio:
        Largest acceptable N/M in the decomposition before padding
        kicks in (see :mod:`repro.core.decompose`).
    zlib_level:
        Lossless add-on compression level.
    n_jobs:
        Worker threads for the block-parallel stages (1 = serial).
    store_outliers_f64:
        Keep out-of-range scores in float64 instead of float32 (exact,
        slightly larger streams).
    max_error:
        Optional strict pointwise error bound, *relative to the data
        range* (e.g. 1e-3).  DPZ's native loss model is L2 (energy):
        k-PCA truncation bounds total energy, not individual points.
        Setting this enables a correction pass -- residuals exceeding
        the bound are stored explicitly (SZ-style "unpredictable
        point" handling) -- giving DPZ the same hard max-error contract
        as SZ/MGARD at the cost of extra correction bytes on rough
        data.  None (default) reproduces the paper exactly.
    """

    p: float = 1e-3
    p_mode: str = "range"
    index_bytes: int = 1
    k_mode: str = "tve"
    tve: float = nines_to_tve(3)
    knee_fit: str = "1d"
    fixed_k: int | None = None
    standardize: str = "auto"
    pca_solver: str = "auto"
    use_sampling: bool = False
    sampling_subsets: int = 10
    sampling_picks: int = 3
    sampling_rate: float = 0.01
    transform: str = "dct"
    dct_truncate: float = 0.0
    max_ratio: int = 8
    zlib_level: int = 6
    n_jobs: int = 1
    store_outliers_f64: bool = False
    max_error: float | None = None

    def __post_init__(self) -> None:
        if self.p <= 0:
            raise ConfigError(f"quantizer bound p must be positive, got {self.p}")
        if self.p_mode not in _P_MODES:
            raise ConfigError(f"p_mode must be one of {_P_MODES}")
        if self.index_bytes not in (1, 2):
            raise ConfigError(
                f"index_bytes must be 1 or 2, got {self.index_bytes}"
            )
        if self.k_mode not in _K_MODES:
            raise ConfigError(f"k_mode must be one of {_K_MODES}")
        if self.k_mode == "fixed" and (self.fixed_k is None or self.fixed_k < 1):
            raise ConfigError("k_mode='fixed' requires fixed_k >= 1")
        if not 0.0 < self.tve <= 1.0:
            raise ConfigError(f"tve must be in (0, 1], got {self.tve}")
        if self.knee_fit not in _KNEE_FITS:
            raise ConfigError(f"knee_fit must be one of {_KNEE_FITS}")
        if self.standardize not in _STANDARDIZE:
            raise ConfigError(f"standardize must be one of {_STANDARDIZE}")
        if self.pca_solver not in _PCA_SOLVERS:
            raise ConfigError(
                f"pca_solver must be one of {_PCA_SOLVERS}, got "
                f"{self.pca_solver!r}"
            )
        if self.sampling_subsets < 2:
            raise ConfigError("sampling_subsets must be >= 2")
        if not 1 <= self.sampling_picks <= self.sampling_subsets:
            raise ConfigError(
                "sampling_picks must be in [1, sampling_subsets]"
            )
        if not 0.0 < self.sampling_rate <= 1.0:
            raise ConfigError("sampling_rate must be in (0, 1]")
        from repro.core.encode import TRANSFORMS
        if self.transform not in TRANSFORMS:
            raise ConfigError(
                f"transform must be one of {TRANSFORMS}, got "
                f"{self.transform!r}"
            )
        if not 0.0 <= self.dct_truncate < 1.0:
            raise ConfigError(
                f"dct_truncate must be in [0, 1), got {self.dct_truncate}"
            )
        if self.max_error is not None and self.max_error <= 0:
            raise ConfigError(
                f"max_error must be positive, got {self.max_error}"
            )
        if self.max_ratio < 2:
            raise ConfigError("max_ratio must be >= 2")
        if not 0 <= self.zlib_level <= 9:
            raise ConfigError("zlib_level must be in [0, 9]")
        if self.n_jobs < 0:
            raise ConfigError("n_jobs must be >= 0 (0 = all cores)")

    @property
    def n_bins(self) -> int:
        """Quantizer bin count ``B`` (one index value is the escape)."""
        return (1 << (8 * self.index_bytes)) - 1

    def with_tve_nines(self, nines: int) -> "DPZConfig":
        """Copy of this config in TVE mode at the given "n-nines"."""
        return replace(self, k_mode="tve", tve=nines_to_tve(nines))

    def with_knee(self, fit: str = "1d") -> "DPZConfig":
        """Copy of this config in knee-point mode with the given fit."""
        return replace(self, k_mode="knee", knee_fit=fit)


#: The paper's "loose" scheme: P = 1e-3, 1-byte indexing.
DPZ_L = DPZConfig(p=1e-3, index_bytes=1)

#: The paper's "strict" scheme: P = 1e-4, 2-byte indexing.
DPZ_S = DPZConfig(p=1e-4, index_bytes=2)
