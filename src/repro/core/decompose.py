"""Stage 1a: block decomposition of arbitrary-dimensional data.

The paper (Section IV-A) flattens the input in its original order and
rearranges it into an ``M x N`` matrix -- ``M`` 1-D blocks of ``N``
datapoints each -- chosen so that:

* ``M < N`` (PCA needs more samples than features);
* ``M`` is as large as possible under that constraint ("the larger the
  M, the higher the compression ratios"), i.e. ``N / M`` is the
  smallest workable ratio;
* consecutive blocks are consecutive runs of the flattened data, so
  block adjacency preserves spatial locality (what makes neighboring
  block-features collinear and PCA effective).

Concretely we search for the smallest integer ratio ``d >= 2`` with
``total = d * M**2`` for integer ``M`` -- reproducing the paper's
examples exactly (128^3 -> M=1024, N=2048 with d=2; an 1800x3600 CESM
field -> M=1800, N=3600).  When no ratio up to ``max_ratio`` divides
the size that way, the data is padded (edge-replicated) up to the next
size that factors with ``d = 2``; the original length is recorded so
reassembly is exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import DataShapeError

__all__ = ["DecompositionPlan", "plan_decomposition", "decompose",
           "reassemble"]


@dataclass(frozen=True)
class DecompositionPlan:
    """Geometry of a block decomposition.

    ``m_blocks * n_points >= total_values``; the excess (if any) is
    padding appended after the real data.
    """

    shape: tuple[int, ...]
    total_values: int
    m_blocks: int
    n_points: int

    @property
    def padded_total(self) -> int:
        """Flattened length after padding."""
        return self.m_blocks * self.n_points

    @property
    def pad(self) -> int:
        """Number of padding values appended."""
        return self.padded_total - self.total_values

    @property
    def ratio(self) -> int:
        """The N/M ratio of the plan."""
        return self.n_points // self.m_blocks


def _square_factor(total: int, max_ratio: int) -> tuple[int, int] | None:
    """Find the smallest d in [2, max_ratio] with total = d * M^2."""
    for d in range(2, max_ratio + 1):
        if total % d:
            continue
        m = math.isqrt(total // d)
        if m * m * d == total and m >= 2:
            return m, m * d
    return None


def plan_decomposition(shape: tuple[int, ...],
                       max_ratio: int = 8) -> DecompositionPlan:
    """Choose (M, N) for data of the given shape.

    Tries the paper's exact rule first (smallest ratio ``d >= 2`` such
    that the size is ``d * M**2``); pads up to the next ``2 * M**2``
    size otherwise.
    """
    if not shape or any(n < 1 for n in shape):
        raise DataShapeError(f"invalid data shape {shape}")
    total = int(np.prod(shape))
    if total < 8:
        raise DataShapeError(
            f"data too small to decompose ({total} values; need >= 8)"
        )
    found = _square_factor(total, max_ratio)
    if found is not None:
        m, n = found
        return DecompositionPlan(shape=tuple(shape), total_values=total,
                                 m_blocks=m, n_points=n)
    # Pad to the next size of the form 2 * M^2.
    m = math.isqrt((total + 1) // 2)
    if 2 * m * m < total:
        m += 1
    return DecompositionPlan(shape=tuple(shape), total_values=total,
                             m_blocks=m, n_points=2 * m)


def decompose(data: np.ndarray,
              max_ratio: int = 8) -> tuple[np.ndarray, DecompositionPlan]:
    """Flatten ``data`` and rearrange into an ``(M, N)`` block matrix.

    Row ``i`` of the result is the ``i``-th block: the contiguous run
    ``flat[i*N : (i+1)*N]`` of the C-order flattening.  Padding (when
    the plan requires it) replicates the final value.
    """
    data = np.asarray(data)
    plan = plan_decomposition(data.shape, max_ratio)
    flat = data.reshape(-1).astype(np.float64, copy=False)
    if plan.pad:
        flat = np.concatenate([flat, np.full(plan.pad, flat[-1])])
    return flat.reshape(plan.m_blocks, plan.n_points), plan


def reassemble(blocks: np.ndarray, plan: DecompositionPlan) -> np.ndarray:
    """Invert :func:`decompose` (drops padding, restores shape)."""
    blocks = np.asarray(blocks)
    if blocks.shape != (plan.m_blocks, plan.n_points):
        raise DataShapeError(
            f"block matrix shape {blocks.shape} does not match plan "
            f"({plan.m_blocks}, {plan.n_points})"
        )
    flat = blocks.reshape(-1)[: plan.total_values]
    return flat.reshape(plan.shape)
