"""Stage-1b transform registry and pre-PCA coefficient truncation.

Two of the paper's stated extensions live here:

* **Transform choice** (Section III-B2: "PCA in other transform domains
  (e.g., wavelet transforms) should also work"): stage 1b can run the
  orthonormal DCT-II (the paper's choice), a multi-level Haar or
  CDF 5/3 lifting wavelet, or no transform at all.  The transform id is
  recorded in the container so decompression is self-describing.
* **Pre-PCA coefficient truncation** (Section VII future work: "analyze
  the effect of DCT coefficients truncation before applying PCA"):
  optionally zero all transform coefficients whose magnitude falls
  below a fraction of the largest, before the eigenanalysis.  On
  energy-compacted coefficients this denoises the feature covariance
  and can reduce ``k`` at a given TVE; the ablation bench measures the
  trade.

Transforms operate blockwise on the ``(M, N)`` block matrix along axis
1 and must be losslessly invertible (exactly, or to fp tolerance) --
all compression decisions stay in stages 2-3.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.parallel import ParallelConfig, chunk_slices, parallel_map
from repro.transforms.dct import dct1d, idct1d
from repro.transforms.wavelet import multilevel_forward, multilevel_inverse

__all__ = ["TRANSFORMS", "forward_transform", "inverse_transform",
           "truncate_coefficients"]

#: Stage-1b transform ids, in container-encoding order.
TRANSFORMS = ("dct", "haar", "cdf53", "identity")

#: Wavelet decomposition depth for the multi-level transforms.
_WAVELET_LEVELS = 3

_MIN_ROWS_PER_CHUNK = 64


def _wavelet_band_sizes(n: int, kind: str) -> list[int]:
    """Band lengths produced by the multi-level forward transform."""
    probe = multilevel_forward(np.zeros((1, n)), _WAVELET_LEVELS,
                               wavelet=kind)
    return [b.shape[-1] for b in probe]


def _wavelet_fwd(blocks: np.ndarray, kind: str) -> np.ndarray:
    bands = multilevel_forward(blocks, _WAVELET_LEVELS, wavelet=kind)
    return np.concatenate(bands, axis=-1)


def _wavelet_inv(coeffs: np.ndarray, kind: str) -> np.ndarray:
    # Band sizes are a pure function of the length, so the inverse
    # needs no side information.
    total = coeffs.shape[-1]
    sizes = _wavelet_band_sizes(total, kind)
    bands = []
    start = 0
    for s in sizes:
        bands.append(coeffs[..., start : start + s])
        start += s
    return multilevel_inverse(bands, wavelet=kind)


def _run_chunked(blocks: np.ndarray, fn, n_jobs: int) -> np.ndarray:
    blocks = np.asarray(blocks, dtype=np.float64)
    m = blocks.shape[0]
    if n_jobs == 1 or m < 2 * _MIN_ROWS_PER_CHUNK:
        return fn(blocks)
    slices = chunk_slices(m, max(1, m // _MIN_ROWS_PER_CHUNK))
    chunks = parallel_map(lambda sl: fn(blocks[sl]), slices,
                          config=ParallelConfig(n_jobs=n_jobs or None,
                                                min_chunk=2))
    return np.concatenate(chunks, axis=0)


def forward_transform(blocks: np.ndarray, transform: str = "dct",
                      n_jobs: int = 1) -> np.ndarray:
    """Apply the configured stage-1b transform to every block (row)."""
    if transform == "dct":
        return _run_chunked(blocks, lambda b: dct1d(b, axis=1), n_jobs)
    if transform in ("haar", "cdf53"):
        return _run_chunked(blocks, lambda b: _wavelet_fwd(b, transform),
                            n_jobs)
    if transform == "identity":
        return np.asarray(blocks, dtype=np.float64)
    raise ConfigError(f"unknown stage-1 transform {transform!r}; "
                      f"use one of {TRANSFORMS}")


def inverse_transform(coeffs: np.ndarray, transform: str = "dct",
                      n_jobs: int = 1) -> np.ndarray:
    """Invert :func:`forward_transform`."""
    if transform == "dct":
        return _run_chunked(coeffs, lambda c: idct1d(c, axis=1), n_jobs)
    if transform in ("haar", "cdf53"):
        return _run_chunked(coeffs, lambda c: _wavelet_inv(c, transform),
                            n_jobs)
    if transform == "identity":
        return np.asarray(coeffs, dtype=np.float64)
    raise ConfigError(f"unknown stage-1 transform {transform!r}; "
                      f"use one of {TRANSFORMS}")


def truncate_coefficients(coeffs: np.ndarray,
                          rel_threshold: float) -> tuple[np.ndarray, float]:
    """Zero coefficients below ``rel_threshold * max|coeff|``.

    Returns the truncated matrix and the fraction of coefficients
    zeroed.  ``rel_threshold <= 0`` is a no-op.
    """
    if rel_threshold <= 0:
        return coeffs, 0.0
    if rel_threshold >= 1:
        raise ConfigError(
            f"truncation threshold must be in (0, 1), got {rel_threshold}"
        )
    peak = float(np.max(np.abs(coeffs))) if coeffs.size else 0.0
    if peak == 0.0:
        return coeffs, 0.0
    mask = np.abs(coeffs) >= rel_threshold * peak
    zeroed = 1.0 - float(mask.mean())
    return np.where(mask, coeffs, 0.0), zeroed
