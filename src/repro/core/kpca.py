"""Stage 2: k-PCA selection in the DCT domain (paper Alg. 1).

The DCT-domain block matrix is treated as ``N`` samples of ``M``
features (features = blocks, as Section IV-A arranges with ``M < N``).
PCA is fitted over those features -- which, per the Eq. 3-6 proof, is
exactly PCA of the original data expressed in the DCT basis -- and the
component count ``k`` is chosen by one of:

* **knee-point detection** (Method 1): maximum curvature of the fitted
  cumulative-TVE curve; aggressive, parameter-free;
* **explained variance variation** (Method 2): smallest ``k`` reaching
  a TVE threshold ("two-nine" ... "eight-nine");
* **fixed** ``k``: supplied externally, e.g. by the sampling strategy
  (Alg. 2), skipping the threshold search.

Standardization is applied only when requested (paper: only for
low-linearity data, since DCT-domain block features share a unit norm
and rescaling would redistribute variance weight).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.knee import detect_knee
from repro.errors import ConfigError
from repro.transforms.pca import PCA

__all__ = ["KPCAResult", "fit_kpca"]


@dataclass
class KPCAResult:
    """Fitted stage-2 state: the projection and everything needed to
    invert it.

    Attributes
    ----------
    pca:
        The fitted :class:`~repro.transforms.pca.PCA` (full spectrum).
    k:
        Selected component count.
    scores:
        ``(N, k)`` projection of the data onto the kept components.
    tve_at_k:
        Cumulative variance explained by the kept components.
    """

    pca: PCA
    k: int
    scores: np.ndarray
    tve_at_k: float

    def reconstruct(self, scores: np.ndarray | None = None) -> np.ndarray:
        """Map (possibly quantized) scores back to the DCT block domain.

        Returns the ``(N, M)`` feature matrix; transpose to get the
        ``(M, N)`` block matrix.
        """
        y = self.scores if scores is None else scores
        return self.pca.inverse_transform(y)


def fit_kpca(features: np.ndarray, *, k_mode: str = "tve",
             tve: float = 0.999, knee_fit: str = "1d",
             fixed_k: int | None = None,
             standardize: bool = False,
             center: bool = False) -> KPCAResult:
    """Fit PCA over DCT-domain features and select ``k`` (Alg. 1).

    Parameters
    ----------
    features:
        ``(N, M)`` matrix: N datapoint-samples of M block-features
        (i.e. the transposed block matrix).
    k_mode, tve, knee_fit, fixed_k:
        Selection policy; see module docstring.
    standardize:
        Scale features to unit variance before the eigenanalysis.
    center:
        Mean-center features first.  DPZ leaves this off (the default
        here) so component scores stay symmetric about zero, which is
        what stage 3's symmetric quantizer assumes; see
        :class:`repro.transforms.pca.PCA` for the discussion.
    """
    pca = PCA(standardize=standardize, center=center).fit(features)
    curve = pca.tve_curve()
    if k_mode == "tve":
        k = pca.components_for_tve(tve)
    elif k_mode == "knee":
        k = detect_knee(curve, method=knee_fit).k
    elif k_mode == "fixed":
        if fixed_k is None:
            raise ConfigError("k_mode='fixed' requires fixed_k")
        k = max(1, min(int(fixed_k), curve.size))
    else:
        raise ConfigError(f"unknown k_mode {k_mode!r}")
    scores = pca.transform(features, k=k)
    return KPCAResult(pca=pca, k=k, scores=scores,
                      tve_at_k=float(curve[k - 1]))
