"""Stage 2: k-PCA selection in the DCT domain (paper Alg. 1).

The DCT-domain block matrix is treated as ``N`` samples of ``M``
features (features = blocks, as Section IV-A arranges with ``M < N``).
PCA is fitted over those features -- which, per the Eq. 3-6 proof, is
exactly PCA of the original data expressed in the DCT basis -- and the
component count ``k`` is chosen by one of:

* **knee-point detection** (Method 1): maximum curvature of the fitted
  cumulative-TVE curve; aggressive, parameter-free;
* **explained variance variation** (Method 2): smallest ``k`` reaching
  a TVE threshold ("two-nine" ... "eight-nine");
* **fixed** ``k``: supplied externally, e.g. by the sampling strategy
  (Alg. 2), skipping the threshold search.

Standardization is applied only when requested (paper: only for
low-linearity data, since DCT-domain block features share a unit norm
and rescaling would redistribute variance weight).

Eigensolvers
------------
Two solver families back the fit (``solver=``):

* ``'dense'``: the exact paths that existed before this knob -- a full
  ``eigh`` for narrow feature matrices, an eigenvalues-only
  ``eigvalsh`` curve plus truncated extraction for wide ones.
* ``'randomized'``: a seeded Halko-style range finder.  A Gaussian
  sketch ``X @ Om`` is expanded by one power iteration and
  orthonormalized -- in float32, since it only locates the subspace --
  then the basis ``Q`` is re-orthonormalized in float64 and the small
  ``l x l`` Rayleigh-quotient matrix
  ``Q^T C Q = (XQ)^T (XQ) / (n-1)`` is solved densely.  Its Ritz values
  are *exactly* the variance captured along the returned orthonormal
  directions, so a TVE threshold checked against the Ritz curve is a
  guarantee on the achieved TVE of the kept basis, not an estimate.
  When the sketch is too small to reach the threshold it is doubled
  (``pca.solver.regrows``) until it does or the exactness fallback to
  the dense path kicks in (``pca.solver.fallbacks``).
* ``'auto'`` (default): randomized for wide uncentered TVE/fixed-mode
  fits where it wins; dense everywhere else (knee mode needs the whole
  curve's curvature, a caller-supplied covariance has already paid the
  dense cost, and tiny feature counts solve faster exactly).

The sketch RNG is seeded with a fixed constant, so the fitted basis is
reproducible run-to-run and machine-to-machine (same guarantee the
serialized archives rely on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg

from repro.analysis.knee import detect_knee
from repro.errors import ConfigError, DataShapeError
from repro.observability import counter_inc
from repro.transforms.pca import PCA, _fix_signs

__all__ = ["KPCAResult", "fit_kpca"]

#: Below this feature count a single dense ``eigh`` (full spectrum) is
#: cheaper than a ``eigvalsh`` curve pass plus a truncated extraction.
_DENSE_FEATURES = 256

#: Valid ``solver=`` choices for :func:`fit_kpca`.
_SOLVERS = ("auto", "dense", "randomized")

#: Below this feature count the randomized sketch cannot beat one
#: dense ``eigh`` (the sketch pipeline has ~5 BLAS calls of overhead).
_RANDOMIZED_MIN_FEATURES = 128

#: Fixed sketch seed: the randomized basis must be as reproducible as
#: the dense one (bases are serialized into archives and compared
#: bit-for-bit across runs).
_SKETCH_SEED = 0x1D5EED

#: Extra sketch columns beyond the target rank (Halko et al. recommend
#: 5-10; the power iteration lets us sit at the top of that range).
_OVERSAMPLE = 10

#: Power iterations applied to the sketch.  One pass is enough to push
#: the Ritz spectrum onto the true leading eigenvalues for the decaying
#: spectra DCT features produce (verified by the k-selection parity
#: tests); more would buy accuracy this use case cannot observe.
_POWER_ITERS = 1

#: First sketch width for TVE mode, where the rank is not known ahead
#: of time; grown geometrically until the Ritz curve crosses the
#: threshold.
_SKETCH_START = 32


@dataclass
class KPCAResult:
    """Fitted stage-2 state: the projection and everything needed to
    invert it.

    Attributes
    ----------
    pca:
        The fitted :class:`~repro.transforms.pca.PCA` (full spectrum).
    k:
        Selected component count.
    scores:
        ``(N, k)`` projection of the data onto the kept components.
    tve_at_k:
        Cumulative variance explained by the kept components.
    """

    pca: PCA
    k: int
    scores: np.ndarray | None
    tve_at_k: float

    def reconstruct(self, scores: np.ndarray | None = None) -> np.ndarray:
        """Map (possibly quantized) scores back to the DCT block domain.

        Returns the ``(N, M)`` feature matrix; transpose to get the
        ``(M, N)`` block matrix.
        """
        y = self.scores if scores is None else scores
        return self.pca.inverse_transform(y)


def _select_k(curve: np.ndarray, k_mode: str, tve: float, knee_fit: str,
              fixed_k: int | None) -> int:
    """Pick ``k`` from a cumulative-TVE curve (Alg. 1 selection step).

    Mirrors :meth:`PCA.components_for_tve` for ``'tve'`` (including its
    validation and epsilon) so selection is identical whichever path
    computed the curve.
    """
    if k_mode == "tve":
        if not 0.0 < tve <= 1.0:
            raise ConfigError(f"tve must be in (0, 1], got {tve}")
        hits = np.flatnonzero(curve >= tve - 1e-12)
        return int(hits[0]) + 1 if hits.size else int(curve.size)
    if k_mode == "knee":
        return detect_knee(curve, method=knee_fit).k
    if k_mode == "fixed":
        if fixed_k is None:
            raise ConfigError("k_mode='fixed' requires fixed_k")
        return max(1, min(int(fixed_k), curve.size))
    raise ConfigError(f"unknown k_mode {k_mode!r}")


def _randomized_spectrum(Xs: np.ndarray, X32: np.ndarray, l: int
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Leading Ritz pairs of ``Xs.T @ Xs / (n-1)`` from an ``l``-wide
    seeded Gaussian sketch.

    Never forms the ``f x f`` covariance: every product keeps one
    ``l``-wide operand, so the cost is ``O(n f l)`` instead of
    ``O(n f^2 + f^3)``.  The range finding runs in float32 (``X32``) --
    it only has to *locate* the dominant subspace, and the basis is
    rounded to float32 for storage downstream anyway -- while the
    finishing QR and Rayleigh-Ritz run in float64 against ``Xs``, so
    the returned rows are orthonormal to machine precision and the
    returned eigenvalues are the variance the basis *actually*
    captures.  That exactness is what makes TVE selection against the
    Ritz curve a guarantee rather than an estimate.
    """
    n = Xs.shape[0]
    rng = np.random.default_rng(_SKETCH_SEED)
    Om = rng.standard_normal((Xs.shape[1], l)).astype(np.float32)
    Y = X32.T @ (X32 @ Om)
    for _ in range(_POWER_ITERS):
        Q, _ = np.linalg.qr(Y)
        Y = X32.T @ (X32 @ Q)
    Q, _ = np.linalg.qr(Y.astype(np.float64))
    W = Xs @ Q
    B = (W.T @ W) / (n - 1)
    eigvals, V = np.linalg.eigh(B)
    order = np.argsort(eigvals)[::-1]
    eigvals = np.maximum(eigvals[order], 0.0)
    components = _fix_signs(np.ascontiguousarray((Q @ V[:, order]).T))
    return eigvals, components


def _randomized_fit(Xs: np.ndarray, denom: float, k_mode: str,
                    tve: float, fixed_k: int | None
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                               int] | None:
    """Adaptive randomized eigensolve; ``None`` means "go dense".

    Grows the sketch geometrically until the Ritz TVE curve crosses the
    threshold (TVE mode) or covers ``fixed_k``.  Once a sketch would
    pass half the feature count, a dense solve is both cheaper and
    exact, so the caller falls back (the exactness fallback).
    """
    f = Xs.shape[1]
    if k_mode == "fixed":
        if fixed_k is None:
            raise ConfigError("k_mode='fixed' requires fixed_k")
        l = min(f, max(int(fixed_k) + _OVERSAMPLE, _SKETCH_START))
    else:
        if not 0.0 < tve <= 1.0:
            raise ConfigError(f"tve must be in (0, 1], got {tve}")
        l = min(f, _SKETCH_START)
    X32 = Xs.astype(np.float32)
    while True:
        eigvals, components = _randomized_spectrum(Xs, X32, l)
        curve = np.cumsum(eigvals) / denom
        if k_mode == "fixed":
            k = max(1, min(int(fixed_k), curve.size))
            return eigvals, components, curve, k
        if curve[-1] >= tve - 1e-12:
            hits = np.flatnonzero(curve >= tve - 1e-12)
            return eigvals, components, curve, int(hits[0]) + 1
        if 2 * l > f // 2:
            return None
        counter_inc("pca.solver.regrows")
        l = 2 * l


def fit_kpca(features: np.ndarray, *, k_mode: str = "tve",
             tve: float = 0.999, knee_fit: str = "1d",
             fixed_k: int | None = None,
             standardize: bool = False,
             center: bool = False,
             cov: np.ndarray | None = None,
             compute_scores: bool = True,
             solver: str = "auto") -> KPCAResult:
    """Fit PCA over DCT-domain features and select ``k`` (Alg. 1).

    Parameters
    ----------
    features:
        ``(N, M)`` matrix: N datapoint-samples of M block-features
        (i.e. the transposed block matrix).
    k_mode, tve, knee_fit, fixed_k:
        Selection policy; see module docstring.
    standardize:
        Scale features to unit variance before the eigenanalysis.
    center:
        Mean-center features first.  DPZ leaves this off (the default
        here) so component scores stay symmetric about zero, which is
        what stage 3's symmetric quantizer assumes; see
        :class:`repro.transforms.pca.PCA` for the discussion.
    cov:
        Optional precomputed ``(M, M)`` second-moment matrix of the
        *raw* features (``X.T @ X / (n - 1)``), e.g. shared with the
        sampling probe.  Only consulted on the uncentered,
        unstandardized path; ignored otherwise.
    compute_scores:
        When False, skip the projection and return ``scores=None``
        (the compressor reprojects against the float32-rounded basis
        anyway, so the full-precision projection here is wasted work).
    solver:
        ``'auto'`` | ``'dense'`` | ``'randomized'``; see the module
        docstring.  ``'randomized'`` is honored only on the uncentered
        TVE/fixed-mode path with no caller-supplied covariance;
        anywhere else it falls back to the exact dense solve
        (``pca.solver.fallbacks``).

    Notes
    -----
    On the default DPZ configuration (uncentered, ``M <= N``) this
    avoids the generic :meth:`PCA.fit`: the covariance is computed once
    and reused for both TVE selection and component extraction, and for
    wide feature matrices (``M > 256``) the TVE curve comes from an
    eigenvalues-only ``eigvalsh`` while only the leading-``k``
    eigenvectors are extracted (dense slice or Lanczos ``eigsh``) --
    the paper's "k-PCA time complexity can be reduced" claim
    (Section IV-D1).  The dense ``M <= 256`` path is arithmetically
    identical to the pre-existing full fit, bit for bit.
    """
    if solver not in _SOLVERS:
        raise ConfigError(
            f"unknown pca solver {solver!r}; expected one of {_SOLVERS}")
    X = np.asarray(features, dtype=np.float64)
    if X.ndim != 2:
        raise DataShapeError(f"PCA expects a 2-D matrix, got {X.ndim}-D")
    n, f = X.shape
    if n < 2:
        raise DataShapeError("PCA needs at least 2 samples")

    if center or f > n:
        # Centered (or feature-heavy SVD) request: the generic solver
        # already does the right thing; nothing to share or truncate.
        if solver == "randomized":
            counter_inc("pca.solver.fallbacks")
        counter_inc("pca.solver.dense")
        pca = PCA(standardize=standardize, center=center).fit(X)
        curve = pca.tve_curve()
        k = _select_k(curve, k_mode, tve, knee_fit, fixed_k)
        scores = pca.transform(X, k=k) if compute_scores else None
        return KPCAResult(pca=pca, k=k, scores=scores,
                          tve_at_k=float(curve[k - 1]))

    # Uncentered fast path (the DPZ hot path).
    if standardize:
        std = np.sqrt((X * X).sum(axis=0) / (n - 1))
        std[std == 0] = 1.0
        Xs = X / std
        cov = None  # a caller-supplied cov describes the raw features
    else:
        std = None
        Xs = X

    # Randomized dispatch.  The whole point is to never materialize the
    # f x f covariance, so a caller-supplied cov (already paid for) and
    # knee mode (needs the entire curve's curvature) stay dense.
    want_randomized = (
        (solver == "randomized"
         or (solver == "auto" and f >= _RANDOMIZED_MIN_FEATURES))
        and k_mode in ("tve", "fixed") and cov is None
    )
    if solver == "randomized" and not want_randomized:
        counter_inc("pca.solver.fallbacks")
    if want_randomized:
        total = max(float((Xs * Xs).sum() / (n - 1)), 0.0)
        denom = total if total > 0 else 1.0
        fit = _randomized_fit(Xs, denom, k_mode, tve, fixed_k)
        if fit is not None:
            counter_inc("pca.solver.randomized")
            eigvals, components, curve, k = fit
            pca = PCA.from_spectrum(components, eigvals,
                                    total_variance=total, scale=std,
                                    standardize=standardize)
            scores = pca.transform(X, k=k) if compute_scores else None
            return KPCAResult(pca=pca, k=k, scores=scores,
                              tve_at_k=float(curve[k - 1]))
        counter_inc("pca.solver.fallbacks")

    counter_inc("pca.solver.dense")
    if cov is None:
        cov = (Xs.T @ Xs) / (n - 1)
    total = max(float(np.trace(cov)), 0.0)
    denom = total if total > 0 else 1.0

    if f <= _DENSE_FEATURES:
        # One dense solve, full spectrum kept (tests and diagnostics
        # read the discarded tail of explained_variance_).
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(eigvals)[::-1]
        eigvals = np.maximum(eigvals[order], 0.0)
        components = _fix_signs(np.ascontiguousarray(eigvecs[:, order].T))
        curve = np.cumsum(eigvals) / denom
        k = _select_k(curve, k_mode, tve, knee_fit, fixed_k)
    else:
        # Eigenvalues-only pass for the TVE curve, then extract just
        # the leading-k eigenvectors.
        evals_full = np.maximum(np.linalg.eigvalsh(cov)[::-1], 0.0)
        curve = np.cumsum(evals_full) / denom
        k = _select_k(curve, k_mode, tve, knee_fit, fixed_k)
        if k >= f - 1 or k > f // 4:
            eigvals, eigvecs = np.linalg.eigh(cov)
            order = np.argsort(eigvals)[::-1][:k]
        else:
            eigvals, eigvecs = scipy.sparse.linalg.eigsh(cov, k=k,
                                                         which="LA")
            order = np.argsort(eigvals)[::-1]
        eigvals = np.maximum(eigvals[order], 0.0)
        components = _fix_signs(np.ascontiguousarray(eigvecs[:, order].T))

    pca = PCA.from_spectrum(components, eigvals, total_variance=total,
                            scale=std, standardize=standardize)
    scores = pca.transform(X, k=k) if compute_scores else None
    return KPCAResult(pca=pca, k=k, scores=scores,
                      tve_at_k=float(curve[k - 1]))
