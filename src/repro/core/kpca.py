"""Stage 2: k-PCA selection in the DCT domain (paper Alg. 1).

The DCT-domain block matrix is treated as ``N`` samples of ``M``
features (features = blocks, as Section IV-A arranges with ``M < N``).
PCA is fitted over those features -- which, per the Eq. 3-6 proof, is
exactly PCA of the original data expressed in the DCT basis -- and the
component count ``k`` is chosen by one of:

* **knee-point detection** (Method 1): maximum curvature of the fitted
  cumulative-TVE curve; aggressive, parameter-free;
* **explained variance variation** (Method 2): smallest ``k`` reaching
  a TVE threshold ("two-nine" ... "eight-nine");
* **fixed** ``k``: supplied externally, e.g. by the sampling strategy
  (Alg. 2), skipping the threshold search.

Standardization is applied only when requested (paper: only for
low-linearity data, since DCT-domain block features share a unit norm
and rescaling would redistribute variance weight).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg

from repro.analysis.knee import detect_knee
from repro.errors import ConfigError, DataShapeError
from repro.transforms.pca import PCA, _fix_signs

__all__ = ["KPCAResult", "fit_kpca"]

#: Below this feature count a single dense ``eigh`` (full spectrum) is
#: cheaper than a ``eigvalsh`` curve pass plus a truncated extraction.
_DENSE_FEATURES = 256


@dataclass
class KPCAResult:
    """Fitted stage-2 state: the projection and everything needed to
    invert it.

    Attributes
    ----------
    pca:
        The fitted :class:`~repro.transforms.pca.PCA` (full spectrum).
    k:
        Selected component count.
    scores:
        ``(N, k)`` projection of the data onto the kept components.
    tve_at_k:
        Cumulative variance explained by the kept components.
    """

    pca: PCA
    k: int
    scores: np.ndarray | None
    tve_at_k: float

    def reconstruct(self, scores: np.ndarray | None = None) -> np.ndarray:
        """Map (possibly quantized) scores back to the DCT block domain.

        Returns the ``(N, M)`` feature matrix; transpose to get the
        ``(M, N)`` block matrix.
        """
        y = self.scores if scores is None else scores
        return self.pca.inverse_transform(y)


def _select_k(curve: np.ndarray, k_mode: str, tve: float, knee_fit: str,
              fixed_k: int | None) -> int:
    """Pick ``k`` from a cumulative-TVE curve (Alg. 1 selection step).

    Mirrors :meth:`PCA.components_for_tve` for ``'tve'`` (including its
    validation and epsilon) so selection is identical whichever path
    computed the curve.
    """
    if k_mode == "tve":
        if not 0.0 < tve <= 1.0:
            raise ConfigError(f"tve must be in (0, 1], got {tve}")
        hits = np.flatnonzero(curve >= tve - 1e-12)
        return int(hits[0]) + 1 if hits.size else int(curve.size)
    if k_mode == "knee":
        return detect_knee(curve, method=knee_fit).k
    if k_mode == "fixed":
        if fixed_k is None:
            raise ConfigError("k_mode='fixed' requires fixed_k")
        return max(1, min(int(fixed_k), curve.size))
    raise ConfigError(f"unknown k_mode {k_mode!r}")


def fit_kpca(features: np.ndarray, *, k_mode: str = "tve",
             tve: float = 0.999, knee_fit: str = "1d",
             fixed_k: int | None = None,
             standardize: bool = False,
             center: bool = False,
             cov: np.ndarray | None = None,
             compute_scores: bool = True) -> KPCAResult:
    """Fit PCA over DCT-domain features and select ``k`` (Alg. 1).

    Parameters
    ----------
    features:
        ``(N, M)`` matrix: N datapoint-samples of M block-features
        (i.e. the transposed block matrix).
    k_mode, tve, knee_fit, fixed_k:
        Selection policy; see module docstring.
    standardize:
        Scale features to unit variance before the eigenanalysis.
    center:
        Mean-center features first.  DPZ leaves this off (the default
        here) so component scores stay symmetric about zero, which is
        what stage 3's symmetric quantizer assumes; see
        :class:`repro.transforms.pca.PCA` for the discussion.
    cov:
        Optional precomputed ``(M, M)`` second-moment matrix of the
        *raw* features (``X.T @ X / (n - 1)``), e.g. shared with the
        sampling probe.  Only consulted on the uncentered,
        unstandardized path; ignored otherwise.
    compute_scores:
        When False, skip the projection and return ``scores=None``
        (the compressor reprojects against the float32-rounded basis
        anyway, so the full-precision projection here is wasted work).

    Notes
    -----
    On the default DPZ configuration (uncentered, ``M <= N``) this
    avoids the generic :meth:`PCA.fit`: the covariance is computed once
    and reused for both TVE selection and component extraction, and for
    wide feature matrices (``M > 256``) the TVE curve comes from an
    eigenvalues-only ``eigvalsh`` while only the leading-``k``
    eigenvectors are extracted (dense slice or Lanczos ``eigsh``) --
    the paper's "k-PCA time complexity can be reduced" claim
    (Section IV-D1).  The dense ``M <= 256`` path is arithmetically
    identical to the pre-existing full fit, bit for bit.
    """
    X = np.asarray(features, dtype=np.float64)
    if X.ndim != 2:
        raise DataShapeError(f"PCA expects a 2-D matrix, got {X.ndim}-D")
    n, f = X.shape
    if n < 2:
        raise DataShapeError("PCA needs at least 2 samples")

    if center or f > n:
        # Centered (or feature-heavy SVD) request: the generic solver
        # already does the right thing; nothing to share or truncate.
        pca = PCA(standardize=standardize, center=center).fit(X)
        curve = pca.tve_curve()
        k = _select_k(curve, k_mode, tve, knee_fit, fixed_k)
        scores = pca.transform(X, k=k) if compute_scores else None
        return KPCAResult(pca=pca, k=k, scores=scores,
                          tve_at_k=float(curve[k - 1]))

    # Uncentered fast path (the DPZ hot path).
    if standardize:
        std = np.sqrt((X * X).sum(axis=0) / (n - 1))
        std[std == 0] = 1.0
        Xs = X / std
        cov = None  # a caller-supplied cov describes the raw features
    else:
        std = None
        Xs = X
    if cov is None:
        cov = (Xs.T @ Xs) / (n - 1)
    total = max(float(np.trace(cov)), 0.0)
    denom = total if total > 0 else 1.0

    if f <= _DENSE_FEATURES:
        # One dense solve, full spectrum kept (tests and diagnostics
        # read the discarded tail of explained_variance_).
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(eigvals)[::-1]
        eigvals = np.maximum(eigvals[order], 0.0)
        components = _fix_signs(np.ascontiguousarray(eigvecs[:, order].T))
        curve = np.cumsum(eigvals) / denom
        k = _select_k(curve, k_mode, tve, knee_fit, fixed_k)
    else:
        # Eigenvalues-only pass for the TVE curve, then extract just
        # the leading-k eigenvectors.
        evals_full = np.maximum(np.linalg.eigvalsh(cov)[::-1], 0.0)
        curve = np.cumsum(evals_full) / denom
        k = _select_k(curve, k_mode, tve, knee_fit, fixed_k)
        if k >= f - 1 or k > f // 4:
            eigvals, eigvecs = np.linalg.eigh(cov)
            order = np.argsort(eigvals)[::-1][:k]
        else:
            eigvals, eigvecs = scipy.sparse.linalg.eigsh(cov, k=k,
                                                         which="LA")
            order = np.argsort(eigvals)[::-1]
        eigvals = np.maximum(eigvals[order], 0.0)
        components = _fix_signs(np.ascontiguousarray(eigvecs[:, order].T))

    pca = PCA.from_spectrum(components, eigvals, total_variance=total,
                            scale=std, standardize=standardize)
    scores = pca.transform(X, k=k) if compute_scores else None
    return KPCAResult(pca=pca, k=k, scores=scores,
                      tve_at_k=float(curve[k - 1]))
