"""Stage 3: symmetric uniform quantization of k-PCA scores.

Because PCA-on-DCT scores are near-normal and symmetric about zero
(paper Section IV-C), DPZ quantizes them with a uniform quantizer whose
geometry is:

* bounding range symmetric about zero, each half spanning ``P * B``;
* ``B`` equal bins of width ``2P``;
* in-range values are replaced by their bin index (reconstructed at the
  bin center, so the approximation error is at most ``P``);
* out-of-range values are escaped and "saved as is".

With 1-byte indexing ``B = 255`` (code 255 is the escape); with 2-byte
indexing ``B = 65535`` (code 65535 escapes).  ``B`` odd means the
middle bin is centered exactly on zero, which is where the score mass
concentrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, DataShapeError

__all__ = ["QuantizedScores", "quantize_scores", "dequantize_scores"]


@dataclass
class QuantizedScores:
    """Stage-3 output.

    Attributes
    ----------
    indices:
        Flat array of bin indices (uint8/uint16); the escape code
        ``n_bins`` marks out-of-range positions.
    outliers:
        Out-of-range values verbatim, in stream order.
    p:
        Error bound used.
    n_bins:
        Bin count ``B``.
    shape:
        Original score-matrix shape (restored on dequantize).
    """

    indices: np.ndarray
    outliers: np.ndarray
    p: float
    n_bins: int
    shape: tuple[int, ...]

    @property
    def escape_code(self) -> int:
        """Index value marking an out-of-range score."""
        return self.n_bins

    @property
    def outlier_fraction(self) -> float:
        """Fraction of scores stored verbatim."""
        return self.outliers.size / max(self.indices.size, 1)


def _index_dtype(n_bins: int):
    if n_bins <= 255:
        return np.uint8
    if n_bins <= 65535:
        return np.uint16
    raise ConfigError(f"n_bins {n_bins} exceeds 2-byte indexing")


def quantize_scores(scores: np.ndarray, p: float, n_bins: int, *,
                    outlier_dtype=np.float32) -> QuantizedScores:
    """Quantize a score array (paper stage 3).

    Guarantees ``|value - dequantized| <= p`` for every in-range value;
    out-of-range values round-trip at ``outlier_dtype`` precision
    (bit-exact if the scores already fit that dtype, or with
    ``outlier_dtype=np.float64``).
    """
    if p <= 0:
        raise ConfigError(f"error bound p must be positive, got {p}")
    if n_bins < 1:
        raise ConfigError(f"n_bins must be >= 1, got {n_bins}")
    scores = np.asarray(scores, dtype=np.float64)
    flat = scores.reshape(-1)
    half = p * n_bins
    in_range = np.abs(flat) <= half
    dtype = _index_dtype(n_bins)
    idx = np.floor((flat + half) / (2.0 * p)).astype(np.int64)
    np.clip(idx, 0, n_bins - 1, out=idx)
    codes = np.where(in_range, idx, n_bins).astype(dtype)
    outliers = flat[~in_range].astype(outlier_dtype)
    return QuantizedScores(indices=codes, outliers=outliers, p=p,
                           n_bins=n_bins, shape=tuple(scores.shape))


def dequantize_scores(q: QuantizedScores) -> np.ndarray:
    """Reconstruct scores from stage-3 output (bin centers + outliers)."""
    idx = q.indices.astype(np.int64)
    half = q.p * q.n_bins
    values = -half + (2.0 * idx + 1.0) * q.p
    escaped = idx == q.escape_code
    n_escaped = int(escaped.sum())
    if n_escaped != q.outliers.size:
        raise DataShapeError(
            f"outlier stream length {q.outliers.size} does not match "
            f"{n_escaped} escape codes"
        )
    out = values
    if n_escaped:
        out = values.copy()
        out[escaped] = q.outliers.astype(np.float64)
    return out.reshape(q.shape)
