"""Sampling strategy: k estimation and compressibility probe (Alg. 2).

A full PCA over all ``N`` samples costs ``O(min(M, N)^3)`` plus the
covariance build; Alg. 2 avoids it by estimating ``k`` from a few
sample subsets and gauging compressibility from a cheap VIF probe:

1. draw a ``SR``-rate row sample and compute feature VIFs; a mean VIF
   below the cutoff (5) flags low linearity -> standardize in stage 2;
2. split the ``N`` samples into ``S`` subsets; pick ``T`` of them --
   the first, middle and last by default, which the paper found best
   on high-linearity data thanks to the decomposition's locality;
3. fit PCA on each picked subset, read off its ``k`` at the requested
   TVE, and average into the seed estimate ``k_seed``;
4. **refine** the seed with a truncated Lanczos eigendecomposition of
   the full second-moment matrix: starting from ``k_seed``, grow ``k``
   until the cumulative eigenvalue mass (checked against the matrix
   trace, which is exact and cheap) reaches the TVE target.  Subset
   spectra are noise-inflated whenever the subset has fewer samples
   than features -- the refinement keeps Alg. 2's cost profile (never
   a dense ``O(M^3)`` eigendecomposition) while making the estimate,
   and hence the CR prediction, accurate;
5. estimate the final compression ratio as the product of per-stage
   factors: ``CR_p = (M / k_e) * CR'_stage3 * CR'_zlib`` with the
   empirical stage-3 and zlib factors of Section IV-D2.

.. note::
   The paper writes ``CR_stage1&2 = k_e / M``, i.e. the *size* ratio;
   as a compression factor that is ``M / k_e``, which is what the
   product formula needs and what this module uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg

from repro.analysis.vif import VIF_CUTOFF, variance_inflation_factors
from repro.errors import DataShapeError
from repro.transforms.pca import PCA

__all__ = ["SamplingReport", "sampling_probe", "linearity_probe",
           "STAGE3_CR_RANGE", "ZLIB_CR_ESTIMATE"]

#: Empirical stage-3 reduction factor range (paper Section IV-D2):
#: ~2x for 2-byte indexing up to ~2.5x+ with 1-byte indexing.
STAGE3_CR_RANGE = (1.9, 2.5)

#: Empirical zlib add-on factor (paper: "around 1.25X in general").
ZLIB_CR_ESTIMATE = 1.25

#: Cap on features used in the VIF probe (correlation-matrix inverse
#: cost grows cubically with the feature count).
_VIF_MAX_FEATURES = 256


@dataclass(frozen=True)
class SamplingReport:
    """Everything Alg. 2 estimates before compression.

    Attributes
    ----------
    k_estimate:
        ``k_e``: the refined component-count estimate (see module docs).
    k_seed:
        The raw averaged subset-PCA estimate the refinement started from.
    subset_ks:
        The per-subset ``k`` values that were averaged.
    vif_mean, vif_median:
        Summary of the sampled feature VIFs.
    low_linearity:
        True when the VIF probe falls below the cutoff of 5 ->
        standardization recommended, low expected compressibility.
    cr_low, cr_high:
        Preliminary compression-ratio range ``CR_p``.
    """

    k_estimate: int
    k_seed: int
    subset_ks: tuple[int, ...]
    vif_mean: float
    vif_median: float
    low_linearity: bool
    cr_low: float
    cr_high: float

    @property
    def cr_range(self) -> tuple[float, float]:
        """Preliminary CR as a (low, high) pair."""
        return (self.cr_low, self.cr_high)


def _pick_subsets(s: int, t: int) -> list[int]:
    """Subset indices to sample: first, middle, last, then spread."""
    if t >= s:
        return list(range(s))
    picks = [0, s // 2, s - 1]
    if t <= 3:
        return sorted(set(picks[:t])) if t < 3 else sorted(set(picks))
    extra = [i for i in np.linspace(0, s - 1, t).astype(int)
             if i not in picks]
    for e in extra:
        if len(picks) >= t:
            break
        picks.append(int(e))
    return sorted(set(picks))[:t]


def linearity_probe(features: np.ndarray, *, sampling_rate: float = 0.01,
                    rng: np.random.Generator | None = None
                    ) -> tuple[float, float, bool]:
    """Steps 1-2 of Alg. 2 alone: the VIF compressibility check.

    Returns ``(vif_mean, vif_median, low_linearity)``.  This is what
    ``standardize='auto'`` needs -- it costs one small correlation-matrix
    inverse, far less than the full :func:`sampling_probe`.
    """
    X = np.asarray(features, dtype=np.float64)
    if X.ndim != 2:
        raise DataShapeError("linearity_probe expects an (N, M) matrix")
    _, m = X.shape
    rng = rng or np.random.default_rng(0)
    n_feat = int(np.clip(round(m * sampling_rate), 3, _VIF_MAX_FEATURES))
    vifs = variance_inflation_factors(X, max_features=n_feat, rng=rng)
    vif_mean = float(np.mean(vifs))
    return vif_mean, float(np.median(vifs)), vif_mean < VIF_CUTOFF


def sampling_probe(features: np.ndarray, *, tve: float = 0.999,
                   subsets: int = 10, picks: int = 3,
                   sampling_rate: float = 0.01,
                   orig_nbytes: int | None = None,
                   cov: np.ndarray | None = None,
                   rng: np.random.Generator | None = None) -> SamplingReport:
    """Run Alg. 2 on an ``(N, M)`` feature matrix.

    ``features`` is the *normalized* DCT-domain block matrix transposed
    (samples in rows), exactly what stage 2 would consume.
    ``orig_nbytes`` is the original array's byte size (defaults to
    ``N * M * 4``, the float32 convention); it anchors the CR
    prediction, which -- unlike the paper's bare product formula --
    also charges the PCA basis/mean storage, the overhead that
    dominates the container at small ``k``.
    """
    X = np.asarray(features, dtype=np.float64)
    if X.ndim != 2:
        raise DataShapeError("sampling_probe expects an (N, M) matrix")
    n, m = X.shape
    if n < subsets * 3:
        raise DataShapeError(
            f"too few samples ({n}) for {subsets} subsets"
        )
    rng = rng or np.random.default_rng(0)

    # Step 1-2: VIF compressibility probe on an SR-rate *feature* sample
    # (all datapoints kept so the feature correlations are well
    # estimated; sampling rows instead would leave the correlation
    # matrix rank-deficient whenever M approaches N).
    vif_mean, vif_median, low_linearity = linearity_probe(
        X, sampling_rate=sampling_rate, rng=rng)

    # Steps 3-4a: subset PCAs -> k at the requested TVE -> averaged seed.
    bounds = np.linspace(0, n, subsets + 1).astype(int)
    ks: list[int] = []
    for idx in _pick_subsets(subsets, picks):
        sub = X[bounds[idx] : bounds[idx + 1]]
        # center=False to match stage 2's uncentered PCA.
        pca = PCA(standardize=low_linearity, center=False).fit(sub)
        ks.append(pca.components_for_tve(tve))
    k_seed = max(1, int(round(float(np.mean(ks)))))

    # Step 4b: refine with truncated eigsh against the exact trace.
    # A caller that already built the second-moment matrix (the
    # compressor shares it with the projection fit) passes it in; it is
    # only usable on the non-standardized path.
    k_e = _refine_k(X, k_seed, tve, standardize=low_linearity,
                    cov=None if low_linearity else cov)

    # Step 5: preliminary CR range.  Score bytes shrink by the stage-3
    # and zlib factors; basis/mean bytes shrink only modestly under
    # zlib.  (The paper's product formula omits the basis term.)
    if orig_nbytes is None:
        orig_nbytes = n * m * 4
    score_bytes = n * k_e * 4.0
    basis_bytes = (k_e * m * 4.0 + m * 8.0) / 1.3
    bytes_high = score_bytes / (STAGE3_CR_RANGE[0] * ZLIB_CR_ESTIMATE) \
        + basis_bytes
    bytes_low = score_bytes / (STAGE3_CR_RANGE[1] * ZLIB_CR_ESTIMATE * 1.6) \
        + basis_bytes * 0.5
    cr_low = orig_nbytes / bytes_high
    cr_high = orig_nbytes / bytes_low
    return SamplingReport(
        k_estimate=k_e, k_seed=k_seed, subset_ks=tuple(ks),
        vif_mean=vif_mean, vif_median=vif_median,
        low_linearity=low_linearity, cr_low=cr_low, cr_high=cr_high,
    )


def _refine_k(X: np.ndarray, k_seed: int, tve: float, *,
              standardize: bool,
              cov: np.ndarray | None = None) -> int:
    """Grow a truncated eigendecomposition until TVE is reached.

    Uses the exact trace of the second-moment matrix as the TVE
    denominator, so a *partial* spectrum suffices to certify the
    threshold; cost stays ``O(M^2 k)`` instead of ``O(M^3)``.
    """
    n, m = X.shape
    if cov is None:
        work = X
        if standardize:
            scale = np.sqrt((X * X).sum(axis=0) / (n - 1))
            scale[scale == 0] = 1.0
            work = X / scale
        cov = (work.T @ work) / (n - 1)
    total = float(np.trace(cov))
    if total <= 0:
        return 1
    k = int(np.clip(k_seed, 1, m - 2))
    while True:
        # Lanczos only pays off for a small leading slice of a large
        # spectrum; otherwise the dense path is faster and exact.
        if k >= m - 2 or k > m // 4 or m <= 256:
            eigvals = np.sort(np.linalg.eigvalsh(cov))[::-1]
            curve = np.cumsum(np.maximum(eigvals, 0.0)) / total
            hits = np.flatnonzero(curve >= tve - 1e-12)
            return int(hits[0]) + 1 if hits.size else m
        eigvals = scipy.sparse.linalg.eigsh(cov, k=k, which="LA",
                                            return_eigenvectors=False)
        eigvals = np.sort(np.maximum(eigvals, 0.0))[::-1]
        curve = np.cumsum(eigvals) / total
        hits = np.flatnonzero(curve >= tve - 1e-12)
        if hits.size:
            return int(hits[0]) + 1
        k = min(m - 2, max(k + 4, int(k * 1.6)))
