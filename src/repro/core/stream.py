"""DPZ container format: serialization of the compressed artifact.

A DPZ archive holds everything :meth:`DPZCompressor.decompress` needs:

========  =====================================================
section    contents
========  =====================================================
0          metadata (geometry, k, quantizer params, flags)
1          PCA components, float32, zlib-framed
2          PCA mean (float64) and optional scale (float64), zlib
3          quantizer bin indices (uint8/uint16), zlib
4          out-of-range scores (float32/float64), zlib
5          max-error correction positions (delta varints), zlib
6          max-error correction lattice codes (int64), zlib
========  =====================================================

Sections 5-6 are empty unless the optional strict pointwise bound
(``DPZConfig.max_error``) is enabled.

The per-section byte sizes are what the stage-breakdown experiments
(Tables III/IV) read off, so :func:`serialize` also returns them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.codecs.container import pack_sections, unpack_sections
from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.codecs.zlibc import zlib_compress, zlib_decompress
from repro.core.encode import TRANSFORMS
from repro.errors import CodecError, FormatError

__all__ = ["DPZArchive", "SectionSizes", "serialize", "deserialize"]

_MAGIC = b"DPZ1"
_VERSION = 1
# Archive bytes are little-endian regardless of host byte order, so the
# serialization dtypes are spelled as explicit "<"-prefixed strings.
_DTYPES = {"f4": np.dtype("<f4"), "f8": np.dtype("<f8")}
_DTYPE_TAGS = {np.dtype(np.float32): "f4", np.dtype(np.float64): "f8"}


@dataclass
class SectionSizes:
    """Compressed byte size of each archive section."""

    meta: int
    components: int
    mean_scale: int
    indices: int
    outliers: int
    corrections: int = 0

    @property
    def total(self) -> int:
        """Sum over sections (container framing adds a few more bytes)."""
        return (self.meta + self.components + self.mean_scale
                + self.indices + self.outliers + self.corrections)


@dataclass
class DPZArchive:
    """In-memory form of a DPZ compressed artifact."""

    shape: tuple[int, ...]
    dtype_tag: str            # dtype of the original data ("f4"/"f8")
    m_blocks: int
    n_points: int
    k: int
    p: float
    n_bins: int
    index_bytes: int
    standardized: bool
    norm_offset: float        # data minimum (input normalization)
    norm_scale: float         # data range (input normalization)
    score_scale: float        # global score divisor applied before
                              # quantization (1.0 unless standardized)
    outlier_dtype_tag: str        # "f4"/"f8"
    components: NDArray[Any]      # (k, M) float32
    mean: NDArray[Any]            # (M,) float64
    scale: NDArray[Any] | None    # (M,) float64 or None
    indices: NDArray[Any]         # (N*k,) uint8/uint16
    outliers: NDArray[Any]        # out-of-range scores
    transform: str = "dct"        # stage-1b transform id
    corr_bound: float = 0.0       # lattice bound of the correction pass
    corr_indices: NDArray[Any] | None = None  # flat positions (int64)
    corr_codes: NDArray[Any] | None = None    # lattice codes (int64)

    @property
    def original_dtype(self) -> np.dtype[Any]:
        """NumPy dtype of the original data."""
        return _DTYPES[self.dtype_tag]


def serialize(archive: DPZArchive,
              zlib_level: int = 6) -> tuple[bytes, SectionSizes]:
    """Serialize an archive; returns ``(blob, per-section sizes)``."""
    meta = bytearray()
    meta += encode_uvarint(len(archive.shape))
    for n in archive.shape:
        meta += encode_uvarint(n)
    meta += archive.dtype_tag.encode()
    meta += encode_uvarint(archive.m_blocks)
    meta += encode_uvarint(archive.n_points)
    meta += encode_uvarint(archive.k)
    meta += struct.pack("<d", archive.p)
    meta += struct.pack("<d", archive.norm_offset)
    meta += struct.pack("<d", archive.norm_scale)
    meta += struct.pack("<d", archive.score_scale)
    meta += encode_uvarint(archive.n_bins)
    meta += encode_uvarint(archive.index_bytes)
    meta += bytes([1 if archive.standardized else 0])
    if archive.transform not in TRANSFORMS:
        raise FormatError(f"unknown transform {archive.transform!r}")
    meta += bytes([TRANSFORMS.index(archive.transform)])
    meta += archive.outlier_dtype_tag.encode()
    meta += encode_uvarint(int(archive.outliers.size))
    n_corr = 0 if archive.corr_indices is None else archive.corr_indices.size
    meta += struct.pack("<d", archive.corr_bound)
    meta += encode_uvarint(int(n_corr))

    comp = zlib_compress(
        np.ascontiguousarray(archive.components, dtype="<f4"),
        zlib_level,
    )
    ms = np.ascontiguousarray(archive.mean, dtype="<f8").tobytes()
    if archive.scale is not None:
        ms += np.ascontiguousarray(archive.scale, dtype="<f8").tobytes()
    mean_scale = zlib_compress(ms, zlib_level)
    idx = zlib_compress(
        np.ascontiguousarray(
            archive.indices,
            dtype="<u1" if archive.index_bytes == 1 else "<u2",
        ),
        zlib_level,
    )
    out_dtype = _DTYPES[archive.outlier_dtype_tag]
    outl = zlib_compress(
        np.ascontiguousarray(archive.outliers, dtype=out_dtype), zlib_level
    )

    if archive.corr_indices is not None and archive.corr_indices.size:
        deltas = np.diff(
            np.asarray(archive.corr_indices, dtype=np.int64),
            prepend=np.int64(0),
        )
        corr_pos = zlib_compress(
            np.ascontiguousarray(deltas, dtype="<i8"), zlib_level
        )
        corr_val = zlib_compress(
            np.ascontiguousarray(archive.corr_codes, dtype="<i8"),
            zlib_level,
        )
    else:
        corr_pos = zlib_compress(b"", zlib_level)
        corr_val = zlib_compress(b"", zlib_level)

    sections = [bytes(meta), comp, mean_scale, idx, outl, corr_pos,
                corr_val]
    sizes = SectionSizes(meta=len(meta), components=len(comp),
                         mean_scale=len(mean_scale), indices=len(idx),
                         outliers=len(outl),
                         corrections=len(corr_pos) + len(corr_val))
    return pack_sections(_MAGIC, _VERSION, sections), sizes


def deserialize(blob: bytes) -> DPZArchive:
    """Parse a blob produced by :func:`serialize`.

    Any corruption -- truncation mid-header, a bad zlib frame, section
    sizes that disagree with the metadata -- raises
    :class:`~repro.errors.FormatError`; low-level exceptions from the
    parsing substrate never escape.
    """
    try:
        return _deserialize(blob)
    except FormatError:
        raise
    except (struct.error, IndexError, ValueError, KeyError, OverflowError,
            CodecError) as exc:
        raise FormatError(f"corrupt DPZ archive: {exc}") from exc


def _deserialize(blob: bytes) -> DPZArchive:
    sections = unpack_sections(blob, _MAGIC, _VERSION)
    if len(sections) != 7:
        raise FormatError(
            f"DPZ archive must have 7 sections, found {len(sections)}"
        )
    meta, comp, mean_scale, idx, outl, corr_pos, corr_val = sections
    ndim, pos = decode_uvarint(meta, 0)
    shape = []
    for _ in range(ndim):
        n, pos = decode_uvarint(meta, pos)
        shape.append(n)
    dtype_tag = meta[pos : pos + 2].decode()
    pos += 2
    if dtype_tag not in _DTYPES:
        raise FormatError(f"unknown dtype tag {dtype_tag!r}")
    m_blocks, pos = decode_uvarint(meta, pos)
    n_points, pos = decode_uvarint(meta, pos)
    k, pos = decode_uvarint(meta, pos)
    (p,) = struct.unpack_from("<d", meta, pos)
    pos += 8
    (norm_offset,) = struct.unpack_from("<d", meta, pos)
    pos += 8
    (norm_scale,) = struct.unpack_from("<d", meta, pos)
    pos += 8
    (score_scale,) = struct.unpack_from("<d", meta, pos)
    pos += 8
    n_bins, pos = decode_uvarint(meta, pos)
    index_bytes, pos = decode_uvarint(meta, pos)
    standardized = bool(meta[pos])
    pos += 1
    transform_id = meta[pos]
    pos += 1
    if transform_id >= len(TRANSFORMS):
        raise FormatError(f"unknown transform id {transform_id}")
    transform = TRANSFORMS[transform_id]
    outlier_tag = meta[pos : pos + 2].decode()
    pos += 2
    if outlier_tag not in _DTYPES:
        raise FormatError(f"unknown outlier dtype tag {outlier_tag!r}")
    n_outliers, pos = decode_uvarint(meta, pos)
    (corr_bound,) = struct.unpack_from("<d", meta, pos)
    pos += 8
    n_corr, pos = decode_uvarint(meta, pos)

    components = np.frombuffer(zlib_decompress(comp), dtype="<f4")
    components = components.reshape(k, m_blocks).copy()
    ms = np.frombuffer(zlib_decompress(mean_scale), dtype="<f8")
    if standardized:
        if ms.size != 2 * m_blocks:
            raise FormatError("mean/scale section size mismatch")
        mean, scale = ms[:m_blocks].copy(), ms[m_blocks:].copy()
    else:
        if ms.size != m_blocks:
            raise FormatError("mean section size mismatch")
        mean, scale = ms.copy(), None
    idx_dtype = np.dtype("<u1") if index_bytes == 1 else np.dtype("<u2")
    indices = np.frombuffer(zlib_decompress(idx), dtype=idx_dtype).copy()
    if indices.size != n_points * k:
        raise FormatError(
            f"index section holds {indices.size} codes, expected "
            f"{n_points * k}"
        )
    outliers = np.frombuffer(
        zlib_decompress(outl), dtype=_DTYPES[outlier_tag]
    ).copy()
    if outliers.size != n_outliers:
        raise FormatError("outlier section size mismatch")
    if n_corr:
        deltas = np.frombuffer(zlib_decompress(corr_pos), dtype="<i8")
        codes = np.frombuffer(zlib_decompress(corr_val), dtype="<i8")
        if deltas.size != n_corr or codes.size != n_corr:
            raise FormatError("correction section size mismatch")
        corr_indices = np.cumsum(deltas)
        corr_codes = codes.copy()
    else:
        corr_indices = None
        corr_codes = None
    return DPZArchive(
        shape=tuple(shape), dtype_tag=dtype_tag, m_blocks=m_blocks,
        n_points=n_points, k=k, p=p, n_bins=n_bins,
        index_bytes=index_bytes, standardized=standardized,
        norm_offset=norm_offset, norm_scale=norm_scale,
        score_scale=score_scale, transform=transform,
        outlier_dtype_tag=outlier_tag, components=components, mean=mean,
        scale=scale, indices=indices, outliers=outliers,
        corr_bound=corr_bound, corr_indices=corr_indices,
        corr_codes=corr_codes,
    )
