"""Stage 1b: per-block orthonormal DCT-II over the block matrix.

Each of the ``M`` rows of the block matrix is transformed
independently (paper: "we apply DCT transform to each block"), which is
embarrassingly parallel; with ``n_jobs > 1`` the rows are chunked over
the thread pool (scipy's pocketfft releases the GIL).

Because the transform is orthonormal along each row, the block matrix's
Frobenius norm -- and hence the total energy reasoning of Section III
-- is preserved exactly.

These helpers are the DCT-specialized view of the general stage-1b
transform registry in :mod:`repro.core.encode` (which also offers the
wavelet and identity variants); analysis code that always means "the
paper's DCT stage" imports from here.
"""

from __future__ import annotations

import numpy as np

from repro.core.encode import forward_transform, inverse_transform

__all__ = ["forward_dct_blocks", "inverse_dct_blocks"]


def forward_dct_blocks(blocks: np.ndarray, n_jobs: int = 1) -> np.ndarray:
    """DCT-II of every block (row) of an ``(M, N)`` matrix."""
    return forward_transform(blocks, "dct", n_jobs)


def inverse_dct_blocks(coeffs: np.ndarray, n_jobs: int = 1) -> np.ndarray:
    """Inverse DCT of every block; exact inverse of
    :func:`forward_dct_blocks` up to floating point."""
    return inverse_transform(coeffs, "dct", n_jobs)
