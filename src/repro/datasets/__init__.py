"""Synthetic scientific-dataset substrate.

The paper evaluates on nine fields from three proprietary/huge dataset
families (Table I).  None ship with this repo (multi-GB downloads), so
each family has a from-scratch synthetic generator that reproduces the
statistical properties the compressors are sensitive to -- smoothness,
spectral decay, value bounds, and inter-block linearity (VIF).  See
DESIGN.md Section 1 for the substitution rationale.

* :mod:`repro.datasets.grf` -- the shared spectral-synthesis engine.
* :mod:`repro.datasets.turbulence` -- JHTDB analogues (Isotropic, Channel).
* :mod:`repro.datasets.climate` -- CESM-ATM analogues (CLDHGH, CLDLOW,
  PHIS, FREQSH, FLDSC).
* :mod:`repro.datasets.cosmology` -- HACC analogues (x, vx).
* :mod:`repro.datasets.registry` -- the Table-I-style inventory keyed by
  dataset name, with small/full size presets.
* :mod:`repro.datasets.io` -- raw ``.f32`` / ``.npy`` load & save.
"""

from repro.datasets.climate import (
    cldhgh,
    cldlow,
    fldsc,
    freqsh,
    phis,
)
from repro.datasets.cosmology import hacc_vx, hacc_x
from repro.datasets.grf import gaussian_random_field, power_law_field
from repro.datasets.io import load_f32, load_field, save_f32, save_field
from repro.datasets.registry import (
    DatasetSpec,
    all_dataset_names,
    get_dataset,
    get_spec,
)
from repro.datasets.turbulence import channel, isotropic

__all__ = [
    "gaussian_random_field",
    "power_law_field",
    "isotropic",
    "channel",
    "cldhgh",
    "cldlow",
    "phis",
    "freqsh",
    "fldsc",
    "hacc_x",
    "hacc_vx",
    "DatasetSpec",
    "get_dataset",
    "get_spec",
    "all_dataset_names",
    "load_f32",
    "save_f32",
    "load_field",
    "save_field",
]
