"""CESM-ATM-analogue 2-D climate fields.

Stand-ins for the five CESM atmosphere fields of Table I, each a 2-D
(latitude x longitude) single-precision grid.  The generators layer
four ingredients -- strong zonal (latitude) structure, a very smooth
planetary-wave component, a weaker mesoscale texture, and a tiny white
floor standing in for instrument/model noise -- with amplitudes
calibrated (see ``benchmarks/test_table3_breakdown.py``) so each
analogue's PCA eigenvalue tail lands near the paper's per-stage
compression ratios:

============  =====================================  =======================
Field          Physical meaning                       Statistical character
============  =====================================  =======================
``cldhgh``     high-cloud fraction                    bounded [0,1], tropics-
                                                      enhanced, k/M tail
                                                      matching Table III
``cldlow``     low-cloud fraction                     bounded [0,1], marine
                                                      stratocumulus banks
``phis``       surface geopotential                   smooth continents via a
                                                      steep power-law GRF
``freqsh``     shallow-convection frequency           bounded [0,1], sparse
``fldsc``      downwelling clear-sky flux             very smooth, strong
                                                      zonal gradient
============  =====================================  =======================

Grids default to (450, 900) -- a 1:4-scale version of the paper's
1800 x 3600 -- and accept ``shape=(1800, 3600)`` for full scale.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.grf import exp_spectrum_field, power_law_field
from repro.errors import DataShapeError

__all__ = ["cldhgh", "cldlow", "phis", "freqsh", "fldsc"]

_DEFAULT_SHAPE = (450, 900)


def _check2d(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) != 2 or min(shape) < 8:
        raise DataShapeError(
            f"climate fields are 2-D with every dim >= 8, got {shape}"
        )
    return shape


def _latitude(nlat: int) -> np.ndarray:
    """Latitude in radians, pole to pole, cell centers."""
    return np.linspace(-90.0, 90.0, nlat) * np.pi / 180.0


def cldhgh(shape: tuple[int, int] = _DEFAULT_SHAPE, *,
           seed: int = 11, dtype=np.float32) -> np.ndarray:
    """High-cloud fraction analogue: tropically enhanced, bounded [0,1].

    Composition: ITCZ + storm-track zonal profile, a planetary-scale
    cloud-band field, weak mesoscale texture, and a ~2e-4 white floor
    (which is what pins the "seven-nine" TVE tail, as the real field's
    small-scale variability does).
    """
    nlat, nlon = _check2d(shape)
    rng = np.random.default_rng(seed)
    lat = _latitude(nlat)
    zonal = (0.35 + 0.30 * np.exp(-((lat / 0.30) ** 2))
             + 0.15 * np.exp(-(((np.abs(lat) - 0.95) / 0.25) ** 2)))
    planetary = exp_spectrum_field(shape, 0.004, rng)
    mesoscale = exp_spectrum_field(shape, 0.03, rng)
    white = rng.normal(size=shape)
    field = (zonal[:, None] + 0.10 * planetary + 0.005 * mesoscale
             + 1.5e-4 * white)
    return np.clip(field, 0.0, 1.0).astype(dtype)


def cldlow(shape: tuple[int, int] = _DEFAULT_SHAPE, *,
           seed: int = 13, dtype=np.float32) -> np.ndarray:
    """Low-cloud fraction analogue: subtropical stratocumulus banks.

    Same statistical family as :func:`cldhgh` (the paper reports
    CLDLOW "shows a similar result to CLDHGH"), with the zonal maxima
    moved to the subtropics and a slightly rougher bank texture.
    """
    nlat, nlon = _check2d(shape)
    rng = np.random.default_rng(seed)
    lat = _latitude(nlat)
    zonal = 0.40 + 0.25 * np.exp(-(((np.abs(lat) - 0.55) / 0.30) ** 2))
    banks = exp_spectrum_field(shape, 0.005, rng)
    texture = exp_spectrum_field(shape, 0.035, rng)
    white = rng.normal(size=shape)
    field = (zonal[:, None] + 0.11 * banks + 0.007 * texture
             + 1.5e-4 * white)
    return np.clip(field, 0.0, 1.0).astype(dtype)


def phis(shape: tuple[int, int] = _DEFAULT_SHAPE, *,
         seed: int = 17, dtype=np.float32) -> np.ndarray:
    """Surface geopotential analogue: flat oceans, smooth continents.

    A steep (k^-5) power-law GRF pushed through a softplus -- smooth
    enough to keep the nonlinearity from flattening the eigenvalue tail
    -- gives continents rising from a flat ocean floor, spanning
    ~0..5e4 m^2/s^2 like real PHIS.  The most compressible field of the
    family at tight TVE, as in the paper's Table III.
    """
    nlat, nlon = _check2d(shape)
    rng = np.random.default_rng(seed)
    base = power_law_field(shape, -5.0, rng, k_min=4e-3)
    land = np.logaddexp(0.0, 3.0 * base) / 3.0  # softplus, always smooth
    field = 5.0e4 * land / max(float(land.max()), 1e-12)
    return field.astype(dtype)


def freqsh(shape: tuple[int, int] = _DEFAULT_SHAPE, *,
           seed: int = 19, dtype=np.float32) -> np.ndarray:
    """Shallow-convection frequency analogue: sparse, bounded [0, 1]."""
    nlat, nlon = _check2d(shape)
    rng = np.random.default_rng(seed)
    lat = _latitude(nlat)
    zonal = 0.30 * np.exp(-((lat / 0.6) ** 2))
    spots = exp_spectrum_field(shape, 0.008, rng)
    texture = exp_spectrum_field(shape, 0.04, rng)
    white = rng.normal(size=shape)
    field = (zonal[:, None] * (1.0 + 0.5 * spots)
             + 0.006 * texture + 1.5e-4 * white)
    return np.clip(field, 0.0, 1.0).astype(dtype)


def fldsc(shape: tuple[int, int] = _DEFAULT_SHAPE, *,
          seed: int = 23, dtype=np.float32) -> np.ndarray:
    """Clear-sky downwelling longwave flux analogue: very smooth.

    Dominated by the equator-to-pole temperature gradient (fluxes of
    roughly 100-450 W/m^2), with planetary-wave perturbations and a
    faint measurement-scale floor -- the most compressible of the five
    at loose TVE, matching the paper's Fig. 1 narrative.
    """
    nlat, nlon = _check2d(shape)
    rng = np.random.default_rng(seed)
    lat = _latitude(nlat)
    zonal = 150.0 + 280.0 * np.cos(lat) ** 1.5
    waves = power_law_field(shape, -4.0, rng)
    white = rng.normal(size=shape)
    field = zonal[:, None] + 18.0 * waves + 0.05 * white
    return field.astype(dtype)
