"""HACC-analogue 1-D cosmology particle arrays.

Stand-ins for the HACC particle snapshot fields ``x`` (position) and
``vx`` (velocity) of Table I.  The paper's key empirical contrast --
HACC-x moderately compressible, HACC-vx the *least* compressible field
in the suite (VIF below the cutoff of 5, Fig. 10) -- comes from how
much large-scale linear structure each array carries:

* :func:`hacc_x` uses the Zel'dovich approximation: particles start on
  a uniform grid and are displaced by a smooth large-scale displacement
  field.  Stored in file order (grid order), positions are dominated by
  the linear ramp -> high inter-block collinearity -> compressible.
* :func:`hacc_vx` are peculiar velocities: a modest correlated bulk-flow
  component buried under thermal/virial velocity dispersion that is
  nearly white -> low collinearity, low VIF -> hard to compress.

Default 2**18 particles (paper: 2**21); pass ``n=2**21`` for full scale.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.grf import power_law_field
from repro.errors import DataShapeError

__all__ = ["hacc_x", "hacc_vx"]

#: Simulated box size in comoving Mpc/h, matching HACC conventions.
BOX_SIZE = 256.0


def _check_n(n: int) -> None:
    if n < 64:
        raise DataShapeError(f"need at least 64 particles, got {n}")


def hacc_x(n: int = 2 ** 18, *, seed: int = 42,
           dtype=np.float32) -> np.ndarray:
    """Particle x-positions via the Zel'dovich approximation.

    ``x_i = q_i + D * psi(q_i) + jitter (mod box)``, with ``q`` the
    uniform Lagrangian grid, ``psi`` a smooth Gaussian displacement
    field, and a sub-Mpc white jitter standing in for small-scale
    virialized motion.  The file order follows the Lagrangian grid (as
    HACC snapshots do), so the array is a gentle ramp plus smooth
    perturbations -- highly compressible at loose TVE -- while the
    jitter floor makes tight TVE collapse toward k = M, matching the
    paper's Table III (stage 1&2 CR 16.1 -> 1.2 from "three-nine" to
    "five-nine").
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    q = (np.arange(n) + 0.5) * (BOX_SIZE / n)
    # Smooth displacement field sampled on the 1-D Lagrangian line.
    psi = power_law_field((n,), -2.5, rng, std=1.0)
    growth = 2.5  # Mpc/h of rms displacement
    jitter = 0.7 * rng.normal(size=n)
    x = np.mod(q + growth * psi + jitter, BOX_SIZE)
    return x.astype(dtype)


def hacc_vx(n: int = 2 ** 18, *, seed: int = 43,
            sigma_thermal: float = 300.0,
            sigma_bulk: float = 90.0,
            dtype=np.float32) -> np.ndarray:
    """Particle x-velocities (km/s): bulk flows + dominant dispersion.

    The bulk-flow term is a smooth GRF (coherent infall toward
    structures); the thermal term is white Gaussian noise several times
    larger, which is what makes this array nearly incompressible for
    linear-feature methods (paper Fig. 6 and Fig. 10).
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    bulk = power_law_field((n,), -2.0, rng, std=sigma_bulk)
    thermal = rng.normal(scale=sigma_thermal, size=n)
    return (bulk + thermal).astype(dtype)
