"""Raw binary dataset I/O in SDRBench conventions.

SDRBench (and the paper's Table I datasets) distribute fields as
headerless little-endian ``float32`` streams whose shape is implied by
the file name.  :func:`load_f32` / :func:`save_f32` handle that format
so users with the *real* JHTDB/CESM/HACC downloads can feed them to
every harness in this repo; :func:`load_field` / :func:`save_field`
additionally accept ``.npy`` for self-describing storage.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import DataShapeError, FormatError

__all__ = ["load_f32", "save_f32", "load_field", "save_field"]


def load_f32(path: str | os.PathLike,
             shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Load a headerless little-endian float32 file.

    ``shape=None`` returns the flat array; otherwise the element count
    must match exactly.
    """
    data = np.fromfile(os.fspath(path), dtype="<f4")
    if shape is None:
        return data
    expected = int(np.prod(shape))
    if data.size != expected:
        raise DataShapeError(
            f"{path}: file holds {data.size} float32 values, "
            f"shape {shape} needs {expected}"
        )
    return data.reshape(shape)


def save_f32(path: str | os.PathLike, data: np.ndarray) -> None:
    """Write an array as headerless little-endian float32 (C order)."""
    np.ascontiguousarray(data, dtype="<f4").tofile(os.fspath(path))


def load_field(path: str | os.PathLike,
               shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Load ``.npy`` (self-describing) or raw ``.f32``/``.dat``/``.bin``."""
    p = os.fspath(path)
    ext = os.path.splitext(p)[1].lower()
    if ext == ".npy":
        return np.load(p)
    if ext in (".f32", ".dat", ".bin", ""):
        return load_f32(p, shape)
    raise FormatError(f"unrecognized dataset extension {ext!r} for {p}")


def save_field(path: str | os.PathLike, data: np.ndarray) -> None:
    """Save to ``.npy`` or raw float32 depending on the extension."""
    p = os.fspath(path)
    ext = os.path.splitext(p)[1].lower()
    if ext == ".npy":
        np.save(p, data)
        return
    if ext in (".f32", ".dat", ".bin"):
        save_f32(p, data)
        return
    raise FormatError(f"unrecognized dataset extension {ext!r} for {p}")
