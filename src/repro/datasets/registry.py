"""Dataset registry mirroring the paper's Table I.

Maps each of the paper's nine field names to its synthetic generator,
dimensions, source family and description, with two size presets:

* ``'small'`` -- laptop-instant sizes used by the default test and
  benchmark runs (3-D: 64^3, 2-D: 450x900, 1-D: 2^18);
* ``'full'`` -- the paper's actual dimensions (3-D: 128^3,
  2-D: 1800x3600, 1-D: 2^21).

Use :func:`get_dataset` by name, e.g. ``get_dataset("FLDSC")``.
Generated arrays are cached per (name, size) within the process since
several experiments revisit the same fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets import climate, cosmology, turbulence
from repro.errors import ConfigError

__all__ = ["DatasetSpec", "get_spec", "get_dataset", "all_dataset_names",
           "clear_cache", "SIZES"]

SIZES = ("small", "full")


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the Table-I-style inventory."""

    name: str
    source: str
    kind: str          # "Turbulence simulation", "Climate simulation", ...
    ndim: int
    small_shape: tuple[int, ...]
    full_shape: tuple[int, ...]
    generator: Callable[..., np.ndarray]
    description: str

    def shape(self, size: str = "small") -> tuple[int, ...]:
        """Shape for the requested size preset."""
        if size not in SIZES:
            raise ConfigError(f"unknown size preset {size!r}; use {SIZES}")
        return self.small_shape if size == "small" else self.full_shape


def _gen_1d(fn):
    """Adapt an (n,)-signature generator to take a shape tuple."""
    def wrapper(shape: tuple[int, ...]) -> np.ndarray:
        return fn(n=shape[0])
    return wrapper


_REGISTRY: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name.upper()] = spec


_register(DatasetSpec(
    name="Isotropic", source="JHTDB", kind="Turbulence simulation", ndim=3,
    small_shape=(64, 64, 64), full_shape=(128, 128, 128),
    generator=lambda shape: turbulence.isotropic(shape),
    description="Isotropic1024-coarse analogue: Kolmogorov-spectrum "
                "velocity component on a periodic box.",
))
_register(DatasetSpec(
    name="Channel", source="JHTDB", kind="Turbulence simulation", ndim=3,
    small_shape=(64, 64, 64), full_shape=(128, 128, 128),
    generator=lambda shape: turbulence.channel(shape),
    description="Channel-flow analogue: log-law mean shear with "
                "wall-damped anisotropic fluctuations.",
))
for _name, _fn, _desc in (
    ("CLDHGH", climate.cldhgh, "High-cloud fraction: patchy, tropical."),
    ("CLDLOW", climate.cldlow, "Low-cloud fraction: subtropical banks."),
    ("PHIS", climate.phis, "Surface geopotential: oceans + rough orography."),
    ("FREQSH", climate.freqsh, "Shallow-convection frequency: sparse."),
    ("FLDSC", climate.fldsc, "Clear-sky downwelling flux: very smooth."),
):
    _register(DatasetSpec(
        name=_name, source="CESM-ATM-Taylor", kind="Climate simulation",
        ndim=2, small_shape=(450, 900), full_shape=(1800, 3600),
        generator=(lambda shape, fn=_fn: fn(shape)),
        description=_desc,
    ))
_register(DatasetSpec(
    name="HACC-x", source="HACC", kind="Cosmology particle simulation",
    ndim=1, small_shape=(2 ** 18,), full_shape=(2 ** 21,),
    generator=_gen_1d(cosmology.hacc_x),
    description="Particle x positions (Zel'dovich): quasi-linear ramp.",
))
_register(DatasetSpec(
    name="HACC-vx", source="HACC", kind="Cosmology particle simulation",
    ndim=1, small_shape=(2 ** 18,), full_shape=(2 ** 21,),
    generator=_gen_1d(cosmology.hacc_vx),
    description="Particle x velocities: dispersion-dominated, low VIF.",
))

_CACHE: dict[tuple[str, str], np.ndarray] = {}


def all_dataset_names() -> list[str]:
    """The nine field names in Table-I order."""
    return [s.name for s in _REGISTRY.values()]


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset's registry entry (case-insensitive)."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise ConfigError(
            f"unknown dataset {name!r}; known: {all_dataset_names()}"
        ) from None


def get_dataset(name: str, size: str = "small") -> np.ndarray:
    """Generate (or fetch from cache) a dataset by Table-I name.

    The returned array is the cached instance -- treat it as read-only,
    or copy before mutating.
    """
    spec = get_spec(name)
    key = (spec.name, size)
    if key not in _CACHE:
        _CACHE[key] = spec.generator(spec.shape(size))
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached dataset instances (mainly for tests)."""
    _CACHE.clear()
