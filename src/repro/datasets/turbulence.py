"""JHTDB-analogue 3-D turbulence fields.

Stand-ins for the Johns Hopkins Turbulence Database snapshots the paper
uses ("Isotropic1024-coarse" and "Channel", Table I).  What DPZ/SZ/ZFP
respond to in these data is the velocity field's spectral decay and the
cross-block correlation structure, both of which the spectral synthesis
reproduces directly:

* :func:`isotropic` -- homogeneous isotropic turbulence.  The 3-D power
  spectrum follows Kolmogorov's inertial-range law: the *energy*
  spectrum ``E(k) ~ k^(-5/3)`` corresponds to a 3-D *power* spectral
  density ``P(k) ~ E(k) / k^2 ~ k^(-11/3)``.
* :func:`channel` -- wall-bounded channel flow: a mean streamwise shear
  profile (log-law-like), turbulence intensity damped toward the walls,
  and mild anisotropy (streamwise-elongated structures).

Default grids are 64**3 so the full evaluation suite runs in seconds;
pass ``shape=(128, 128, 128)`` for the paper-scale snapshot geometry.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.grf import gaussian_random_field
from repro.errors import DataShapeError

__all__ = ["isotropic", "channel", "KOLMOGOROV_3D_SLOPE"]

#: 3-D PSD slope matching the Kolmogorov -5/3 energy spectrum.
KOLMOGOROV_3D_SLOPE = -11.0 / 3.0


def _check3d(shape: tuple[int, ...]) -> None:
    if len(shape) != 3 or min(shape) < 4:
        raise DataShapeError(
            f"turbulence fields are 3-D with every dim >= 4, got {shape}"
        )


def isotropic(shape: tuple[int, int, int] = (64, 64, 64), *,
              seed: int = 1024,
              dtype=np.float32) -> np.ndarray:
    """One velocity component of isotropic turbulence on a periodic box.

    Kolmogorov inertial-range spectrum with a von Karman large-scale
    rolloff and a Gaussian dissipation-range cutoff (real DNS fields
    are smooth below the Kolmogorov scale -- without the cutoff the
    synthetic field carries far more fine-scale energy than JHTDB's
    coarse snapshots and every compressor under-performs the paper's
    numbers).  A faint white floor (~3e-4 of the rms) represents
    single-precision storage noise and pins the deep TVE tail.
    """
    _check3d(shape)
    rng = np.random.default_rng(seed)
    k0 = 2.0 / max(shape)   # energy-containing scale: ~half the box
    kd = 6.0 / max(shape)   # dissipation cutoff

    def spectrum(k: np.ndarray) -> np.ndarray:
        return (np.power(1.0 + (k / k0) ** 2, KOLMOGOROV_3D_SLOPE / 2.0)
                * np.exp(-((k / kd) ** 2)))

    field = gaussian_random_field(shape, spectrum, rng, mean=0.0, std=1.0)
    field += 3e-4 * rng.normal(size=shape)
    return field.astype(dtype)


def channel(shape: tuple[int, int, int] = (64, 64, 64), *,
            seed: int = 2048,
            friction_velocity: float = 0.05,
            dtype=np.float32) -> np.ndarray:
    """Streamwise velocity of a turbulent channel flow.

    Axis convention: ``(x streamwise, y wall-normal, z spanwise)`` with
    walls at ``y = 0`` and ``y = ny - 1``.  The mean profile is a
    log-law body with viscous-sublayer rolloff; fluctuations are an
    anisotropic GRF (streamwise-elongated) modulated by a near-wall
    intensity envelope peaking in the buffer layer.
    """
    _check3d(shape)
    nx, ny, nz = shape
    rng = np.random.default_rng(seed)

    # Wall-normal coordinate in (0, 1], mirrored about the centerline.
    y = (np.arange(ny) + 0.5) / ny
    y_wall = np.minimum(y, 1.0 - y)  # distance to nearest wall, (0, 0.5]
    kappa = 0.41
    y_plus = y_wall * 360.0  # nominal Re_tau = 180 per half-height
    mean_profile = friction_velocity * (
        np.log1p(kappa * y_plus) / kappa
        + 7.8 * (1.0 - np.exp(-y_plus / 11.0)
                 - (y_plus / 11.0) * np.exp(-y_plus / 3.0))
    )

    def spectrum(k: np.ndarray) -> np.ndarray:
        k0 = 2.0 / max(shape)
        kd = 5.5 / max(shape)
        return (np.power(1.0 + (k / k0) ** 2, KOLMOGOROV_3D_SLOPE / 2.0)
                * np.exp(-((k / kd) ** 2)))

    fluct = gaussian_random_field(shape, spectrum, rng, mean=0.0, std=1.0)
    fluct += 3e-4 * rng.normal(size=shape)
    # Streamwise elongation: smooth along x with a short moving blend.
    fluct = 0.5 * (fluct + np.roll(fluct, 1, axis=0))
    # Near-wall intensity envelope: zero at the wall, peak near y+ ~ 15.
    intensity = (y_plus / 15.0) * np.exp(1.0 - y_plus / 15.0)
    intensity = 0.3 + 0.7 * np.clip(intensity, 0.0, 1.0)
    field = mean_profile[None, :, None] + \
        2.5 * friction_velocity * intensity[None, :, None] * fluct
    return field.astype(dtype)
