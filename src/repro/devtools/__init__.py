"""Developer tooling for the repro codebase.

Two halves live here:

* :mod:`repro.devtools.lint` -- the ``dpz lint`` static-analysis pass
  (per-file rules plus the cross-module call-graph engine behind the
  DPZ8xx concurrency family).  Nothing in the runtime pipeline imports
  it.
* :mod:`repro.devtools.sanitize` -- the ``DPZ_SANITIZE=1`` runtime
  thread sanitizer.  The concurrency-bearing runtime modules *do*
  import its :func:`~repro.devtools.sanitize.checked_lock` /
  :func:`~repro.devtools.sanitize.checked_rlock` factories, which is
  safe by construction: the module depends only on the standard
  library and :mod:`repro.errors`, and with the flag unset (the
  default) the factories return plain ``threading`` locks.

This package's ``__init__`` must therefore stay empty of imports so
that pulling in the sanitizer never drags the lint engine along.
"""
