"""Developer tooling for the repro codebase.

Nothing in this subpackage is imported by the runtime compression
pipeline; it holds tools that operate *on* the codebase, chiefly
:mod:`repro.devtools.lint` (the ``dpz lint`` static-analysis pass).
"""
