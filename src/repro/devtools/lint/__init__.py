"""``dpzlint``: the repo-native static-analysis pass.

A small AST-walking lint engine purpose-built for this codebase's
correctness surface -- invariants that no pytest run exercises
directly, because violating them produces archives that are *wrong
elsewhere* (another CPU, another run, another machine) while every
local test still passes:

* serialization boundaries must pin dtype and endianness (DPZ101),
* randomness must be seeded (DPZ201),
* codec layers may only raise the repro.errors taxonomy (DPZ301/302),
* metric names must come from the central catalog (DPZ401),
* compress/decompress entry points must be traced (DPZ501),
* no mutable default arguments (DPZ601),
* the public API surface must be documented (DPZ701),
* worker-reachable code may not mutate shared state unguarded, call
  process-global singleton mutators, invert lock order, or skip a
  majority-established field guard (DPZ801-DPZ804 -- project-scope
  rules over the cross-module call graph in
  :mod:`repro.devtools.lint.callgraph`).

Run it as ``dpz lint src/`` (human output) or
``dpz lint src/ --format json`` (CI artifact).  Suppress a finding
in-line with ``# dpzlint: ignore[DPZ101]``; see ``LINTS.md`` for the
full rule catalog and rationale.
"""

from repro.devtools.lint.engine import (
    FileContext,
    Finding,
    LintReport,
    PARSE_ERROR_ID,
    iter_python_files,
    lint_file,
    lint_paths,
)
from repro.devtools.lint.registry import (
    Rule,
    all_rules,
    get_rule,
    resolve_selection,
    rule,
)
from repro.devtools.lint.report import (
    JSON_VERSION,
    to_json,
    to_json_v1,
    to_text,
)

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "PARSE_ERROR_ID",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "Rule",
    "rule",
    "all_rules",
    "get_rule",
    "resolve_selection",
    "JSON_VERSION",
    "to_json",
    "to_json_v1",
    "to_text",
]
