"""Whole-tree symbol table, cross-module call graph, and flow facts.

The per-file rules (DPZ1xx-7xx) see one statement at a time; the
concurrency family (DPZ8xx) needs to know *who calls whom across the
whole tree* -- a worker task closure handed to ``parallel_map`` is only
three lines long, but the state it can corrupt lives behind every
function transitively reachable from it.  This module builds that
global view once per lint run:

* a **symbol table** of every module-level def, class and method,
  keyed by dotted qualified name (``repro.store.cache.ChunkCache.put``);
* per-module **import maps** (``import x.y as z`` / ``from x import y``,
  including relative imports), chained so a name re-exported through a
  package ``__init__`` still resolves to its defining module;
* a **call graph** over those symbols, resolving bare calls, attribute
  calls through imports, ``self.method()`` within a class, ``Cls()``
  constructor-then-method chains, and -- as a last resort -- methods
  whose bare name is unique across the whole tree;
* **worker-reachability**: the set of functions reachable from any
  task closure passed to ``parallel_map`` (or containing a
  ``capture_worker()`` block), computed by BFS over the call graph;
* per-function **flow facts**: lock acquisitions (``with lock:``
  blocks with the lexically-held lock set at entry), resolved calls
  with the held set at the call site, and shared-state mutations
  (module globals, enclosing-closure variables, ``self`` fields)
  tagged with the locks lexically guarding them.

Everything here is a static over/under-approximation in the usual
sanitizer tradition: unresolvable calls produce no edge (the rules
under-report rather than guess), and ``threading.local`` state -- which
is private per thread by construction -- is exempt from mutation
tracking.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.lint.engine import FileContext

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "Mutation",
    "Acquisition",
    "ResolvedCall",
    "FunctionFacts",
    "Project",
    "build_project",
    "dotted",
]

#: Constructors whose result is a lock object.
_LOCK_CTORS = frozenset({
    "Lock", "RLock", "checked_lock", "checked_rlock",
})

#: Constructors whose result is per-thread state (exempt from sharing).
_THREAD_LOCAL_CTORS = frozenset({"local"})

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort",
    "appendleft", "popleft", "move_to_end", "__setitem__",
})

#: Functions whose first positional argument is a worker task closure.
_FAN_OUT_FNS = frozenset({"parallel_map"})

#: Context managers that place their body in worker context.
_WORKER_CTX_FNS = frozenset({"capture_worker"})

#: How many alias links to follow when resolving a re-exported name.
_MAX_ALIAS_CHAIN = 8


def dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def _base_name(node: ast.expr) -> str | None:
    """Innermost ``Name`` of an attribute/subscript chain, else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _ctor_name(expr: ast.expr) -> str | None:
    """Bare constructor name of a ``Call`` value (``threading.Lock()``
    and ``Lock()`` both report ``Lock``)."""
    if not isinstance(expr, ast.Call):
        return None
    name = dotted(expr.func)
    if name is None:
        return None
    return name.split(".")[-1]


@dataclass
class FunctionInfo:
    """One function/method/task-closure in the symbol table."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    cls: str | None = None
    parent: str | None = None
    local_names: frozenset[str] = frozenset()
    lineno: int = 0


@dataclass
class ModuleInfo:
    """Per-module import map and module-scope state inventory."""

    name: str
    path: str
    is_package: bool = False
    imports: dict[str, str] = field(default_factory=dict)
    globals: frozenset[str] = frozenset()
    locks: frozenset[str] = frozenset()
    thread_locals: frozenset[str] = frozenset()


@dataclass(frozen=True)
class Mutation:
    """One shared-state mutation site inside a function.

    ``kind`` is ``"global"`` (module-level name), ``"closure"``
    (variable of an enclosing function) or ``"field"`` (``self.X``);
    ``held`` is the tuple of lock ids lexically guarding the site.
    """

    kind: str
    name: str
    node: ast.AST
    held: tuple[str, ...]
    detail: str = ""

    @property
    def guarded(self) -> bool:
        return bool(self.held)


@dataclass(frozen=True)
class Acquisition:
    """One ``with <lock>:`` block: lock id + locks already held."""

    lock: str
    node: ast.With
    held: tuple[str, ...]


@dataclass(frozen=True)
class ResolvedCall:
    """One resolved call site with the lexically-held lock set."""

    callee: str
    node: ast.Call
    held: tuple[str, ...]


@dataclass
class FunctionFacts:
    """Flow facts for one function (see module docstring)."""

    qualname: str
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[ResolvedCall] = field(default_factory=list)
    mutations: list[Mutation] = field(default_factory=list)


class Project:
    """The whole-tree analysis product handed to project-scope rules."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.contexts: dict[str, "FileContext"] = {}
        #: bare method name -> qualnames of every class method so named.
        self.methods_by_name: dict[str, list[str]] = {}
        #: class qualname -> lock attribute names (``self.X = Lock()``).
        self.class_locks: dict[str, frozenset[str]] = {}
        #: class qualname -> ``threading.local`` attribute names.
        self.class_thread_locals: dict[str, frozenset[str]] = {}
        self.edges: dict[str, set[str]] = {}
        self.worker_roots: set[str] = set()
        self.worker_reachable: set[str] = set()
        self.facts: dict[str, FunctionFacts] = {}

    # -- queries ----------------------------------------------------------

    def is_worker_reachable(self, qualname: str) -> bool:
        """True when ``qualname`` can run inside a worker task."""
        return qualname in self.worker_reachable

    def callees(self, qualname: str) -> frozenset[str]:
        """Direct call-graph successors of one function."""
        return frozenset(self.edges.get(qualname, ()))

    def summary(self) -> dict[str, int]:
        """Compact call-graph digest for the v2 JSON report."""
        return {
            "modules": len(self.modules),
            "functions": len(self.functions),
            "edges": sum(len(v) for v in self.edges.values()),
            "worker_roots": len(self.worker_roots),
            "worker_reachable_functions": len(self.worker_reachable),
        }

    # -- name resolution --------------------------------------------------

    def resolve_absolute(self, target: str) -> str | None:
        """Resolve a dotted absolute name, following re-export aliases.

        ``repro.parallel.parallel_map`` resolves through the package
        ``__init__``'s ``from repro.parallel.executor import
        parallel_map`` to ``repro.parallel.executor.parallel_map``.
        """
        seen = 0
        while seen < _MAX_ALIAS_CHAIN:
            seen += 1
            if target in self.functions:
                return target
            head, _, leaf = target.rpartition(".")
            if not head:
                return None
            mod = self.modules.get(head)
            if mod is None or leaf not in mod.imports:
                return None
            target = mod.imports[leaf]
        return None

    def resolve_call(self, call: ast.Call, info: FunctionInfo) -> str | None:
        """Resolve a call inside ``info`` to a symbol-table qualname."""
        func = call.func
        mod = self.modules.get(info.module)
        imports = mod.imports if mod is not None else {}
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, info, imports)
        if isinstance(func, ast.Attribute):
            # self.method() / cls.method() inside a class body.
            if isinstance(func.value, ast.Name) \
                    and func.value.id in ("self", "cls") \
                    and info.cls is not None:
                cand = f"{info.cls}.{func.attr}"
                if cand in self.functions:
                    return cand
                return self._unique_method(func.attr)
            # Cls().method(): resolve the constructor, then the method.
            if isinstance(func.value, ast.Call):
                ctor = dotted(func.value.func)
                if ctor is not None:
                    cls = self._resolve_dotted(ctor, info, imports,
                                               want_class=True)
                    if cls is not None:
                        cand = f"{cls}.{func.attr}"
                        if cand in self.functions:
                            return cand
                return self._unique_method(func.attr)
            name = dotted(func)
            if name is not None:
                resolved = self._resolve_dotted(name, info, imports)
                if resolved is not None:
                    return resolved
            return self._unique_method(func.attr)
        return None

    def _resolve_name(self, name: str, info: FunctionInfo,
                      imports: dict[str, str]) -> str | None:
        # A def nested inside this function (or an enclosing one).
        scope: str | None = info.qualname
        while scope is not None:
            cand = f"{scope}.{name}"
            if cand in self.functions:
                return cand
            scope = self.functions[scope].parent \
                if scope in self.functions else None
        # A sibling method, when called from inside a class body.
        if info.cls is not None:
            cand = f"{info.cls}.{name}"
            if cand in self.functions:
                return cand
        cand = f"{info.module}.{name}"
        if cand in self.functions:
            return cand
        if name in imports:
            # Resolve through re-exports when the target is in-tree;
            # otherwise return the absolute dotted path itself so
            # name-based rules (DPZ802) can still match it.
            return self.resolve_absolute(imports[name]) or imports[name]
        return None

    def _resolve_dotted(self, name: str, info: FunctionInfo,
                        imports: dict[str, str], *,
                        want_class: bool = False) -> str | None:
        head, _, rest = name.partition(".")
        if head in imports:
            target = imports[head] + (f".{rest}" if rest else "")
        else:
            target = f"{info.module}.{name}"
        if want_class:
            # A class "resolves" when any of its methods is known.
            resolved = self.resolve_absolute(target)
            if resolved is not None and self.functions[resolved].cls:
                return self.functions[resolved].cls
            if target in self.class_locks or any(
                    q.startswith(target + ".") for q in self.functions):
                return target
            # Follow a re-export chain to the defining module.
            chained = self._chase_alias(target)
            if chained is not None and (chained in self.class_locks or any(
                    q.startswith(chained + ".") for q in self.functions)):
                return chained
            return None
        resolved = self.resolve_absolute(target)
        if resolved is not None:
            return resolved
        # import repro.store.cache; repro.store.cache.fn() -- the head
        # binding covers the whole chain.
        if name in imports:
            return self.resolve_absolute(imports[name]) or imports[name]
        if head in imports:
            # Absolute but outside the linted tree: return the dotted
            # path so name-based rules (DPZ802) can still match it.
            return self._chase_alias(target) or target
        return None

    def _chase_alias(self, target: str) -> str | None:
        seen = 0
        while seen < _MAX_ALIAS_CHAIN:
            seen += 1
            head, _, leaf = target.rpartition(".")
            mod = self.modules.get(head)
            if mod is None or leaf not in mod.imports:
                return target if seen > 1 else None
            target = mod.imports[leaf]
        return target

    def _unique_method(self, name: str) -> str | None:
        """Last-resort attribute-call resolution by unique bare name."""
        owners = self.methods_by_name.get(name, [])
        if len(owners) == 1:
            return owners[0]
        return None


# -- per-module collection ---------------------------------------------------


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: str | None) -> str:
    """Absolute module path of a ``from ...x import y`` statement."""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    base = ".".join(parts)
    if target:
        return f"{base}.{target}" if base else target
    return base


def _collect_module(ctx: "FileContext") -> ModuleInfo:
    is_package = Path(ctx.path).name == "__init__.py"
    info = ModuleInfo(name=ctx.module, path=ctx.path,
                      is_package=is_package)
    globals_: set[str] = set()
    locks: set[str] = set()
    tlocals: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                info.imports.setdefault(
                    local, alias.name if alias.asname else local)
        elif isinstance(node, ast.ImportFrom):
            base = (_resolve_relative(ctx.module, is_package,
                                      node.level, node.module)
                    if node.level else (node.module or ""))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports.setdefault(local, f"{base}.{alias.name}")
    for stmt in ctx.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            globals_.add(stmt.name)
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            globals_.add(target.id)
            ctor = _ctor_name(value) if value is not None else None
            if ctor in _LOCK_CTORS:
                locks.add(target.id)
            elif ctor in _THREAD_LOCAL_CTORS:
                tlocals.add(target.id)
    info.globals = frozenset(globals_)
    info.locks = frozenset(locks)
    info.thread_locals = frozenset(tlocals)
    return info


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
                 ) -> frozenset[str]:
    """Names bound in a function's own scope (params + assignments)."""
    names: set[str] = set()
    args = fn.args
    for a in (args.posonlyargs + args.args + args.kwonlyargs):
        names.add(a.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    body: list[ast.stmt] | list[ast.expr] = (
        fn.body if isinstance(fn.body, list) else [fn.body])

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    names.add(child.name)
                continue
            if isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                                  ast.For, ast.AsyncFor, ast.withitem,
                                  ast.comprehension)):
                for tgt in _assignment_targets(child):
                    if isinstance(tgt, ast.Name):
                        names.add(tgt.id)
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    names.add(alias.asname
                              or alias.name.split(".")[0])
            if isinstance(child, ast.ExceptHandler) and child.name:
                names.add(child.name)
            visit(child)

    for stmt in body:
        visit(stmt)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                             ast.For, ast.AsyncFor)):
            for tgt in _assignment_targets(stmt):
                if isinstance(tgt, ast.Name):
                    names.add(tgt.id)
    return frozenset(names)


def _assignment_targets(node: ast.AST) -> Iterator[ast.expr]:
    """Every bind target of an assignment-like node (flattening tuples)."""
    raw: Sequence[ast.expr | None]
    if isinstance(node, ast.Assign):
        raw = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        raw = [node.target]
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        raw = [node.target]
    elif isinstance(node, ast.withitem):
        raw = [node.optional_vars]
    elif isinstance(node, ast.comprehension):
        raw = [node.target]
    else:
        raw = []
    for tgt in raw:
        if tgt is None:
            continue
        if isinstance(tgt, (ast.Tuple, ast.List)):
            for elt in tgt.elts:
                yield elt
        else:
            yield tgt


def _collect_functions(ctx: "FileContext", project: Project) -> None:
    module = ctx.module

    def visit(node: ast.AST, stack: list[str], cls: str | None,
              parent: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join([module] + stack + [child.name])
                info = FunctionInfo(
                    qualname=qual, module=module, name=child.name,
                    node=child, cls=cls, parent=parent,
                    local_names=_local_names(child),
                    lineno=child.lineno)
                project.functions[qual] = info
                if cls is not None:
                    project.methods_by_name.setdefault(
                        child.name, []).append(qual)
                visit(child, stack + [child.name], None, qual)
            elif isinstance(child, ast.ClassDef):
                cls_qual = ".".join([module] + stack + [child.name])
                _collect_class_attrs(child, cls_qual, project)
                visit(child, stack + [child.name], cls_qual, parent)
            else:
                visit(child, stack, cls, parent)

    visit(ctx.tree, [], None, None)


def _collect_class_attrs(cls: ast.ClassDef, cls_qual: str,
                         project: Project) -> None:
    locks: set[str] = set()
    tlocals: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        ctor = _ctor_name(node.value)
        if ctor not in _LOCK_CTORS and ctor not in _THREAD_LOCAL_CTORS:
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                if ctor in _LOCK_CTORS:
                    locks.add(target.attr)
                else:
                    tlocals.add(target.attr)
    project.class_locks[cls_qual] = frozenset(locks)
    project.class_thread_locals[cls_qual] = frozenset(tlocals)


# -- lock identification -----------------------------------------------------


def _lock_id(expr: ast.expr, info: FunctionInfo,
             project: Project) -> str | None:
    """Canonical lock id of a ``with`` item's context expression.

    Known locks resolve to their definition site
    (``repro.parallel.executor._pool_lock``,
    ``repro.store.cache.ChunkCache._lock``); unknown names whose last
    component *looks* like a lock (contains ``lock``) get a
    best-effort id so ordering is still tracked -- lock-order analysis
    works on lock *classes*, exactly like kernel lockdep.
    """
    # with lock.acquire-style wrappers are out of scope: `with X:` only.
    name = dotted(expr)
    if name is None:
        return None
    mod = project.modules.get(info.module)
    parts = name.split(".")
    if parts[0] in ("self", "cls") and info.cls is not None \
            and len(parts) >= 2:
        attr = parts[1]
        if attr in project.class_locks.get(info.cls, frozenset()):
            return f"{info.cls}.{attr}"
        if "lock" in attr.lower():
            return f"{info.cls}.{attr}"
        return None
    if len(parts) == 1:
        if mod is not None and parts[0] in mod.locks:
            return f"{info.module}.{parts[0]}"
        if mod is not None and parts[0] in mod.imports \
                and "lock" in parts[0].lower():
            return mod.imports[parts[0]]
        if "lock" in parts[0].lower():
            return f"{info.module}.{parts[0]}"
        return None
    if "lock" in parts[-1].lower():
        # obj._lock on a receiver we cannot type: key by attribute name
        # so every instance of the same field shares one lock class.
        return f"<attr>.{parts[-1]}"
    return None


# -- per-function fact extraction --------------------------------------------


def _closure_names(info: FunctionInfo, project: Project) -> frozenset[str]:
    """Variables of enclosing function scopes visible to ``info``."""
    names: set[str] = set()
    parent = info.parent
    while parent is not None and parent in project.functions:
        pinfo = project.functions[parent]
        names.update(pinfo.local_names)
        parent = pinfo.parent
    return frozenset(names - set(info.local_names))


def _collect_facts(info: FunctionInfo, project: Project) -> FunctionFacts:
    facts = FunctionFacts(qualname=info.qualname)
    mod = project.modules.get(info.module)
    module_globals = mod.globals if mod is not None else frozenset()
    module_tlocals = mod.thread_locals if mod is not None else frozenset()
    module_locks = mod.locks if mod is not None else frozenset()
    closure = _closure_names(info, project)
    cls_locks = project.class_locks.get(info.cls or "", frozenset())
    cls_tlocals = project.class_thread_locals.get(info.cls or "",
                                                  frozenset())
    fn_node = info.node
    global_decls: set[str] = set()
    nonlocal_decls: set[str] = set()
    body = fn_node.body if isinstance(fn_node.body, list) else [fn_node.body]
    for node in body:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                continue
            if isinstance(sub, ast.Global):
                global_decls.update(sub.names)
            elif isinstance(sub, ast.Nonlocal):
                nonlocal_decls.update(sub.names)

    def classify(name: str) -> str | None:
        """Shared-state kind of a mutated base name, or None."""
        if name in module_tlocals or name in module_locks:
            return None
        if name in info.local_names and name not in global_decls \
                and name not in nonlocal_decls:
            return None
        if name in nonlocal_decls or name in closure:
            return "closure"
        if name in global_decls or name in module_globals:
            return "global"
        return None

    def field_of(target: ast.expr) -> str | None:
        """``self.X...`` chains -> field ``X`` (exempting locals)."""
        node = target
        chain: list[str] = []
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                chain.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name) and node.id == "self" and chain:
            fld = chain[-1]
            if fld in cls_locks or fld in cls_tlocals:
                return None
            return fld
        return None

    def record_mutation(target: ast.expr, node: ast.AST,
                        held: tuple[str, ...], detail: str) -> None:
        if isinstance(target, ast.Name):
            kind = classify(target.id)
            if kind is not None:
                facts.mutations.append(Mutation(
                    kind=kind, name=target.id, node=node, held=held,
                    detail=detail))
            return
        fld = field_of(target)
        if fld is not None and info.cls is not None:
            facts.mutations.append(Mutation(
                kind="field", name=fld, node=node, held=held,
                detail=detail))
            return
        base = _base_name(target)
        if base is not None and base not in ("self", "cls"):
            kind = classify(base)
            if kind is not None:
                facts.mutations.append(Mutation(
                    kind=kind, name=base, node=node, held=held,
                    detail=detail))

    def walk(node: ast.AST, held: tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            walk_node(child, held)

    def walk_node(child: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda, ast.ClassDef)):
            return  # nested scopes carry their own facts
        if isinstance(child, (ast.With, ast.AsyncWith)):
            inner = held
            for item in child.items:
                lock = _lock_id(item.context_expr, info, project)
                if lock is not None:
                    facts.acquisitions.append(
                        Acquisition(lock=lock, node=child, held=inner))
                    inner = inner + (lock,)
                elif isinstance(item.context_expr, ast.Call):
                    # `with capture_worker():` etc. still get their
                    # call (and argument subtree) recorded, e.g. for
                    # worker-context seeding.
                    walk_node(item.context_expr, held)
            for stmt in child.body:
                walk_node(stmt, inner)
            return
        if isinstance(child, ast.Call):
            callee = project.resolve_call(child, info)
            facts.calls.append(ResolvedCall(
                callee=callee or _call_label(child), node=child,
                held=held))
            func = child.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in _MUTATOR_METHODS:
                record_mutation(func.value, child, held,
                                f".{func.attr}()")
        elif isinstance(child, (ast.Assign, ast.AnnAssign)):
            for tgt in _assignment_targets(child):
                if isinstance(tgt, ast.Name):
                    # A plain name assignment only mutates shared
                    # state when declared global/nonlocal; otherwise
                    # it binds a function-local.
                    if tgt.id in global_decls or tgt.id in nonlocal_decls:
                        record_mutation(tgt, child, held, "assignment")
                else:
                    record_mutation(tgt, child, held, "assignment")
        elif isinstance(child, ast.AugAssign):
            tgt = child.target
            if isinstance(tgt, ast.Name):
                if tgt.id in global_decls or tgt.id in nonlocal_decls:
                    record_mutation(tgt, child, held, "augmented "
                                    "assignment")
            else:
                record_mutation(tgt, child, held, "augmented assignment")
        elif isinstance(child, ast.Delete):
            for tgt in child.targets:
                record_mutation(tgt, child, held, "del")
        walk(child, held)

    for stmt in body:
        walk_node(stmt, ())
    return facts


def _call_label(call: ast.Call) -> str:
    """Unresolved-call placeholder (still useful for seed detection)."""
    name = dotted(call.func)
    return f"<unresolved>.{name}" if name else "<unresolved>"


# -- worker-reachability -----------------------------------------------------


def _seed_workers(project: Project) -> None:
    for qual, info in list(project.functions.items()):
        facts = project.facts[qual]
        for rc in facts.calls:
            leaf = rc.callee.rsplit(".", 1)[-1]
            if leaf in _WORKER_CTX_FNS:
                project.worker_roots.add(qual)
            if leaf not in _FAN_OUT_FNS:
                continue
            call = rc.node
            if not call.args:
                continue
            task = call.args[0]
            root: str | None = None
            if isinstance(task, ast.Name):
                root = project._resolve_name(
                    task.id, info,
                    project.modules[info.module].imports
                    if info.module in project.modules else {})
            elif isinstance(task, ast.Attribute):
                name = dotted(task)
                if name is not None:
                    root = project._resolve_dotted(
                        name, info,
                        project.modules[info.module].imports
                        if info.module in project.modules else {})
            elif isinstance(task, ast.Lambda):
                root = _register_lambda(task, info, project)
            if root is not None:
                project.worker_roots.add(root)


def _register_lambda(node: ast.Lambda, owner: FunctionInfo,
                     project: Project) -> str:
    qual = f"{owner.qualname}.<lambda:{node.lineno}>"
    info = FunctionInfo(
        qualname=qual, module=owner.module, name="<lambda>",
        node=node, cls=None, parent=owner.qualname,
        local_names=_local_names(node), lineno=node.lineno)
    project.functions[qual] = info
    project.facts[qual] = _collect_facts(info, project)
    project.edges[qual] = {
        rc.callee for rc in project.facts[qual].calls
        if rc.callee in project.functions
    }
    return qual


def _mark_reachable(project: Project) -> None:
    frontier = list(project.worker_roots & set(project.functions))
    seen = set(frontier)
    while frontier:
        qual = frontier.pop()
        for callee in project.edges.get(qual, ()):
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    project.worker_reachable = seen


# -- entry point -------------------------------------------------------------


def build_project(contexts: Iterable["FileContext"]) -> Project:
    """Build the symbol table, call graph and flow facts for a tree."""
    project = Project()
    ctx_list = list(contexts)
    for ctx in ctx_list:
        project.contexts[ctx.module] = ctx
        project.modules[ctx.module] = _collect_module(ctx)
    for ctx in ctx_list:
        _collect_functions(ctx, project)
    for qual, info in list(project.functions.items()):
        project.facts[qual] = _collect_facts(info, project)
    for qual, facts in project.facts.items():
        project.edges[qual] = {
            rc.callee for rc in facts.calls
            if rc.callee in project.functions
        }
    _seed_workers(project)
    _mark_reachable(project)
    return project
