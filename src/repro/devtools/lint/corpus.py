"""Seeded race-fixture corpus: precision/recall pins for DPZ801-804.

Static concurrency analysis lives or dies on its false-positive rate,
so every DPZ8xx rule ships with a corpus of minimal fixtures: *racy*
snippets the rule *must* flag and *clean* snippets it *must not*.  The
test suite asserts both directions, and the v2 JSON report embeds the
per-rule pass stats (``fixture_corpus``) so a CI artifact shows not
just what the lint found but that the finder itself still works.

Each fixture is one synthetic module linted in isolation through the
same engine path as real files (``FileContext`` -> single-file
``Project`` -> project-scope rules), so the corpus exercises exactly
the production pipeline -- including name-based fallback resolution
for imports that point outside the fixture.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass
from typing import cast

from repro.devtools.lint.callgraph import build_project
from repro.devtools.lint.engine import FileContext, Finding
from repro.devtools.lint.registry import ProjectCheckFn, Rule, all_rules

__all__ = ["Fixture", "CORPUS", "run_fixture", "corpus_stats"]


@dataclass(frozen=True)
class Fixture:
    """One corpus entry: a named snippet with an expected verdict."""

    name: str
    racy: bool
    source: str


def _fx(name: str, racy: bool, source: str) -> Fixture:
    return Fixture(name=name, racy=racy,
                   source=textwrap.dedent(source).lstrip("\n"))


#: rule id -> fixtures.  Racy fixtures must produce >= 1 finding of
#: that rule; clean fixtures must produce zero.
CORPUS: dict[str, list[Fixture]] = {
    "DPZ801": [
        _fx("global-counter-bare", True, """
            from repro.parallel import parallel_map

            _seen = {}


            def task(item):
                _seen[item.key] = item
                return item


            def run(items):
                return parallel_map(task, items)
            """),
        _fx("closure-list-append", True, """
            from repro.parallel import parallel_map


            def run(items):
                failures = []

                def task(item):
                    try:
                        return item.work()
                    except ValueError:
                        failures.append(item)
                        return None

                parallel_map(task, items)
                return failures
            """),
        _fx("global-rebind-in-worker-callee", True, """
            from repro.parallel import parallel_map

            _total = 0


            def bump(n):
                global _total
                _total += n


            def task(item):
                bump(item.cost)
                return item


            def run(items):
                return parallel_map(task, items)
            """),
        _fx("global-counter-locked", False, """
            import threading

            from repro.parallel import parallel_map

            _seen = {}
            _seen_lock = threading.Lock()


            def task(item):
                with _seen_lock:
                    _seen[item.key] = item
                return item


            def run(items):
                return parallel_map(task, items)
            """),
        _fx("local-state-only", False, """
            from repro.parallel import parallel_map


            def task(item):
                acc = {}
                acc[item.key] = item.work()
                return acc


            def run(items):
                return parallel_map(task, items)
            """),
        _fx("mutation-outside-worker", False, """
            _seen = {}


            def remember(item):
                _seen[item.key] = item


            def run(items):
                for item in items:
                    remember(item)
            """),
        _fx("threading-local-state", False, """
            import threading

            from repro.parallel import parallel_map

            _scratch = threading.local()


            def task(item):
                _scratch.last = item
                return item.work()


            def run(items):
                return parallel_map(task, items)
            """),
    ],
    "DPZ802": [
        _fx("register-codec-in-task", True, """
            from repro.codecs.registry import register_codec
            from repro.parallel import parallel_map


            def task(item):
                register_codec(item.name, item.enc, item.dec)
                return item.name


            def run(items):
                return parallel_map(task, items)
            """),
        _fx("tracer-swap-in-capture", True, """
            from repro.observability.aggregate import capture_worker
            from repro.observability.tracer import set_tracer


            def task(item):
                with capture_worker():
                    set_tracer(None)
                    return item.work()
            """),
        _fx("runlog-append-in-worker-callee", True, """
            from repro.observability.runlog import append_record
            from repro.parallel import parallel_map


            def finish(record):
                append_record(record)


            def task(item):
                result = item.work()
                finish(result.record)
                return result


            def run(items):
                return parallel_map(task, items)
            """),
        _fx("register-codec-at-setup", False, """
            from repro.codecs.registry import register_codec
            from repro.parallel import parallel_map


            def task(item):
                return item.work()


            def run(items, codec):
                register_codec(codec.name, codec.enc, codec.dec)
                return parallel_map(task, items)
            """),
        _fx("metric-emission-in-task", False, """
            from repro.observability import counter_inc, observe
            from repro.parallel import parallel_map


            def task(item):
                counter_inc("fixture.items")
                observe("fixture.seconds", item.cost)
                return item.work()


            def run(items):
                return parallel_map(task, items)
            """),
    ],
    "DPZ803": [
        _fx("abba-two-functions", True, """
            import threading

            _a_lock = threading.Lock()
            _b_lock = threading.Lock()


            def forward():
                with _a_lock:
                    with _b_lock:
                        return 1


            def backward():
                with _b_lock:
                    with _a_lock:
                        return 2
            """),
        _fx("abba-through-helper", True, """
            import threading

            _a_lock = threading.Lock()
            _b_lock = threading.Lock()


            def take_a():
                with _a_lock:
                    return 1


            def forward():
                with _b_lock:
                    return take_a()


            def backward():
                with _a_lock:
                    with _b_lock:
                        return 2
            """),
        _fx("consistent-nesting", False, """
            import threading

            _a_lock = threading.Lock()
            _b_lock = threading.Lock()


            def one():
                with _a_lock:
                    with _b_lock:
                        return 1


            def two():
                with _a_lock:
                    with _b_lock:
                        return 2
            """),
        _fx("disjoint-locks", False, """
            import threading

            _a_lock = threading.Lock()
            _b_lock = threading.Lock()


            def one():
                with _a_lock:
                    return 1


            def two():
                with _b_lock:
                    return 2
            """),
    ],
    "DPZ804": [
        _fx("forgotten-guard", True, """
            import threading


            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    with self._lock:
                        self._items.append(item)

                def drop(self, item):
                    with self._lock:
                        self._items.remove(item)

                def reset(self):
                    self._items = []
            """),
        _fx("guarded-everywhere", False, """
            import threading


            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    with self._lock:
                        self._items.append(item)

                def reset(self):
                    with self._lock:
                        self._items = []
            """),
        _fx("never-guarded", False, """
            class Plain:
                def __init__(self):
                    self._items = []

                def add(self, item):
                    self._items.append(item)

                def reset(self):
                    self._items = []
            """),
        _fx("init-exempt", False, """
            import threading


            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []
                    self._items = list(self._items)

                def add(self, item):
                    with self._lock:
                        self._items.append(item)

                def drop(self, item):
                    with self._lock:
                        self._items.remove(item)
            """),
    ],
}


def run_fixture(rule_id: str, fixture: Fixture,
                rules: dict[str, Rule] | None = None) -> list[Finding]:
    """Lint one fixture through the production engine path.

    Returns only findings of ``rule_id``.  The fixture gets a
    synthetic module name outside ``repro.*`` layer scoping, so only
    the project-scope concurrency rules apply meaningfully.
    """
    if rules is None:
        rules = all_rules()
    target = rules.get(rule_id)
    if target is None:
        return []
    path = f"<corpus:{rule_id}:{fixture.name}>"
    ctx = FileContext(path, fixture.source,
                      module=f"corpus_{fixture.name.replace('-', '_')}")
    project = build_project([ctx])
    check = cast(ProjectCheckFn, target.check)
    return [f for f in check(project) if f.rule == rule_id]


def corpus_stats(rules: dict[str, Rule] | None = None
                 ) -> dict[str, dict[str, object]]:
    """Per-rule corpus pass stats for the v2 JSON report.

    For every corpus-backed rule present in ``rules``::

        {"racy_total": 3, "racy_flagged": 3,
         "clean_total": 4, "clean_false_positives": 0, "pass": true}
    """
    if rules is None:
        rules = all_rules()
    out: dict[str, dict[str, object]] = {}
    for rule_id, fixtures in sorted(CORPUS.items()):
        if rule_id not in rules:
            continue
        racy_total = racy_flagged = clean_total = clean_fp = 0
        for fixture in fixtures:
            findings = run_fixture(rule_id, fixture, rules)
            if fixture.racy:
                racy_total += 1
                if findings:
                    racy_flagged += 1
            else:
                clean_total += 1
                if findings:
                    clean_fp += 1
        out[rule_id] = {
            "racy_total": racy_total,
            "racy_flagged": racy_flagged,
            "clean_total": clean_total,
            "clean_false_positives": clean_fp,
            "pass": racy_flagged == racy_total and clean_fp == 0,
        }
    return out
