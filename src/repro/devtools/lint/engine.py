"""AST-walking lint engine: file contexts, suppressions, orchestration.

The engine is deliberately small: it parses each file once, extracts
``# dpzlint:`` directives from the token stream, derives the dotted
module name (so rules can scope themselves to layers such as
``repro.codecs``), runs every selected rule, and filters findings
through the suppression map.

Directives (comments, anywhere a comment is legal):

``# dpzlint: ignore[DPZ101]`` / ``# dpzlint: ignore[DPZ101,DPZ301]``
    Suppress the listed rules on this physical line.
``# dpzlint: ignore``
    Suppress every rule on this physical line.
``# dpzlint: skip-file``
    Skip the whole file (must appear in the first 10 lines).
``# dpzlint: module=repro.codecs.something``
    Override the derived module name; used by out-of-tree fixture
    files (e.g. the lint test suite) to opt into layer-scoped rules.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, cast

from repro.devtools.lint.callgraph import Project, build_project
from repro.devtools.lint.registry import (
    CheckFn,
    ProjectCheckFn,
    Rule,
    all_rules,
)
from repro.errors import ConfigError

__all__ = ["Finding", "FileContext", "LintReport", "lint_file",
           "lint_paths", "iter_python_files", "PARSE_ERROR_ID"]

#: Pseudo-rule id attached to findings for unparseable files.
PARSE_ERROR_ID = "DPZ000"

_DIRECTIVE = re.compile(r"#\s*dpzlint:\s*(?P<body>.+?)\s*$")
_IGNORE = re.compile(r"^ignore(?:\[(?P<ids>[A-Z0-9,\s]+)\])?$")
_MODULE = re.compile(r"^module\s*=\s*(?P<mod>[A-Za-z_][\w.]*)$")
_SKIP_FILE = "skip-file"
#: A skip-file directive must appear near the top to take effect.
_SKIP_FILE_WINDOW = 10


@dataclass(frozen=True)
class Finding:
    """One lint violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """Human one-liner (``path:line:col: RULE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class FileContext:
    """A parsed source file plus everything rules need to scope checks.

    Attributes
    ----------
    path:
        Path string as given (echoed into findings).
    source:
        Full file text.
    tree:
        Parsed :class:`ast.Module`.
    module:
        Dotted module name (``repro.core.stream``), derived from the
        path or overridden by a ``module=`` directive.  Files outside a
        ``repro`` package get their bare stem.
    """

    def __init__(self, path: str, source: str,
                 module: str | None = None) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self._suppress_all: set[int] = set()
        self._suppress: dict[int, set[str]] = {}
        self.skip_file = False
        directive_module = self._scan_directives(source)
        self.module = (module or directive_module
                       or _derive_module(path))

    # -- directives ------------------------------------------------------

    def _scan_directives(self, source: str) -> str | None:
        module_override: str | None = None
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [(tok.start[0], tok.string) for tok in tokens
                        if tok.type == tokenize.COMMENT]
        except (tokenize.TokenError, IndentationError):
            comments = []
        for line, text in comments:
            m = _DIRECTIVE.search(text)
            if not m:
                continue
            body = m.group("body")
            ig = _IGNORE.match(body)
            if ig:
                ids = ig.group("ids")
                if ids is None:
                    self._suppress_all.add(line)
                else:
                    bucket = self._suppress.setdefault(line, set())
                    bucket.update(i.strip() for i in ids.split(",")
                                  if i.strip())
                continue
            if body == _SKIP_FILE and line <= _SKIP_FILE_WINDOW:
                self.skip_file = True
                continue
            mm = _MODULE.match(body)
            if mm:
                module_override = mm.group("mod")
        return module_override

    def suppressed(self, finding: Finding) -> bool:
        """True if a directive on the finding's line silences it."""
        if finding.line in self._suppress_all:
            return True
        return finding.rule in self._suppress.get(finding.line, set())

    # -- rule helpers ----------------------------------------------------

    def in_layer(self, *prefixes: str) -> bool:
        """True if this module sits under any dotted prefix.

        ``in_layer("repro.codecs")`` matches ``repro.codecs`` itself and
        every submodule, but not ``repro.codecs_extra``.
        """
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        return Finding(rule=rule_id, path=self.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message)


def _derive_module(path: str) -> str:
    """Dotted module name from a file path.

    Anchors at the *last* path component named ``repro`` so both
    ``src/repro/...`` and installed-layout paths resolve; anything else
    falls back to the file stem.
    """
    parts = Path(path).parts
    anchor = None
    for i, part in enumerate(parts):
        if part == "repro":
            anchor = i
    if anchor is None:
        return Path(path).stem
    dotted = list(parts[anchor:])
    dotted[-1] = Path(dotted[-1]).stem
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


@dataclass
class LintReport:
    """Aggregate result of one lint run.

    ``call_graph`` carries the cross-module analysis digest (module /
    edge / worker-reachability counts) when any project-scope rule ran;
    ``None`` otherwise.  The v2 JSON report embeds it.
    """

    findings: list[Finding]
    files_checked: int
    suppressed: int
    call_graph: dict[str, int] | None = None

    @property
    def counts(self) -> dict[str, int]:
        """Findings per rule id."""
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(
                f for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
                and not any(part.startswith(".") for part in f.parts)
            )
        elif p.is_file():
            candidates = [p]
        else:
            raise ConfigError(f"no such file or directory: {p}")
        for f in candidates:
            if f not in seen:
                seen.add(f)
                yield f


def _load_context(path: str | Path, module: str | None = None
                  ) -> tuple[FileContext | None, list[Finding]]:
    """Read + parse one file into a context, degrading to findings.

    An unreadable file (broken symlink, permission error) or an
    unparseable one yields a single :data:`PARSE_ERROR_ID` finding
    instead of aborting the run; a ``skip-file`` directive yields
    neither a context nor findings.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return None, [Finding(
            rule=PARSE_ERROR_ID, path=str(path), line=1, col=0,
            message=f"could not read file: {exc.strerror or exc}")]
    except UnicodeDecodeError as exc:
        return None, [Finding(
            rule=PARSE_ERROR_ID, path=str(path), line=1, col=0,
            message=f"could not decode file as UTF-8: {exc.reason}")]
    try:
        ctx = FileContext(str(path), text, module=module)
    except SyntaxError as exc:
        return None, [Finding(
            rule=PARSE_ERROR_ID, path=str(path),
            line=exc.lineno or 1, col=exc.offset or 0,
            message=f"could not parse file: {exc.msg}")]
    if ctx.skip_file:
        return None, []
    return ctx, []


def _run_file_rules(ctx: FileContext, rules: dict[str, Rule]
                    ) -> tuple[list[Finding], int]:
    findings: list[Finding] = []
    suppressed = 0
    for r in rules.values():
        if r.scope != "file":
            continue
        for f in cast(CheckFn, r.check)(ctx):
            if ctx.suppressed(f):
                suppressed += 1
            else:
                findings.append(f)
    return findings, suppressed


def _run_project_rules(project: Project, rules: dict[str, Rule],
                       by_path: dict[str, FileContext]
                       ) -> tuple[list[Finding], int]:
    findings: list[Finding] = []
    suppressed = 0
    for r in rules.values():
        if r.scope != "project":
            continue
        for f in cast(ProjectCheckFn, r.check)(project):
            ctx = by_path.get(f.path)
            if ctx is not None and ctx.suppressed(f):
                suppressed += 1
            else:
                findings.append(f)
    return findings, suppressed


def _has_project_rules(rules: dict[str, Rule]) -> bool:
    return any(r.scope == "project" for r in rules.values())


def lint_file(path: str | Path, rules: dict[str, Rule] | None = None,
              *, module: str | None = None) -> tuple[list[Finding], int]:
    """Lint one file; returns ``(findings, n_suppressed)``.

    Unreadable or unparseable files yield a single
    :data:`PARSE_ERROR_ID` finding rather than aborting the whole run.
    Project-scope rules see a single-file project: cross-module
    resolution degrades to name-based matching, which is exactly what
    the fixture corpus exercises.
    """
    if rules is None:
        rules = all_rules()
    ctx, pre = _load_context(path, module)
    if ctx is None:
        return pre, 0
    findings, suppressed = _run_file_rules(ctx, rules)
    if _has_project_rules(rules):
        project = build_project([ctx])
        pf, ps = _run_project_rules(project, rules, {ctx.path: ctx})
        findings.extend(pf)
        suppressed += ps
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, suppressed


def lint_paths(paths: Iterable[str | Path],
               rules: dict[str, Rule] | None = None) -> LintReport:
    """Lint every Python file under ``paths``.

    Runs in two passes: per-file rules as each file parses, then --
    when any project-scope rule is selected -- the cross-module pass
    over a :class:`~repro.devtools.lint.callgraph.Project` built from
    every successfully parsed file.
    """
    if rules is None:
        rules = all_rules()
    findings: list[Finding] = []
    suppressed = 0
    n_files = 0
    contexts: list[FileContext] = []
    by_path: dict[str, FileContext] = {}
    for f in iter_python_files(paths):
        n_files += 1
        ctx, pre = _load_context(f)
        findings.extend(pre)
        if ctx is None:
            continue
        contexts.append(ctx)
        by_path[ctx.path] = ctx
        file_findings, file_suppressed = _run_file_rules(ctx, rules)
        findings.extend(file_findings)
        suppressed += file_suppressed
    call_graph: dict[str, int] | None = None
    if contexts and _has_project_rules(rules):
        project = build_project(contexts)
        call_graph = project.summary()
        pf, ps = _run_project_rules(project, rules, by_path)
        findings.extend(pf)
        suppressed += ps
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(findings=findings, files_checked=n_files,
                      suppressed=suppressed, call_graph=call_graph)
