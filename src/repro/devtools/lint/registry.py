"""Rule registry for the ``dpzlint`` engine.

A *rule* is a pure function from a parsed file (a
:class:`~repro.devtools.lint.engine.FileContext`) to an iterable of
findings, registered under a stable id (``DPZ101``, ``DPZ201``, ...).
Ids are what suppression comments (``# dpzlint: ignore[DPZ101]``),
``--select`` filters and the JSON report refer to, so they must never
be renumbered once shipped.

Rules register themselves at import time via the :func:`rule`
decorator; importing :mod:`repro.devtools.lint.rules` populates the
registry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, TypeVar, Union

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.lint.callgraph import Project
    from repro.devtools.lint.engine import FileContext, Finding

__all__ = ["Rule", "rule", "all_rules", "get_rule", "resolve_selection"]

_RULE_ID = re.compile(r"^DPZ\d{3}$")

#: Callable signature of a file-scope rule check.
CheckFn = Callable[["FileContext"], Iterable["Finding"]]

#: Callable signature of a project-scope rule check (cross-module
#: analysis over the whole-tree call graph).
ProjectCheckFn = Callable[["Project"], Iterable["Finding"]]

AnyCheckFn = Union[CheckFn, ProjectCheckFn]

_Fn = TypeVar("_Fn", bound=AnyCheckFn)

#: Valid values for :attr:`Rule.scope`.
SCOPES = ("file", "project")


@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    Attributes
    ----------
    id:
        Stable identifier (``DPZ###``); referenced by suppressions.
    name:
        Short kebab-case slug (``serialization-endianness``).
    summary:
        One-line statement of the enforced invariant.
    rationale:
        Why violating the invariant is a real hazard in this repo.
    check:
        The checker callable.  File-scope checks receive one
        :class:`~repro.devtools.lint.engine.FileContext`; project-scope
        checks receive a whole-tree
        :class:`~repro.devtools.lint.callgraph.Project`.
    scope:
        ``"file"`` (the default) or ``"project"``.
    """

    id: str
    name: str
    summary: str
    rationale: str
    check: AnyCheckFn
    scope: str = "file"


_RULES: dict[str, Rule] = {}


def rule(rule_id: str, name: str, summary: str,
         rationale: str = "", *, scope: str = "file"
         ) -> Callable[[_Fn], _Fn]:
    """Register a checker under ``rule_id`` (decorator).

    Duplicate or malformed ids are programming errors and raise
    :class:`~repro.errors.ConfigError` at import time.
    """
    if not _RULE_ID.match(rule_id):
        raise ConfigError(f"bad rule id {rule_id!r} (want DPZ###)")
    if scope not in SCOPES:
        raise ConfigError(
            f"bad rule scope {scope!r} for {rule_id}; want one of {SCOPES}")

    def deco(fn: _Fn) -> _Fn:
        if rule_id in _RULES:
            raise ConfigError(f"duplicate rule id {rule_id}")
        _RULES[rule_id] = Rule(id=rule_id, name=name, summary=summary,
                               rationale=rationale, check=fn, scope=scope)
        return fn

    return deco


def all_rules() -> dict[str, Rule]:
    """Registered rules keyed by id (import side effect populates it)."""
    # Importing the rules package is what fills the registry; do it
    # lazily so `registry` itself stays import-cycle free.
    import repro.devtools.lint.rules  # noqa: F401

    return dict(sorted(_RULES.items()))


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id."""
    rules = all_rules()
    try:
        return rules[rule_id]
    except KeyError:
        raise ConfigError(
            f"unknown lint rule {rule_id!r}; have {sorted(rules)}"
        ) from None


def resolve_selection(select: str | None) -> dict[str, Rule]:
    """Resolve a ``--select`` string ("DPZ101,DPZ301") to rules.

    ``None`` or empty selects every registered rule.
    """
    rules = all_rules()
    if not select:
        return rules
    chosen = {}
    for rule_id in select.split(","):
        rule_id = rule_id.strip()
        if not rule_id:
            continue
        chosen[rule_id] = get_rule(rule_id)
    return chosen
