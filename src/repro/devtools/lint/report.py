"""Rendering lint results: human one-liners and machine JSON.

The JSON document is versioned (``{"version": 1}``) because CI uploads
it as an artifact and the schema therefore outlives any one checkout.
"""

from __future__ import annotations

import json
from typing import Any

from repro.devtools.lint.engine import LintReport
from repro.devtools.lint.registry import Rule

__all__ = ["to_text", "to_json", "JSON_VERSION"]

JSON_VERSION = 1


def to_text(report: LintReport, rules: dict[str, Rule]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.render() for f in report.findings]
    if report.findings:
        per_rule = ", ".join(f"{rid}: {n}"
                             for rid, n in report.counts.items())
        lines.append("")
        lines.append(
            f"{len(report.findings)} finding"
            f"{'s' if len(report.findings) != 1 else ''} "
            f"({per_rule}) in {report.files_checked} files"
            + (f"; {report.suppressed} suppressed"
               if report.suppressed else ""))
    else:
        lines.append(
            f"dpzlint: {report.files_checked} files clean"
            + (f" ({report.suppressed} suppressed)"
               if report.suppressed else ""))
    return "\n".join(lines)


def to_json(report: LintReport, rules: dict[str, Rule]) -> str:
    """Machine-readable report (stable, versioned schema)."""
    doc: dict[str, Any] = {
        "version": JSON_VERSION,
        "tool": "dpzlint",
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "counts": report.counts,
        "rules": {
            r.id: {"name": r.name, "summary": r.summary}
            for r in rules.values()
        },
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line,
             "col": f.col, "message": f.message}
            for f in report.findings
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
