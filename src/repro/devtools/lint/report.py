"""Rendering lint results: human one-liners and machine JSON.

The JSON document is versioned because CI uploads it as an artifact
and the schema therefore outlives any one checkout.  Version 2 adds
two keys on top of the v1 shape:

``call_graph``
    Digest of the cross-module analysis (module/function/edge counts,
    worker-reachability) when any project-scope rule ran; ``null``
    otherwise.
``fixture_corpus``
    Per-rule precision/recall stats from the seeded race-fixture
    corpus for every selected DPZ8xx rule -- evidence in the artifact
    that the concurrency checkers themselves still detect what they
    claim to.

Readers pinned to the v1 schema keep working via
``dpz lint --format json-v1`` (:func:`to_json_v1`), which emits the
exact version-1 document with none of the new keys.
"""

from __future__ import annotations

import json
from typing import Any

from repro.devtools.lint.engine import LintReport
from repro.devtools.lint.registry import Rule

__all__ = ["to_text", "to_json", "to_json_v1", "JSON_VERSION"]

JSON_VERSION = 2


def to_text(report: LintReport, rules: dict[str, Rule]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.render() for f in report.findings]
    if report.findings:
        per_rule = ", ".join(f"{rid}: {n}"
                             for rid, n in report.counts.items())
        lines.append("")
        lines.append(
            f"{len(report.findings)} finding"
            f"{'s' if len(report.findings) != 1 else ''} "
            f"({per_rule}) in {report.files_checked} files"
            + (f"; {report.suppressed} suppressed"
               if report.suppressed else ""))
    else:
        lines.append(
            f"dpzlint: {report.files_checked} files clean"
            + (f" ({report.suppressed} suppressed)"
               if report.suppressed else ""))
    if report.call_graph:
        cg = report.call_graph
        lines.append(
            f"call graph: {cg['modules']} modules, "
            f"{cg['functions']} functions, {cg['edges']} edges, "
            f"{cg['worker_reachable_functions']} worker-reachable")
    return "\n".join(lines)


def _base_doc(report: LintReport, rules: dict[str, Rule]
              ) -> dict[str, Any]:
    """The fields shared by every JSON schema version."""
    return {
        "tool": "dpzlint",
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "counts": report.counts,
        "rules": {
            r.id: {"name": r.name, "summary": r.summary}
            for r in rules.values()
        },
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line,
             "col": f.col, "message": f.message}
            for f in report.findings
        ],
    }


def to_json(report: LintReport, rules: dict[str, Rule]) -> str:
    """Machine-readable report, current (version-2) schema."""
    doc = _base_doc(report, rules)
    doc["version"] = JSON_VERSION
    doc["call_graph"] = report.call_graph
    # Only pay the corpus cost when a corpus-backed rule was selected.
    from repro.devtools.lint.corpus import CORPUS, corpus_stats

    if any(rid in rules for rid in CORPUS):
        doc["fixture_corpus"] = corpus_stats(rules)
    else:
        doc["fixture_corpus"] = {}
    return json.dumps(doc, indent=2, sort_keys=True)


def to_json_v1(report: LintReport, rules: dict[str, Rule]) -> str:
    """Machine-readable report, frozen version-1 schema.

    Exists for CI consumers written against the original artifact
    shape; emits exactly the v1 keys and nothing else.
    """
    doc = _base_doc(report, rules)
    doc["version"] = 1
    return json.dumps(doc, indent=2, sort_keys=True)
