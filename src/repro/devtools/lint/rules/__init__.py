"""Built-in dpzlint rules.

Importing this package registers every rule with
:mod:`repro.devtools.lint.registry`.  Rule numbering groups by
invariant family:

========  ==============================================
 range     family
========  ==============================================
 DPZ1xx    serialization / bitstream discipline
 DPZ2xx    determinism
 DPZ3xx    exception taxonomy
 DPZ4xx    metrics catalog
 DPZ5xx    tracing coverage
 DPZ6xx    API hygiene (mutable defaults)
 DPZ7xx    documentation coverage
 DPZ8xx    concurrency safety (project scope, call-graph based)
========  ==============================================
"""

from repro.devtools.lint.rules import (  # noqa: F401  (import = register)
    concurrency,
    determinism,
    exceptions,
    hygiene,
    observability,
    serialization,
)
