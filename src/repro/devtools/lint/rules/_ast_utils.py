"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["dotted_name", "call_name", "keyword_arg", "walk_functions",
           "NUMPY_ALIASES"]

#: Names the repo (and fixtures) use for the NumPy module.
NUMPY_ALIASES = ("np", "numpy")


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's target (``np.frombuffer`` / ``observe``)."""
    return dotted_name(call.func)


def keyword_arg(call: ast.Call, name: str,
                pos: int | None = None) -> ast.expr | None:
    """Fetch an argument by keyword, falling back to position ``pos``."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    if pos is not None and len(call.args) > pos:
        return call.args[pos]
    return None


def walk_functions(tree: ast.Module) -> Iterator[
        tuple[ast.FunctionDef | ast.AsyncFunctionDef, list[str]]]:
    """Yield every function with its enclosing name stack.

    The stack holds enclosing class and function names outermost-first,
    e.g. ``(["DPZCompressor"], compress_node)`` for a method.
    """
    def visit(node: ast.AST, stack: list[str]) -> Iterator[
            tuple[ast.FunctionDef | ast.AsyncFunctionDef, list[str]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, stack
                yield from visit(child, stack + [child.name])
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, stack + [child.name])
            else:
                yield from visit(child, stack)

    yield from visit(tree, [])
