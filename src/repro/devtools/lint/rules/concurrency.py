"""DPZ801-DPZ804: concurrency-safety rules over the call graph.

These are the project-scope rules: each receives a whole-tree
:class:`~repro.devtools.lint.callgraph.Project` (symbol table, call
graph, worker-reachability, per-function flow facts) instead of a
single file, because the hazards they enforce are inherently
cross-module -- a three-line task closure handed to ``parallel_map``
can corrupt state behind any function it transitively calls.

* **DPZ801** -- a worker-reachable function mutates a module-level
  global or enclosing-closure variable with no lock lexically held.
  This is the direct data race: N pool threads, one unguarded
  read-modify-write.
* **DPZ802** -- a worker-reachable function calls one of the known
  process-global singleton mutators (codec registration, tracer
  installation, metric reset, run-registry append, trace-file write,
  pool shutdown).  Some of those are internally locked; none of them
  is *semantically* safe mid-fan-out -- unregistering a codec while a
  sibling task compresses with it corrupts the run even though no
  ``dict`` is torn.
* **DPZ803** -- the static lock-order graph (lexical ``with lock:``
  nesting plus interprocedural held-at-call-site edges closed over the
  call graph) contains a cycle: two paths acquire the same pair of
  locks in opposite orders, the classic ABBA deadlock.
* **DPZ804** -- majority-guard inference, after the sanitizer
  tradition (RacerD, lockdep): a ``self.X`` field mutated under a lock
  at most sites but bare at others is almost certainly a guarded field
  with a forgotten guard.  ``__init__``/``__post_init__`` are exempt
  (no concurrent alias can exist yet).

Static analysis under-approximates: an unresolvable call produces no
edge, so these rules miss races they cannot see but do not invent
ones they can't justify.  The runtime companion is
:mod:`repro.devtools.sanitize`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.callgraph import FunctionInfo, Project
from repro.devtools.lint.engine import Finding
from repro.devtools.lint.registry import rule

__all__ = [
    "check_worker_shared_mutation",
    "check_worker_singleton",
    "check_lock_order",
    "check_majority_guard",
    "SINGLETON_MUTATORS",
]

#: Process-global singleton mutators that must not run in worker
#: context (absolute dotted names; re-exports resolve to these).
SINGLETON_MUTATORS: dict[str, str] = {
    "repro.codecs.registry.register_codec":
        "mutates the process-global codec registry",
    "repro.codecs.registry.unregister_codec":
        "mutates the process-global codec registry",
    "repro.observability.tracer.set_tracer":
        "swaps the process-global tracer mid-trace",
    "repro.observability.metrics.metrics_reset":
        "zeroes the process-global metric registry",
    "repro.observability.runlog.append_record":
        "appends to the shared run registry file",
    "repro.observability.emit.write_ndjson":
        "writes the shared trace emit file",
    "repro.parallel.executor.shutdown_pool":
        "tears down the thread pool the task itself runs on",
}

#: Constructor/initializer methods exempt from DPZ804: the instance is
#: thread-confined until construction returns.
_CTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def _ctx_finding(project: Project, info: FunctionInfo, rule_id: str,
                 node: ast.AST, message: str) -> Finding | None:
    ctx = project.contexts.get(info.module)
    if ctx is None:
        return None
    return ctx.finding(rule_id, node, message)


@rule("DPZ801", "worker-unguarded-shared-mutation",
      "functions reachable from a parallel_map/capture_worker task may "
      "not mutate module globals or closure variables without a lock",
      "Every pool worker runs the task closure concurrently; an "
      "unguarded read-modify-write on shared state is a data race that "
      "silently corrupts payload bytes -- the exact failure the DPZ "
      "error-bound guarantee cannot survive.",
      scope="project")
def check_worker_shared_mutation(project: Project) -> Iterator[Finding]:
    """Flag unguarded global/closure mutations in worker-reachable code."""
    for qual in sorted(project.worker_reachable):
        info = project.functions.get(qual)
        facts = project.facts.get(qual)
        if info is None or facts is None:
            continue
        for mut in facts.mutations:
            if mut.kind not in ("global", "closure") or mut.guarded:
                continue
            where = ("module-level global" if mut.kind == "global"
                     else "enclosing-closure variable")
            f = _ctx_finding(
                project, info, "DPZ801", mut.node,
                f"{info.name}() is reachable from a worker task and "
                f"mutates {where} {mut.name!r} ({mut.detail}) without "
                f"holding a lock")
            if f is not None:
                yield f


@rule("DPZ802", "worker-singleton-mutation",
      "functions reachable from worker context may not mutate "
      "process-global singletons (codec registry, tracer, metric "
      "reset, run registry, pool lifecycle)",
      "Internal locks make these calls atomic, not safe: swapping the "
      "tracer or unregistering a codec while sibling tasks are "
      "mid-flight changes global behavior under running work.",
      scope="project")
def check_worker_singleton(project: Project) -> Iterator[Finding]:
    """Flag singleton-mutator calls made from worker-reachable code."""
    for qual in sorted(project.worker_reachable):
        info = project.functions.get(qual)
        facts = project.facts.get(qual)
        if info is None or facts is None:
            continue
        for call in facts.calls:
            reason = SINGLETON_MUTATORS.get(call.callee)
            if reason is None:
                continue
            leaf = call.callee.rsplit(".", 1)[-1]
            f = _ctx_finding(
                project, info, "DPZ802", call.node,
                f"{info.name}() is reachable from a worker task and "
                f"calls {leaf}(), which {reason}")
            if f is not None:
                yield f


def _transitive_acquires(project: Project) -> dict[str, frozenset[str]]:
    """Locks each function may acquire, closed over the call graph.

    A simple fixpoint: start from each function's direct ``with lock:``
    blocks and propagate along call edges until stable.  The graph is
    small (hundreds of nodes) so the quadratic worst case is fine.
    """
    acquires: dict[str, set[str]] = {
        q: {a.lock for a in facts.acquisitions}
        for q, facts in project.facts.items()
    }
    changed = True
    while changed:
        changed = False
        for q in project.facts:
            mine = acquires[q]
            before = len(mine)
            for callee in project.edges.get(q, ()):
                mine |= acquires.get(callee, set())
            if len(mine) != before:
                changed = True
    return {q: frozenset(v) for q, v in acquires.items()}


@rule("DPZ803", "inconsistent-lock-order",
      "the static lock-order graph over `with lock:` blocks must be "
      "acyclic",
      "Two call paths that take the same pair of locks in opposite "
      "orders deadlock the first time their timing overlaps; a cycle "
      "in the static order graph is that bug waiting for load.",
      scope="project")
def check_lock_order(project: Project) -> Iterator[Finding]:
    """Flag lock-order edges that participate in a cycle."""
    # edge (a, b): lock b acquired while a held.  Witness: the first
    # (info, node) that exhibits the edge, for anchoring the finding.
    edges: dict[tuple[str, str], tuple[FunctionInfo, ast.AST]] = {}

    def note(a: str, b: str, info: FunctionInfo, node: ast.AST) -> None:
        if a != b:
            edges.setdefault((a, b), (info, node))

    trans = _transitive_acquires(project)
    for qual, facts in project.facts.items():
        info = project.functions.get(qual)
        if info is None:
            continue
        for acq in facts.acquisitions:
            for held in acq.held:
                note(held, acq.lock, info, acq.node)
        for call in facts.calls:
            if not call.held or call.callee not in project.facts:
                continue
            for inner in trans.get(call.callee, frozenset()):
                for held in call.held:
                    note(held, inner, info, call.node)

    succ: dict[str, set[str]] = {}
    for (a, b) in edges:
        succ.setdefault(a, set()).add(b)

    def reaches(src: str, dst: str) -> bool:
        frontier, seen = [src], {src}
        while frontier:
            node = frontier.pop()
            for nxt in succ.get(node, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    reported: set[frozenset[str]] = set()
    for (a, b), (info, node) in sorted(
            edges.items(), key=lambda kv: (kv[0][0], kv[0][1])):
        if not reaches(b, a):
            continue
        pair = frozenset((a, b))
        if pair in reported:
            continue
        reported.add(pair)
        f = _ctx_finding(
            project, info, "DPZ803", node,
            f"inconsistent lock order: {b!r} is acquired while "
            f"{a!r} is held here, but another path acquires "
            f"{a!r} while holding {b!r} (ABBA deadlock candidate)")
        if f is not None:
            yield f


@rule("DPZ804", "inconsistent-field-guarding",
      "a field guarded by a lock on most mutation paths must not be "
      "mutated bare on others",
      "Majority-guard inference: when a class takes a lock around a "
      "field's mutations almost everywhere, the remaining bare "
      "mutation is a forgotten guard, not a design choice.",
      scope="project")
def check_majority_guard(project: Project) -> Iterator[Finding]:
    """Flag bare mutations of fields that are usually lock-guarded."""
    # (class qualname, field) -> [(guarded?, info, node)]
    sites: dict[tuple[str, str],
                list[tuple[bool, FunctionInfo, ast.AST]]] = {}
    for qual, facts in project.facts.items():
        info = project.functions.get(qual)
        if info is None or info.cls is None:
            continue
        if info.name in _CTOR_METHODS:
            continue
        for mut in facts.mutations:
            if mut.kind != "field":
                continue
            sites.setdefault((info.cls, mut.name), []).append(
                (mut.guarded, info, mut.node))
    for (cls, fld), entries in sorted(sites.items()):
        guarded = sum(1 for g, _, _ in entries if g)
        bare = len(entries) - guarded
        # Majority inference: at least two guarded sites establish the
        # discipline, and guarded sites must outnumber bare ones --
        # otherwise the field plausibly isn't lock-protected at all.
        if guarded < 2 or bare == 0 or guarded <= bare:
            continue
        cls_name = cls.rsplit(".", 1)[-1]
        for is_guarded, info, node in entries:
            if is_guarded:
                continue
            f = _ctx_finding(
                project, info, "DPZ804", node,
                f"field {fld!r} of {cls_name} is mutated under a lock "
                f"at {guarded} site{'s' if guarded != 1 else ''} but "
                f"bare here in {info.name}()")
            if f is not None:
                yield f
