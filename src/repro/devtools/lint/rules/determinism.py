"""DPZ201: randomness must be explicitly and reproducibly seeded.

Every analysis and sampling routine in this repo feeds numbers that
end up in papers, benchmark baselines and regression gates; an
unseeded RNG makes those numbers drift run-to-run and machine-to-
machine.  The rule bans the three classic leaks:

* ``np.random.default_rng()`` with no seed argument,
* the legacy global-state API (``np.random.seed``,
  ``np.random.RandomState``, module-level draws like
  ``np.random.normal(...)``),
* wall-clock seeding (``default_rng(time.time())`` and friends),
  which is unseeded randomness with extra steps.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding
from repro.devtools.lint.registry import rule
from repro.devtools.lint.rules._ast_utils import NUMPY_ALIASES, call_name

__all__ = ["check_determinism"]

#: Legacy module-level draw functions on np.random (global hidden state).
_LEGACY_DRAWS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "exponential", "poisson", "binomial", "beta",
    "gamma", "bytes",
})

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.perf_counter",
    "datetime.now", "datetime.utcnow", "datetime.datetime.now",
})


def _uses_wall_clock(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is not None and (name in _WALL_CLOCK
                                     or name.endswith(".time")
                                     or name.endswith(".time_ns")):
                return True
    return False


@rule("DPZ201", "seeded-randomness",
      "no unseeded default_rng(), legacy np.random global state, or "
      "wall-clock seeds",
      "Unseeded RNGs make feature-subset selection, sampling probes "
      "and synthetic datasets unreproducible run-to-run, which breaks "
      "the repo's bit-exactness and benchmark-gating guarantees.")
def check_determinism(ctx: FileContext) -> Iterator[Finding]:
    """Flag unseeded or globally-stateful randomness anywhere in repro."""
    random_prefixes = {f"{a}.random" for a in NUMPY_ALIASES}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None:
            continue
        head, _, tail = name.rpartition(".")
        if head not in random_prefixes:
            continue
        if tail == "default_rng" or tail == "Generator":
            if not node.args and not node.keywords:
                yield ctx.finding(
                    "DPZ201", node,
                    "np.random.default_rng() without a seed is "
                    "unreproducible; pass an explicit seed")
            else:
                seed = node.args[0] if node.args else node.keywords[0].value
                if _uses_wall_clock(seed):
                    yield ctx.finding(
                        "DPZ201", node,
                        "wall-clock value used as an RNG seed; use a "
                        "fixed or configured seed")
            continue
        if tail == "seed" or tail == "RandomState":
            yield ctx.finding(
                "DPZ201", node,
                f"legacy np.random.{tail} relies on hidden global "
                f"state; use a seeded np.random.default_rng(...)")
            continue
        if tail in _LEGACY_DRAWS:
            yield ctx.finding(
                "DPZ201", node,
                f"module-level np.random.{tail}(...) draws from hidden "
                f"global state; draw from a seeded Generator instead")
