"""DPZ301/DPZ302: the repro error taxonomy is the only failure channel.

Callers (the CLI's one-line error handler, ``FieldArchive``'s
corruption wrapping, the test suite's negative-path assertions) all
dispatch on :mod:`repro.errors` types.  A stray ``ValueError`` in a
codec bypasses every one of those contracts, and a broad ``except``
swallows the taxonomy wholesale.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding
from repro.devtools.lint.registry import rule
from repro.devtools.lint.rules._ast_utils import walk_functions

__all__ = ["check_raise_taxonomy", "check_broad_except"]

#: Layers whose raises must come from repro.errors.
TAXONOMY_LAYERS = ("repro.codecs", "repro.core", "repro.baselines",
                   "repro.store.backends", "repro.serve")

#: Allowed exception class names in taxonomy layers.  The repro.errors
#: hierarchy (``RequestFailed`` is repro.serve's ServeError subclass),
#: plus NotImplementedError for abstract hooks.
ALLOWED_RAISES = frozenset({
    "ReproError", "CodecError", "FormatError", "ConfigError",
    "DataShapeError", "StoreError", "StoreKeyError",
    "ServeError", "ServeBusyError", "RequestFailed",
    "NotImplementedError",
})

#: The one place a catch-all is legitimate: the CLI's top-level
#: handler, which turns anything anticipated into a one-line error.
BROAD_EXCEPT_ALLOWLIST = frozenset({("repro.cli", "main")})

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _exception_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


@rule("DPZ301", "error-taxonomy",
      "codecs/, core/, baselines/ and store/backends/ may only raise "
      "repro.errors types",
      "The CLI's exit-code contract, FieldArchive's corruption "
      "wrapping and the negative-path tests all catch ReproError "
      "subclasses; a bare ValueError escapes every one of them and "
      "surfaces as a traceback.")
def check_raise_taxonomy(ctx: FileContext) -> Iterator[Finding]:
    """Flag raises of non-taxonomy exception classes in core layers."""
    if not ctx.in_layer(*TAXONOMY_LAYERS):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        # `raise exc_var` re-raises something already in flight; the
        # taxonomy was (or was not) enforced where it was created.
        if isinstance(exc, ast.Name):
            continue
        if isinstance(exc, ast.Call):
            name = _exception_name(exc.func)
        else:
            name = _exception_name(exc)
        if name is None or name in ALLOWED_RAISES:
            continue
        yield ctx.finding(
            "DPZ301", node,
            f"raise of {name} outside the repro.errors taxonomy; raise "
            f"a ReproError subclass (CodecError, FormatError, "
            f"ConfigError, DataShapeError) instead")


@rule("DPZ302", "no-broad-except",
      "bare/broad `except` is banned outside the CLI's top-level "
      "handler",
      "Broad handlers swallow the typed error taxonomy (and real bugs) "
      "indiscriminately; anticipated failures must be caught by their "
      "repro.errors type.")
def check_broad_except(ctx: FileContext) -> Iterator[Finding]:
    """Flag `except:`, `except Exception` and `except BaseException`."""
    allowed_funcs = {fn for mod, fn in BROAD_EXCEPT_ALLOWLIST
                     if mod == ctx.module}

    def broad(handler: ast.ExceptHandler) -> str | None:
        t = handler.type
        if t is None:
            return "bare except:"
        if isinstance(t, (ast.Name, ast.Attribute)):
            name = _exception_name(t)
            if name in _BROAD_NAMES:
                return f"except {name}"
            return None
        if isinstance(t, ast.Tuple):
            for elt in t.elts:
                name = _exception_name(elt)
                if name in _BROAD_NAMES:
                    return f"except (... {name} ...)"
        return None

    # Handlers inside allowlisted functions are exempt.
    exempt: set[int] = set()
    for fn, _stack in walk_functions(ctx.tree):
        if fn.name in allowed_funcs:
            for node in ast.walk(fn):
                if isinstance(node, ast.ExceptHandler):
                    exempt.add(id(node))
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler) or id(node) in exempt:
            continue
        what = broad(node)
        if what is not None:
            yield ctx.finding(
                "DPZ302", node,
                f"{what} swallows the error taxonomy; catch the "
                f"specific expected repro.errors types")
