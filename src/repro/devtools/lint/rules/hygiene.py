"""DPZ601/DPZ701: API hygiene rules.

DPZ601 bans mutable default arguments (the classic shared-state bug).
DPZ701 requires docstrings on the public API surface (``repro.api``
and ``repro.core``), which is what the paper-artifact harnesses and
downstream users script against.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding
from repro.devtools.lint.registry import rule
from repro.devtools.lint.rules._ast_utils import walk_functions

__all__ = ["check_mutable_defaults", "check_docstrings"]

#: Modules whose public surface must be documented.
DOCSTRING_LAYERS = ("repro.api", "repro.core")

_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_literal(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in _MUTABLE_CTORS
    return False


@rule("DPZ601", "no-mutable-default-args",
      "function defaults may not be mutable objects",
      "A mutable default is created once and shared across calls; "
      "state leaks between invocations in ways no test of a single "
      "call can see.")
def check_mutable_defaults(ctx: FileContext) -> Iterator[Finding]:
    """Flag list/dict/set/bytearray literals used as argument defaults."""
    for fn, _stack in walk_functions(ctx.tree):
        defaults = list(fn.args.defaults)
        defaults += [d for d in fn.args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_literal(default):
                yield ctx.finding(
                    "DPZ601", default,
                    f"mutable default argument in {fn.name}(); default "
                    f"to None and create the object inside the "
                    f"function")


@rule("DPZ701", "public-api-docstrings",
      "public functions/classes in repro.api and repro.core need "
      "docstrings",
      "These modules are the scripting surface for the paper-artifact "
      "harnesses and downstream users; an undocumented entry point is "
      "an unspecified one.")
def check_docstrings(ctx: FileContext) -> Iterator[Finding]:
    """Flag public defs without docstrings on the API surface."""
    if not ctx.in_layer(*DOCSTRING_LAYERS):
        return

    def visit(node: ast.AST, public: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_public = public and not child.name.startswith("_")
                if child_public and ast.get_docstring(child) is None:
                    kind = ("class"
                            if isinstance(child, ast.ClassDef)
                            else "function")
                    yield ctx.finding(
                        "DPZ701", child,
                        f"public {kind} {child.name!r} has no "
                        f"docstring")
                yield from visit(child, child_public)
            else:
                yield from visit(child, public)

    yield from visit(ctx.tree, True)
