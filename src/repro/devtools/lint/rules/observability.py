"""DPZ401/DPZ501: observability invariants.

DPZ401 pins every metric name to the central catalog
(:mod:`repro.observability.catalog`), so a typo'd counter name fails
lint instead of silently splitting a time series.  DPZ501 requires
every public compress/decompress entry point to open a tracer span, so
``dpz trace`` never has blind stages.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding
from repro.devtools.lint.registry import rule
from repro.devtools.lint.rules._ast_utils import call_name, walk_functions

__all__ = ["check_metric_catalog", "check_span_coverage"]

#: Metric-emitting helpers whose first argument is the metric name.
_EMITTERS = frozenset({
    "counter_inc", "counter_add", "gauge_set", "gauge_add", "observe",
})

#: Registry factory methods (``registry.counter("name")`` etc.).
_FACTORIES = frozenset({"counter", "gauge", "histogram"})

#: Modules that legitimately pass metric names through variables (the
#: registry plumbing itself and its shims).
_CATALOG_EXEMPT = (
    "repro.observability.metrics",
    "repro.observability.counters",
    "repro.observability.catalog",
)

#: Layers whose compress/decompress entry points must be traced.
SPAN_LAYERS = ("repro.baselines", "repro.core.compressor")

#: Layers whose request handlers must be traced, and the method names
#: that count as request handlers there (``ServeApp.handle`` is the
#: worker-pool body every store-touching request funnels through).
SERVE_SPAN_LAYERS = ("repro.serve",)
_SERVE_ENTRY_METHODS = frozenset({"handle"})

#: Module-level one-call wrappers (``sz_compress``) count as entry
#: points too, but delegating into a traced method satisfies the rule.
_ENTRY_FN = re.compile(r"^[a-z0-9]+_(compress|decompress)$")
_ENTRY_METHODS = frozenset({"compress", "decompress",
                            "compress_with_stats"})


def _load_catalog() -> tuple[frozenset[str], frozenset[str]]:
    from repro.observability.catalog import METRIC_NAMES, METRIC_PREFIXES

    return METRIC_NAMES, METRIC_PREFIXES


def _literal_prefix(expr: ast.expr) -> tuple[str | None, bool]:
    """Return ``(text, is_exact)`` for a statically-known metric name.

    ``is_exact`` is False when only a leading prefix is known (string
    concatenation, f-strings).  ``(None, ...)`` means undecidable.
    """
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value, True
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        left, exact = _literal_prefix(expr.left)
        if left is not None:
            return left, False
        return None, False
    if isinstance(expr, ast.JoinedStr) and expr.values:
        first = expr.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value, False
    return None, False


@rule("DPZ401", "metric-catalog",
      "every metric name must appear in repro.observability.catalog",
      "A typo'd metric name creates a parallel, silently-empty time "
      "series; the catalog makes the namespace a checked surface.")
def check_metric_catalog(ctx: FileContext) -> Iterator[Finding]:
    """Flag metric emissions whose name is not in the catalog."""
    if not ctx.in_layer("repro"):
        return
    if ctx.module.startswith(_CATALOG_EXEMPT):
        return
    names, prefixes = _load_catalog()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        target = call_name(node)
        if target is None:
            continue
        leaf = target.split(".")[-1]
        if leaf in _EMITTERS:
            pass
        elif leaf in _FACTORIES and isinstance(node.func, ast.Attribute):
            # Only treat `<recv>.counter("x")` as a registry call when
            # the receiver smells like a registry, not e.g. np.histogram.
            recv = target.rsplit(".", 1)[0].lower()
            if "registry" not in recv and "metrics" not in recv:
                continue
        else:
            continue
        text, exact = _literal_prefix(node.args[0])
        if text is None:
            continue
        if exact and text in names:
            continue
        if any(text.startswith(p) for p in prefixes):
            continue
        if not exact:
            yield ctx.finding(
                "DPZ401", node,
                f"dynamically-built metric name starting with "
                f"{text!r} matches no registered prefix in "
                f"repro.observability.catalog")
        else:
            yield ctx.finding(
                "DPZ401", node,
                f"metric name {text!r} is not in "
                f"repro.observability.catalog; add it there or fix "
                f"the typo")


def _satisfies_span(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        # Delegation to another public entry point (one-call wrappers,
        # compress -> compress_with_stats) inherits its span.  Checked
        # on the raw attribute so `Cls(...).compress(x)` counts even
        # though its receiver has no dotted name.
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _ENTRY_METHODS:
            return True
        if isinstance(node.func, ast.Name) \
                and node.func.id in _ENTRY_METHODS:
            return True
        name = call_name(node)
        if name is None:
            continue
        if name.split(".")[-1] in ("span", "_stage", "use_tracer"):
            return True
    return False


@rule("DPZ501", "span-coverage",
      "public compress/decompress entry points must open a tracer span",
      "`dpz trace` and the stage-share regression gate read spans; an "
      "untraced codec is invisible to both and its regressions go "
      "unnoticed.")
def check_span_coverage(ctx: FileContext) -> Iterator[Finding]:
    """Flag compress/decompress entry points that never open a span."""
    if ctx.in_layer(*SERVE_SPAN_LAYERS):
        for fn, stack in walk_functions(ctx.tree):
            is_method = bool(stack) and stack[-1][:1].isupper()
            if not (is_method and fn.name in _SERVE_ENTRY_METHODS):
                continue
            if not _satisfies_span(fn):
                yield ctx.finding(
                    "DPZ501", fn,
                    f"{fn.name}() is a serve request handler but opens "
                    f"no tracer span; wrap the work in "
                    f"`with span(\"serve.request\")`")
        return
    if not ctx.in_layer(*SPAN_LAYERS):
        return
    for fn, stack in walk_functions(ctx.tree):
        if fn.name.startswith("_"):
            continue
        is_method = bool(stack) and stack[-1][:1].isupper()
        if is_method:
            if fn.name not in _ENTRY_METHODS:
                continue
        elif not (_ENTRY_FN.match(fn.name) and not stack):
            continue
        if not _satisfies_span(fn):
            yield ctx.finding(
                "DPZ501", fn,
                f"{fn.name}() is a public codec entry point but opens "
                f"no tracer span; wrap the work in "
                f"`with span(\"<codec>.<op>\")`")
