"""DPZ101: serialization boundaries must pin dtype *and* endianness.

DPZ archives promise bit-exact round trips across machines.  Every
``np.frombuffer`` at a decode boundary and every array handed to the
byte stream (``.astype(...).tobytes()`` chains, arrays passed to
``zlib_compress``) therefore has to spell out a little-endian (or
single-byte) dtype -- ``"<f4"``, never ``np.float32`` or a bare
``"f4"``, both of which mean *host* byte order and silently produce
incompatible archives on big-endian machines.

The check is intentionally conservative: dtypes it cannot resolve
statically (variables, subscripts) are skipped rather than guessed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding
from repro.devtools.lint.registry import rule
from repro.devtools.lint.rules._ast_utils import (
    NUMPY_ALIASES,
    call_name,
    keyword_arg,
)

__all__ = ["check_serialization_endianness"]

#: Layers whose byte handling is a cross-machine compatibility surface.
BOUNDARY_LAYERS = ("repro.codecs", "repro.core", "repro.baselines",
                   "repro.archive")

#: Dtype strings that are endianness-free (one byte per element).
_SINGLE_BYTE_STRS = frozenset({
    "u1", "i1", "b", "B", "b1", "S1", "V1", "uint8", "int8", "bool",
})

#: ``np.X`` attributes that are endianness-free.
_SINGLE_BYTE_ATTRS = frozenset({"uint8", "int8", "bool_", "byte", "ubyte"})

#: ``np.X`` attributes that mean *native* byte order for >1-byte items.
_MULTIBYTE_ATTRS = frozenset({
    "float16", "half", "float32", "single", "float64", "double",
    "longdouble", "int16", "int32", "int64", "uint16", "uint32",
    "uint64", "short", "ushort", "intc", "uintc", "intp", "uintp",
    "int_", "uint", "longlong", "ulonglong", "complex64", "complex128",
    "csingle", "cdouble",
})

_OK = "ok"
_BAD = "bad"
_UNKNOWN = "unknown"


def _classify_dtype(expr: ast.expr) -> str:
    """Is this dtype expression endianness-pinned, native, or opaque?"""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        s = expr.value.strip()
        if not s:
            return _UNKNOWN
        if s in _SINGLE_BYTE_STRS:
            return _OK
        if s[0] == "<" or s[0] == "|":
            return _OK
        # ">", "=" and bare codes ("f4", "float32") are either the
        # wrong convention or host-dependent.
        return _BAD
    if isinstance(expr, ast.Attribute):
        base = expr.value
        if (isinstance(base, ast.Name) and base.id in NUMPY_ALIASES):
            if expr.attr in _SINGLE_BYTE_ATTRS:
                return _OK
            if expr.attr in _MULTIBYTE_ATTRS:
                return _BAD
        return _UNKNOWN
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name in {f"{a}.dtype" for a in NUMPY_ALIASES} and expr.args:
            return _classify_dtype(expr.args[0])
        return _UNKNOWN
    if isinstance(expr, ast.IfExp):
        sides = {_classify_dtype(expr.body), _classify_dtype(expr.orelse)}
        if _BAD in sides:
            return _BAD
        if sides == {_OK}:
            return _OK
        return _UNKNOWN
    return _UNKNOWN


def _dtype_findings(ctx: FileContext, call: ast.Call, dtype: ast.expr | None,
                    where: str) -> Iterator[Finding]:
    if dtype is None:
        yield ctx.finding(
            "DPZ101", call,
            f"{where} without an explicit dtype; pin a little-endian "
            f"dtype string such as \"<f4\"")
        return
    if _classify_dtype(dtype) == _BAD:
        yield ctx.finding(
            "DPZ101", call,
            f"{where} uses host-byte-order dtype "
            f"{ast.unparse(dtype)!r}; pin endianness with a "
            f"\"<f4\"-style dtype string")


@rule("DPZ101", "serialization-endianness",
      "frombuffer/tobytes/zlib_compress at codec and stream boundaries "
      "must use explicit little-endian dtypes",
      "Native-order dtypes (np.float32, \"f4\") make archive bytes "
      "depend on the host CPU; a big-endian writer would produce "
      "containers little-endian readers silently mis-decode.")
def check_serialization_endianness(ctx: FileContext) -> Iterator[Finding]:
    """Flag endianness-implicit dtypes at serialization boundaries."""
    if not ctx.in_layer(*BOUNDARY_LAYERS):
        return
    frombuffer_names = {f"{a}.frombuffer" for a in NUMPY_ALIASES}
    array_ctors = {f"{a}.{fn}" for a in NUMPY_ALIASES
                   for fn in ("ascontiguousarray", "asarray", "array")}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        # -- np.frombuffer(..., dtype=...) -------------------------------
        if name in frombuffer_names:
            dtype = keyword_arg(node, "dtype", pos=1)
            yield from _dtype_findings(ctx, node, dtype, "np.frombuffer")
            continue
        # -- <expr>.tobytes() where <expr> is astype(...)/asarray(...) --
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "tobytes"
                and isinstance(node.func.value, ast.Call)):
            inner = node.func.value
            inner_name = call_name(inner)
            if (isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "astype"):
                dtype = keyword_arg(inner, "dtype", pos=0)
                yield from _dtype_findings(ctx, node, dtype,
                                           ".astype(...).tobytes()")
            elif inner_name in array_ctors:
                dtype = keyword_arg(inner, "dtype", pos=1)
                yield from _dtype_findings(
                    ctx, node, dtype, f"{inner_name}(...).tobytes()")
            continue
        # -- zlib_compress(<array expr>, ...) ----------------------------
        if name is not None and name.split(".")[-1] == "zlib_compress" \
                and node.args:
            arg0 = node.args[0]
            if not isinstance(arg0, ast.Call):
                continue
            inner_name = call_name(arg0)
            if (isinstance(arg0.func, ast.Attribute)
                    and arg0.func.attr == "astype"):
                dtype = keyword_arg(arg0, "dtype", pos=0)
                yield from _dtype_findings(ctx, node, dtype,
                                           "array serialized via "
                                           "zlib_compress")
            elif inner_name in array_ctors:
                dtype = keyword_arg(arg0, "dtype", pos=1)
                yield from _dtype_findings(ctx, node, dtype,
                                           "array serialized via "
                                           "zlib_compress")
