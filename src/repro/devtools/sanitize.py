"""Runtime thread sanitizer: checked locks with ownership + ordering.

The static DPZ8xx rules prove what they can see; this module checks at
runtime what they cannot.  With ``DPZ_SANITIZE=1`` in the environment,
the concurrency-bearing singletons (the decoded-chunk cache, the metric
registry, the shared thread pool, the codec registry, the tracer, the
run registry) construct their locks through :func:`checked_lock` /
:func:`checked_rlock` instead of ``threading.Lock`` and get back
instrumented locks that assert, on every transition:

* **ownership** -- releasing a lock a thread does not hold, or
  re-acquiring a non-reentrant lock the same thread already holds
  (guaranteed deadlock), raises :class:`~repro.errors.SanitizerError`
  immediately instead of hanging the process;
* **ordering** -- every acquisition records a *lock-order edge* from
  each lock the thread already holds to the lock being taken, into one
  process-wide order graph keyed by lock **names** (lock classes, in
  the lockdep sense -- every ``ChunkCache`` instance shares one node).
  An acquisition whose edge would close a cycle raises
  :class:`~repro.errors.SanitizerError` naming the inverted pair, which
  turns a once-a-week ABBA deadlock hang into a deterministic test
  failure at the first inconsistent acquisition.

With the environment flag unset (the default, and the only mode
production code ever runs in), the factories return plain
``threading.Lock()`` / ``threading.RLock()`` objects: zero wrappers,
zero overhead, zero behavior change.  The flag is sampled when the
lock is *created* -- for the module-level singletons that means at
import -- so ``DPZ_SANITIZE=1`` must be set before ``repro`` is
imported (the CI sanitizer job and the thread-hammer tests both export
it at process start).

Only the standard library and :mod:`repro.errors` are imported here,
so runtime modules can depend on this one without cycles or cost.
"""

from __future__ import annotations

import os
import threading
from typing import Protocol

from repro.errors import SanitizerError

__all__ = [
    "enabled",
    "checked_lock",
    "checked_rlock",
    "CheckedLock",
    "CheckedRLock",
    "lock_order_edges",
    "reset_lock_order",
    "held_locks",
]


class LockLike(Protocol):
    """What callers may assume about a lock from these factories."""

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(self, exc_type: object, exc: object,
                 tb: object) -> object: ...


def enabled() -> bool:
    """True when ``DPZ_SANITIZE`` is set to anything but ``""``/``0``."""
    return os.environ.get("DPZ_SANITIZE", "") not in ("", "0")


# -- process-wide order graph ------------------------------------------------

#: Guards the order graph itself; deliberately a *plain* lock -- the
#: sanitizer must not recurse into its own machinery.
_GRAPH_LOCK = threading.Lock()

#: lock name -> names acquired while it was held (order edges).
_ORDER_EDGES: dict[str, set[str]] = {}


class _HeldStack(threading.local):
    """Per-thread stack of checked-lock names currently held."""

    def __init__(self) -> None:
        self.names: list[str] = []


_HELD = _HeldStack()


def held_locks() -> tuple[str, ...]:
    """Names of checked locks this thread holds, outermost first."""
    return tuple(_HELD.names)


def lock_order_edges() -> dict[str, frozenset[str]]:
    """Snapshot of the observed lock-order graph (for tests/debugging)."""
    with _GRAPH_LOCK:
        return {k: frozenset(v) for k, v in _ORDER_EDGES.items()}


def reset_lock_order() -> None:
    """Forget every recorded order edge (test isolation)."""
    with _GRAPH_LOCK:
        _ORDER_EDGES.clear()


def _reaches(src: str, dst: str) -> bool:
    """Whether ``dst`` is reachable from ``src`` (caller holds graph)."""
    frontier = [src]
    seen = {src}
    while frontier:
        node = frontier.pop()
        for nxt in _ORDER_EDGES.get(node, ()):
            if nxt == dst:
                return True
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def _note_acquire(name: str, held: list[str]) -> None:
    """Record order edges ``held[i] -> name``; raise on a cycle.

    Same-name edges are skipped: two instances of one lock class held
    together (hand-over-hand on cache entries, say) is a legitimate
    pattern the class-level graph cannot order.
    """
    with _GRAPH_LOCK:
        for prior in held:
            if prior == name:
                continue
            # Adding prior -> name closes a cycle iff prior is already
            # reachable from name.
            if _reaches(name, prior):
                raise SanitizerError(
                    f"lock-order inversion: acquiring {name!r} while "
                    f"holding {prior!r}, but {prior!r} has previously "
                    f"been acquired after {name!r} (ABBA deadlock "
                    f"candidate); edges: {sorted(_ORDER_EDGES)}")
            _ORDER_EDGES.setdefault(prior, set()).add(name)


class CheckedLock:
    """A non-reentrant lock with ownership and order assertions."""

    _reentrant = False

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._owner: int | None = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            if not self._reentrant:
                raise SanitizerError(
                    f"self-deadlock: thread already holds "
                    f"non-reentrant lock {self.name!r}")
            self._count += 1
            return True
        _note_acquire(self.name, _HELD.names)
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            self._owner = me
            self._count = 1
            _HELD.names.append(self.name)
        return ok

    def release(self) -> None:
        me = threading.get_ident()
        if self._owner != me:
            raise SanitizerError(
                f"lock {self.name!r} released by thread {me} which "
                f"does not hold it (owner: {self._owner})")
        self._count -= 1
        if self._count == 0:
            self._owner = None
            # Remove the innermost occurrence; releases are almost
            # always LIFO but out-of-order release is legal.
            for i in range(len(_HELD.names) - 1, -1, -1):
                if _HELD.names[i] == self.name:
                    del _HELD.names[i]
                    break
            self._lock.release()

    def locked(self) -> bool:
        """Mirror ``threading.Lock.locked`` (diagnostics only)."""
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = f"held by {self._owner}" if self._owner else "unlocked"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class CheckedRLock(CheckedLock):
    """Reentrant variant: same-thread re-acquisition nests instead of
    raising (matching ``threading.RLock``)."""

    _reentrant = True


def checked_lock(name: str) -> LockLike:
    """A ``threading.Lock`` -- checked when ``DPZ_SANITIZE`` is set.

    ``name`` identifies the lock *class* in sanitizer reports and the
    order graph; every instance created with the same name shares one
    node, so use one name per lock field/global, not per object.
    """
    if enabled():
        return CheckedLock(name)
    return threading.Lock()


def checked_rlock(name: str) -> LockLike:
    """A ``threading.RLock`` -- checked when ``DPZ_SANITIZE`` is set."""
    if enabled():
        return CheckedRLock(name)
    return threading.RLock()
