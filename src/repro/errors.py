"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base class.  Individual
subsystems raise more specific subclasses:

* :class:`CodecError` -- malformed bitstreams, corrupt Huffman tables,
  truncated payloads.
* :class:`FormatError` -- unrecognised or corrupt container files
  (bad magic, unsupported version, checksum mismatch).
* :class:`ConfigError` -- invalid user-supplied configuration
  (impossible error bounds, out-of-range quantizer widths, ...).
* :class:`DataShapeError` -- input arrays whose shape/dtype the
  algorithm cannot process.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every intentional error raised by :mod:`repro`."""


class CodecError(ReproError):
    """A low-level codec (Huffman, bit I/O, negabinary, ...) failed.

    Typically indicates a truncated or corrupt encoded buffer, or an
    attempt to decode with a mismatched table.
    """


class FormatError(ReproError):
    """A serialized container is malformed.

    Raised for bad magic bytes, unsupported format versions, section
    length mismatches and checksum failures.
    """


class ConfigError(ReproError):
    """User-supplied configuration is invalid or internally inconsistent."""


class DataShapeError(ReproError):
    """Input data has a shape, size or dtype the operation cannot handle."""
