"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base class.  Individual
subsystems raise more specific subclasses:

* :class:`CodecError` -- malformed bitstreams, corrupt Huffman tables,
  truncated payloads.
* :class:`FormatError` -- unrecognised or corrupt container files
  (bad magic, unsupported version, checksum mismatch).
* :class:`ConfigError` -- invalid user-supplied configuration
  (impossible error bounds, out-of-range quantizer widths, ...).
* :class:`DataShapeError` -- input arrays whose shape/dtype the
  algorithm cannot process.
* :class:`StoreError` -- a byte-store backend failed (I/O error,
  read-only backend, torn write surfaced by a fault injector).
* :class:`StoreKeyError` -- a byte-store key is absent.  Subclasses
  both :class:`StoreError` and :class:`KeyError`, so ``MutableMapping``
  conveniences (``.get``, ``in``) keep working while callers that
  catch the repro taxonomy still see every backend failure.
* :class:`SanitizerError` -- the ``DPZ_SANITIZE=1`` runtime thread
  sanitizer detected a concurrency violation (lock released by a
  non-owner, self-deadlock, lock-order inversion).
* :class:`ServeError` -- the ``dpz serve`` region-retrieval service
  (or its client) failed at the HTTP layer: malformed wire frames,
  unexpected status codes, a saturated server.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every intentional error raised by :mod:`repro`."""


class CodecError(ReproError):
    """A low-level codec (Huffman, bit I/O, negabinary, ...) failed.

    Typically indicates a truncated or corrupt encoded buffer, or an
    attempt to decode with a mismatched table.
    """


class FormatError(ReproError):
    """A serialized container is malformed.

    Raised for bad magic bytes, unsupported format versions, section
    length mismatches and checksum failures.
    """


class ConfigError(ReproError):
    """User-supplied configuration is invalid or internally inconsistent."""


class DataShapeError(ReproError):
    """Input data has a shape, size or dtype the operation cannot handle."""


class StoreError(ReproError):
    """A byte-store backend operation failed.

    Raised for I/O failures, writes to read-only backends, keys that
    violate the keyspace grammar, and faults surfaced by the
    fault-injecting test backend.  Backends never leak a bare
    ``OSError``; they wrap it here.
    """


class SanitizerError(ReproError):
    """The runtime thread sanitizer (``DPZ_SANITIZE=1``) found a
    concurrency violation.

    Raised by :mod:`repro.devtools.sanitize` checked locks for
    non-owner releases, same-thread re-acquisition of non-reentrant
    locks, and acquisitions that close a cycle in the observed
    lock-order graph (ABBA deadlock candidates).
    """


class ServeError(ReproError):
    """The region-retrieval service or its client failed.

    Raised by :mod:`repro.serve` for HTTP-layer conditions: a response
    frame that does not parse, an unexpected status code, a connection
    that died mid-stream.  :class:`ServeBusyError` narrows it for the
    backpressure path.
    """


class ServeBusyError(ServeError):
    """The server shed this request (HTTP 503, queue saturated).

    Carries ``retry_after`` (seconds, from the ``Retry-After`` header)
    so callers can implement polite backoff.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class StoreKeyError(StoreError, KeyError):
    """A byte-store key does not exist.

    Inherits :class:`KeyError` so ``MutableMapping`` mixins
    (``.get()``, ``.pop(k, default)``, ``in``) behave normally, and
    :class:`StoreError` so taxonomy-catching callers see it too.
    """

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its lone argument; keep the plain
        # message readable in tracebacks and CLI error lines.
        return Exception.__str__(self)
