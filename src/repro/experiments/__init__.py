"""Experiment harnesses: one module per paper table/figure.

Each module exposes ``run(...)`` returning structured results and a
``format_report(results)`` producing the paper-shaped text the
benchmarks print.  The mapping to the paper:

==================  ====================================================
module               paper artifact
==================  ====================================================
``fig1``             Fig. 1: data vs DCT-coefficient distributions
``fig2``             Fig. 2: block overlay + PCA component distributions
``fig3``             Fig. 3: ECR/TVE CDF and PSNR vs #features
``fig4``             Fig. 4: error maps of transform combinations at 5x
``fig6``             Fig. 6: rate-distortion, DPZ vs SZ vs ZFP
``fig7``             Fig. 7: CLDHGH visualization operating points
``fig8``             Fig. 8: compression/decompression time vs CR
``fig9``             Fig. 9: DPZ per-stage time breakdown
``fig10``            Fig. 10: VIF distributions of sampling data
``table1``           Table I: dataset inventory
``table2``           Table II: knee-point compression (1d vs polyn)
``table3``           Table III: per-stage CR breakdown
``table4``           Table IV: delta-PSNR between stages
``sampling_eval``    Section V-C6: CR_p hit-rate of the sampling strategy
==================  ====================================================

Fig. 5 is the framework diagram (no experiment).  CLDLOW is generated
and registered but, as in the paper, reported only where it differs
from CLDHGH.
"""

from repro.experiments import common

__all__ = ["common"]
