"""Shared plumbing for the experiment harnesses.

Provides compressor adapters with the uniform signature the
rate-distortion driver expects (``run(data, param) ->
(compressed_nbytes, reconstruction)``), the canonical dataset lists,
and small text-table formatting helpers shared by every harness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.sz import SZCompressor
from repro.baselines.zfp import ZFPCompressor
from repro.core.compressor import DPZCompressor
from repro.core.config import DPZ_L, DPZ_S, DPZConfig

__all__ = [
    "run_dpz",
    "run_sz",
    "run_zfp",
    "dpz_config",
    "RD_DATASETS",
    "TABLE_DATASETS",
    "NINES_SWEEP",
    "format_table",
]

#: The eight datasets Fig. 6 plots (CLDLOW omitted, as in the paper).
RD_DATASETS = ("Isotropic", "Channel", "CLDHGH", "PHIS", "FREQSH",
               "FLDSC", "HACC-x", "HACC-vx")

#: The six datasets Tables II-IV report.
TABLE_DATASETS = ("Isotropic", "Channel", "CLDHGH", "PHIS",
                  "HACC-x", "HACC-vx")

#: The TVE sweep of the breakdown tables ("three-nine" to "seven-nine").
NINES_SWEEP = (3, 5, 7)


def dpz_config(scheme: str, nines: int | None = None,
               knee_fit: str | None = None) -> DPZConfig:
    """Config for a paper scheme at a TVE level or in knee mode."""
    base = DPZ_L if scheme == "l" else DPZ_S
    if knee_fit is not None:
        return base.with_knee(knee_fit)
    return base.with_tve_nines(nines if nines is not None else 3)


def run_dpz(data: np.ndarray, cfg: DPZConfig) -> tuple[int, np.ndarray]:
    """Compress+decompress with DPZ; returns (bytes, reconstruction)."""
    blob = DPZCompressor(cfg).compress(data)
    return len(blob), DPZCompressor.decompress(blob)


def run_sz(data: np.ndarray, rel_eps: float) -> tuple[int, np.ndarray]:
    """Compress+decompress with the SZ baseline at a relative bound."""
    comp = SZCompressor(rel_eps=rel_eps)
    blob = comp.compress(data)
    return len(blob), SZCompressor.decompress(blob)


def run_zfp(data: np.ndarray, rate: float) -> tuple[int, np.ndarray]:
    """Compress+decompress with the ZFP baseline at a fixed rate."""
    comp = ZFPCompressor(rate=rate)
    blob = comp.compress(data)
    return len(blob), ZFPCompressor.decompress(blob)


def format_table(header: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as a fixed-width text table."""
    cells = [[str(h) for h in header]]
    cells += [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
