"""Fig. 1: value distributions of FLDSC before/after the DCT.

The paper's Figure 1 contrasts (a) the flattened original FLDSC data
with (b) its block-DCT coefficients: the transform concentrates energy
in a small fraction of coefficients, so the coefficient histogram is
sharply peaked at zero with a heavy head -- the visual motivation for
feature selection.

``run`` returns both histograms plus summary statistics quantifying
the concentration (fraction of coefficients carrying 99% of the
energy), which is what the harness asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.information import ecr_curve
from repro.core.decompose import decompose
from repro.core.transform_stage import forward_dct_blocks
from repro.datasets.registry import get_dataset
from repro.experiments.common import format_table

__all__ = ["Fig1Result", "run", "format_report"]


@dataclass
class Fig1Result:
    """Histograms and concentration statistics for Fig. 1."""

    dataset: str
    data_hist: np.ndarray
    data_edges: np.ndarray
    coeff_hist: np.ndarray
    coeff_edges: np.ndarray
    frac_coeffs_for_99pct_energy: float
    frac_values_for_99pct_energy: float


def run(dataset: str = "FLDSC", size: str = "small",
        bins: int = 80) -> Fig1Result:
    """Compute the Fig. 1 distributions for one dataset."""
    data = get_dataset(dataset, size).astype(np.float64)
    lo, hi = float(data.min()), float(data.max())
    norm = (data - lo) / (hi - lo) - 0.5
    blocks, _ = decompose(norm)
    coeffs = forward_dct_blocks(blocks)

    data_hist, data_edges = np.histogram(norm.reshape(-1), bins=bins)
    coeff_hist, coeff_edges = np.histogram(coeffs.reshape(-1), bins=bins)

    def frac99(values: np.ndarray) -> float:
        curve = ecr_curve(values)
        return float(np.searchsorted(curve, 0.99) + 1) / values.size

    return Fig1Result(
        dataset=dataset,
        data_hist=data_hist, data_edges=data_edges,
        coeff_hist=coeff_hist, coeff_edges=coeff_edges,
        frac_coeffs_for_99pct_energy=frac99(coeffs.reshape(-1)),
        frac_values_for_99pct_energy=frac99(norm.reshape(-1)),
    )


def format_report(res: Fig1Result) -> str:
    """Text rendition of Fig. 1 (histogram sparklines + statistics)."""

    def spark(hist: np.ndarray) -> str:
        marks = " .:-=+*#%@"
        top = hist.max() or 1
        return "".join(marks[min(int(9 * h / top), 9)] for h in hist)

    rows = [
        ["original data", spark(res.data_hist)],
        ["DCT coefficients", spark(res.coeff_hist)],
    ]
    stats = (
        f"\nfraction of items holding 99% of energy: "
        f"original={res.frac_values_for_99pct_energy:.3f}  "
        f"DCT coefficients={res.frac_coeffs_for_99pct_energy:.5f}"
    )
    return format_table(
        ["form", "value histogram (low -> high)"], rows,
        title=f"Fig. 1 analogue -- {res.dataset}: distribution before/after "
              f"the block DCT",
    ) + stats
