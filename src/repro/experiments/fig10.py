"""Fig. 10: VIF distributions of sampled data.

The paper probes HACC-vx, Isotropic and PHIS with sampling rates of
2.5% and 1% and boxplots the per-feature VIFs: HACC-vx sits below the
collinearity cutoff of 5 (low linearity -> poor DPZ compressibility)
while Isotropic and PHIS sit well above, and the 1% sample already
separates the two groups cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.vif import variance_inflation_factors, vif_summary
from repro.core.decompose import decompose
from repro.core.transform_stage import forward_dct_blocks
from repro.datasets.registry import get_dataset
from repro.experiments.common import format_table

__all__ = ["VIFRow", "run", "format_report", "FIG10_DATASETS"]

FIG10_DATASETS = ("HACC-vx", "Isotropic", "PHIS")


@dataclass
class VIFRow:
    """VIF boxplot statistics for one (dataset, sampling rate)."""

    dataset: str
    sampling_rate: float
    stats: dict[str, float]


def run(datasets: tuple[str, ...] = FIG10_DATASETS,
        size: str = "small",
        rates: tuple[float, ...] = (0.025, 0.01),
        seed: int = 0) -> list[VIFRow]:
    """Compute sampled VIF distributions (DCT-domain features, as DPZ
    sees them).

    The sampling rate selects the *fraction of block features* probed
    (all datapoints are kept, so the feature correlations stay well
    estimated); this matches how Alg. 2 uses SR.
    """
    rows: list[VIFRow] = []
    for name in datasets:
        data = get_dataset(name, size).astype(np.float64)
        lo, hi = data.min(), data.max()
        norm = (data - lo) / (hi - lo) - 0.5
        blocks, plan = decompose(norm)
        features = forward_dct_blocks(blocks).T
        for rate in rates:
            rng = np.random.default_rng(seed)
            # Floor of 6: at the scaled-down dataset sizes a 1% probe
            # would fall below the minimum window in which block
            # collinearity is even observable (the paper's M is 4x
            # larger, so its 1% probe is ~10-18 features).
            n_feat = max(6, int(round(rate * plan.m_blocks)))
            vifs = variance_inflation_factors(
                features, max_features=n_feat, rng=rng,
            )
            rows.append(VIFRow(dataset=name, sampling_rate=rate,
                               stats=vif_summary(vifs)))
    return rows


def format_report(rows: list[VIFRow]) -> str:
    """Boxplot statistics table (Fig. 10's content)."""
    table_rows = []
    for r in rows:
        s = r.stats
        table_rows.append([
            r.dataset, f"{100 * r.sampling_rate:g}%",
            f"{s['q1']:9.2f}", f"{s['median']:9.2f}", f"{s['q3']:9.2f}",
            f"{s['mean']:9.2f}", f"{100 * s['frac_below_cutoff']:5.1f}%",
        ])
    return format_table(
        ["dataset", "SR", "Q1", "median", "Q3", "mean", "<cutoff(5)"],
        table_rows,
        title="Fig. 10 analogue -- VIF distribution of sampled block "
              "features",
    )
