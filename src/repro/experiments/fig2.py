"""Fig. 2: block-data overlays and PCA component distributions.

The paper's Figure 2 shows (a) several raw block feature-vectors of
FLDSC overlaid, and (b)-(d) the distribution of datapoints projected
onto the 1st, 2nd and 30th principal components.  The punchline: the
1st component "captures an overall trend of the original overlay" while
deep components carry progressively less structure -- i.e. the
component variance (eigenvalue) collapses with rank.

``run`` reproduces the quantitative content: per-component score
spreads for a configurable set of component ranks, plus the ratio
between the 1st and the deep components' spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.decompose import decompose
from repro.datasets.registry import get_dataset
from repro.experiments.common import format_table
from repro.transforms.pca import PCA

__all__ = ["Fig2Result", "run", "format_report"]


@dataclass
class Fig2Result:
    """Component-score statistics for Fig. 2."""

    dataset: str
    n_blocks: int
    n_points: int
    component_ranks: tuple[int, ...]
    score_std: dict[int, float]      # rank -> score standard deviation
    score_range: dict[int, float]    # rank -> peak-to-peak score range
    eigenvalues: np.ndarray
    sample_blocks: np.ndarray        # a few raw blocks (the overlay)


def run(dataset: str = "FLDSC", size: str = "small",
        ranks: tuple[int, ...] = (1, 2, 30),
        n_overlay: int = 7) -> Fig2Result:
    """Fit PCA on the raw block matrix and measure component spreads.

    Fig. 2 operates on spatial-domain blocks (before any DCT), which is
    what this reproduces.
    """
    data = get_dataset(dataset, size).astype(np.float64)
    blocks, plan = decompose(data)
    features = blocks.T  # (N samples, M block-features)
    pca = PCA(center=True).fit(features)
    max_rank = pca.explained_variance_.size
    ranks = tuple(r for r in ranks if 1 <= r <= max_rank)
    std: dict[int, float] = {}
    rng: dict[int, float] = {}
    scores = pca.transform(features, k=max(ranks))
    for r in ranks:
        col = scores[:, r - 1]
        std[r] = float(col.std())
        rng[r] = float(col.max() - col.min())
    step = max(1, plan.m_blocks // n_overlay)
    return Fig2Result(
        dataset=dataset, n_blocks=plan.m_blocks, n_points=plan.n_points,
        component_ranks=ranks, score_std=std, score_range=rng,
        eigenvalues=pca.explained_variance_,
        sample_blocks=blocks[::step][:n_overlay].copy(),
    )


def format_report(res: Fig2Result) -> str:
    """Text rendition of Fig. 2's quantitative content."""
    rows = []
    for r in res.component_ranks:
        rows.append([
            f"PC {r}",
            f"{res.score_std[r]:.4g}",
            f"{res.score_range[r]:.4g}",
            f"{res.eigenvalues[r - 1]:.4g}",
        ])
    head = (f"Fig. 2 analogue -- {res.dataset}: {res.n_blocks} blocks x "
            f"{res.n_points} points; component score spreads")
    table = format_table(["component", "score std", "score range",
                          "eigenvalue"], rows, title=head)
    r1, rl = res.component_ranks[0], res.component_ranks[-1]
    ratio = res.score_std[r1] / max(res.score_std[rl], 1e-30)
    return table + (f"\nspread ratio PC{r1}/PC{rl}: {ratio:.1f}x "
                    f"(deep components are less representative)")
