"""Fig. 3: information preservation and PSNR vs number of features.

The paper's Figure 3 compares DCT and PCA as retrieval methods on
FLDSC: the primary axis shows the CDF of information preserved (ECR
for DCT, TVE for PCA) as a function of the fraction of selected
features, the secondary axis the PSNR of the reconstruction using only
those features.  Headline observations reproduced here:

* ~1% of features carry >90% of the information in both methods;
* PCA reaches a given PSNR with fewer features than DCT (the paper
  reports 75 dB at ~35% DCT vs ~20% PCA features).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.information import ecr_curve
from repro.analysis.metrics import psnr
from repro.core.decompose import decompose, reassemble
from repro.core.transform_stage import forward_dct_blocks, inverse_dct_blocks
from repro.datasets.registry import get_dataset
from repro.experiments.common import format_table
from repro.transforms.pca import PCA

__all__ = ["Fig3Result", "run", "format_report"]


@dataclass
class Fig3Result:
    """Curves of Fig. 3 for one dataset."""

    dataset: str
    fractions: np.ndarray            # fraction of features selected
    ecr_dct: np.ndarray              # information preserved, DCT
    tve_pca: np.ndarray              # information preserved, PCA
    psnr_dct: np.ndarray
    psnr_pca: np.ndarray

    def features_for_info(self, level: float, method: str) -> float:
        """Smallest feature fraction reaching an information level."""
        curve = self.ecr_dct if method == "dct" else self.tve_pca
        idx = np.searchsorted(curve, level)
        idx = min(idx, curve.size - 1)
        return float(self.fractions[idx])

    def features_for_psnr(self, level: float, method: str) -> float:
        """Smallest evaluated feature fraction reaching a PSNR level."""
        curve = self.psnr_dct if method == "dct" else self.psnr_pca
        hits = np.flatnonzero(curve >= level)
        if hits.size == 0:
            return float("nan")
        return float(self.fractions[hits[0]])


def _dct_reconstruction(coeffs: np.ndarray, keep: int,
                        plan) -> np.ndarray:
    """Zero all but the ``keep`` largest-magnitude coefficients."""
    flat = coeffs.reshape(-1)
    if keep < flat.size:
        thresh = np.partition(np.abs(flat), flat.size - keep)[flat.size - keep]
        kept = np.where(np.abs(flat) >= thresh, flat, 0.0)
    else:
        kept = flat
    return reassemble(inverse_dct_blocks(kept.reshape(coeffs.shape)), plan)


def run(dataset: str = "FLDSC", size: str = "small",
        n_eval: int = 12) -> Fig3Result:
    """Sweep the kept-feature fraction for both methods.

    ``n_eval`` PSNR evaluations are spread geometrically over feature
    fractions (full reconstructions are the expensive part).
    """
    data = get_dataset(dataset, size).astype(np.float64)
    blocks, plan = decompose(data)
    coeffs = forward_dct_blocks(blocks)
    features = coeffs.T
    pca = PCA(center=False).fit(features)

    m = plan.m_blocks
    fracs = np.unique(np.geomspace(1.0 / m, 1.0, n_eval))
    ecr_full = ecr_curve(coeffs.reshape(-1))
    tve_full = pca.tve_curve()

    ecr_at = np.empty(fracs.size)
    tve_at = np.empty(fracs.size)
    psnr_dct = np.empty(fracs.size)
    psnr_pca = np.empty(fracs.size)
    total_coeffs = coeffs.size
    for i, f in enumerate(fracs):
        k = max(1, int(round(f * m)))
        ecr_at[i] = ecr_full[min(int(round(f * total_coeffs)) - 1,
                                 total_coeffs - 1)]
        tve_at[i] = tve_full[k - 1]
        recon_d = _dct_reconstruction(coeffs, int(round(f * total_coeffs)),
                                      plan)
        psnr_dct[i] = psnr(data, recon_d)
        scores = pca.transform(features, k=k)
        recon_feats = pca.inverse_transform(scores)
        recon_p = reassemble(inverse_dct_blocks(recon_feats.T), plan)
        psnr_pca[i] = psnr(data, recon_p)
    return Fig3Result(dataset=dataset, fractions=fracs, ecr_dct=ecr_at,
                      tve_pca=tve_at, psnr_dct=psnr_dct, psnr_pca=psnr_pca)


def format_report(res: Fig3Result) -> str:
    """Fig. 3 as a text table of the swept operating points."""
    rows = []
    for i, f in enumerate(res.fractions):
        rows.append([
            f"{100 * f:6.2f}%",
            f"{res.ecr_dct[i]:.6f}",
            f"{res.psnr_dct[i]:7.2f}",
            f"{res.tve_pca[i]:.6f}",
            f"{res.psnr_pca[i]:7.2f}",
        ])
    table = format_table(
        ["features", "ECR (DCT)", "PSNR dct", "TVE (PCA)", "PSNR pca"],
        rows,
        title=f"Fig. 3 analogue -- {res.dataset}: information & PSNR vs "
              f"selected features",
    )
    one_pct_d = res.ecr_dct[np.searchsorted(res.fractions, 0.01)]
    one_pct_p = res.tve_pca[np.searchsorted(res.fractions, 0.01)]
    return table + (f"\ninfo at ~1% of features: DCT {one_pct_d:.3f}, "
                    f"PCA {one_pct_p:.3f} (paper: >0.9 for both)")
