"""Fig. 4: error of transform combinations at a fixed 5x ratio.

The paper's Figure 4 compresses FLDSC to a fixed 5x feature-reduction
with four pipelines -- DCT alone, PCA alone, DCT-on-PCA and PCA-on-DCT
-- and visualizes the absolute reconstruction error.  The reported
ordering (Section III-B1): **PCA on DCT is the most accurate, DCT on
PCA the worst**, motivating DPZ's stage order.

Pipeline definitions (each reduced ~``ratio`` times overall):

* ``dct`` -- per-block zonal masking: keep the lowest-frequency 20% of
  each block's coefficients.  This is the conventional *fixed* DCT
  selection (paper Section III-A3 names zigzag/zonal masking) -- a
  data-adaptive top-magnitude selection would additionally have to
  store coefficient positions, which the fixed-feature-count comparison
  excludes.
* ``pca`` -- spatial-domain PCA in its standard workflow configuration
  (mean-centered, standardized features), keeping the top 20% of
  components.  The standardization is exactly the "scaling redistributes
  the weight of the variance" effect the paper argues against for
  block-data (Section IV-B).
* ``dct_on_pca`` -- PCA first, then DCT of the PCA-reduced data.
  Per the paper's own diagnosis (Section III-B3: in this order "the
  feature selection step" occurs in *two* stages rather than one),
  both stages truncate to 20%: the stored artifact is 20% of the
  coefficients -- same nominal 5x -- but the signal has passed through
  two independent truncations, which is what makes this combination
  the worst.
* ``pca_on_dct`` -- DPZ's order: block DCT (lossless, no selection),
  then uncentered PCA in the DCT domain keeping 20% of components --
  selection in a single stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import max_abs_error, mse, psnr
from repro.core.decompose import decompose, reassemble
from repro.core.transform_stage import forward_dct_blocks, inverse_dct_blocks
from repro.datasets.registry import get_dataset
from repro.experiments.common import format_table
from repro.transforms.pca import PCA

__all__ = ["PipelineError", "Fig4Result", "run", "format_report",
           "PIPELINES"]

PIPELINES = ("dct", "pca", "dct_on_pca", "pca_on_dct")


@dataclass
class PipelineError:
    """Reconstruction error of one transform combination."""

    name: str
    psnr: float
    mse: float
    max_abs: float
    mean_abs: float


@dataclass
class Fig4Result:
    """All four pipelines on one dataset at one reduction ratio."""

    dataset: str
    ratio: float
    errors: dict[str, PipelineError]
    error_maps: dict[str, np.ndarray]

    def ordering(self) -> list[str]:
        """Pipelines sorted best (lowest MSE) first."""
        return sorted(self.errors, key=lambda n: self.errors[n].mse)


def _zonal_mask(coeffs: np.ndarray, keep_frac: float) -> np.ndarray:
    """Keep the lowest-frequency fraction of each block's coefficients."""
    n = coeffs.shape[1]
    keep = max(1, int(round(keep_frac * n)))
    out = coeffs.copy()
    out[:, keep:] = 0.0
    return out


def run(dataset: str = "FLDSC", size: str = "small",
        ratio: float = 5.0) -> Fig4Result:
    """Evaluate the four combinations at a fixed reduction ratio."""
    data = get_dataset(dataset, size).astype(np.float64)
    blocks, plan = decompose(data)
    m = plan.m_blocks
    keep_frac = 1.0 / ratio
    k = max(1, int(round(keep_frac * m)))

    recons: dict[str, np.ndarray] = {}

    # 1. DCT alone: zonal masking per block.
    coeffs = forward_dct_blocks(blocks)
    recons["dct"] = reassemble(
        inverse_dct_blocks(_zonal_mask(coeffs, keep_frac)), plan
    )

    # 2. PCA alone, standard workflow (centered + standardized).
    pca_sp = PCA(center=True, standardize=True).fit(blocks.T)
    scores = pca_sp.transform(blocks.T, k=k)
    recons["pca"] = reassemble(pca_sp.inverse_transform(scores).T, plan)

    # 3. DCT on PCA: selection in BOTH stages (20% of components, then
    #    20% of the coefficients of the PCA-reduced data).
    reduced = pca_sp.inverse_transform(scores).T            # (M, N)
    red_coeffs = forward_dct_blocks(reduced)
    recons["dct_on_pca"] = reassemble(
        inverse_dct_blocks(_zonal_mask(red_coeffs, keep_frac)), plan
    )

    # 4. PCA on DCT coefficients (DPZ's order, single selection stage).
    pca_dct = PCA(center=False).fit(coeffs.T)
    sc = pca_dct.transform(coeffs.T, k=k)
    feats = pca_dct.inverse_transform(sc)
    recons["pca_on_dct"] = reassemble(inverse_dct_blocks(feats.T), plan)

    errors: dict[str, PipelineError] = {}
    maps: dict[str, np.ndarray] = {}
    for name, rec in recons.items():
        err = np.abs(data - rec)
        maps[name] = err
        errors[name] = PipelineError(
            name=name, psnr=psnr(data, rec), mse=mse(data, rec),
            max_abs=max_abs_error(data, rec), mean_abs=float(err.mean()),
        )
    return Fig4Result(dataset=dataset, ratio=ratio, errors=errors,
                      error_maps=maps)


def format_report(res: Fig4Result) -> str:
    """Fig. 4's error comparison as a table plus the ordering claim."""
    rows = []
    for name in PIPELINES:
        e = res.errors[name]
        rows.append([name, f"{e.psnr:7.2f}", f"{e.mse:.3e}",
                     f"{e.mean_abs:.3e}", f"{e.max_abs:.3e}"])
    table = format_table(
        ["pipeline", "PSNR", "MSE", "mean |err|", "max |err|"], rows,
        title=f"Fig. 4 analogue -- {res.dataset} at ~{res.ratio:g}x "
              f"feature reduction",
    )
    order = res.ordering()
    return table + (f"\nbest -> worst: {' > '.join(order)} "
                    f"(paper: pca_on_dct best, dct_on_pca worst)")
