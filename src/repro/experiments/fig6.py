"""Fig. 6: rate-distortion comparison of DPZ-l/DPZ-s vs SZ vs ZFP.

For every dataset the paper sweeps DPZ's TVE from "three-nine" to
"eight-nine" and configures SZ and ZFP to comparable PSNRs, then plots
PSNR against bit-rate.  The claims this harness checks:

* DPZ achieves superior compression at *medium to high* accuracy
  (PSNR roughly 30-90 dB), especially on the 2-D/3-D datasets;
* DPZ-l saturates in PSNR as TVE tightens (its quantizer bound is the
  ceiling) while DPZ-s keeps climbing;
* HACC (1-D, low VIF) is the least favourable case for DPZ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ratedistortion import RDPoint, rate_distortion_sweep
from repro.datasets.registry import get_dataset
from repro.experiments.common import (
    RD_DATASETS,
    dpz_config,
    format_table,
    run_dpz,
    run_sz,
    run_zfp,
)

__all__ = ["Fig6Result", "run", "run_all", "format_report"]

#: DPZ TVE sweep ("three-nine" .. "eight-nine", thinned for runtime).
DPZ_NINES = (3, 4, 5, 6, 7, 8)
#: SZ relative-error-bound sweep.
SZ_REL_EPS = (1e-2, 1e-3, 1e-4, 1e-5)
#: ZFP fixed-rate sweep (bits/value).
ZFP_RATES = (1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass
class Fig6Result:
    """RD curves of all four compressors on one dataset."""

    dataset: str
    curves: dict[str, list[RDPoint]]


def run(dataset: str, size: str = "small", *,
        nines: tuple[int, ...] = DPZ_NINES,
        sz_eps: tuple[float, ...] = SZ_REL_EPS,
        zfp_rates: tuple[float, ...] = ZFP_RATES) -> Fig6Result:
    """Sweep all compressors on one dataset."""
    data = get_dataset(dataset, size)
    curves: dict[str, list[RDPoint]] = {}
    for scheme in ("l", "s"):
        curves[f"DPZ-{scheme}"] = rate_distortion_sweep(
            data,
            lambda d, n, s=scheme: run_dpz(d, dpz_config(s, n)),
            nines,
        )
    curves["SZ"] = rate_distortion_sweep(data, run_sz, sz_eps)
    # ZFP's 1-D blocks need >= (1+EBITS)/4 bits/value for headers.
    min_rate = (1 + 12) / (4 ** data.ndim) + 0.25
    rates = tuple(r for r in zfp_rates if r >= min_rate)
    curves["ZFP"] = rate_distortion_sweep(data, run_zfp, rates)
    return Fig6Result(dataset=dataset, curves=curves)


def run_all(size: str = "small",
            datasets: tuple[str, ...] = RD_DATASETS,
            **kw) -> list[Fig6Result]:
    """Fig. 6 over the full dataset panel."""
    return [run(name, size, **kw) for name in datasets]


def format_report(results: list[Fig6Result] | Fig6Result) -> str:
    """All RD points as one table, grouped by dataset and compressor."""
    if isinstance(results, Fig6Result):
        results = [results]
    rows = []
    for res in results:
        for comp, points in res.curves.items():
            for p in points:
                rows.append([
                    res.dataset, comp, str(p.param),
                    f"{p.cr:9.2f}", f"{p.bitrate:7.4f}", f"{p.psnr:7.2f}",
                ])
    return format_table(
        ["dataset", "compressor", "param", "CR", "bitrate", "PSNR(dB)"],
        rows,
        title="Fig. 6 analogue -- rate-distortion (PSNR vs bits/value)",
    )
