"""Fig. 7: CLDHGH visualization at matched operating points.

The paper shows decompressed CLDHGH from each compressor at two
operating points and reports the numbers behind the pictures:

* **matched CR (~10.5x)**: DPZ-s reaches the best PSNR (66.9 dB vs SZ
  64.1 and ZFP 26.8 in the paper) -- ZFP's fixed-rate mode is weak at
  low rates;
* **matched PSNR (~26 dB)**: ZFP gives the most faithful picture but
  DPZ's CR is far higher (489x vs SZ 154x vs ZFP ~11x in the paper).

``run`` finds each compressor's operating point closest to the target
by sweeping its parameter, and returns the reconstructed arrays (for
plotting / PGM export) plus the metric table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import psnr
from repro.datasets.registry import get_dataset
from repro.experiments.common import dpz_config, format_table, run_dpz, \
    run_sz, run_zfp

__all__ = ["OperatingPoint", "Fig7Result", "run", "format_report",
           "write_pgm"]


@dataclass
class OperatingPoint:
    """One compressor at one matched target."""

    compressor: str
    param: object
    cr: float
    psnr: float
    reconstruction: np.ndarray


@dataclass
class Fig7Result:
    """Both operating-point panels of Fig. 7."""

    dataset: str
    original: np.ndarray
    matched_cr: list[OperatingPoint]
    matched_psnr: list[OperatingPoint]
    cr_target: float
    psnr_target: float


#: Default parameter sweeps; trim for quick smoke runs.
DPZ_NINES = (2, 3, 4, 5, 6, 7)
SZ_EPS = (3e-2, 1e-2, 3e-3, 1e-3, 1e-4)
ZFP_RATES = (1.0, 2.0, 3.0, 4.0, 8.0)


def _sweep(data: np.ndarray, nines, sz_eps, zfp_rates):
    """All candidate operating points per compressor."""
    candidates: dict[str, list[OperatingPoint]] = {"DPZ-s": [], "SZ": [],
                                                   "ZFP": []}
    for n in nines:
        nb, rec = run_dpz(data, dpz_config("s", n))
        candidates["DPZ-s"].append(OperatingPoint(
            "DPZ-s", f"{n}-nine", data.nbytes / nb, psnr(data, rec), rec))
    for eps in sz_eps:
        nb, rec = run_sz(data, eps)
        candidates["SZ"].append(OperatingPoint(
            "SZ", f"rel {eps:g}", data.nbytes / nb, psnr(data, rec), rec))
    for rate in zfp_rates:
        nb, rec = run_zfp(data, rate)
        candidates["ZFP"].append(OperatingPoint(
            "ZFP", f"rate {rate:g}", data.nbytes / nb, psnr(data, rec), rec))
    return candidates


def run(dataset: str = "CLDHGH", size: str = "small",
        cr_target: float = 10.5, psnr_target: float = 26.0, *,
        nines=DPZ_NINES, sz_eps=SZ_EPS,
        zfp_rates=ZFP_RATES) -> Fig7Result:
    """Build both Fig. 7 panels for one dataset."""
    data = get_dataset(dataset, size)
    candidates = _sweep(data, nines, sz_eps, zfp_rates)
    matched_cr = [
        min(pts, key=lambda p: abs(np.log(p.cr / cr_target)))
        for pts in candidates.values()
    ]
    matched_psnr = [
        min(pts, key=lambda p: abs(p.psnr - psnr_target))
        for pts in candidates.values()
    ]
    return Fig7Result(dataset=dataset, original=data,
                      matched_cr=matched_cr, matched_psnr=matched_psnr,
                      cr_target=cr_target, psnr_target=psnr_target)


def write_pgm(path: str, array: np.ndarray) -> None:
    """Dump a 2-D array as an 8-bit PGM image (no plotting deps)."""
    arr = np.asarray(array, dtype=np.float64)
    lo, hi = arr.min(), arr.max()
    scaled = np.zeros_like(arr) if hi == lo else (arr - lo) / (hi - lo)
    img = (scaled * 255).astype(np.uint8)
    with open(path, "wb") as fh:
        fh.write(f"P5 {img.shape[1]} {img.shape[0]} 255\n".encode())
        fh.write(img.tobytes())


def format_report(res: Fig7Result) -> str:
    """Both panels as text tables."""
    def rows(points):
        return [[p.compressor, str(p.param), f"{p.cr:8.2f}",
                 f"{p.psnr:7.2f}"] for p in points]

    t1 = format_table(
        ["compressor", "param", "CR", "PSNR"], rows(res.matched_cr),
        title=f"Fig. 7 analogue -- {res.dataset}, matched CR ~"
              f"{res.cr_target:g}x: who has the best PSNR?",
    )
    t2 = format_table(
        ["compressor", "param", "CR", "PSNR"], rows(res.matched_psnr),
        title=f"matched PSNR ~{res.psnr_target:g} dB: who has the best CR?",
    )
    return t1 + "\n\n" + t2
