"""Fig. 8: compression/decompression time versus compression ratio.

The paper plots wall-clock (de)compression time against achieved CR on
the Isotropic dataset for all three compressors.  Expected shape (and
what holds here, modulo Python-vs-C absolute speeds): DPZ is the
slowest to compress (PCA dominates), the gap narrows on decompression
(inverse projection is a single matmul), and DPZ's time *falls* as CR
rises (fewer components to quantize and encode).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.metrics import psnr
from repro.baselines.sz import SZCompressor
from repro.baselines.zfp import ZFPCompressor
from repro.core.compressor import DPZCompressor
from repro.datasets.registry import get_dataset
from repro.experiments.common import dpz_config, format_table

__all__ = ["TimingPoint", "run", "format_report"]


@dataclass
class TimingPoint:
    """One (compressor, parameter) timing measurement."""

    compressor: str
    param: object
    cr: float
    psnr: float
    compress_seconds: float
    decompress_seconds: float

    def throughput_mb_s(self, nbytes: int) -> tuple[float, float]:
        """(compress, decompress) throughput in MB/s of original data."""
        mb = nbytes / 1e6
        return (mb / max(self.compress_seconds, 1e-12),
                mb / max(self.decompress_seconds, 1e-12))


def _timed(fn, *args):
    t0 = time.perf_counter()
    out = fn(*args)
    return out, time.perf_counter() - t0


def run(dataset: str = "Isotropic", size: str = "small") -> list[TimingPoint]:
    """Time all compressors over their parameter sweeps."""
    data = get_dataset(dataset, size)
    points: list[TimingPoint] = []
    for scheme in ("l", "s"):
        for nines in (3, 5, 7):
            comp = DPZCompressor(dpz_config(scheme, nines))
            blob, ct = _timed(comp.compress, data)
            rec, dt = _timed(DPZCompressor.decompress, blob)
            points.append(TimingPoint(
                f"DPZ-{scheme}", f"{nines}-nine", data.nbytes / len(blob),
                psnr(data, rec), ct, dt))
    for eps in (1e-2, 1e-3, 1e-4):
        comp = SZCompressor(rel_eps=eps)
        blob, ct = _timed(comp.compress, data)
        rec, dt = _timed(SZCompressor.decompress, blob)
        points.append(TimingPoint(
            "SZ", f"rel {eps:g}", data.nbytes / len(blob),
            psnr(data, rec), ct, dt))
    for rate in (2.0, 4.0, 8.0):
        comp = ZFPCompressor(rate=rate)
        blob, ct = _timed(comp.compress, data)
        rec, dt = _timed(ZFPCompressor.decompress, blob)
        points.append(TimingPoint(
            "ZFP", f"rate {rate:g}", data.nbytes / len(blob),
            psnr(data, rec), ct, dt))
    return points


def sampling_speedup(dataset: str = "Isotropic", size: str = "small",
                     nines: int = 5, repeats: int = 3) -> tuple[float,
                                                                float]:
    """Compression seconds (plain, with-sampling) for one dataset.

    Reproduces the paper's Section V-C5 claim that the sampling
    strategy speeds up compression (1.23x on their datasets).  The
    speedup comes from replacing the dense O(M^3) eigendecomposition
    with a k-truncated one, so it materializes at the paper's full-size
    M (1024-1800); at the scaled-down default sizes the dense solve is
    already milliseconds and the subset probes can dominate -- both
    numbers are reported either way.
    """
    from dataclasses import replace

    data = get_dataset(dataset, size)
    cfg_plain = dpz_config("l", nines)
    cfg_samp = replace(cfg_plain, use_sampling=True)
    t_plain = min(
        _timed(DPZCompressor(cfg_plain).compress, data)[1]
        for _ in range(repeats)
    )
    t_samp = min(
        _timed(DPZCompressor(cfg_samp).compress, data)[1]
        for _ in range(repeats)
    )
    return t_plain, t_samp


def format_report(points: list[TimingPoint]) -> str:
    """Timing table (Fig. 8's data series)."""
    rows = [[p.compressor, str(p.param), f"{p.cr:8.2f}", f"{p.psnr:7.2f}",
             f"{p.compress_seconds * 1e3:9.1f}",
             f"{p.decompress_seconds * 1e3:9.1f}"] for p in points]
    return format_table(
        ["compressor", "param", "CR", "PSNR", "comp ms", "decomp ms"],
        rows,
        title="Fig. 8 analogue -- (de)compression time vs compression ratio",
    )
