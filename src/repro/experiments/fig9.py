"""Fig. 9: breakdown of DPZ compression time by stage.

The paper's Figure 9 shows where DPZ's compression time goes per
dataset; stage 2 (PCA) and stage 3 (quantization+encoding) dominate
because both scale with the coefficient dimensions.  ``run`` reuses the
compressor's built-in stage timers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compressor import DPZCompressor
from repro.datasets.registry import get_dataset
from repro.experiments.common import TABLE_DATASETS, dpz_config, format_table

__all__ = ["StageTimes", "run", "format_report", "STAGE_ORDER"]

STAGE_ORDER = ("decompose", "dct", "sampling", "pca", "quantize", "encode")


@dataclass
class StageTimes:
    """Per-stage compression seconds for one dataset."""

    dataset: str
    scheme: str
    times: dict[str, float]

    @property
    def total(self) -> float:
        """Total instrumented compression time."""
        return sum(self.times.values())

    def fraction(self, stage: str) -> float:
        """Share of total time spent in one stage."""
        return self.times.get(stage, 0.0) / max(self.total, 1e-12)


def run(datasets: tuple[str, ...] = TABLE_DATASETS, size: str = "small",
        scheme: str = "l", nines: int = 5) -> list[StageTimes]:
    """Measure stage times for each dataset."""
    out: list[StageTimes] = []
    for name in datasets:
        data = get_dataset(name, size)
        comp = DPZCompressor(dpz_config(scheme, nines))
        _, st = comp.compress_with_stats(data)
        out.append(StageTimes(dataset=name, scheme=scheme,
                              times=dict(st.times)))
    return out


def format_report(results: list[StageTimes]) -> str:
    """Stage-time table (Fig. 9's bars, in ms)."""
    rows = []
    for r in results:
        rows.append(
            [r.dataset]
            + [f"{r.times.get(s, 0.0) * 1e3:9.1f}" for s in STAGE_ORDER]
            + [f"{r.total * 1e3:9.1f}"]
        )
    return format_table(
        ["dataset"] + [f"{s} ms" for s in STAGE_ORDER] + ["total ms"],
        rows,
        title="Fig. 9 analogue -- DPZ compression time by stage",
    )
