"""Section V-C6: accuracy of the sampling strategy's CR prediction.

The paper validates Alg. 2 by checking how often the *achieved*
compression ratio falls inside the predicted range ``CR_p`` -- 76.6% of
runs with S=10 subsets vs 63.3% with S=5 (more subsets = better
estimates).  This harness replays that protocol over the dataset suite
at several TVE levels, for both subset counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.compressor import DPZCompressor
from repro.datasets.registry import get_dataset
from repro.experiments.common import TABLE_DATASETS, dpz_config, format_table

__all__ = ["SamplingTrial", "run", "hit_rate", "format_report"]


@dataclass
class SamplingTrial:
    """One (dataset, TVE, S) sampling-prediction trial."""

    dataset: str
    nines: int
    subsets: int
    k_estimate: int
    cr_low: float
    cr_high: float
    cr_achieved: float

    @property
    def hit(self) -> bool:
        """Did the achieved CR fall inside the predicted range?

        Judged with a 25% tolerance band around the range edges, since
        the prediction's stage-3/zlib factors are themselves empirical
        constants (the paper's hit criterion is the raw range; the
        tolerance absorbs our smaller dataset sizes).
        """
        return self.cr_low * 0.75 <= self.cr_achieved <= self.cr_high * 1.25


def run(datasets: tuple[str, ...] = TABLE_DATASETS, size: str = "small",
        nines_sweep: tuple[int, ...] = (3, 5),
        subset_counts: tuple[int, ...] = (5, 10)) -> list[SamplingTrial]:
    """Replay the sampling-prediction protocol."""
    trials: list[SamplingTrial] = []
    for name in datasets:
        data = get_dataset(name, size)
        for nines in nines_sweep:
            for s in subset_counts:
                cfg = replace(dpz_config("l", nines), use_sampling=True,
                              sampling_subsets=s)
                comp = DPZCompressor(cfg)
                blob, st = comp.compress_with_stats(data)
                report = st.sampling
                trials.append(SamplingTrial(
                    dataset=name, nines=nines, subsets=s,
                    k_estimate=report.k_estimate,
                    cr_low=report.cr_low, cr_high=report.cr_high,
                    cr_achieved=data.nbytes / len(blob),
                ))
    return trials


def hit_rate(trials: list[SamplingTrial], subsets: int) -> float:
    """Fraction of trials with the achieved CR inside the prediction."""
    pool = [t for t in trials if t.subsets == subsets]
    if not pool:
        return float("nan")
    return sum(t.hit for t in pool) / len(pool)


def format_report(trials: list[SamplingTrial]) -> str:
    """Trial table plus the S=5 vs S=10 hit rates."""
    rows = [[
        t.dataset, f"{t.nines}-nine", str(t.subsets), str(t.k_estimate),
        f"{t.cr_low:8.2f}", f"{t.cr_high:8.2f}", f"{t.cr_achieved:8.2f}",
        "yes" if t.hit else "no",
    ] for t in trials]
    table = format_table(
        ["dataset", "TVE", "S", "k_e", "CR_p low", "CR_p high",
         "achieved", "hit"],
        rows,
        title="Section V-C6 analogue -- sampling-strategy CR prediction",
    )
    subset_counts = sorted({t.subsets for t in trials})
    tail = "  ".join(
        f"hit rate S={s}: {100 * hit_rate(trials, s):.1f}%"
        for s in subset_counts
    )
    return table + "\n" + tail + "  (paper: 63.3% S=5, 76.6% S=10)"
