"""Table I: the dataset inventory.

The paper's Table I lists source, type, dimension, size and format of
the nine evaluated fields.  This harness renders the synthetic registry
in the same layout, for both size presets, and verifies each generator
actually produces the declared geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.registry import all_dataset_names, get_dataset, get_spec
from repro.experiments.common import format_table

__all__ = ["InventoryRow", "run", "format_report"]


@dataclass
class InventoryRow:
    """One dataset's Table-I entry, with measured properties."""

    name: str
    source: str
    kind: str
    shape: tuple[int, ...]
    nbytes: int
    dtype: str
    value_range: tuple[float, float]


def run(size: str = "small") -> list[InventoryRow]:
    """Generate every registered dataset and record its properties."""
    rows: list[InventoryRow] = []
    for name in all_dataset_names():
        spec = get_spec(name)
        data = get_dataset(name, size)
        rows.append(InventoryRow(
            name=spec.name, source=spec.source, kind=spec.kind,
            shape=tuple(data.shape), nbytes=int(data.nbytes),
            dtype=str(data.dtype),
            value_range=(float(data.min()), float(data.max())),
        ))
    return rows


def format_report(rows: list[InventoryRow]) -> str:
    """Table I layout."""
    def human(nbytes: int) -> str:
        for unit in ("B", "KB", "MB", "GB"):
            if nbytes < 1024:
                return f"{nbytes:.0f}{unit}"
            nbytes /= 1024
        return f"{nbytes:.2f}TB"

    table_rows = [[
        r.name, r.source, r.kind,
        "x".join(str(n) for n in r.shape), human(r.nbytes), r.dtype,
        f"[{r.value_range[0]:.3g}, {r.value_range[1]:.3g}]",
    ] for r in rows]
    return format_table(
        ["name", "source", "type", "dimension", "size", "format", "range"],
        table_rows,
        title="Table I analogue -- synthetic dataset inventory",
    )
