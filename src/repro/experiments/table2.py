"""Table II: compression via knee-point detection, 1-D vs polynomial fit.

For each dataset and both schemes, the paper runs DPZ with Alg. 1
Method 1 (knee-point detection) under the two spline-fitting options
and reports CR, PSNR and the mean relative error theta.  Expected
shape: knee-point mode produces aggressive CRs, and the polynomial fit
trades CR (1.5-5x lower) for accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import mean_relative_error, psnr
from repro.core.compressor import DPZCompressor
from repro.datasets.registry import get_dataset
from repro.experiments.common import TABLE_DATASETS, dpz_config, format_table

__all__ = ["KneeCell", "run", "format_report"]


@dataclass
class KneeCell:
    """One (dataset, scheme, fit) cell of Table II."""

    dataset: str
    scheme: str
    fit: str
    cr: float
    psnr: float
    mean_theta: float
    k: int


def run(datasets: tuple[str, ...] = TABLE_DATASETS,
        size: str = "small") -> list[KneeCell]:
    """Fill Table II for the requested datasets."""
    cells: list[KneeCell] = []
    for name in datasets:
        data = get_dataset(name, size)
        for scheme in ("l", "s"):
            for fit in ("1d", "polyn"):
                cfg = dpz_config(scheme, knee_fit=fit)
                comp = DPZCompressor(cfg)
                blob, stats = comp.compress_with_stats(data)
                recon = DPZCompressor.decompress(blob)
                cells.append(KneeCell(
                    dataset=name, scheme=scheme, fit=fit,
                    cr=data.nbytes / len(blob),
                    psnr=psnr(data, recon),
                    mean_theta=mean_relative_error(data, recon),
                    k=stats.k,
                ))
    return cells


def format_report(cells: list[KneeCell]) -> str:
    """Table II layout: CR / PSNR / theta per (scheme, fit)."""
    rows = []
    for c in cells:
        rows.append([
            c.dataset, f"DPZ-{c.scheme}", c.fit, str(c.k),
            f"{c.cr:8.2f}", f"{c.psnr:7.2f}", f"{c.mean_theta:.2e}",
        ])
    return format_table(
        ["dataset", "scheme", "fit", "k", "CR", "PSNR", "mean theta"],
        rows,
        title="Table II analogue -- knee-point detection compression",
    )
