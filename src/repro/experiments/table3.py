"""Table III: per-stage compression-ratio breakdown.

DPZ's end-to-end ratio is (approximately) the product of three
factors; the paper tabulates each across TVE in {99.9%, 99.999%,
99.99999%} for both schemes:

* **Stage 1&2** (decomposition + DCT + k-PCA): ``~M/k`` -- shrinks as
  TVE tightens (more components kept);
* **Stage 3** (quantization/encoding): ~2x for DPZ-s (32->16 bit),
  2-4x for DPZ-l (32->8 bit minus escapes) -- grows slightly with TVE
  as deeper, smaller-valued components quantize better;
* **zlib**: 1-5x, also growing with TVE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compressor import DPZCompressor
from repro.datasets.registry import get_dataset
from repro.experiments.common import (
    NINES_SWEEP,
    TABLE_DATASETS,
    dpz_config,
    format_table,
)

__all__ = ["BreakdownCell", "run", "format_report"]


@dataclass
class BreakdownCell:
    """One (dataset, scheme, TVE) row of Table III."""

    dataset: str
    scheme: str
    nines: int
    cr_stage12: float
    cr_stage3: float
    cr_zlib: float
    cr_total: float
    k: int
    m: int


def run(datasets: tuple[str, ...] = TABLE_DATASETS,
        size: str = "small",
        nines_sweep: tuple[int, ...] = NINES_SWEEP) -> list[BreakdownCell]:
    """Fill Table III for the requested datasets and TVE levels."""
    cells: list[BreakdownCell] = []
    for name in datasets:
        data = get_dataset(name, size)
        for scheme in ("l", "s"):
            for nines in nines_sweep:
                comp = DPZCompressor(dpz_config(scheme, nines))
                _, st = comp.compress_with_stats(data)
                cells.append(BreakdownCell(
                    dataset=name, scheme=scheme, nines=nines,
                    cr_stage12=st.cr_stage12, cr_stage3=st.cr_stage3,
                    cr_zlib=st.cr_zlib, cr_total=st.cr,
                    k=st.k, m=st.m_blocks,
                ))
    return cells


def format_report(cells: list[BreakdownCell]) -> str:
    """Table III layout: stage factors per (dataset, scheme, TVE)."""
    rows = []
    for c in cells:
        rows.append([
            c.dataset, f"DPZ-{c.scheme}", f"{c.nines}-nine",
            f"{c.k}/{c.m}",
            f"{c.cr_stage12:8.3f}", f"{c.cr_stage3:6.3f}",
            f"{c.cr_zlib:6.3f}", f"{c.cr_total:8.2f}",
        ])
    return format_table(
        ["dataset", "scheme", "TVE", "k/M", "stage1&2", "stage3",
         "zlib", "total CR"],
        rows,
        title="Table III analogue -- per-stage compression ratio breakdown",
    )
