"""Table IV: accuracy loss between stages (delta PSNR).

The paper measures how much PSNR stage 3 (quantization) costs on top of
stages 1&2 (k-PCA truncation) at each TVE level.  Expected shape: the
delta *grows* as TVE tightens -- with more variance preserved, the
truncation error shrinks below the quantization error, so quantization
becomes the binding loss -- and it grows much faster for DPZ-l (coarser
quantizer) than DPZ-s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compressor import DPZCompressor
from repro.datasets.registry import get_dataset
from repro.experiments.common import (
    NINES_SWEEP,
    TABLE_DATASETS,
    dpz_config,
    format_table,
)

__all__ = ["DeltaPSNRCell", "run", "format_report"]


@dataclass
class DeltaPSNRCell:
    """One (dataset, scheme, TVE) entry of Table IV."""

    dataset: str
    scheme: str
    nines: int
    psnr_stage12: float
    psnr_final: float

    @property
    def delta(self) -> float:
        """PSNR lost to stage 3 (dB)."""
        return self.psnr_stage12 - self.psnr_final


def run(datasets: tuple[str, ...] = TABLE_DATASETS,
        size: str = "small",
        nines_sweep: tuple[int, ...] = NINES_SWEEP) -> list[DeltaPSNRCell]:
    """Fill Table IV (requires the extra stage-PSNR reconstruction)."""
    cells: list[DeltaPSNRCell] = []
    for name in datasets:
        data = get_dataset(name, size)
        for scheme in ("l", "s"):
            for nines in nines_sweep:
                comp = DPZCompressor(dpz_config(scheme, nines))
                _, st = comp.compress_with_stats(data, stage_psnr=True)
                cells.append(DeltaPSNRCell(
                    dataset=name, scheme=scheme, nines=nines,
                    psnr_stage12=float(st.psnr_stage12),
                    psnr_final=float(st.psnr_final),
                ))
    return cells


def format_report(cells: list[DeltaPSNRCell]) -> str:
    """Table IV layout: delta PSNR per (dataset, scheme, TVE)."""
    rows = []
    for c in cells:
        rows.append([
            c.dataset, f"DPZ-{c.scheme}", f"{c.nines}-nine",
            f"{c.psnr_stage12:8.2f}", f"{c.psnr_final:8.2f}",
            f"{c.delta:7.3f}",
        ])
    return format_table(
        ["dataset", "scheme", "TVE", "PSNR s1&2", "PSNR final",
         "delta dB"],
        rows,
        title="Table IV analogue -- accuracy loss between stages",
    )
