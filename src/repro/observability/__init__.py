"""Observability: tracing, typed metrics, quality telemetry, run registry.

Four layers, all sharing one switch (install a tracer -> everything is
live; otherwise **zero overhead**):

* :class:`Tracer` / :func:`span` -- structured span events (stage
  name, wall time, bytes in/out, metadata) threaded through
  ``DPZCompressor``, the SZ/ZFP baselines, the Huffman/zlib codec
  layer and ``parallel_map``.
* :mod:`repro.observability.metrics` -- a thread-safe typed registry
  of counters, gauges and fixed-bucket log-scale histograms with a
  JSON snapshot and Prometheus text exposition
  (:func:`metrics_snapshot`, :func:`render_prometheus`).  The legacy
  :func:`counter_add` / :func:`counters_snapshot` are shims over it.
* :mod:`repro.observability.quality` -- opt-in Z-checker-style quality
  telemetry (:func:`use_quality`): per-run PSNR / max & mean error /
  CR / bit-rate / TVE on a deterministic sampled slab, recorded as
  gauges and span metadata so one trace is a complete rate-distortion
  data point.
* :mod:`repro.observability.runlog` -- a persistent run registry:
  every traced run appends one NDJSON provenance record to
  ``runs.ndjson`` (``dpz runs list/show/diff``), and
  :mod:`repro.observability.flamegraph` exports self-contained
  flamegraph HTML from span trees (``dpz trace --flamegraph``).

On top of those, the telemetry plane added for live operation:

* :mod:`repro.observability.aggregate` -- worker-telemetry frames:
  pooled ``parallel_map`` tasks capture their metric emissions into a
  private registry and ship one compact snapshot back for an exact
  parent-side merge, so counter totals are ``n_jobs``-invariant.
* :mod:`repro.observability.server` -- a stdlib threaded HTTP endpoint
  (``/metrics`` Prometheus text, ``/metrics.json``, ``/healthz``,
  ``/runs``) started by ``dpz top --listen`` or ``$DPZ_METRICS_PORT``.
* :mod:`repro.observability.profiler` -- a wall-clock sampling
  profiler over the tracer's live span stacks, rendered through the
  flamegraph exporter (``dpz trace --profile``).
* :mod:`repro.observability.top` -- the ``dpz top`` dashboard
  renderer (pure snapshot -> text).

Typical use::

    from repro.observability import Tracer, use_tracer, use_quality

    tracer = Tracer()
    with use_tracer(tracer), use_quality():
        blob = repro.dpz_compress(field)
    print(trace_summary(tracer, prefix="dpz."))
    print(metrics_snapshot()["gauges"]["quality.psnr_db"])
"""

from repro.observability.aggregate import (
    capture_worker,
    merge_frame,
    merge_frames,
    snapshot_frame,
    worker_origin,
)
from repro.observability.counters import (
    counter_add,
    counters_reset,
    counters_snapshot,
)
from repro.observability.emit import (
    load_trace,
    spans_to_ndjson,
    trace_diff,
    trace_summary,
    write_ndjson,
)
from repro.observability.flamegraph import (
    fold_spans,
    folded_to_text,
    render_html,
    write_flamegraph,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_inc,
    gauge_add,
    gauge_set,
    get_registry,
    metrics_enabled,
    metrics_reset,
    metrics_snapshot,
    observe,
    render_prometheus,
)
from repro.observability.profiler import (
    SamplingProfiler,
    use_profiler,
)
from repro.observability.quality import (
    QualityConfig,
    quality_enabled,
    record_quality,
    set_quality,
    use_quality,
)
from repro.observability.runlog import (
    append_record,
    build_record,
    config_digest,
    diff_runs,
    find_run,
    format_run_table,
    load_runs,
    resolve_runlog,
)
from repro.observability.tracer import (
    Span,
    Tracer,
    current_span,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    # tracer
    "Span",
    "Tracer",
    "span",
    "current_span",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "tracing_enabled",
    # metrics registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "counter_inc",
    "gauge_set",
    "gauge_add",
    "observe",
    "metrics_snapshot",
    "metrics_reset",
    "render_prometheus",
    "metrics_enabled",
    # legacy counter shims
    "counter_add",
    "counters_snapshot",
    "counters_reset",
    # quality telemetry
    "QualityConfig",
    "quality_enabled",
    "set_quality",
    "use_quality",
    "record_quality",
    # emit / traces
    "spans_to_ndjson",
    "write_ndjson",
    "trace_summary",
    "load_trace",
    "trace_diff",
    # run registry
    "build_record",
    "append_record",
    "load_runs",
    "find_run",
    "format_run_table",
    "diff_runs",
    "config_digest",
    "resolve_runlog",
    # flamegraph
    "fold_spans",
    "folded_to_text",
    "render_html",
    "write_flamegraph",
    # worker telemetry aggregation
    "capture_worker",
    "snapshot_frame",
    "merge_frame",
    "merge_frames",
    "worker_origin",
    # telemetry endpoint (lazy -- see __getattr__)
    "TelemetryServer",
    "start_server",
    "maybe_start_from_env",
    # sampling profiler
    "SamplingProfiler",
    "use_profiler",
    # dashboard (lazy -- see __getattr__)
    "Dashboard",
]

#: Lazily-resolved exports (PEP 562).  The telemetry server pulls in
#: ``http.server`` and the dashboard is CLI-only; importing the package
#: -- which every compress does -- must not pay for either.
_LAZY = {
    "TelemetryServer": "repro.observability.server",
    "start_server": "repro.observability.server",
    "maybe_start_from_env": "repro.observability.server",
    "Dashboard": "repro.observability.top",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module 'repro.observability' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
