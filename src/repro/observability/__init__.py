"""Stage-level observability: tracing, counters, trace emission.

The subsystem the performance experiments stand on:

* :class:`Tracer` / :func:`span` -- structured span events (stage
  name, wall time, bytes in/out, metadata) with **zero overhead when
  disabled**; threaded through ``DPZCompressor``, the SZ/ZFP
  baselines, the Huffman/zlib codec layer and ``parallel_map``.
* :func:`counter_add` / :func:`counters_snapshot` -- process-wide
  counters of work done (bytes through zlib, symbols through Huffman,
  chunks through the thread pool).
* :func:`write_ndjson` / :func:`trace_summary` -- NDJSON trace files
  (``dpz trace``) and the JSON digests ``benchmarks/run_bench.py``
  stores in ``BENCH_*.json``.

Typical use::

    from repro.observability import Tracer, use_tracer, trace_summary

    tracer = Tracer()
    with use_tracer(tracer):
        blob = repro.dpz_compress(field)
    print(trace_summary(tracer, prefix="dpz."))
"""

from repro.observability.counters import (
    counter_add,
    counters_reset,
    counters_snapshot,
)
from repro.observability.emit import spans_to_ndjson, trace_summary, write_ndjson
from repro.observability.tracer import (
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "span",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "tracing_enabled",
    "counter_add",
    "counters_snapshot",
    "counters_reset",
    "spans_to_ndjson",
    "write_ndjson",
    "trace_summary",
]
