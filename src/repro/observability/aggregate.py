"""Worker telemetry aggregation: snapshot frames and exact merges.

The metric registry and the tracer are process-global, which is fine
until work fans out: a pooled :func:`~repro.parallel.executor
.parallel_map` task that emits ``store.chunks.compressed`` or observes
``store.chunk.compress.seconds`` must not race dozens of siblings on
shared series -- and in a *process* pool those emissions would die with
the worker outright.  This module is the boundary protocol:

1. each task runs under a private task-local
   :class:`~repro.observability.metrics.MetricsRegistry`
   (:func:`capture_worker` installs it via the thread-local override in
   :mod:`repro.observability.metrics`);
2. when the task finishes, :func:`snapshot_frame` reduces that registry
   to a compact JSON-ready **worker-telemetry frame** (schema in
   FORMATS.md) that ships back with the task's result -- it crosses a
   thread boundary today and would pickle across a process boundary
   unchanged;
3. the parent calls :func:`merge_frame`, which folds the frame into the
   default registry: **exact** for counters (totals are n_jobs-
   invariant), **bucket-wise exact** for histograms whose bounds match
   (they always do between equal-version processes -- bounds are a pure
   function of the constructor arguments), last-write-wins for gauges.

A task that raises never reaches step 2, so a failed worker merges
nothing and cannot poison the parent's series.  Bounds mismatches
(e.g. a histogram created with different ``lo``/``hi`` on either side)
degrade to re-observing each bucket's geometric midpoint and are
counted in ``worker.merge.lossy`` -- degraded, visible, never wrong by
more than one bucket width.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.observability.metrics import (
    Histogram,
    MetricsRegistry,
    get_registry,
    use_local_registry,
)

__all__ = [
    "WORKER_FRAME",
    "WORKER_FRAME_VERSION",
    "capture_worker",
    "snapshot_frame",
    "merge_frame",
    "merge_frames",
    "worker_origin",
]

#: Frame discriminator / version (FORMATS.md "Worker-telemetry frame").
WORKER_FRAME = "dpz-worker-telemetry"
WORKER_FRAME_VERSION = 1


def worker_origin() -> str:
    """An origin label for the calling worker thread.

    Pool threads are named ``repro-parallel_<n>``; the trailing integer
    becomes ``worker.<n>``.  Threads without a parseable slot (nested
    transient pools, bare threads) fall back to a stable
    ``worker.t<ident>`` label.
    """
    name = threading.current_thread().name
    slot = name.rsplit("_", 1)[-1]
    if slot.isdigit():
        return f"worker.{slot}"
    return f"worker.t{threading.get_ident() % 10000}"


@contextmanager
def capture_worker() -> Iterator[MetricsRegistry]:
    """Run the enclosed task under a fresh private registry.

    Yields the registry; pass it to :func:`snapshot_frame` after the
    task body succeeds.  On an exception the registry simply goes out
    of scope -- nothing is merged.
    """
    with use_local_registry(MetricsRegistry()) as local:
        yield local


def snapshot_frame(registry: MetricsRegistry, *,
                   origin: str | None = None) -> dict:
    """Reduce a task-local registry to one compact, JSON-ready frame.

    Zero-valued counters and empty histograms are dropped (a frame for
    a task that emitted nothing is just the envelope).  Histograms
    carry their full bucket layout (``lo``/``hi``/``buckets_per_decade``
    plus raw counts) so the receiving side can verify bounds and merge
    bucket-for-bucket.
    """
    snap = registry.snapshot()
    frame: dict = {
        "frame": WORKER_FRAME,
        "version": WORKER_FRAME_VERSION,
        "origin": origin if origin is not None else worker_origin(),
    }
    counters = {n: v for n, v in snap["counters"].items() if v}
    if counters:
        frame["counters"] = counters
    if snap["gauges"]:
        frame["gauges"] = dict(snap["gauges"])
    histograms = {}
    for name, rec in snap["histograms"].items():
        if not rec["count"]:
            continue
        histograms[name] = {
            "lo": rec["lo"], "hi": rec["hi"],
            "buckets_per_decade": rec["buckets_per_decade"],
            "counts": rec["counts"],
            "count": rec["count"],
            "sum": rec["sum"],
            "min": rec.get("min"),
            "max": rec.get("max"),
        }
    if histograms:
        frame["histograms"] = histograms
    return frame


def _merge_lossy(hist: Histogram, rec: dict) -> None:
    """Bounds mismatch fallback: re-observe bucket geometric midpoints.

    Each source observation lands within one source bucket width of its
    true value; totals (``count``) stay exact, ``sum`` is re-derived
    from the midpoints.
    """
    lo = float(rec["lo"])
    bpd = int(rec["buckets_per_decade"])
    hi = float(rec["hi"])
    counts = rec["counts"]
    step = 10.0 ** (1.0 / bpd)
    for i, c in enumerate(counts):
        if not c:
            continue
        if i == 0:
            mid = lo
        elif i == len(counts) - 1:
            mid = hi
        else:
            lo_edge = lo * step ** (i - 1)
            mid = lo_edge * math.sqrt(step)
        for _ in range(int(c)):
            hist.observe(mid)


def merge_frame(frame: dict, *,
                into: MetricsRegistry | None = None) -> dict:
    """Fold one worker-telemetry frame into ``into`` (default registry).

    Returns a small merge report ``{"origin", "counters", "gauges",
    "histograms", "lossy"}`` (series counts, not values) that callers
    attach to their span metadata.  Unknown frame versions raise
    ``ValueError`` -- the executor and any future RPC layer ship
    frames produced by this very module, so a mismatch is a bug, not
    an input condition.
    """
    if frame.get("frame") != WORKER_FRAME:
        raise ValueError(f"not a worker-telemetry frame: "
                         f"{frame.get('frame')!r}")
    if frame.get("version") != WORKER_FRAME_VERSION:
        raise ValueError(f"unsupported worker-telemetry frame version "
                         f"{frame.get('version')!r}")
    registry = get_registry() if into is None else into
    lossy = 0
    counters = frame.get("counters", {})
    for name, value in counters.items():
        registry.counter(name).add(value)
    gauges = frame.get("gauges", {})
    for name, value in gauges.items():
        registry.gauge(name).set(float(value))
    histograms = frame.get("histograms", {})
    for name, rec in histograms.items():
        hist = registry.histogram(
            name, lo=float(rec["lo"]), hi=float(rec["hi"]),
            buckets_per_decade=int(rec["buckets_per_decade"]))
        if hist.bounds_signature() == (float(rec["lo"]), float(rec["hi"]),
                                       int(rec["buckets_per_decade"])):
            hist.merge_binned(rec["counts"], rec["count"], rec["sum"],
                              rec.get("min"), rec.get("max"))
        else:
            _merge_lossy(hist, rec)
            lossy += 1
    registry.counter("worker.snapshots.merged").add(1)
    if lossy:
        registry.counter("worker.merge.lossy").add(lossy)
    return {
        "origin": frame.get("origin", "worker.?"),
        "counters": len(counters),
        "gauges": len(gauges),
        "histograms": len(histograms),
        "lossy": lossy,
    }


def merge_frames(frames: Iterable[dict | None], *,
                 into: MetricsRegistry | None = None) -> int:
    """Merge an iterable of frames; returns how many were merged.

    ``None`` entries (tasks that produced no frame) are skipped, so the
    caller can pass a result list positionally aligned with its tasks.
    """
    merged = 0
    for frame in frames:
        if frame is None:
            continue
        merge_frame(frame, into=into)
        merged += 1
    return merged
