"""Central catalog of every metric name the codebase may emit.

The metrics registry itself is name-agnostic: ``counter_inc("tpyo")``
happily creates a fresh, silently-empty series.  This module is the
checked namespace that prevents that -- the ``dpz lint`` rule DPZ401
verifies every literal metric name at an emission site
(``counter_inc`` / ``counter_add`` / ``gauge_set`` / ``gauge_add`` /
``observe`` / ``registry.counter|gauge|histogram``) appears below.

Adding a metric is a two-line change: emit it, and list it here (pick
the set matching its type).  Dynamically-suffixed families register a
prefix in :data:`METRIC_PREFIXES` instead.
"""

from __future__ import annotations

__all__ = ["COUNTERS", "GAUGES", "HISTOGRAMS", "METRIC_NAMES",
           "METRIC_PREFIXES"]

#: Monotonic counters.
COUNTERS: frozenset[str] = frozenset({
    "dpz.compress.runs",
    "dpz.compress.bytes_in",
    "dpz.compress.bytes_out",
    "dpz.decompress.runs",
    "dpz.decompress.bytes_in",
    "dpz.decompress.bytes_out",
    "huffman.encode.symbols",
    "huffman.encode.bytes_out",
    "huffman.decode.symbols",
    "parallel.maps",
    "parallel.chunks",
    "parallel.map.bypassed",
    "parallel.pool.created",
    "parallel.pool.reused",
    "parallel.pool.nested",
    "pca.solver.dense",
    "pca.solver.randomized",
    "pca.solver.fallbacks",
    "pca.solver.regrows",
    "profiler.samples",
    "quality.runs",
    "serve.bytes.sent",
    "serve.coalesce.hits",
    "serve.coalesce.waits",
    "serve.errors",
    "serve.requests",
    "serve.shed",
    "server.errors",
    "server.requests",
    "store.auto.fallbacks",
    "store.auto.trials",
    "store.backend.reads",
    "store.backend.writes",
    "store.basis.fits",
    "store.basis.refits",
    "store.basis.reuses",
    "store.bytes.decoded",
    "store.bytes.read",
    "store.cache.evictions",
    "store.cache.hits",
    "store.cache.invalidations",
    "store.cache.misses",
    "store.chunks.compressed",
    "store.chunks.decoded",
    "store.faults.injected",
    "store.fields.packed",
    "store.paste.fastpath",
    "store.region.reads",
    "sz.compress.runs",
    "sz.compress.bytes_in",
    "sz.compress.bytes_out",
    "sz.decompress.runs",
    "sz.decompress.bytes_in",
    "zfp.compress.runs",
    "zfp.compress.bytes_in",
    "zfp.compress.bytes_out",
    "zfp.decompress.runs",
    "zfp.decompress.bytes_in",
    "zlib.compress.calls",
    "zlib.compress.bytes_in",
    "zlib.compress.bytes_out",
    "zlib.compress.stored_raw",
    "worker.merge.lossy",
    "worker.snapshots.merged",
    "zlib.decompress.calls",
    "zlib.decompress.bytes_in",
})

#: Last-value gauges.
GAUGES: frozenset[str] = frozenset({
    "dpz.last.cr",
    "dpz.last.k",
    "parallel.pool.size",
    "parallel.queue.depth",
    "serve.queue.depth",
    "store.cache.bytes",
    "store.last.amplification",
    "sz.last.cr",
    "zfp.last.cr",
})

#: Fixed-bucket log-scale histograms.
HISTOGRAMS: frozenset[str] = frozenset({
    "dpz.compress.seconds",
    "dpz.decompress.seconds",
    "huffman.encode.symbols_per_call",
    "huffman.decode.symbols_per_call",
    "parallel.chunk.seconds",
    "serve.request.seconds",
    "store.chunk.compress.seconds",
    "store.region.seconds",
    "sz.compress.seconds",
    "sz.decompress.seconds",
    "zfp.compress.seconds",
    "zfp.decompress.seconds",
    "zlib.compress.frame_bytes",
    "zlib.compress.ratio",
})

#: Every registered exact metric name.
METRIC_NAMES: frozenset[str] = COUNTERS | GAUGES | HISTOGRAMS

#: Registered prefixes for dynamically-suffixed metric families.
#: ``quality.*`` carries the Z-checker-style telemetry keys (psnr_db,
#: max_abs_err, ... -- see repro.observability.quality).
METRIC_PREFIXES: frozenset[str] = frozenset({
    "quality.",
})
