"""Process-wide performance counters (compat shims).

Historically this module owned its own ``dict``-based counter store;
it is now a thin facade over the typed metric registry in
:mod:`repro.observability.metrics` -- ``counter_add`` writes the same
:class:`~repro.observability.metrics.Counter` objects that gauges and
histograms live next to, so one snapshot / one Prometheus exposition
covers everything.  The three original functions keep their exact
signatures and semantics:

* :func:`counter_add` is gated on the tracing switch (zero overhead
  when observability is off: a global load, a ``None`` test, a
  return);
* :func:`counters_snapshot` returns the counter values only, sorted by
  name -- gauges and histograms are reported by
  :func:`repro.observability.metrics.metrics_snapshot`;
* :func:`counters_reset` zeroes counters only.

>>> from repro.observability import counters_snapshot, Tracer, use_tracer
>>> with use_tracer(Tracer()):
...     repro.dpz_compress(field)
>>> counters_snapshot()["zlib.compress.bytes_in"]   # doctest: +SKIP
1048576
"""

from __future__ import annotations

from repro.observability import metrics as _metrics
from repro.observability import tracer as _tracer

__all__ = ["counter_add", "counters_snapshot", "counters_reset"]


def counter_add(name: str, value: int = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op when tracing is off).

    Routes through the *active* registry so worker-telemetry capture
    (:mod:`repro.observability.aggregate`) sees legacy emitters too.
    """
    if _tracer._ACTIVE is None:
        return
    _metrics.get_active_registry().counter(name).add(value)


def counters_snapshot() -> dict[str, int]:
    """Copy of all counter values, sorted by name."""
    snap = _metrics.get_registry().snapshot()["counters"]
    return {name: value for name, value in snap.items() if value}


def counters_reset() -> None:
    """Zero every counter (typically paired with a fresh Tracer)."""
    _metrics.get_registry().reset(kinds=("counter",))
