"""Process-wide performance counters.

Monotonic named counters for quantities that are cheap to accumulate
but expensive to recompute -- bytes through the zlib framing layer,
Huffman symbols coded, parallel chunks dispatched.  Counters complement
spans: a span tells you *where time went* in one run, counters tell you
*how much work* the process has done across runs.

Counting is gated on the same switch as tracing
(:func:`repro.observability.tracer.tracing_enabled`), so the
instrumented hot paths stay at zero overhead when observability is off:
:func:`counter_add` is then a global load, a ``None`` test and a
return.

>>> from repro.observability import counters_snapshot, Tracer, use_tracer
>>> with use_tracer(Tracer()):
...     repro.dpz_compress(field)
>>> counters_snapshot()["zlib.compress.bytes_in"]   # doctest: +SKIP
1048576
"""

from __future__ import annotations

import threading

from repro.observability import tracer as _tracer

__all__ = ["counter_add", "counters_snapshot", "counters_reset"]

_LOCK = threading.Lock()
_COUNTERS: dict[str, int] = {}


def counter_add(name: str, value: int = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op when tracing is off)."""
    if _tracer._ACTIVE is None:
        return
    with _LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + int(value)


def counters_snapshot() -> dict[str, int]:
    """Copy of all counters, sorted by name."""
    with _LOCK:
        return dict(sorted(_COUNTERS.items()))


def counters_reset() -> None:
    """Zero every counter (typically paired with a fresh Tracer)."""
    with _LOCK:
        _COUNTERS.clear()
