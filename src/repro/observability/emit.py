"""Render traces and counters as NDJSON / JSON; load and diff traces.

NDJSON (one JSON object per line) is the trace interchange format: it
streams, ``grep``s, and loads into any dataframe library.  A trace file
contains one ``{"event": "meta", ...}`` header line, one
``{"event": "span", ...}`` line per finished span (in completion
order), a ``{"event": "counters", ...}`` line when any counters fired,
and a final ``{"event": "metrics", ...}`` line carrying the gauge /
histogram snapshot when any exist.

:func:`trace_summary` folds a tracer's spans into the JSON shape the
bench harness stores in ``BENCH_*.json``: per-stage seconds and shares
plus total bytes moved.  :func:`load_trace` reads a trace file back,
and :func:`trace_diff` renders the per-stage regression triage behind
``dpz trace --diff A.ndjson B.ndjson``.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.observability.counters import counters_snapshot
from repro.observability.metrics import metrics_snapshot
from repro.observability.tracer import Span, Tracer

__all__ = ["spans_to_ndjson", "write_ndjson", "trace_summary",
           "load_trace", "trace_diff"]


def spans_to_ndjson(spans: Iterable[Span], *,
                    meta: dict | None = None,
                    counters: dict[str, int] | None = None,
                    metrics: dict | None = None) -> str:
    """Serialize spans (plus optional header/counters/metrics) as NDJSON."""
    lines = []
    header = {"event": "meta", "format": "repro-trace", "version": 1}
    if meta:
        header.update(meta)
    lines.append(json.dumps(header, sort_keys=True))
    for s in spans:
        rec = {"event": "span"}
        rec.update(s.to_dict())
        lines.append(json.dumps(rec, sort_keys=True))
    if counters is None:
        counters = counters_snapshot()
    if counters:
        lines.append(json.dumps(
            {"event": "counters", **counters}, sort_keys=True))
    if metrics is None:
        snap = metrics_snapshot()
        metrics = {k: v for k, v in snap.items()
                   if k in ("gauges", "histograms") and v}
    if metrics:
        lines.append(json.dumps(
            {"event": "metrics", **metrics}, sort_keys=True))
    return "\n".join(lines) + "\n"


def write_ndjson(tracer: Tracer, fh_or_path: IO[str] | str, *,
                 meta: dict | None = None) -> int:
    """Write a tracer's spans as NDJSON; returns the span count."""
    spans = tracer.spans
    text = spans_to_ndjson(spans, meta=meta)
    if hasattr(fh_or_path, "write"):
        fh_or_path.write(text)
    else:
        with open(fh_or_path, "w") as fh:
            fh.write(text)
    return len(spans)


def trace_summary(tracer: Tracer, prefix: str = "") -> dict:
    """JSON-ready digest of one traced run.

    Returns ``{"stage_times_s", "stage_shares", "total_s",
    "bytes_in", "bytes_out", "n_spans"}`` where the stage maps cover
    top-level spans matching ``prefix`` (see
    :meth:`Tracer.stage_times`).
    """
    times = tracer.stage_times(prefix)
    shares = tracer.stage_shares(prefix)
    spans = [s for s in tracer.spans if s.name.startswith(prefix)]
    return {
        "stage_times_s": {k: round(v, 6) for k, v in times.items()},
        "stage_shares": {k: round(v, 4) for k, v in shares.items()},
        "total_s": round(sum(times.values()), 6),
        "bytes_in": sum(s.bytes_in or 0 for s in spans),
        "bytes_out": sum(s.bytes_out or 0 for s in spans),
        "n_spans": len(spans),
    }


def load_trace(path_or_fh: str | IO[str]) -> dict:
    """Read a trace NDJSON file back into parts.

    Returns ``{"meta", "spans", "counters", "metrics"}`` where
    ``spans`` is a list of plain span dicts.  Raises
    :class:`~repro.errors.FormatError` when the file is not a
    repro-trace.
    """
    from repro.errors import FormatError

    if hasattr(path_or_fh, "read"):
        text = path_or_fh.read()
    else:
        with open(path_or_fh) as fh:
            text = fh.read()
    out: dict = {"meta": {}, "spans": [], "counters": {}, "metrics": {}}
    first = True
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise FormatError(f"not a trace file: bad JSON line "
                              f"({exc})") from exc
        event = rec.pop("event", None)
        if first:
            if event != "meta" or rec.get("format") != "repro-trace":
                raise FormatError(
                    "not a repro-trace file (missing meta header)")
            out["meta"] = rec
            first = False
        elif event == "span":
            out["spans"].append(rec)
        elif event == "counters":
            out["counters"] = rec
        elif event == "metrics":
            out["metrics"] = rec
    if first:
        raise FormatError("empty trace file")
    return out


def _stage_times_from_records(spans: list[dict],
                              prefix: str = "dpz.") -> dict[str, float]:
    """Per-name total seconds over minimum-depth records (mirrors
    :meth:`Tracer.stage_times`)."""
    matching = [s for s in spans
                if str(s.get("name", "")).startswith(prefix)]
    if not matching:
        return {}
    dmin = min(int(s.get("depth", 0)) for s in matching)
    out: dict[str, float] = {}
    for s in matching:
        if int(s.get("depth", 0)) == dmin:
            name = s["name"]
            out[name] = out.get(name, 0.0) + float(s.get("dur", 0.0))
    return out


def trace_diff(path_a: str, path_b: str, *,
               prefix: str = "dpz.") -> str:
    """Per-stage wall-time diff of two trace files (regression triage).

    Stages are aggregated exactly like :meth:`Tracer.stage_times`, so
    the numbers line up with ``trace_summary`` and the bench records.
    """
    a, b = load_trace(path_a), load_trace(path_b)
    ta = _stage_times_from_records(a["spans"], prefix)
    tb = _stage_times_from_records(b["spans"], prefix)
    tot_a, tot_b = sum(ta.values()), sum(tb.values())
    lines = [f"A: {path_a}  ({a['meta'].get('dataset', '?')}, "
             f"{len(a['spans'])} spans)",
             f"B: {path_b}  ({b['meta'].get('dataset', '?')}, "
             f"{len(b['spans'])} spans)",
             f"{'stage':<22s} {'A ms':>10s} {'B ms':>10s} "
             f"{'delta':>8s}  {'A share':>8s} {'B share':>8s}"]
    for stage in sorted(set(ta) | set(tb)):
        va, vb = ta.get(stage, 0.0), tb.get(stage, 0.0)
        delta = f"{(vb - va) / va:+.1%}" if va > 0 else "new"
        sh_a = f"{va / tot_a:7.1%}" if tot_a > 0 else "      -"
        sh_b = f"{vb / tot_b:7.1%}" if tot_b > 0 else "      -"
        lines.append(f"{stage:<22s} {va * 1e3:>10.2f} {vb * 1e3:>10.2f} "
                     f"{delta:>8s}  {sh_a:>8s} {sh_b:>8s}")
    delta_tot = f"{(tot_b - tot_a) / tot_a:+.1%}" if tot_a > 0 else "n/a"
    lines.append(f"{'total':<22s} {tot_a * 1e3:>10.2f} "
                 f"{tot_b * 1e3:>10.2f} {delta_tot:>8s}")
    return "\n".join(lines)
