"""Render traces and counters as NDJSON / JSON.

NDJSON (one JSON object per line) is the trace interchange format: it
streams, ``grep``s, and loads into any dataframe library.  A trace file
contains one ``{"event": "meta", ...}`` header line, one
``{"event": "span", ...}`` line per finished span (in completion
order), and a final ``{"event": "counters", ...}`` line when any
counters fired.

:func:`trace_summary` folds a tracer's spans into the JSON shape the
bench harness stores in ``BENCH_*.json``: per-stage seconds and shares
plus total bytes moved.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.observability.counters import counters_snapshot
from repro.observability.tracer import Span, Tracer

__all__ = ["spans_to_ndjson", "write_ndjson", "trace_summary"]


def spans_to_ndjson(spans: Iterable[Span], *,
                    meta: dict | None = None,
                    counters: dict[str, int] | None = None) -> str:
    """Serialize spans (plus optional header/counters) as NDJSON text."""
    lines = []
    header = {"event": "meta", "format": "repro-trace", "version": 1}
    if meta:
        header.update(meta)
    lines.append(json.dumps(header, sort_keys=True))
    for s in spans:
        rec = {"event": "span"}
        rec.update(s.to_dict())
        lines.append(json.dumps(rec, sort_keys=True))
    if counters is None:
        counters = counters_snapshot()
    if counters:
        lines.append(json.dumps(
            {"event": "counters", **counters}, sort_keys=True))
    return "\n".join(lines) + "\n"


def write_ndjson(tracer: Tracer, fh_or_path: IO[str] | str, *,
                 meta: dict | None = None) -> int:
    """Write a tracer's spans as NDJSON; returns the span count."""
    spans = tracer.spans
    text = spans_to_ndjson(spans, meta=meta)
    if hasattr(fh_or_path, "write"):
        fh_or_path.write(text)
    else:
        with open(fh_or_path, "w") as fh:
            fh.write(text)
    return len(spans)


def trace_summary(tracer: Tracer, prefix: str = "") -> dict:
    """JSON-ready digest of one traced run.

    Returns ``{"stage_times_s", "stage_shares", "total_s",
    "bytes_in", "bytes_out", "n_spans"}`` where the stage maps cover
    top-level spans matching ``prefix`` (see
    :meth:`Tracer.stage_times`).
    """
    times = tracer.stage_times(prefix)
    shares = tracer.stage_shares(prefix)
    spans = [s for s in tracer.spans if s.name.startswith(prefix)]
    return {
        "stage_times_s": {k: round(v, 6) for k, v in times.items()},
        "stage_shares": {k: round(v, 4) for k, v in shares.items()},
        "total_s": round(sum(times.values()), 6),
        "bytes_in": sum(s.bytes_in or 0 for s in spans),
        "bytes_out": sum(s.bytes_out or 0 for s in spans),
        "n_spans": len(spans),
    }
