"""Folded-stack flamegraphs from span trees.

Turns one trace (live :class:`Tracer` spans or NDJSON span records)
into

* **folded stacks** -- the ``parent;child;leaf <microseconds>`` text
  format every flamegraph toolchain understands, with one line per
  unique stack and *self time* (span duration minus child durations)
  as the value, and
* a **self-contained HTML flamegraph** -- a single file with the span
  tree embedded as JSON and a dependency-free renderer (hover for
  exact timings, click to zoom, zero network access), so ``dpz trace
  --flamegraph out.html`` produces an artifact CI can upload and
  anyone can open.

Spans recorded from worker threads have no parent in the main-thread
stack (parent linkage is per-thread by design), so they surface as
additional roots -- the graph then shows per-thread towers side by
side, which is exactly what you want when diagnosing pool skew.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Mapping

from repro.observability.tracer import Span, Tracer

__all__ = [
    "fold_spans",
    "folded_to_text",
    "render_html",
    "write_flamegraph",
]


def _as_record(s) -> dict:
    if isinstance(s, Span):
        return {"name": s.name, "dur": s.dur, "span_id": s.span_id,
                "parent_id": s.parent_id}
    if isinstance(s, Mapping):
        return {"name": s.get("name", "?"), "dur": float(s.get("dur", 0.0)),
                "span_id": s.get("span_id"), "parent_id": s.get("parent_id")}
    raise TypeError(f"cannot fold {type(s).__name__}")


def _build_tree(spans: Iterable) -> list[dict]:
    """Span records -> forest of ``{name, dur, self, children}`` nodes."""
    records = [_as_record(s) for s in spans]
    nodes = {r["span_id"]: {"name": r["name"], "dur": r["dur"],
                            "children": []}
             for r in records if r["span_id"] is not None}
    roots: list[dict] = []
    for r in records:
        node = nodes.get(r["span_id"])
        if node is None:
            continue
        parent = nodes.get(r["parent_id"])
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    def finish(node: dict) -> None:
        child_total = sum(c["dur"] for c in node["children"])
        node["self"] = max(node["dur"] - child_total, 0.0)
        for c in node["children"]:
            finish(c)
    for root in roots:
        finish(root)
    return roots


def fold_spans(spans: Iterable) -> dict[str, float]:
    """Collapse a trace into ``{"a;b;c": self_seconds}`` folded stacks."""
    folded: dict[str, float] = {}

    def walk(node: dict, prefix: str) -> None:
        path = f"{prefix};{node['name']}" if prefix else node["name"]
        if node["self"] > 0.0:
            folded[path] = folded.get(path, 0.0) + node["self"]
        for child in node["children"]:
            walk(child, path)

    for root in _build_tree(spans):
        walk(root, "")
    return folded


def folded_to_text(folded: Mapping[str, float]) -> str:
    """Folded stacks as text, one ``stack <microseconds>`` per line."""
    lines = [f"{path} {max(int(round(v * 1e6)), 1)}"
             for path, v in sorted(folded.items())]
    return "\n".join(lines) + ("\n" if lines else "")


_HTML_TEMPLATE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>__TITLE__</title>
<style>
 body { margin: 0; font: 12px/1.4 system-ui, sans-serif; background: #fff; }
 h1 { font-size: 14px; margin: 10px 12px 2px; }
 #hint { color: #666; margin: 0 12px 8px; }
 #fg { position: relative; margin: 0 12px 12px; }
 .frame { position: absolute; height: 17px; box-sizing: border-box;
   overflow: hidden; white-space: nowrap; text-overflow: ellipsis;
   border: 1px solid #fff; border-radius: 2px; padding: 0 3px;
   cursor: pointer; color: #222; }
 .frame:hover { filter: brightness(0.9); }
</style></head><body>
<h1>__TITLE__</h1>
<p id="hint">click a frame to zoom &middot; click the root to reset</p>
<div id="fg"></div>
<script>
var DATA = __DATA__;
var ROW = 18, fg = document.getElementById("fg");
var root = {name: "all", dur: 0, self: 0, children: DATA};
DATA.forEach(function (n) { root.dur += n.dur; });
function depth(n) { return 1 + Math.max.apply(null,
  [0].concat(n.children.map(depth))); }
function color(name) {
  var h = 0;
  for (var i = 0; i < name.length; i++) h = (h * 31 + name.charCodeAt(i)) | 0;
  return "hsl(" + (20 + (Math.abs(h) % 40)) + ",70%," +
         (62 + (Math.abs(h >> 8) % 18)) + "%)";
}
function fmt(s) {
  return s >= 1 ? s.toFixed(3) + " s" : (s * 1e3).toFixed(2) + " ms";
}
function render(zoom) {
  fg.innerHTML = "";
  fg.style.height = (depth(zoom) * ROW + 4) + "px";
  var total = zoom.dur || 1;
  function draw(node, x0, x1, row) {
    if ((x1 - x0) * fg.clientWidth < 1) return;
    var div = document.createElement("div");
    div.className = "frame";
    div.style.left = (100 * x0) + "%";
    div.style.width = (100 * (x1 - x0)) + "%";
    div.style.top = (row * ROW) + "px";
    div.style.background = node === root ? "#ddd" : color(node.name);
    div.textContent = node.name;
    div.title = node.name + " — " + fmt(node.dur) + " (" +
      (100 * node.dur / (root.dur || 1)).toFixed(1) + "% of trace)";
    div.onclick = function () { render(node === zoom ? root : node); };
    fg.appendChild(div);
    var childSum = node.children.reduce(function (a, c) {
      return a + c.dur; }, 0);
    var scale = (x1 - x0) / Math.max(node.dur, childSum, 1e-12);
    var x = x0;
    node.children.forEach(function (c) {
      draw(c, x, x + c.dur * scale, row + 1);
      x += c.dur * scale;
    });
  }
  draw(zoom === root ? root : zoom, 0, 1, 0);
}
render(root);
window.addEventListener("resize", function () { render(root); });
</script></body></html>
"""


def _strip(node: dict) -> dict:
    return {"name": node["name"], "dur": round(node["dur"], 9),
            "self": round(node["self"], 9),
            "children": [_strip(c) for c in node["children"]]}


def render_html(spans: Iterable, title: str = "repro trace") -> str:
    """Self-contained flamegraph HTML for one trace."""
    forest = [_strip(n) for n in _build_tree(spans)]
    return (_HTML_TEMPLATE
            .replace("__TITLE__", title)
            .replace("__DATA__", json.dumps(forest)))


def write_flamegraph(tracer_or_spans, path_or_fh: str | IO[str], *,
                     title: str = "repro trace") -> int:
    """Write the flamegraph HTML; returns the number of root frames."""
    spans = (tracer_or_spans.spans if isinstance(tracer_or_spans, Tracer)
             else list(tracer_or_spans))
    html = render_html(spans, title=title)
    if hasattr(path_or_fh, "write"):
        path_or_fh.write(html)
    else:
        with open(path_or_fh, "w") as fh:
            fh.write(html)
    return sum(1 for s in spans
               if _as_record(s)["parent_id"] is None)
