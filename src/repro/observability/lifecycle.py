"""Shared server-lifecycle plumbing: bind, one-line errors, drain.

Two listeners live in this codebase -- the threaded telemetry endpoint
(:mod:`repro.observability.server`) and the asyncio region-retrieval
service (:mod:`repro.serve.app`) -- and both need the same three
things:

* **Binding** a TCP port or a unix socket, where every operator-level
  failure (port taken, privileged port, stale socket path owned by a
  live process) surfaces as a one-line
  :class:`~repro.errors.ConfigError`, never a socket traceback.
* **Tracking in-flight requests** so shutdown can *drain*: stop
  accepting, let the requests already being served finish (bounded by
  a timeout), then release the socket.
* The same **message shapes** for both, so ``$DPZ_METRICS_PORT`` and
  ``dpz serve`` cannot drift apart in behaviour or wording.

This module is that single implementation.  It is transport-agnostic:
:class:`Drainer` is plain ``threading`` (usable from handler threads
and, via cheap non-blocking calls, from an event loop), and the bind
helpers return ready-to-listen sockets that either server kind can
adopt.
"""

from __future__ import annotations

import os
import socket
import stat
import threading
import time
from types import TracebackType
from typing import Union

from repro.errors import ConfigError

__all__ = [
    "Drainer",
    "validate_port",
    "bind_failure",
    "bind_tcp_socket",
    "bind_unix_socket",
]


def validate_port(port: int) -> int:
    """Range-check a TCP port, returning it; raises ``ConfigError``."""
    if not 0 <= int(port) <= 65535:
        raise ConfigError(f"port must be in [0, 65535], got {port}")
    return int(port)


def bind_failure(what: str, location: str,
                 exc: OSError) -> ConfigError:
    """The shared one-line bind-error shape for every listener.

    ``what`` names the server kind (``"telemetry"`` / ``"serve"``) so
    an operator juggling both knows which flag or env var to fix.
    """
    return ConfigError(
        f"cannot bind {what} listener on {location}: "
        f"{exc.strerror or exc}")


def bind_tcp_socket(host: str, port: int, *, what: str,
                    backlog: int = 128) -> socket.socket:
    """Bind and listen on ``host:port``; returns the listening socket.

    ``SO_REUSEADDR`` is set so a drained restart does not trip over the
    previous socket's TIME_WAIT.  Failures raise the one-line
    :func:`bind_failure` ConfigError.
    """
    validate_port(port)
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(backlog)
    except OSError as exc:
        sock.close()
        raise bind_failure(what, f"{host}:{port}", exc) from None
    return sock


def bind_unix_socket(path: str, *, what: str,
                     backlog: int = 128) -> socket.socket:
    """Bind and listen on a unix-domain socket path.

    A stale socket file left by a dead process is unlinked and
    rebound; a path that exists but is *not* a socket is refused (we
    never delete an operator's regular file).  Failures raise the
    one-line :func:`bind_failure` ConfigError.
    """
    try:
        mode = os.stat(path).st_mode
    except (OSError, ValueError):
        mode = None
    if mode is not None:
        if not stat.S_ISSOCK(mode):
            raise ConfigError(
                f"refusing to bind {what} listener on {path!r}: path "
                f"exists and is not a socket")
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.connect(path)
        except OSError:
            os.unlink(path)  # stale: owner is gone
        else:
            raise ConfigError(
                f"cannot bind {what} listener on {path!r}: socket is "
                f"in use by a live process")
        finally:
            probe.close()
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.bind(path)
        sock.listen(backlog)
    except OSError as exc:
        sock.close()
        raise bind_failure(what, repr(path), exc) from None
    return sock


class Drainer:
    """Thread-safe in-flight request counter with a drain barrier.

    Handlers wrap their work in ``with drainer.track():``; shutdown
    calls :meth:`wait_idle` after the listener stops accepting, so
    requests already in flight complete before the socket is released.
    Entering a closed drainer raises ``ConfigError`` -- a late request
    racing shutdown is refused instead of half-served.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active = 0
        self._closed = False

    @property
    def active(self) -> int:
        """How many requests are currently tracked."""
        with self._cond:
            return self._active

    @property
    def closed(self) -> bool:
        """Whether shutdown has begun (new entries are refused)."""
        with self._cond:
            return self._closed

    def track(self) -> "Drainer":
        """Context manager marking one request in flight."""
        return self

    def __enter__(self) -> "Drainer":
        with self._cond:
            if self._closed:
                raise ConfigError("server is draining; request refused")
            self._active += 1
        return self

    def __exit__(self, exc_type: Union[type, None],
                 exc: Union[BaseException, None],
                 tb: Union[TracebackType, None]) -> None:
        with self._cond:
            self._active -= 1
            if self._active <= 0:
                self._cond.notify_all()

    def close(self) -> None:
        """Refuse new :meth:`track` entries from now on."""
        with self._cond:
            self._closed = True

    def wait_idle(self, timeout: float = 5.0) -> bool:
        """Block until no request is in flight; True if fully drained.

        Returns ``False`` when ``timeout`` elapsed with requests still
        running -- the caller then closes anyway (bounded shutdown
        beats a hung one).
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._active > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True
