"""Typed metric registry: counters, gauges, log-scale histograms.

Z-checker argues that lossy-compression assessment must live *next to*
the compressor, not in a separate re-run; this registry is the
substrate that makes that cheap.  Three metric kinds:

* :class:`Counter` -- monotonic totals (bytes through zlib, runs
  completed).
* :class:`Gauge` -- last-written values, with ``add()`` for live
  level tracking (thread-pool size, queue depth, last run's CR).
* :class:`Histogram` -- **fixed-bucket log-scale** distributions.
  Bucket boundaries are a pure function of the constructor arguments
  (``lo``, ``hi``, ``buckets_per_decade``), so histograms from two
  runs -- or two machines -- merge and compare bucket-for-bucket.
  Quantiles are estimated by geometric interpolation inside the
  bucket, which is exact in log space and within one bucket width
  everywhere.

Discipline
----------
The module-level helpers (:func:`counter_inc`, :func:`gauge_set`,
:func:`gauge_add`, :func:`observe`) are the only thing hot paths call,
and they follow the same rule as :func:`repro.observability.span`:
**zero overhead when disabled**.  With no tracer installed each is a
global load, a ``None`` test and a return -- no lock, no allocation,
no clock read.

Output
------
:func:`MetricsRegistry.snapshot` returns a JSON-ready dict (the shape
embedded in ``BENCH_*.json`` and ``runs.ndjson``);
:func:`MetricsRegistry.render_prometheus` renders the standard text
exposition format (``# TYPE`` comments, ``_total`` counter suffix,
cumulative ``_bucket{le="..."}`` series) so a scrape endpoint needs no
extra translation layer.  FORMATS.md specifies the exported names.

>>> from repro.observability import Tracer, use_tracer, metrics_snapshot
>>> with use_tracer(Tracer()):
...     blob = repro.dpz_compress(field)
>>> metrics_snapshot()["gauges"]["dpz.last.cr"]     # doctest: +SKIP
7.31
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Union

from repro.devtools.sanitize import checked_lock
from repro.errors import ConfigError
from repro.observability import tracer as _tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "get_active_registry",
    "set_local_registry",
    "use_local_registry",
    "counter_inc",
    "gauge_set",
    "gauge_add",
    "observe",
    "metrics_snapshot",
    "metrics_reset",
    "render_prometheus",
    "metrics_enabled",
]

#: Default histogram range: 1 ns .. ~16 min for latencies, and wide
#: enough (crossing 1.0) that ratios and byte counts land in-range too.
DEFAULT_LO = 1e-9
DEFAULT_HI = 1e3
DEFAULT_BUCKETS_PER_DECADE = 3


class Counter:
    """Monotonic counter; ``add()`` is the only mutator."""

    __slots__ = ("name", "help", "_value", "_lock")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0
        self._lock = checked_lock("observability.metrics.Counter._lock")

    @property
    def value(self) -> int:
        return self._value

    def add(self, value: Union[int, float] = 1) -> None:
        if value < 0:
            raise ConfigError(
                f"counter {self.name!r} cannot decrease (add {value})")
        with self._lock:
            self._value += int(value)

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def to_dict(self) -> int:
        return self._value


class Gauge:
    """Last-written value; ``add()`` supports live level tracking."""

    __slots__ = ("name", "help", "_value", "_lock")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = checked_lock("observability.metrics.Gauge._lock")

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def to_dict(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket log-scale histogram of positive observations.

    Bucket ``i`` covers ``(bound[i-1], bound[i]]`` with geometric
    bounds ``lo * step**i``; observations below ``lo`` land in the
    underflow bucket (index 0 behaves as ``(0, lo]``), observations
    above ``hi`` in the overflow bucket.  Zero and negative values are
    counted in underflow (they carry no log-scale information but must
    not vanish from ``count``/``sum``).
    """

    __slots__ = ("name", "help", "lo", "hi", "buckets_per_decade",
                 "_bounds", "_counts", "_count", "_sum", "_min", "_max",
                 "_lock")
    kind = "histogram"

    def __init__(self, name: str, help: str = "", *,
                 lo: float = DEFAULT_LO, hi: float = DEFAULT_HI,
                 buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE
                 ) -> None:
        if not (0.0 < lo < hi):
            raise ConfigError(
                f"histogram {name!r} needs 0 < lo < hi, got {lo}..{hi}")
        if buckets_per_decade < 1:
            raise ConfigError("buckets_per_decade must be >= 1")
        self.name = name
        self.help = help
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(hi / lo)
        n = max(1, int(round(decades * buckets_per_decade)))
        # Upper bound of bucket i (i in [0, n-1]); bucket n is overflow.
        self._bounds = [lo * 10.0 ** ((i + 1) / buckets_per_decade)
                        for i in range(n)]
        self._bounds[-1] = hi  # kill float drift on the last edge
        self._counts = [0] * (n + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = checked_lock(
            "observability.metrics.Histogram._lock")

    def _bucket_index(self, value: float) -> int:
        if value <= self.lo:
            return 0
        if value > self.hi:
            return len(self._counts) - 1
        idx = int(math.log10(value / self.lo) * self.buckets_per_decade)
        idx = min(idx, len(self._bounds) - 1)
        # log10 rounding can land one bucket low on exact boundaries.
        if value > self._bounds[idx]:
            idx += 1
        return idx

    def observe(self, value: float) -> None:
        value = float(value)
        idx = self._bucket_index(value) if value > 0.0 else 0
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (geometric mid-bucket interpolation).

        Returns ``nan`` with no observations.  Underflow reports
        ``lo``, overflow reports ``hi`` -- the estimate is always inside
        the configured range, which is what a regression *gate* wants
        (an outlier cannot produce an unbounded number).
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return math.nan
        rank = q * total
        seen = 0.0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            if seen + c >= rank:
                frac = min(max((rank - seen) / c, 0.0), 1.0)
                lo_edge = self.lo if i == 0 else self._bounds[i - 1]
                hi_edge = (self.hi if i >= len(self._bounds)
                           else self._bounds[i])
                return float(lo_edge * (hi_edge / lo_edge) ** frac)
            seen += c
        return self.hi

    def bounds_signature(self) -> tuple[float, float, int]:
        """The constructor triple that fully determines the buckets."""
        return (self.lo, self.hi, self.buckets_per_decade)

    def merge_binned(self, counts: list[int], count: int, total: float,
                     vmin: float | None = None,
                     vmax: float | None = None) -> None:
        """Fold pre-binned observations in, bucket for bucket.

        ``counts`` must already be laid out for this histogram's bounds
        (same ``bounds_signature()``); the caller -- the worker-frame
        merge in :mod:`repro.observability.aggregate` -- checks that.
        The merge is exact: after merging, ``counts``/``count``/``sum``
        equal what direct ``observe()`` calls would have produced.
        """
        if len(counts) != len(self._counts):
            raise ConfigError(
                f"histogram {self.name!r}: cannot merge {len(counts)} "
                f"buckets into {len(self._counts)}")
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += int(c)
            self._count += int(count)
            self._sum += float(total)
            if vmin is not None and vmin < self._min:
                self._min = float(vmin)
            if vmax is not None and vmax > self._max:
                self._max = float(vmax)

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self._counts)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf

    def to_dict(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            vmin, vmax = self._min, self._max
        rec = {
            "lo": self.lo, "hi": self.hi,
            "buckets_per_decade": self.buckets_per_decade,
            "bounds": [float(f"{b:.6g}") for b in self._bounds],
            "counts": counts,
            "count": count,
            "sum": float(f"{total:.6g}"),
        }
        if count:
            rec["min"] = float(f"{vmin:.6g}")
            rec["max"] = float(f"{vmax:.6g}")
            rec["p50"] = float(f"{self.quantile(0.5):.6g}")
            rec["p95"] = float(f"{self.quantile(0.95):.6g}")
            rec["p99"] = float(f"{self.quantile(0.99):.6g}")
        return rec


_Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Thread-safe name -> metric map with typed get-or-create."""

    def __init__(self) -> None:
        self._lock = checked_lock(
            "observability.metrics.MetricsRegistry._lock")
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kw) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kw)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ConfigError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, requested {cls.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "", *,
                  lo: float = DEFAULT_LO, hi: float = DEFAULT_HI,
                  buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, lo=lo, hi=hi,
                                   buckets_per_decade=buckets_per_decade)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """JSON-ready ``{"counters", "gauges", "histograms"}`` dict."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in metrics:
            out[metric.kind + "s"][name] = metric.to_dict()
        return out

    def reset(self, *, kinds: tuple[str, ...] | None = None) -> None:
        """Zero every metric (optionally only the given kinds)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if kinds is None or metric.kind in kinds:
                metric.reset()

    def clear(self) -> None:
        """Drop every registered metric (tests; ``reset`` for prod)."""
        with self._lock:
            self._metrics.clear()

    # -- Prometheus text exposition --------------------------------------

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """Standard text exposition format, one family per metric.

        Dots in metric names become underscores; counters get the
        conventional ``_total`` suffix; histograms render cumulative
        ``_bucket{le="..."}`` series plus ``_sum`` and ``_count``.
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: list[str] = []
        for name, metric in metrics:
            base = prefix + name.replace(".", "_").replace("-", "_")
            if metric.kind == "counter":
                fam = base + "_total"
                if metric.help:
                    lines.append(f"# HELP {fam} {metric.help}")
                lines.append(f"# TYPE {fam} counter")
                lines.append(f"{fam} {metric.value}")
            elif metric.kind == "gauge":
                if metric.help:
                    lines.append(f"# HELP {base} {metric.help}")
                lines.append(f"# TYPE {base} gauge")
                lines.append(f"{base} {_fmt(metric.value)}")
            else:
                if metric.help:
                    lines.append(f"# HELP {base} {metric.help}")
                lines.append(f"# TYPE {base} histogram")
                cumulative = 0
                with metric._lock:
                    counts = list(metric._counts)
                    count, total = metric._count, metric._sum
                for i, c in enumerate(counts[:-1]):
                    cumulative += c
                    lines.append(f'{base}_bucket{{le="'
                                 f'{_fmt(metric._bounds[i])}"}} {cumulative}')
                lines.append(f'{base}_bucket{{le="+Inf"}} {count}')
                lines.append(f"{base}_sum {_fmt(total)}")
                lines.append(f"{base}_count {count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(v: float) -> str:
    """Prometheus-friendly float rendering (no trailing .0 on ints)."""
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(f"{v:.9g}"))


# -- default registry and gated hot-path helpers ----------------------------

_REGISTRY = MetricsRegistry()

#: Per-thread registry override.  ``parallel_map`` workers capture their
#: emissions into a private task-local registry (see
#: :mod:`repro.observability.aggregate`) so the parent can merge one
#: compact snapshot per task instead of racing on shared series -- the
#: exact protocol a process pool would need.  The override is consulted
#: only *after* the tracing gate, so the disabled path stays a global
#: load + ``None`` test.
_LOCAL = threading.local()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def get_active_registry() -> MetricsRegistry:
    """The registry hot-path helpers write to on *this* thread.

    The thread's capture registry when one is installed (worker
    telemetry aggregation), else the process default.
    """
    local = getattr(_LOCAL, "registry", None)
    return _REGISTRY if local is None else local


def set_local_registry(registry: MetricsRegistry | None
                       ) -> MetricsRegistry | None:
    """Install (or with ``None`` remove) this thread's capture registry.

    Returns the previous override so callers can restore it.
    """
    previous = getattr(_LOCAL, "registry", None)
    _LOCAL.registry = registry
    return previous


@contextmanager
def use_local_registry(registry: MetricsRegistry):
    """Capture this thread's metric emissions into ``registry``."""
    previous = set_local_registry(registry)
    try:
        yield registry
    finally:
        set_local_registry(previous)


def metrics_enabled() -> bool:
    """Metrics share the tracing switch: on iff a tracer is installed."""
    return _tracer._ACTIVE is not None


def counter_inc(name: str, value: Union[int, float] = 1) -> None:
    """Add to a counter in the active registry (no-op when disabled)."""
    if _tracer._ACTIVE is None:
        return
    get_active_registry().counter(name).add(value)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge in the active registry (no-op when disabled)."""
    if _tracer._ACTIVE is None:
        return
    get_active_registry().gauge(name).set(value)


def gauge_add(name: str, delta: float) -> None:
    """Adjust a gauge in the active registry (no-op when disabled)."""
    if _tracer._ACTIVE is None:
        return
    get_active_registry().gauge(name).add(delta)


def observe(name: str, value: float, *,
            lo: float = DEFAULT_LO, hi: float = DEFAULT_HI) -> None:
    """Observe into a histogram in the active registry (no-op when
    disabled).  ``lo``/``hi`` only apply on first creation."""
    if _tracer._ACTIVE is None:
        return
    get_active_registry().histogram(name, lo=lo, hi=hi).observe(value)


def metrics_snapshot() -> dict:
    """Snapshot of the default registry."""
    return _REGISTRY.snapshot()


def metrics_reset() -> None:
    """Zero every metric in the default registry."""
    _REGISTRY.reset()


def render_prometheus(prefix: str = "repro_") -> str:
    """Prometheus text exposition of the default registry."""
    return _REGISTRY.render_prometheus(prefix)
