"""Wall-clock sampling profiler attributing time to the span stack.

Tracing answers "how long did stage X take"; it cannot answer "where
inside the 40% that is ``dpz.pca`` does the time actually go" without
instrumenting every suspect line.  This profiler fills that gap with
statistical sampling: a ticker wakes every ``interval`` seconds, reads
the installed tracer's per-thread **span stacks**
(:meth:`~repro.observability.tracer.Tracer.live_stacks`) and counts one
sample per (thread, stack).  Sample counts times the interval estimate
wall seconds per stack -- the same folded-stack shape the flamegraph
renderer consumes, so ``profile.write_flamegraph("prof.html")`` (or
``dpz trace --profile prof.html``) yields the familiar HTML view with
sampled rather than measured widths.

Two tickers are available:

* ``mode="thread"`` (default) -- a daemon thread; samples **every**
  thread that has open spans, including pool workers, and works
  anywhere.
* ``mode="signal"`` -- ``signal.setitimer(ITIMER_REAL)`` + ``SIGALRM``;
  samples from the signal handler, which keeps ticking even when the
  main thread holds the GIL in pure-Python code.  Only installable
  from the main thread on POSIX; construction falls back to thread
  mode (recorded in ``fallback_reason``) anywhere else.

Overhead discipline matches the rest of the package: nothing is paid
unless a profiler is started, and a running profiler costs one
``live_stacks()`` read per tick (a lock + a few tuple builds), not a
per-span hook.  Samples are attributed to spans, not Python frames, so
the profiler never touches ``sys._current_frames`` or the interpreter
internals.

>>> from repro.observability import Tracer, use_tracer
>>> from repro.observability.profiler import SamplingProfiler
>>> tracer = Tracer()
>>> with use_tracer(tracer), SamplingProfiler(tracer) as prof:
...     blob = repro.dpz_compress(field)
>>> prof.write_flamegraph("prof.html")      # doctest: +SKIP
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import IO

from repro.errors import ConfigError
from repro.observability import tracer as _tracer
from repro.observability.flamegraph import folded_to_text, render_html
from repro.observability.metrics import get_registry
from repro.observability.tracer import Tracer

__all__ = ["SamplingProfiler", "use_profiler"]

#: Default sampling period: 5 ms = 200 Hz, coarse enough to stay under
#: ~1% overhead on the workloads this project profiles.
DEFAULT_INTERVAL = 0.005

SampleKey = tuple[str, ...]


class SamplingProfiler:
    """Samples the active span stacks on a fixed wall-clock period.

    ``tracer=None`` follows whatever tracer is installed at each tick
    (the common case under :func:`~repro.observability.use_tracer`).
    Ticks where no tracer is installed or no spans are open are counted
    in ``idle_ticks`` so the denominator stays honest.
    """

    def __init__(self, tracer: Tracer | None = None, *,
                 interval: float = DEFAULT_INTERVAL,
                 mode: str = "thread") -> None:
        if not interval > 0.0:
            raise ConfigError(f"interval must be > 0, got {interval}")
        if mode not in ("thread", "signal"):
            raise ConfigError(f"mode must be 'thread' or 'signal', "
                              f"got {mode!r}")
        self._tracer = tracer
        self.interval = float(interval)
        self.mode = mode
        self.fallback_reason: str | None = None
        self._samples: dict[SampleKey, int] = {}
        self._ticks = 0
        self._idle_ticks = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._prev_handler = None
        self._running = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Begin sampling; idempotent ``stop()`` ends it."""
        if self._running:
            raise ConfigError("profiler is already running")
        self._running = True
        self._stop.clear()
        if self.mode == "signal":
            if threading.current_thread() is not threading.main_thread():
                self.fallback_reason = "signal mode needs the main thread"
            else:
                try:
                    self._prev_handler = signal.signal(
                        signal.SIGALRM, self._on_signal)
                    signal.setitimer(signal.ITIMER_REAL, self.interval,
                                     self.interval)
                    return self
                except (ValueError, OSError, AttributeError) as exc:
                    self.fallback_reason = f"no interval timer ({exc})"
            self.mode = "thread"
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and publish the ``profiler.samples`` counter."""
        if not self._running:
            return
        self._running = False
        if self.mode == "signal":
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if self._prev_handler is not None:
                signal.signal(signal.SIGALRM, self._prev_handler)
                self._prev_handler = None
        else:
            self._stop.set()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._thread = None
        if self.total_samples:
            get_registry().counter("profiler.samples").add(
                self.total_samples)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- sampling ---------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._tick()

    def _on_signal(self, _signum, _frame) -> None:
        self._tick()

    def _tick(self) -> None:
        tracer = self._tracer or _tracer._ACTIVE
        stacks = tracer.live_stacks() if tracer is not None else {}
        with self._lock:
            self._ticks += 1
            if not stacks:
                self._idle_ticks += 1
                return
            for names in stacks.values():
                self._samples[names] = self._samples.get(names, 0) + 1

    # -- results ----------------------------------------------------------

    @property
    def samples(self) -> dict[SampleKey, int]:
        """``{(outer, ..., inner): count}`` snapshot."""
        with self._lock:
            return dict(self._samples)

    @property
    def ticks(self) -> int:
        """How many times the sampler fired."""
        with self._lock:
            return self._ticks

    @property
    def idle_ticks(self) -> int:
        """Ticks that found no open span anywhere."""
        with self._lock:
            return self._idle_ticks

    @property
    def total_samples(self) -> int:
        """Sum of all stack sample counts (>= ticks - idle_ticks)."""
        with self._lock:
            return sum(self._samples.values())

    def folded(self) -> dict[str, float]:
        """Folded stacks with *estimated seconds* as values."""
        return {";".join(names): count * self.interval
                for names, count in sorted(self.samples.items())}

    def folded_text(self) -> str:
        """Folded stacks in flamegraph.pl text form."""
        return folded_to_text(self.folded())

    def to_records(self) -> list[dict]:
        """JSON-ready sample records (FORMATS.md "Profile records").

        One ``{"event": "sample", "stack", "count", "est_s"}`` record
        per distinct stack, preceded by a ``{"event": "profile"}``
        header carrying the interval and tick accounting.
        """
        header = {
            "event": "profile", "format": "repro-profile", "version": 1,
            "interval_s": self.interval, "mode": self.mode,
            "ticks": self.ticks, "idle_ticks": self.idle_ticks,
            "total_samples": self.total_samples,
        }
        records = [header]
        for names, count in sorted(self.samples.items()):
            records.append({
                "event": "sample", "stack": list(names),
                "count": count,
                "est_s": round(count * self.interval, 6),
            })
        return records

    def _span_forest(self) -> list[dict]:
        """Synthetic span records for the flamegraph renderer.

        Every distinct stack prefix becomes one span whose duration is
        the estimated seconds of all samples at or below it -- the same
        containment the real span tree would have shown.
        """
        durs: dict[SampleKey, float] = {}
        for names, count in self.samples.items():
            secs = count * self.interval
            for depth in range(1, len(names) + 1):
                prefix = names[:depth]
                durs[prefix] = durs.get(prefix, 0.0) + secs
        ids: dict[SampleKey, int] = {}
        spans: list[dict] = []
        for prefix in sorted(durs, key=len):
            ids[prefix] = len(ids) + 1
            spans.append({
                "name": prefix[-1],
                "dur": durs[prefix],
                "span_id": ids[prefix],
                "parent_id": ids.get(prefix[:-1]),
            })
        return spans

    def render_html(self, title: str = "repro profile") -> str:
        """Self-contained flamegraph HTML of the sampled stacks."""
        return render_html(self._span_forest(), title=title)

    def write_flamegraph(self, path_or_fh: str | IO[str], *,
                         title: str = "repro profile") -> int:
        """Write the sampled flamegraph; returns the root-frame count."""
        html = self.render_html(title=title)
        if hasattr(path_or_fh, "write"):
            path_or_fh.write(html)  # type: ignore[union-attr]
        else:
            with open(path_or_fh, "w") as fh:  # type: ignore[arg-type]
                fh.write(html)
        return sum(1 for s in self._span_forest()
                   if s["parent_id"] is None)


@contextmanager
def use_profiler(tracer: Tracer | None = None, *,
                 interval: float = DEFAULT_INTERVAL,
                 mode: str = "thread"):
    """Run the block under a started profiler; yields the profiler."""
    prof = SamplingProfiler(tracer, interval=interval, mode=mode)
    prof.start()
    try:
        yield prof
    finally:
        prof.stop()
