"""Z-checker-style quality telemetry for traced runs.

Rate-distortion assessment usually means a *separate* evaluation pass:
compress, decompress, diff, compute PSNR.  Z-checker's observation is
that the assessment framework should be co-resident with the
compressor so every run is a complete data point.  This module does
that for the repro pipeline: when enabled (it is off by default, like
tracing), :meth:`DPZCompressor.compress_with_stats` performs an extra
in-memory reconstruction and records

* **PSNR** (dB), **max absolute error**, **mean relative error** --
  computed on a *deterministic sampled slab* of the field so the cost
  is bounded and two runs over the same shape compare the exact same
  points;
* **CR**, **bit-rate** (bits/value), and the achieved **TVE at k** --
  from the container sizes and the eigenanalysis;

as gauges in the metric registry *and* as metadata on the enclosing
span, so a single NDJSON trace line is a full rate-distortion record.

Determinism: the slab is an evenly strided index set, a pure function
of ``(field size, max_points)``.  No RNG, no run-to-run jitter.

Usage::

    from repro.observability import Tracer, use_tracer, use_quality

    with use_tracer(Tracer()), use_quality():
        blob, stats = DPZCompressor(cfg).compress_with_stats(field)
    # metrics_snapshot()["gauges"]["quality.psnr_db"] is now set
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import (
    max_abs_error,
    mean_relative_error,
    psnr,
)
from repro.observability.metrics import counter_inc, gauge_set
from repro.observability.tracer import current_span

__all__ = [
    "QualityConfig",
    "quality_enabled",
    "get_quality",
    "set_quality",
    "use_quality",
    "slab_indices",
    "record_quality",
]


@dataclass(frozen=True)
class QualityConfig:
    """How much of the field the telemetry pass looks at.

    ``max_points`` caps the sampled slab; fields at or below the cap
    are measured exactly.  64k points keeps the metric arithmetic under
    a millisecond while estimating PSNR to well under 0.1 dB on the
    bundled datasets.
    """

    max_points: int = 1 << 16

    def __post_init__(self) -> None:
        if self.max_points < 1:
            raise ValueError(
                f"max_points must be >= 1, got {self.max_points}")


_ACTIVE: QualityConfig | None = None


def quality_enabled() -> bool:
    """Whether the telemetry pass runs inside ``compress_with_stats``."""
    return _ACTIVE is not None


def get_quality() -> QualityConfig | None:
    """The installed quality config, or ``None`` when disabled."""
    return _ACTIVE


def set_quality(config: QualityConfig | None) -> QualityConfig | None:
    """Install (or with ``None`` uninstall) quality telemetry.

    Returns the previous config so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = config
    return previous


@contextmanager
def use_quality(config: QualityConfig | None = None):
    """Enable quality telemetry for the duration of the ``with`` block."""
    installed = config or QualityConfig()
    previous = set_quality(installed)
    try:
        yield installed
    finally:
        set_quality(previous)


def slab_indices(n: int, max_points: int) -> np.ndarray:
    """Deterministic evenly strided sample of ``[0, n)``.

    A pure function of its arguments: the same field shape always
    yields the same slab, so telemetry from two runs (or two code
    versions) measures identical points.
    """
    if n <= max_points:
        return np.arange(n, dtype=np.int64)
    return np.linspace(0, n - 1, max_points).astype(np.int64)


def record_quality(original: np.ndarray, reconstructed: np.ndarray,
                   compressed_nbytes: int, *,
                   tve_at_k: float | None = None,
                   config: QualityConfig | None = None) -> dict:
    """Compute and record one run's quality record; returns it.

    Error metrics are evaluated on the deterministic slab; CR and
    bit-rate come from the exact byte counts.  Gauges land in the
    default metric registry and, when a span is open on this thread,
    the same keys (prefixed ``quality_``) are attached to it.
    """
    cfg = config or _ACTIVE or QualityConfig()
    a = np.asarray(original).reshape(-1)
    b = np.asarray(reconstructed).reshape(-1)
    idx = slab_indices(a.size, cfg.max_points)
    a_s, b_s = a[idx], b[idx]
    nbytes = int(np.asarray(original).nbytes)
    bits_per_value = 8 * nbytes / max(a.size, 1)
    record = {
        "psnr_db": float(psnr(a_s, b_s)),
        "max_abs_error": float(max_abs_error(a_s, b_s)),
        "mean_rel_error": float(mean_relative_error(a_s, b_s)),
        "cr": nbytes / max(int(compressed_nbytes), 1),
        "bitrate": bits_per_value * compressed_nbytes / max(nbytes, 1),
        "sampled_points": int(idx.size),
        "sample_fraction": idx.size / max(a.size, 1),
    }
    if tve_at_k is not None:
        record["tve_at_k"] = float(tve_at_k)

    counter_inc("quality.runs")
    for key in ("psnr_db", "max_abs_error", "mean_rel_error", "cr",
                "bitrate", "tve_at_k"):
        if key in record and np.isfinite(record[key]):
            gauge_set("quality." + key, record[key])
    sp = current_span()
    if sp is not None:
        sp.add(**{"quality_" + k: (round(v, 6)
                                   if isinstance(v, float) else v)
                  for k, v in record.items()})
    return record
