"""Persistent run registry: one NDJSON provenance record per run.

SDRBench's lesson is that cross-run / cross-dataset comparability
requires *standardized, persisted* metric records -- not numbers
scraped from stdout.  This module is that registry for the repro
pipeline: every traced run appends one self-describing JSON line to a
``runs.ndjson`` file, carrying

* identity: ``run_id``, wall-clock timestamp, package version;
* provenance: dataset id / shape / dtype, the full config as a dict
  plus a short **config digest** (stable SHA-256 over the sorted
  JSON), scheme parameters (error bound ``p``, index bytes, k-mode);
* results: CR, ``k``/``m_blocks``, wall seconds, per-stage times and
  shares from the tracer, the quality telemetry record when enabled,
  and the full metric-registry snapshot.

The record schema is specified in FORMATS.md (``run-record v1``).
``dpz runs list / show / diff`` is the CLI surface; :func:`diff_runs`
is the library entry the CLI uses for per-stage regression triage.
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
import os
import time
from typing import IO

from repro.devtools.sanitize import checked_lock
from repro.observability.metrics import metrics_snapshot
from repro.observability.tracer import Tracer

__all__ = [
    "RECORD_VERSION",
    "DEFAULT_RUNLOG",
    "resolve_runlog",
    "config_digest",
    "build_record",
    "append_record",
    "load_runs",
    "find_run",
    "format_run_table",
    "diff_runs",
]

RECORD_VERSION = 1

#: Default registry file; override per call or with ``$DPZ_RUNLOG``.
DEFAULT_RUNLOG = "runs.ndjson"


def resolve_runlog(path: str | None = None) -> str:
    """Precedence: explicit path, ``$DPZ_RUNLOG``, ``./runs.ndjson``."""
    return path or os.environ.get("DPZ_RUNLOG") or DEFAULT_RUNLOG


def _config_dict(config) -> dict:
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return dict(config)
    raise TypeError(f"unsupported config type {type(config).__name__}")


def config_digest(config) -> str:
    """Short stable digest of a config (dataclass or dict).

    Key order never matters; two configs digest equal iff their JSON
    forms are equal.  Twelve hex chars is plenty for a registry that
    distinguishes configurations, not adversaries.
    """
    payload = json.dumps(_config_dict(config), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def build_record(*, dataset: str, shape, dtype: str, config,
                 cr: float, compressed_nbytes: int, original_nbytes: int,
                 wall_s: float, tracer: Tracer | None = None,
                 k: int | None = None, m_blocks: int | None = None,
                 quality: dict | None = None,
                 metrics: dict | None = None,
                 extra: dict | None = None) -> dict:
    """Assemble one run-record dict (schema ``run-record v1``).

    ``metrics`` defaults to a snapshot of the default registry;
    stage times/shares are folded from ``tracer`` when given.
    """
    from repro import __version__

    cfg = _config_dict(config)
    digest = config_digest(cfg)
    ts = time.time()
    run_id = hashlib.sha256(
        f"{ts:.6f}|{dataset}|{digest}|{os.getpid()}".encode()
    ).hexdigest()[:12]
    record: dict = {
        "record": "dpz-run",
        "version": RECORD_VERSION,
        "run_id": run_id,
        "timestamp": round(ts, 3),
        "time_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts)),
        "package_version": __version__,
        "dataset": dataset,
        "shape": [int(n) for n in shape],
        "dtype": str(dtype),
        "config_digest": digest,
        "config": cfg,
        "error_bound": cfg.get("p"),
        "original_nbytes": int(original_nbytes),
        "compressed_nbytes": int(compressed_nbytes),
        "cr": round(float(cr), 6),
        "wall_s": round(float(wall_s), 6),
    }
    if k is not None:
        record["k"] = int(k)
    if m_blocks is not None:
        record["m_blocks"] = int(m_blocks)
    if tracer is not None:
        times = tracer.stage_times("dpz.")
        shares = tracer.stage_shares("dpz.")
        record["stage_times_s"] = {n: round(v, 6) for n, v in times.items()}
        record["stage_shares"] = {n: round(v, 4) for n, v in shares.items()}
    if quality:
        record["quality"] = {
            k_: (round(v, 8) if isinstance(v, float) else v)
            for k_, v in quality.items()
        }
    record["metrics"] = metrics if metrics is not None else metrics_snapshot()
    if extra:
        record.update(extra)
    return record


#: Serializes registry appends.  Two threads finishing traced runs at
#: once (``dpz serve``-style operation) would otherwise interleave
#: ``write()`` calls and corrupt a line; ``load_runs`` tolerates a torn
#: *trailing* line from a killed process but not a torn middle.
_APPEND_LOCK = checked_lock("observability.runlog._APPEND_LOCK")


def append_record(record: dict, path_or_fh: str | IO[str] | None = None
                  ) -> str | None:
    """Append one record line to the registry; returns the path used.

    Appends are serialized under a module lock so concurrent runs in
    one process cannot interleave partial lines.
    """
    line = json.dumps(record, sort_keys=True, default=str) + "\n"
    if hasattr(path_or_fh, "write"):
        with _APPEND_LOCK:
            path_or_fh.write(line)
        return None
    path = resolve_runlog(path_or_fh)
    with _APPEND_LOCK:
        with open(path, "a") as fh:
            fh.write(line)
    return path


def load_runs(path: str | None = None) -> list[dict]:
    """All records in the registry file, oldest first.

    Unparseable lines are skipped (a half-written trailing line from a
    killed process must not take the whole registry down).
    """
    runs: list[dict] = []
    with open(resolve_runlog(path)) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(rec, dict) and rec.get("record") == "dpz-run":
                runs.append(rec)
    return runs


def _nearest_ids(ids: list[str], key: str, n: int = 3) -> list[str]:
    """The registry ids closest to a failed lookup key.

    ``difflib`` similarity over the id prefix of the same length as the
    key, so a one-character typo in a short prefix still ranks its
    intended run first.  Newest runs win ties (``ids`` arrives oldest
    first; reversed below).
    """
    scored = [(difflib.SequenceMatcher(None, key, rid[:max(len(key), 4)])
               .ratio(), rid) for rid in reversed(ids)]
    # Stable sort: zero-similarity ties stay newest-first, so a fully
    # unrelated key still gets the most recent runs as candidates.
    scored.sort(key=lambda pair: -pair[0])
    return [rid for _score, rid in scored[:n]]


def find_run(runs: list[dict], key: str) -> dict:
    """Resolve ``key`` to one record: an index (``0``, ``-1``) or a
    ``run_id`` prefix.

    Failed lookups raise ``KeyError`` whose message carries the nearest
    candidate ids -- the CLI prints it verbatim, so a typo'd
    ``dpz runs show`` tells the operator what they probably meant
    instead of just "no".
    """
    try:
        return runs[int(key)]
    except (ValueError, IndexError):
        pass
    ids = [r.get("run_id", "") for r in runs if r.get("run_id")]
    matches = [r for r in runs if r.get("run_id", "").startswith(key)]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        near = _nearest_ids(ids, key)
        hint = f" (nearest: {', '.join(near)})" if near else ""
        raise KeyError(f"no run matches {key!r}{hint}")
    match_ids = [r["run_id"] for r in matches]
    shown = ", ".join(match_ids[:5])
    if len(match_ids) > 5:
        shown += ", ..."
    raise KeyError(f"run id prefix {key!r} is ambiguous "
                   f"({len(match_ids)} matches: {shown})")


def format_run_table(runs: list[dict]) -> str:
    """Fixed-width listing: id, time, dataset, shape, CR, PSNR, wall."""
    lines = [f"{'#':>3s} {'run_id':12s} {'time (UTC)':20s} {'dataset':12s} "
             f"{'shape':>16s} {'cr':>8s} {'psnr':>8s} {'wall_s':>8s}"]
    for i, rec in enumerate(runs):
        psnr_db = rec.get("quality", {}).get("psnr_db")
        psnr_s = f"{psnr_db:8.2f}" if isinstance(psnr_db, (int, float)) \
            else f"{'-':>8s}"
        shape = "x".join(str(n) for n in rec.get("shape", []))
        lines.append(
            f"{i:>3d} {rec.get('run_id', '?'):12s} "
            f"{rec.get('time_utc', '?'):20s} "
            f"{rec.get('dataset', '?'):12s} {shape:>16s} "
            f"{rec.get('cr', 0.0):8.2f} {psnr_s} "
            f"{rec.get('wall_s', 0.0):8.3f}")
    return "\n".join(lines)


def _fmt_delta(a: float, b: float, pct: bool = True) -> str:
    if a == 0:
        return "n/a"
    rel = (b - a) / abs(a)
    return f"{rel:+.1%}" if pct else f"{b - a:+.4f}"


def diff_runs(a: dict, b: dict) -> str:
    """Human-readable per-stage / per-metric diff of two run records."""
    lines = [f"run A: {a.get('run_id')}  {a.get('dataset')} "
             f"{a.get('time_utc')}  (config {a.get('config_digest')})",
             f"run B: {b.get('run_id')}  {b.get('dataset')} "
             f"{b.get('time_utc')}  (config {b.get('config_digest')})"]
    if a.get("config_digest") != b.get("config_digest"):
        ca, cb = a.get("config", {}), b.get("config", {})
        changed = sorted(k for k in set(ca) | set(cb)
                         if ca.get(k) != cb.get(k))
        lines.append(f"config differs: {', '.join(changed) or '(fields)'}")
    lines.append(f"{'metric':<22s} {'A':>12s} {'B':>12s} {'delta':>9s}")
    rows: list[tuple[str, float, float]] = [
        ("cr", a.get("cr", 0.0), b.get("cr", 0.0)),
        ("wall_s", a.get("wall_s", 0.0), b.get("wall_s", 0.0)),
        ("compressed_nbytes", a.get("compressed_nbytes", 0),
         b.get("compressed_nbytes", 0)),
    ]
    qa, qb = a.get("quality", {}), b.get("quality", {})
    for key in ("psnr_db", "max_abs_error", "mean_rel_error", "bitrate"):
        if key in qa and key in qb:
            rows.append(("quality." + key, qa[key], qb[key]))
    for name, va, vb in rows:
        lines.append(f"{name:<22s} {va:>12.4f} {vb:>12.4f} "
                     f"{_fmt_delta(va, vb):>9s}")
    ta = a.get("stage_times_s", {})
    tb = b.get("stage_times_s", {})
    if ta or tb:
        lines.append(f"{'stage':<22s} {'A ms':>12s} {'B ms':>12s} "
                     f"{'delta':>9s}")
        for stage in sorted(set(ta) | set(tb)):
            va, vb = ta.get(stage, 0.0), tb.get(stage, 0.0)
            lines.append(f"{stage:<22s} {va * 1e3:>12.2f} "
                         f"{vb * 1e3:>12.2f} {_fmt_delta(va, vb):>9s}")
    return "\n".join(lines)
