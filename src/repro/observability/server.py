"""Live telemetry endpoint: ``/metrics``, ``/healthz``, ``/runs``.

A stdlib-only threaded HTTP server that exposes the default metric
registry while a run is in flight, so ``curl localhost:9412/metrics``
(or a Prometheus scrape, or ``dpz top --url``) can watch a long
``dpz store pack`` instead of waiting for the post-hoc run record.

Routes
------
``/metrics``
    The registry in Prometheus text exposition format
    (``text/plain; version=0.0.4``) -- exactly
    :func:`~repro.observability.metrics.render_prometheus`.
``/metrics.json``
    The same registry as the ``metrics_snapshot()`` JSON dict; this is
    what ``dpz top`` polls (no text-format parsing in the dashboard).
``/healthz``
    JSON liveness: uptime, pid, whether tracing is on, thread-pool
    liveness (:func:`~repro.parallel.executor.pool_status`) and
    decoded-chunk cache occupancy across open stores.
``/runs``
    The run registry (``runs.ndjson`` via ``$DPZ_RUNLOG``) as a JSON
    array; missing registry file -> ``[]``, never an error.

Schemas for all four responses are specified in FORMATS.md.

Lifecycle and cost
------------------
Nothing in this module runs unless :class:`TelemetryServer` is
explicitly started -- by ``dpz top --listen``, by ``$DPZ_METRICS_PORT``
(see :func:`maybe_start_from_env`), or by a test.  When not started
the rest of the library pays nothing: no import of this module, no
socket, no thread.  When started, the cost is one daemon accept thread
plus one short-lived thread per request; request handling only *reads*
shared state (registry snapshots take the metric locks briefly).

The server counts its own traffic (``server.requests`` /
``server.errors``) directly into the default registry -- unlike hot-path
emitters these are not gated on tracing, because a running server is
itself an explicit opt-in.

>>> from repro.observability.server import start_server
>>> srv = start_server(0)                   # port 0: ephemeral
>>> srv.url
'http://127.0.0.1:54321'
>>> srv.close()
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ConfigError
from repro.observability import tracer as _tracer
from repro.observability.lifecycle import (
    Drainer,
    bind_failure,
    validate_port,
)
from repro.observability.metrics import get_registry, metrics_snapshot
from repro.observability.runlog import load_runs, resolve_runlog

__all__ = [
    "TelemetryServer",
    "start_server",
    "maybe_start_from_env",
    "METRICS_PORT_ENV",
]

#: Environment opt-in: ``DPZ_METRICS_PORT=9412 dpz store pack ...``
#: serves live telemetry for the duration of the command.
METRICS_PORT_ENV = "DPZ_METRICS_PORT"

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _healthz_payload(server: "TelemetryServer") -> dict:
    # Lazy imports: the executor and store packages import observability,
    # so importing them at module top would be a cycle; at request time
    # both are long since loaded (or load cheaply).
    from repro.parallel.executor import pool_status
    from repro.store.store import open_store_stats

    return {
        "status": "ok",
        "pid": os.getpid(),
        "started_utc": server.started_utc,
        "uptime_s": round(time.time() - server.started_at, 3),
        "tracing": _tracer.tracing_enabled(),
        "pool": pool_status(),
        "stores": open_store_stats(),
        "requests": get_registry().counter("server.requests").value,
    }


def _runs_payload() -> list[dict]:
    try:
        return load_runs(resolve_runlog())
    except FileNotFoundError:
        return []


class _Handler(BaseHTTPRequestHandler):
    """One GET router; the owning :class:`TelemetryServer` is on the
    server object (``self.server.telemetry``)."""

    server_version = "dpz-telemetry/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        pass  # silent: telemetry must not spam the CLI's stderr

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload, sort_keys=True, default=str).encode()
        self._send(status, body, "application/json")

    def do_GET(self) -> None:  # noqa: N802  (http.server API)
        try:
            tracked = self.server.telemetry.drainer.track().__enter__()
        except ConfigError:
            # Shutdown already started: refuse instead of racing the
            # socket teardown mid-response.
            try:
                self._send_json(503, {"error": "server is draining"})
            except OSError:
                pass
            return
        try:
            self._do_get_tracked()
        finally:
            tracked.__exit__(None, None, None)

    def _do_get_tracked(self) -> None:
        registry = get_registry()
        registry.counter("server.requests").add(1)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path in ("/metrics", "/"):
                self._send(200, registry.render_prometheus().encode(),
                           PROMETHEUS_CONTENT_TYPE)
            elif path == "/metrics.json":
                self._send_json(200, metrics_snapshot())
            elif path == "/healthz":
                self._send_json(200, _healthz_payload(self.server.telemetry))
            elif path == "/runs":
                self._send_json(200, _runs_payload())
            else:
                registry.counter("server.errors").add(1)
                self._send_json(404, {
                    "error": f"unknown path {path!r}",
                    "routes": ["/metrics", "/metrics.json",
                               "/healthz", "/runs"],
                })
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to salvage
        # A handler bug must become a 500 response, never an unhandled
        # traceback killing the connection thread -- so this is one of
        # the rare places a blanket catch is the *correct* taxonomy.
        except Exception as exc:  # dpzlint: ignore[DPZ302]
            registry.counter("server.errors").add(1)
            try:
                self._send_json(500, {"error": f"{type(exc).__name__}: "
                                               f"{exc}"})
            except Exception:  # dpzlint: ignore[DPZ302]
                pass  # the 500 itself failed; the socket is gone


class TelemetryServer:
    """A started, self-contained telemetry endpoint.

    ``port=0`` binds an ephemeral port (tests); the bound port is on
    ``.port`` / ``.url`` either way.  A bind failure (port taken,
    privileged port) raises one-line :class:`~repro.errors.ConfigError`
    instead of a socket traceback -- two processes racing for the same
    ``$DPZ_METRICS_PORT`` is an operator condition, not a bug.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1") -> None:
        validate_port(port)
        try:
            self._httpd = ThreadingHTTPServer((host, port), _Handler)
        except OSError as exc:
            raise bind_failure("telemetry", f"{host}:{port}",
                               exc) from None
        self._httpd.daemon_threads = True
        self._httpd.telemetry = self  # type: ignore[attr-defined]
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self.started_at = time.time()
        self.started_utc = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(self.started_at))
        self.drainer = Drainer()
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        """Base URL clients should hit (no trailing slash)."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise ConfigError("telemetry server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-telemetry", daemon=True)
        self._thread.start()
        return self

    def close(self, drain_timeout: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight requests,
        join, release the socket.

        Requests already being handled when ``close`` is called finish
        (bounded by ``drain_timeout``); requests arriving after it get
        a 503.  Pre-drain, a scrape racing shutdown could observe a
        half-torn-down process -- that gap is exactly what the shared
        :class:`~repro.observability.lifecycle.Drainer` closes.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self.drainer.close()
            self.drainer.wait_idle(drain_timeout)
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def start_server(port: int = 0, host: str = "127.0.0.1") -> TelemetryServer:
    """Construct and start a :class:`TelemetryServer` in one call."""
    return TelemetryServer(port, host).start()


def maybe_start_from_env() -> TelemetryServer | None:
    """Start a server iff ``$DPZ_METRICS_PORT`` is set; else ``None``.

    A malformed value raises :class:`~repro.errors.ConfigError` (the
    operator asked for telemetry and should not silently miss it).
    """
    raw = os.environ.get(METRICS_PORT_ENV)
    if raw is None or raw.strip() == "":
        return None
    try:
        port = int(raw)
    except ValueError:
        raise ConfigError(
            f"${METRICS_PORT_ENV} must be an integer port, got {raw!r}"
        ) from None
    return start_server(port)
