"""The ``dpz top`` terminal dashboard: registry snapshots -> panels.

``dpz top`` polls a telemetry endpoint's ``/metrics.json`` (or, with
``--listen``, its own in-process server) and renders a compact
refreshing view of the metrics that matter while a pack or region
workload runs: throughput, cache behaviour, region-read latency, and
pool/queue pressure.  No curses -- the loop in :mod:`repro.cli` just
repaints with ANSI home/clear, so it works in any terminal and in a
``--once`` snapshot mode for scripts and tests.

This module is deliberately I/O-free: :class:`Dashboard` consumes
``metrics_snapshot()``-shaped dicts and returns strings.  Rates are
derived by differencing consecutive snapshots against a monotonic
clock, so the first frame shows totals only and every later frame
shows per-second rates; a counter that resets (process restart behind
the same URL) clamps to zero rather than printing a negative rate.
"""

from __future__ import annotations

import time

__all__ = ["Dashboard"]

#: (label, counter name) rows of the throughput panel.
_RATE_ROWS: tuple[tuple[str, str], ...] = (
    ("chunks compressed", "store.chunks.compressed"),
    ("chunks decoded", "store.chunks.decoded"),
    ("bytes read", "store.bytes.read"),
    ("bytes decoded", "store.bytes.decoded"),
    ("region reads", "store.region.reads"),
    ("compress runs", "dpz.compress.runs"),
    ("worker frames", "worker.snapshots.merged"),
)


def _fmt_num(v: float) -> str:
    """Human-scaled number: 1234567 -> '1.23M'."""
    av = abs(v)
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if av >= scale:
            return f"{v / scale:.2f}{unit}"
    if v == int(v):
        return str(int(v))
    return f"{v:.2f}"


def _fmt_secs(v: float) -> str:
    """Latency with a sensible unit: 0.00042 -> '420us'."""
    if v != v:  # NaN: histogram empty
        return "-"
    if v < 1e-3:
        return f"{v * 1e6:.0f}us"
    if v < 1.0:
        return f"{v * 1e3:.1f}ms"
    return f"{v:.2f}s"


def _hist_quantiles(rec: dict) -> tuple[float, float, int]:
    """(p50, p95, count) from a snapshot histogram record."""
    return (rec.get("p50", float("nan")), rec.get("p95", float("nan")),
            int(rec.get("count", 0)))


class Dashboard:
    """Stateful renderer: feed snapshots, get panel text back.

    ``update()`` remembers the previous (snapshot, clock) pair so the
    next call can print rates.  ``clock`` is injectable for tests.
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._prev: dict | None = None
        self._prev_t: float = 0.0
        self.frames = 0

    # -- derivation -------------------------------------------------------

    def _rate(self, counters: dict, prev_counters: dict, name: str,
              dt: float) -> float | None:
        if dt <= 0.0 or self._prev is None:
            return None
        delta = counters.get(name, 0) - prev_counters.get(name, 0)
        return max(delta, 0) / dt

    def update(self, snapshot: dict) -> str:
        """Render one frame from a ``metrics_snapshot()``-shaped dict."""
        now = self._clock()
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        hists = snapshot.get("histograms", {})
        prev_counters = (self._prev or {}).get("counters", {})
        dt = now - self._prev_t
        self.frames += 1

        lines: list[str] = []
        add = lines.append

        add("dpz top" + (f"  (frame {self.frames}, +{dt:.1f}s)"
                         if self._prev is not None else "  (first frame)"))
        add("")

        add("throughput")
        for label, name in _RATE_ROWS:
            total = counters.get(name, 0)
            if not total:
                continue
            rate = self._rate(counters, prev_counters, name, dt)
            suffix = f"  {_fmt_num(rate)}/s" if rate is not None else ""
            add(f"  {label:<18} {_fmt_num(total):>10}{suffix}")
        if lines[-1] == "throughput":
            add("  (no traffic yet)")
        add("")

        hits = counters.get("store.cache.hits", 0)
        misses = counters.get("store.cache.misses", 0)
        add("cache")
        if hits or misses:
            ratio = hits / (hits + misses)
            add(f"  hits/misses        {_fmt_num(hits)}/{_fmt_num(misses)}"
                f"  ({ratio:.0%} hit rate)")
            add(f"  evictions          "
                f"{_fmt_num(counters.get('store.cache.evictions', 0))}")
            add(f"  resident bytes     "
                f"{_fmt_num(gauges.get('store.cache.bytes', 0))}")
        else:
            add("  (cold)")
        add("")

        add("latency (p50 / p95)")
        shown = False
        for label, name in (("region read", "store.region.seconds"),
                            ("chunk compress", "store.chunk.compress.seconds"),
                            ("pool chunk", "parallel.chunk.seconds")):
            rec = hists.get(name)
            if not rec:
                continue
            p50, p95, count = _hist_quantiles(rec)
            add(f"  {label:<18} {_fmt_secs(p50)} / {_fmt_secs(p95)}"
                f"  (n={count})")
            shown = True
        if not shown:
            add("  (no samples)")
        add("")

        add("pool")
        add(f"  workers            "
            f"{_fmt_num(gauges.get('parallel.pool.size', 0))}")
        add(f"  queue depth        "
            f"{_fmt_num(gauges.get('parallel.queue.depth', 0))}")
        add(f"  maps/chunks        "
            f"{_fmt_num(counters.get('parallel.maps', 0))}/"
            f"{_fmt_num(counters.get('parallel.chunks', 0))}")

        self._prev = snapshot
        self._prev_t = now
        return "\n".join(lines) + "\n"
