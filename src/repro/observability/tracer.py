"""Structured stage tracing with zero overhead when disabled.

A :class:`Tracer` records *spans*: named intervals (stage name, wall
time, bytes in/out, free-form metadata) emitted by the hot paths --
``DPZCompressor.compress``/``decompress``, the SZ/ZFP baselines, the
Huffman/zlib codec layer and ``parallel_map``.  Spans nest: each span
records its parent and depth, so a trace reconstructs the stage tree
the paper's Fig. 5 draws (and Tables III/IV break down).

Design constraints
------------------
* **Zero overhead when disabled.**  No tracer is installed by default.
  The module-level :func:`span` helper -- the only thing hot paths
  call -- then returns a shared no-op context manager: one global
  load, one ``is None`` test, no allocation, no clock read.  The
  acceptance bar is <1% overhead on a 64^3 field with tracing off.
* **Thread safe.**  ``parallel_map`` workers emit per-chunk spans
  concurrently; span records append under a lock and parent linkage is
  tracked per thread.
* **Self-contained records.**  Finished spans are plain dataclasses;
  :mod:`repro.observability.emit` renders them as NDJSON without
  holding references into the tracer.

Usage
-----
>>> from repro.observability import Tracer, use_tracer
>>> tracer = Tracer()
>>> with use_tracer(tracer):
...     blob = repro.dpz_compress(field)
>>> tracer.stage_shares()["dpz.pca"]        # doctest: +SKIP
0.41
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.devtools.sanitize import checked_lock

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "tracing_enabled",
]


@dataclass
class Span:
    """One finished (or in-flight) traced interval.

    Times are seconds; ``t0`` is relative to the owning tracer's epoch
    so traces from one run share a timeline.  ``bytes_in`` /
    ``bytes_out`` are ``None`` when the stage has no natural byte
    measure.
    """

    name: str
    t0: float
    dur: float = 0.0
    span_id: int = 0
    parent_id: int | None = None
    depth: int = 0
    thread: int = 0
    bytes_in: int | None = None
    bytes_out: int | None = None
    meta: dict = field(default_factory=dict)

    def add(self, *, bytes_in: int | None = None,
            bytes_out: int | None = None, **meta) -> None:
        """Attach late-arriving measurements to the span."""
        if bytes_in is not None:
            self.bytes_in = int(bytes_in)
        if bytes_out is not None:
            self.bytes_out = int(bytes_out)
        if meta:
            self.meta.update(meta)

    @property
    def throughput_mb_s(self) -> float | None:
        """Input megabytes per second, when both quantities exist."""
        if self.bytes_in is None or self.dur <= 0.0:
            return None
        return self.bytes_in / self.dur / 1e6

    def to_dict(self) -> dict:
        """JSON-ready flat record (used by the NDJSON emitter)."""
        rec = {
            "name": self.name,
            "t0": round(self.t0, 9),
            "dur": round(self.dur, 9),
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "thread": self.thread,
        }
        if self.bytes_in is not None:
            rec["bytes_in"] = self.bytes_in
        if self.bytes_out is not None:
            rec["bytes_out"] = self.bytes_out
        if self.meta:
            rec.update(self.meta)
        return rec


class _NullSpan:
    """Shared do-nothing span used when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, **_kw) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into a tracer."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: Span) -> None:
        self._tracer = tracer
        self.record = record

    def __enter__(self) -> Span:
        self._tracer._push(self.record)
        return self.record

    def __exit__(self, *exc) -> bool:
        self._tracer._pop(self.record)
        return False

    def add(self, **kw) -> None:
        self.record.add(**kw)


class Tracer:
    """Collects spans for one traced run.

    Install with :func:`use_tracer` (or :func:`set_tracer`); every
    :func:`span` call anywhere in the library then records into this
    instance until it is uninstalled.

    ``retain_spans=False`` keeps the tracer *live* but unbounded-safe:
    spans still time themselves, feed per-thread live stacks (so the
    sampling profiler and metric gating keep working) and update
    metrics, but finished records are discarded instead of accumulated.
    That is the mode a long-running server wants -- ``dpz serve``
    handling thousands of requests per second must not grow a span
    list without bound.
    """

    def __init__(self, *, retain_spans: bool = True) -> None:
        self._epoch = time.perf_counter()
        self._lock = checked_lock("observability.tracer.Tracer._lock")
        self._retain = bool(retain_spans)
        self._spans: list[Span] = []
        self._next_id = 1
        self._stacks = threading.local()
        # thread ident -> that thread's (live, mutable) span stack.
        # Registered once per thread so the sampling profiler can see
        # every thread's stack; only the owning thread mutates a stack.
        self._live: dict[int, list[Span]] = {}

    # -- span lifecycle ---------------------------------------------------

    def span(self, name: str, *, bytes_in: int | None = None,
             bytes_out: int | None = None, **meta) -> _LiveSpan:
        """Open a span; use as a context manager."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        record = Span(
            name=name, t0=0.0, span_id=span_id,
            thread=threading.get_ident(),
            bytes_in=None if bytes_in is None else int(bytes_in),
            bytes_out=None if bytes_out is None else int(bytes_out),
            meta=dict(meta),
        )
        return _LiveSpan(self, record)

    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
            with self._lock:
                self._live[threading.get_ident()] = stack
        return stack

    def _push(self, record: Span) -> None:
        stack = self._stack()
        if stack:
            record.parent_id = stack[-1].span_id
            record.depth = len(stack)
        stack.append(record)
        record.t0 = time.perf_counter() - self._epoch

    def _pop(self, record: Span) -> None:
        record.dur = time.perf_counter() - self._epoch - record.t0
        stack = self._stack()
        if stack and stack[-1] is record:
            stack.pop()
        elif record in stack:  # unbalanced exit; recover
            stack.remove(record)
        if not self._retain:
            return
        with self._lock:
            self._spans.append(record)

    def live_stacks(self) -> dict[int, tuple[str, ...]]:
        """Every thread's currently-open span names, innermost last.

        This is the sampling profiler's read surface.  Owning threads
        keep mutating their stacks while we read, so each stack is
        snapshotted with one atomic ``list()`` copy -- a sample taken
        mid-push/pop may be one frame stale, which is exactly the
        statistical error a wall-clock sampler already carries.
        """
        with self._lock:
            stacks = list(self._live.items())
        out: dict[int, tuple[str, ...]] = {}
        for ident, stack in stacks:
            names = tuple(s.name for s in list(stack))
            if names:
                out[ident] = names
        return out

    def current(self) -> Span | None:
        """The innermost span still open on *this* thread, if any.

        Lets instrumentation (e.g. quality telemetry) attach metadata
        to whatever stage is running without threading a span handle
        through every call signature.
        """
        stack = self._stack()
        return stack[-1] if stack else None

    # -- results ----------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Finished spans in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop recorded spans (the epoch is preserved)."""
        with self._lock:
            self._spans.clear()

    def stage_times(self, prefix: str = "",
                    top_level_only: bool = True) -> dict[str, float]:
        """Total seconds per span name, optionally filtered by prefix.

        ``top_level_only`` counts only depth-0 -- or, when every
        matching span is nested, minimum-depth -- spans so nested
        sub-spans are not double counted.
        """
        matching = [s for s in self.spans if s.name.startswith(prefix)]
        if top_level_only and matching:
            dmin = min(s.depth for s in matching)
            matching = [s for s in matching if s.depth == dmin]
        out: dict[str, float] = {}
        for s in matching:
            out[s.name] = out.get(s.name, 0.0) + s.dur
        return out

    def stage_shares(self, prefix: str = "") -> dict[str, float]:
        """Per-stage fraction of total traced time (sums to 1.0)."""
        times = self.stage_times(prefix)
        total = sum(times.values())
        if total <= 0.0:
            return {name: 0.0 for name in times}
        return {name: dur / total for name, dur in times.items()}


# -- global installation ----------------------------------------------------

_ACTIVE: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or with ``None`` uninstall) the process tracer.

    Returns the previously installed tracer so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def tracing_enabled() -> bool:
    """Whether a tracer is currently installed."""
    return _ACTIVE is not None


@contextmanager
def use_tracer(tracer: Tracer):
    """Install ``tracer`` for the duration of the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, *, bytes_in: int | None = None,
         bytes_out: int | None = None, **meta):
    """Open a span on the installed tracer; no-op when disabled.

    This is the hook the hot paths call.  With no tracer installed it
    returns a shared null context manager without touching the clock
    or allocating, so instrumented code pays only a global load and a
    ``None`` test.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, bytes_in=bytes_in, bytes_out=bytes_out, **meta)


def current_span() -> Span | None:
    """The installed tracer's innermost open span on this thread."""
    tracer = _ACTIVE
    if tracer is None:
        return None
    return tracer.current()
