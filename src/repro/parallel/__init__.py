"""Block-parallel execution substrate.

The paper notes (Section V-C5) that DPZ's block-based design makes its
stages parallelizable -- in particular quantization/encoding needs "no
communication among the distributed blocks".  This subpackage provides
the machinery: :func:`repro.parallel.executor.parallel_map` runs a
function over block chunks on a thread pool (NumPy releases the GIL in
its C kernels, so threads scale here without pickling overhead), and
:mod:`repro.parallel.chunking` computes balanced block ranges.
"""

from repro.parallel.chunking import chunk_ranges, chunk_slices
from repro.parallel.executor import ParallelConfig, parallel_map

__all__ = ["parallel_map", "ParallelConfig", "chunk_ranges", "chunk_slices"]
