"""Balanced chunking of block ranges for parallel stages.

Splitting M blocks over W workers the naive way (ceil(M/W)-sized runs)
can leave the last worker nearly idle; these helpers distribute the
remainder one block at a time so chunk sizes differ by at most one.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["chunk_ranges", "chunk_slices"]


def chunk_ranges(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``<= chunks`` balanced [start, end) ranges.

    Every range is non-empty; fewer than ``chunks`` ranges are returned
    when ``total < chunks``.  Sizes differ by at most one, larger
    chunks first.
    """
    if total < 0:
        raise ConfigError(f"total must be >= 0, got {total}")
    if chunks < 1:
        raise ConfigError(f"chunks must be >= 1, got {chunks}")
    if total == 0:
        return []
    chunks = min(chunks, total)
    base, extra = divmod(total, chunks)
    ranges: list[tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def chunk_slices(total: int, chunks: int) -> list[slice]:
    """Same as :func:`chunk_ranges` but as :class:`slice` objects."""
    return [slice(a, b) for a, b in chunk_ranges(total, chunks)]
