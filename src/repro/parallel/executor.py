"""Ordered parallel map over data chunks.

A thin, dependency-free layer over :mod:`concurrent.futures`:

* ``n_jobs=1`` (the default) runs serially with zero overhead -- the
  right choice for small inputs, where pool startup dominates;
* ``n_jobs>1`` uses a thread pool.  The heavy kernels this project
  parallelizes (blockwise DCT, quantization, Huffman bit packing) spend
  their time inside NumPy C loops that release the GIL, so threads give
  real speedup without the serialization cost of processes;
* ``n_jobs=0`` or ``None`` auto-sizes to ``os.cpu_count()``.

The thread pool is process-lifetime: the first parallel call creates
it, later calls reuse it, and it is lazily grown (replaced) when a call
asks for more workers than the current pool has.  Spinning up threads
per stage call costs ~100us each; a pipeline with several parallel
stages per field pays that once instead of per stage.  Pool reuse is
observable through the ``parallel.pool.created`` / ``parallel.pool.reused``
counters.  Calls made *from inside* a pool worker (nested parallelism)
use a transient pool so they cannot deadlock waiting on their own pool.

Results are always returned in task order regardless of completion
order, so callers can concatenate chunk outputs directly.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

import time

from repro.devtools.sanitize import checked_lock
from repro.errors import ConfigError
from repro.observability import (
    counter_add,
    gauge_add,
    gauge_set,
    observe,
    span,
    tracing_enabled,
)
from repro.observability.aggregate import (
    capture_worker,
    merge_frames,
    snapshot_frame,
    worker_origin,
)

__all__ = ["ParallelConfig", "parallel_map", "pool_status", "resolve_jobs",
           "shutdown_pool"]

T = TypeVar("T")
R = TypeVar("R")
_U = TypeVar("_U")
_V = TypeVar("_V")


@dataclass(frozen=True)
class ParallelConfig:
    """How parallel stages should run.

    Attributes
    ----------
    n_jobs:
        1 = serial, >1 = that many threads, 0/None = one per CPU.
    min_chunk:
        Inputs smaller than this run serially regardless of ``n_jobs``
        (pool overhead would dominate).
    """

    n_jobs: int | None = 1
    min_chunk: int = 4

    def __post_init__(self) -> None:
        if self.n_jobs is not None and self.n_jobs < 0:
            raise ConfigError(f"n_jobs must be >= 0 or None, got {self.n_jobs}")
        if self.min_chunk < 1:
            raise ConfigError(f"min_chunk must be >= 1, got {self.min_chunk}")


def resolve_jobs(n_jobs: int | None) -> int:
    """Translate the ``n_jobs`` convention into a concrete worker count."""
    if n_jobs is None or n_jobs == 0:
        return os.cpu_count() or 1
    return n_jobs


# -- process-lifetime pool ---------------------------------------------------

class _WorkerFlag(threading.local):
    """Per-thread marker set by the pool initializer."""

    flag: bool = False


_pool: ThreadPoolExecutor | None = None
_pool_workers = 0
_pool_lock = checked_lock("parallel.executor._pool_lock")
_in_worker = _WorkerFlag()


def _worker_init() -> None:
    _in_worker.flag = True


def pool_status() -> dict[str, object]:
    """Liveness snapshot of the shared pool (the ``/healthz`` source).

    Never creates a pool; safe to call from any thread at any time.
    """
    with _pool_lock:
        pool, workers = _pool, _pool_workers
    threads = getattr(pool, "_threads", None) if pool is not None else None
    return {
        "created": pool is not None,
        "workers": workers,
        "alive": (sum(1 for t in threads if t.is_alive())
                  if threads is not None else 0),
    }


def shutdown_pool() -> None:
    """Tear down the shared pool (mainly for tests / interpreter exit)."""
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = None
        _pool_workers = 0


def _get_pool(workers: int) -> ThreadPoolExecutor:
    """Return the shared pool, growing it by replacement if too small.

    The pool only ever grows: a stage that needs 2 workers happily runs
    on an 8-worker pool, but not vice versa.  Replacement shuts the old
    pool down without waiting -- its threads finish their (already
    completed, since calls are serialized by the caller) work and exit.
    """
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is None or _pool_workers < workers:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="repro-parallel",
                initializer=_worker_init,
            )
            _pool_workers = workers
            counter_add("parallel.pool.created")
            gauge_set("parallel.pool.size", workers)
        else:
            counter_add("parallel.pool.reused")
        return _pool


def parallel_map(fn: Callable[[T], R], items: Sequence[T], *,
                 config: ParallelConfig | None = None) -> list[R]:
    """Apply ``fn`` to every item, possibly in parallel; ordered results.

    Exceptions raised by ``fn`` propagate to the caller (the first one
    encountered in task order), matching serial semantics.
    """
    config = config or ParallelConfig()
    # Cap by the number of items *before* deciding serial: n_jobs=0 on a
    # 2-item input is a 2-worker job, and with min_chunk=4 it runs
    # serially even on a many-core box.
    workers = min(resolve_jobs(config.n_jobs), max(len(items), 1))
    serial = workers <= 1 or len(items) < config.min_chunk
    if serial and len(items) < config.min_chunk \
            and resolve_jobs(config.n_jobs) > 1:
        # Parallelism was requested but the work list is too small to
        # amortize pool dispatch -- the tiny-list bypass fired.
        counter_add("parallel.map.bypassed")

    nested = _in_worker.flag
    if nested and not serial:
        counter_add("parallel.pool.nested")

    def submit(pool: ThreadPoolExecutor, task: Callable[[_U], _V],
               payload: Iterable[_U]) -> list[_V]:
        return list(pool.map(task, payload))

    if not tracing_enabled():
        # Untraced fast path: zero instrumentation overhead.
        if serial:
            return [fn(item) for item in items]
        if nested:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return submit(pool, fn, items)
        return submit(_get_pool(workers), fn, items)

    # Traced path: one parent span for the map, one child span per
    # chunk (emitted from the worker thread), so thread scaling and
    # per-chunk skew are visible in the trace.  The queue-depth gauge
    # tracks chunks dispatched but not yet finished; the chunk-latency
    # histogram feeds the bench gate's p50/p95 check.
    counter_add("parallel.maps")
    counter_add("parallel.chunks", len(items))
    gauge_add("parallel.queue.depth", len(items))

    def run_chunk(pair: tuple[int, T]) -> R:
        i, item = pair
        t0 = time.perf_counter()
        try:
            with span("parallel.chunk", index=i):
                return fn(item)
        finally:
            observe("parallel.chunk.seconds", time.perf_counter() - t0)
            gauge_add("parallel.queue.depth", -1)

    def run_chunk_pooled(pair: tuple[int, T]) -> "tuple[R, dict | None]":
        # Pooled tasks capture their metric emissions into a private
        # task-local registry and ship a compact snapshot frame back
        # with the result; the parent merges the frames below.  A task
        # that raises returns no frame, so a failed worker merges
        # nothing (pool not poisoned).  The chunk-latency observation
        # and queue-depth decrement happen *outside* the capture: they
        # are parent-side bookkeeping that must stay live.
        i, item = pair
        origin = worker_origin()
        t0 = time.perf_counter()
        try:
            with capture_worker() as local:
                with span("parallel.chunk", index=i, origin=origin):
                    result = fn(item)
            return result, snapshot_frame(local, origin=origin)
        finally:
            observe("parallel.chunk.seconds", time.perf_counter() - t0)
            gauge_add("parallel.queue.depth", -1)

    with span("parallel.map", n_items=len(items),
              workers=1 if serial else workers, serial=serial) as sp:
        if serial:
            return [run_chunk(p) for p in enumerate(items)]
        if nested:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                pairs = submit(pool, run_chunk_pooled, enumerate(items))
        else:
            pairs = submit(_get_pool(workers), run_chunk_pooled,
                           enumerate(items))
        n_merged = merge_frames(frame for _, frame in pairs)
        sp.add(worker_frames=n_merged)
        return [result for result, _ in pairs]
