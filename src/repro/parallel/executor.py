"""Ordered parallel map over data chunks.

A thin, dependency-free layer over :mod:`concurrent.futures`:

* ``n_jobs=1`` (the default) runs serially with zero overhead -- the
  right choice for small inputs, where pool startup dominates;
* ``n_jobs>1`` uses a thread pool.  The heavy kernels this project
  parallelizes (blockwise DCT, quantization, Huffman bit packing) spend
  their time inside NumPy C loops that release the GIL, so threads give
  real speedup without the serialization cost of processes;
* ``n_jobs=0`` or ``None`` auto-sizes to ``os.cpu_count()``.

Results are always returned in task order regardless of completion
order, so callers can concatenate chunk outputs directly.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.errors import ConfigError
from repro.observability import counter_add, span, tracing_enabled

__all__ = ["ParallelConfig", "parallel_map", "resolve_jobs"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ParallelConfig:
    """How parallel stages should run.

    Attributes
    ----------
    n_jobs:
        1 = serial, >1 = that many threads, 0/None = one per CPU.
    min_chunk:
        Inputs smaller than this run serially regardless of ``n_jobs``
        (pool overhead would dominate).
    """

    n_jobs: int | None = 1
    min_chunk: int = 4

    def __post_init__(self) -> None:
        if self.n_jobs is not None and self.n_jobs < 0:
            raise ConfigError(f"n_jobs must be >= 0 or None, got {self.n_jobs}")
        if self.min_chunk < 1:
            raise ConfigError(f"min_chunk must be >= 1, got {self.min_chunk}")


def resolve_jobs(n_jobs: int | None) -> int:
    """Translate the ``n_jobs`` convention into a concrete worker count."""
    if n_jobs is None or n_jobs == 0:
        return os.cpu_count() or 1
    return n_jobs


def parallel_map(fn: Callable[[T], R], items: Sequence[T], *,
                 config: ParallelConfig | None = None) -> list[R]:
    """Apply ``fn`` to every item, possibly in parallel; ordered results.

    Exceptions raised by ``fn`` propagate to the caller (the first one
    encountered in task order), matching serial semantics.
    """
    config = config or ParallelConfig()
    workers = resolve_jobs(config.n_jobs)
    serial = workers <= 1 or len(items) < config.min_chunk
    if not tracing_enabled():
        # Untraced fast path: zero instrumentation overhead.
        if serial:
            return [fn(item) for item in items]
        workers = min(workers, len(items))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))

    # Traced path: one parent span for the map, one child span per
    # chunk (emitted from the worker thread), so thread scaling and
    # per-chunk skew are visible in the trace.
    counter_add("parallel.maps")
    counter_add("parallel.chunks", len(items))

    def run_chunk(pair):
        i, item = pair
        with span("parallel.chunk", index=i):
            return fn(item)

    with span("parallel.map", n_items=len(items),
              workers=1 if serial else min(workers, len(items)),
              serial=serial):
        if serial:
            return [run_chunk(p) for p in enumerate(items)]
        workers = min(workers, len(items))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_chunk, enumerate(items)))
