"""``dpz serve``: a concurrent region-retrieval service over stores.

The serving subsystem turns a :class:`~repro.store.store.Store` (or
several) into a network endpoint: an asyncio HTTP/1.1 server with a
bounded decode worker pool, queue-depth backpressure (503 +
``Retry-After``), and request coalescing so concurrent reads touching
the same chunk decode it once.  Everything is stdlib -- the wire
protocol is specified in FORMATS.md and small enough to speak from
``curl``.

Modules
-------
:mod:`~repro.serve.protocol`
    URL grammar, region-frame encode/decode, error shapes.
:mod:`~repro.serve.coalesce`
    :class:`CoalescingChunkCache` -- singleflight over the store's LRU.
:mod:`~repro.serve.registry`
    Alias -> lazily-opened store map.
:mod:`~repro.serve.app`
    The asyncio server, backpressure, graceful drain.
:mod:`~repro.serve.client`
    Pure-stdlib reference client (tests and bench drive this).
"""

from repro.serve.app import BackgroundServer, ServeApp
from repro.serve.client import ServeClient
from repro.serve.coalesce import CoalescingChunkCache
from repro.serve.protocol import (
    RequestFailed,
    decode_region_frame,
    encode_region_frame,
    format_slices,
    parse_slices,
)
from repro.serve.registry import StoreRegistry

__all__ = [
    "BackgroundServer",
    "CoalescingChunkCache",
    "RequestFailed",
    "ServeApp",
    "ServeClient",
    "StoreRegistry",
    "decode_region_frame",
    "encode_region_frame",
    "format_slices",
    "parse_slices",
]
