"""The ``dpz serve`` application: asyncio accept loop + worker pool.

Architecture (one process, stdlib only)::

    accept loop (asyncio, 1 thread)          worker pool (threads)
    ------------------------------           --------------------
    parse HTTP/1.1 request           ---->   serve.request span
    route + backpressure check               registry.get(alias)
    cheap routes answered inline             store.get_region(...)
    queue region/manifest work               encode DPZR frame
    write response, keep-alive loop  <----   return bytes

The event loop never blocks on a decode: region and manifest requests
run on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`, and
when more than ``max_queue`` of them are in flight the server *sheds*
-- HTTP 503 with a ``Retry-After`` hint -- instead of queueing without
bound (``serve.shed``).  Concurrent requests that miss on the same
chunk decode it once via the registry's per-store
:class:`~repro.serve.coalesce.CoalescingChunkCache`.

Observability: the app installs a ``retain_spans=False``
:class:`~repro.observability.Tracer` when none is active (so
``serve.*`` and ``store.*`` metrics flow without accumulating span
records), opens a ``serve.request`` span around each worker-side
request, and exposes its own registry at ``/metrics`` /
``/metrics.json`` / ``/healthz`` -- the same payloads as the
:mod:`repro.observability.server` telemetry endpoint.

Shutdown is graceful: stop accepting, refuse new requests (503),
drain in-flight ones through the shared
:class:`~repro.observability.lifecycle.Drainer`, then tear down the
pool.  ``dpz serve`` wires SIGTERM/SIGINT to exactly this path.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import os
import threading
import time
from typing import Any

from repro.errors import ConfigError, DataShapeError, ReproError
from repro.observability import counter_inc, gauge_set, observe, span
from repro.observability import tracer as _tracer
from repro.observability.lifecycle import (
    Drainer,
    bind_tcp_socket,
    bind_unix_socket,
    validate_port,
)
from repro.observability.metrics import get_registry, metrics_snapshot
from repro.serve.protocol import (
    REGION_CONTENT_TYPE,
    ROUTES,
    RequestFailed,
    Route,
    encode_region_frame,
    error_body,
    parse_slices,
    parse_target,
)
from repro.serve.registry import StoreRegistry

__all__ = ["ServeApp", "BackgroundServer", "DEFAULT_WORKERS"]

#: Default decode worker-pool width.
DEFAULT_WORKERS = 4

#: Largest request head (request line + headers) the parser accepts.
_MAX_REQUEST_HEAD = 64 * 1024

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _healthz_payload(app: "ServeApp") -> dict[str, Any]:
    # Lazy imports mirror repro.observability.server: both modules are
    # import cycles at module scope, cheap at request time.
    from repro.parallel.executor import pool_status
    from repro.store.store import open_store_stats

    return {
        "status": "draining" if app.draining else "ok",
        "pid": os.getpid(),
        "started_utc": app.started_utc,
        "uptime_s": round(time.time() - app.started_at, 3),
        "tracing": _tracer.tracing_enabled(),
        "pool": pool_status(),
        "stores": open_store_stats(),
        "serving": app.registry.aliases(),
        "workers": app.workers,
        "queue_depth": app.pending,
        "max_queue": app.max_queue,
        "requests": get_registry().counter("serve.requests").value,
    }


class ServeApp:
    """One bound, runnable region-retrieval server.

    Construction binds the listener (so address conflicts surface as a
    one-line :class:`~repro.errors.ConfigError` before any thread
    starts); :meth:`run` serves until the given stop event fires; use
    :class:`BackgroundServer` to run it on a daemon thread.
    """

    def __init__(self, registry: StoreRegistry, *,
                 host: str = "127.0.0.1", port: int = 0,
                 unix_socket: str | None = None,
                 workers: int = DEFAULT_WORKERS,
                 max_queue: int | None = None,
                 drain_timeout: float = 5.0) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if max_queue is None:
            max_queue = workers * 8
        if max_queue < 1:
            raise ConfigError(f"max_queue must be >= 1, got {max_queue}")
        self.registry = registry
        self.workers = int(workers)
        self.max_queue = int(max_queue)
        self._drain_timeout = float(drain_timeout)
        self._drainer = Drainer()
        self._pending = 0
        self.started_at = time.time()
        self.started_utc = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(self.started_at))
        self.unix_socket = unix_socket
        if unix_socket is not None:
            self._sock = bind_unix_socket(unix_socket, what="serve")
            self.host, self.port = "", 0
        else:
            validate_port(port)
            self._sock = bind_tcp_socket(host, port, what="serve")
            self.host = host
            self.port = int(self._sock.getsockname()[1])

    # -- introspection ----------------------------------------------------

    @property
    def url(self) -> str:
        """Base URL for TCP servers (no trailing slash)."""
        if self.unix_socket is not None:
            return f"unix://{self.unix_socket}"
        return f"http://{self.host}:{self.port}"

    @property
    def pending(self) -> int:
        """Decode requests currently queued or running."""
        return self._pending

    @property
    def draining(self) -> bool:
        """Whether graceful shutdown has begun."""
        return self._drainer.closed

    # -- lifecycle --------------------------------------------------------

    async def run(self, stop: "asyncio.Event", *,
                  ready: "threading.Event | None" = None) -> None:
        """Serve until ``stop`` fires, then drain and tear down.

        Installs a ``retain_spans=False`` tracer when none is active
        (restored on exit) so serve/store metrics flow for the whole
        server lifetime without unbounded span growth.
        """
        owned_tracer = None
        if _tracer.get_tracer() is None:
            owned_tracer = _tracer.Tracer(retain_spans=False)
        previous = (_tracer.set_tracer(owned_tracer)
                    if owned_tracer is not None else None)
        pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="dpz-serve")
        self._loop = asyncio.get_running_loop()
        self._pool = pool
        server = await asyncio.start_server(
            self._handle_conn, sock=self._sock, limit=_MAX_REQUEST_HEAD)
        try:
            if ready is not None:
                ready.set()
            await stop.wait()
        finally:
            # Graceful drain: stop accepting, refuse new requests,
            # wait (bounded) for in-flight ones, then tear down.
            server.close()
            self._drainer.close()
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, self._drainer.wait_idle, self._drain_timeout)
            await server.wait_closed()
            pool.shutdown(wait=True, cancel_futures=True)
            self.registry.close()
            if owned_tracer is not None:
                _tracer.set_tracer(previous)

    # -- connection handling ----------------------------------------------

    async def _handle_conn(self, reader: "asyncio.StreamReader",
                           writer: "asyncio.StreamWriter") -> None:
        try:
            while True:
                head = await self._read_head(reader, writer)
                if head is None:
                    return
                method, target, version, headers = head
                keep = await self._respond(method, target, version,
                                           headers, writer)
                if not keep:
                    return
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, TimeoutError):
            pass  # client went away or overran; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(self, reader: "asyncio.StreamReader",
                         writer: "asyncio.StreamWriter"
                         ) -> tuple[str, str, str, dict[str, str]] | None:
        """Read and parse one request head; ``None`` on clean EOF."""
        try:
            raw = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between requests
            raise
        except asyncio.LimitOverrunError:
            await self._write_error(
                writer, "HTTP/1.1", 431,
                f"request head exceeds {_MAX_REQUEST_HEAD} bytes")
            raise
        lines = raw.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            await self._write_error(
                writer, "HTTP/1.1", 400,
                f"malformed request line {lines[0]!r}")
            raise ConnectionResetError
        method, target, version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, version, headers

    async def _respond(self, method: str, target: str, version: str,
                       headers: dict[str, str],
                       writer: "asyncio.StreamWriter") -> bool:
        t0 = time.perf_counter()
        counter_inc("serve.requests")
        keep = (version != "HTTP/1.0"
                and headers.get("connection", "").lower() != "close")
        try:
            tracked = self._drainer.track().__enter__()
        except ConfigError:
            await self._write_error(writer, version, 503,
                                    "server is draining",
                                    retry_after=1.0)
            return False
        try:
            status, body, ctype, extra = await self._dispatch(
                method, target)
            await self._write(writer, version, status, body, ctype,
                              keep=keep, extra=extra)
        finally:
            tracked.__exit__(None, None, None)
            observe("serve.request.seconds", time.perf_counter() - t0)
        return keep

    async def _dispatch(self, method: str, target: str
                        ) -> tuple[int, bytes, str, dict[str, str]]:
        """Route one request; returns (status, body, content-type, extra
        headers).  Never raises -- failures become error JSON."""
        try:
            route = parse_target(target)
            if method != "GET":
                raise RequestFailed(
                    405, f"method {method} not allowed; GET only")
            if route.kind == "healthz":
                return 200, _json(_healthz_payload(self)), \
                    "application/json", {}
            if route.kind == "metrics":
                text = get_registry().render_prometheus()
                return 200, text.encode(), PROMETHEUS_CONTENT_TYPE, {}
            if route.kind == "metrics_json":
                return 200, _json(metrics_snapshot()), \
                    "application/json", {}
            if route.kind == "stores":
                return 200, _json({
                    "stores": self.registry.aliases()}), \
                    "application/json", {}
            # manifest / region hit the store: bounded worker pool with
            # queue-depth backpressure.
            return await self._offload(route)
        except RequestFailed as exc:
            if exc.status != 503:  # sheds count as serve.shed, not errors
                counter_inc("serve.errors")
            extra: dict[str, str] = {}
            body_extra: dict[str, Any] = {}
            if exc.status == 404:
                body_extra["routes"] = list(ROUTES)
            if exc.retry_after is not None:
                extra["Retry-After"] = f"{exc.retry_after:g}"
                body_extra["retry_after"] = exc.retry_after
            return exc.status, error_body(exc.status, str(exc),
                                          **body_extra), \
                "application/json", extra
        except ReproError as exc:
            counter_inc("serve.errors")
            return 500, error_body(
                500, f"{type(exc).__name__}: {exc}"), \
                "application/json", {}
        # A handler bug must become a 500 response, never an unhandled
        # traceback killing the connection task -- the same blanket
        # catch the telemetry server carries.
        except Exception as exc:  # dpzlint: ignore[DPZ302]
            counter_inc("serve.errors")
            return 500, error_body(
                500, f"{type(exc).__name__}: {exc}"), \
                "application/json", {}

    async def _offload(self, route: Route
                       ) -> tuple[int, bytes, str, dict[str, str]]:
        """Run a store-touching route on the worker pool.

        ``_pending`` is only touched on the event-loop thread, so the
        saturation check is race-free without a lock.
        """
        if self._pending >= self.max_queue:
            counter_inc("serve.shed")
            retry = max(0.05, 0.05 * self._pending / self.workers)
            raise RequestFailed(
                503, f"queue saturated ({self._pending} pending, "
                f"cap {self.max_queue}); retry after {retry:.2f}s",
                retry_after=retry)
        self._pending += 1
        gauge_set("serve.queue.depth", float(self._pending))
        try:
            status, body, ctype = await self._loop.run_in_executor(
                self._pool, self.handle, route)
        finally:
            self._pending -= 1
            gauge_set("serve.queue.depth", float(self._pending))
        counter_inc("serve.bytes.sent", len(body))
        return status, body, ctype, {}

    def handle(self, route: Route) -> tuple[int, bytes, str]:
        """Serve one manifest/region route synchronously.

        The worker-pool body -- and the in-process dispatch surface
        tests can call without a socket.  Raises
        :class:`~repro.serve.protocol.RequestFailed` for client
        errors; returns ``(status, body, content_type)``.
        """
        with span("serve.request", kind=route.kind, store=route.alias,
                  field=route.field):
            if route.kind == "manifest":
                return 200, _json(self.registry.manifest(route.alias)), \
                    "application/json"
            store = self.registry.get(route.alias)
            if route.field not in store.names():
                raise RequestFailed(
                    404, f"no field {route.field!r} in store "
                    f"{route.alias!r}; have {store.names()}")
            spec = route.query.get("slices")
            if spec is None:
                raise RequestFailed(
                    400, "missing slices= query parameter "
                    "(e.g. ?slices=0:16,8:24,3)")
            try:
                region = parse_slices(spec)
                arr = store.get_region(route.field, region)
            except (ConfigError, DataShapeError) as exc:
                raise RequestFailed(400, str(exc)) from exc
            return 200, encode_region_frame(route.alias, route.field,
                                            arr), REGION_CONTENT_TYPE

    # -- response writing -------------------------------------------------

    async def _write(self, writer: "asyncio.StreamWriter", version: str,
                     status: int, body: bytes, ctype: str, *,
                     keep: bool, extra: dict[str, str]) -> None:
        reason = _REASONS.get(status, "Response")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(body)}",
                f"Connection: {'keep-alive' if keep else 'close'}"]
        for name, value in extra.items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()

    async def _write_error(self, writer: "asyncio.StreamWriter",
                           version: str, status: int, message: str, *,
                           retry_after: float | None = None) -> None:
        extra = ({} if retry_after is None
                 else {"Retry-After": f"{retry_after:g}"})
        try:
            await self._write(writer, version, status,
                              error_body(status, message),
                              "application/json", keep=False,
                              extra=extra)
        except (ConnectionError, OSError):
            pass


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable",
}


def _json(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True, default=str).encode()


class BackgroundServer:
    """Run a :class:`ServeApp` on a daemon thread (tests, benches).

    >>> app = ServeApp(StoreRegistry(["snap.dpzs"], cache_bytes=1 << 20))
    >>> with BackgroundServer(app) as srv:
    ...     client = ServeClient(app.host, app.port)

    ``close`` performs the same graceful drain the CLI's SIGTERM path
    does.
    """

    def __init__(self, app: ServeApp) -> None:
        self._app = app
        self._ready = threading.Event()
        self._stop: "asyncio.Event | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: threading.Thread | None = None

    @property
    def app(self) -> ServeApp:
        """The served application."""
        return self._app

    def start(self) -> "BackgroundServer":
        """Start serving; returns once the listener is accepting."""
        if self._thread is not None:
            raise ConfigError("serve background thread already started")
        self._thread = threading.Thread(
            target=self._main, name="dpz-serve-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise ConfigError(
                "serve background thread failed to start within 10s")
        return self

    def _main(self) -> None:
        async def _run() -> None:
            self._stop = asyncio.Event()
            self._loop = asyncio.get_running_loop()
            await self._app.run(self._stop, ready=self._ready)

        asyncio.run(_run())

    def close(self) -> None:
        """Graceful drain + thread join; idempotent."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already dead
        thread.join(timeout=30.0)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()
