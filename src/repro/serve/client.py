"""Pure-stdlib client for the ``dpz serve`` wire protocol.

``http.client`` with keep-alive, speaking the same :mod:`protocol
<repro.serve.protocol>` the server does -- this is what the serve
tests and ``benchmarks/bench_serve.py`` drive the server with, and
the reference implementation for anyone writing a client in another
language (the wire format is specified in FORMATS.md).

>>> from repro.serve.client import ServeClient
>>> with ServeClient("127.0.0.1", 8742) as c:
...     arr = c.region("snap", "vx", (slice(0, 16), slice(0, 16), 8))
...     man = c.manifest("snap")

Error mapping: HTTP 503 raises
:class:`~repro.errors.ServeBusyError` carrying the server's
``Retry-After`` hint; every other non-200 raises
:class:`~repro.serve.protocol.RequestFailed` with the server's
message, so client code sees the same exception type the server-side
task raised.  A :class:`ServeClient` is *not* thread-safe (one
underlying connection); give each thread its own instance -- exactly
what the bench's worker threads do.
"""

from __future__ import annotations

import http.client
import json
import socket
import urllib.parse
from typing import Any, Sequence

import numpy as np

from repro.errors import ServeBusyError, ServeError
from repro.serve.protocol import (
    RegionSel,
    RequestFailed,
    decode_region_frame,
    format_slices,
)

__all__ = ["ServeClient"]


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket path."""

    def __init__(self, path: str, timeout: float) -> None:
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServeClient:
    """One keep-alive connection to a ``dpz serve`` endpoint.

    Construct with ``(host, port)`` for TCP or ``unix_socket=`` for a
    unix-domain listener.  Not thread-safe; use one instance per
    thread.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 unix_socket: str | None = None,
                 timeout: float = 30.0) -> None:
        if unix_socket is not None:
            self._conn: http.client.HTTPConnection = \
                _UnixHTTPConnection(unix_socket, timeout)
        else:
            self._conn = http.client.HTTPConnection(
                host, port, timeout=timeout)

    # -- plumbing ---------------------------------------------------------

    def _get(self, path: str) -> tuple[int, dict[str, str], bytes]:
        """One GET on the kept-alive connection; reconnects once."""
        for attempt in (0, 1):
            try:
                self._conn.request("GET", path)
                resp = self._conn.getresponse()
                body = resp.read()
                headers = {k.lower(): v for k, v in resp.getheaders()}
                return resp.status, headers, body
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, OSError) as exc:
                self._conn.close()
                if attempt:
                    raise ServeError(
                        f"request {path!r} failed: {exc}") from exc
        raise ServeError(f"request {path!r} failed")  # unreachable

    def _raise_for_status(self, status: int, headers: dict[str, str],
                          body: bytes, path: str) -> None:
        if status == 200:
            return
        try:
            message = str(json.loads(body).get("error", ""))
        except (ValueError, AttributeError):
            message = body[:200].decode("latin-1")
        if status == 503:
            try:
                retry = float(headers.get("retry-after", "1"))
            except ValueError:
                retry = 1.0
            raise ServeBusyError(
                message or f"server busy on {path!r}",
                retry_after=retry)
        raise RequestFailed(
            status, message or f"HTTP {status} on {path!r}")

    def _get_json(self, path: str) -> Any:
        status, headers, body = self._get(path)
        self._raise_for_status(status, headers, body, path)
        try:
            return json.loads(body)
        except ValueError as exc:
            raise ServeError(
                f"response to {path!r} is not JSON: {exc}") from None

    # -- API --------------------------------------------------------------

    def region(self, alias: str, field: str,
               region: Sequence[RegionSel]
               ) -> "np.ndarray[Any, np.dtype[Any]]":
        """Fetch one region; returns the decoded (read-only) array.

        Bit-identical to an in-process
        ``Store.get_region(field, region)`` on the same store -- the
        serve protocol round-trips raw little-endian array bytes.
        """
        path = (f"/v1/stores/{urllib.parse.quote(alias, safe='')}"
                f"/fields/{urllib.parse.quote(field, safe='')}"
                f"/region?slices="
                + urllib.parse.quote(format_slices(region), safe=":,-"))
        status, headers, body = self._get(path)
        self._raise_for_status(status, headers, body, path)
        _, arr = decode_region_frame(body)
        return arr

    def manifest(self, alias: str) -> dict[str, Any]:
        """One store's manifest payload (fields, codecs, ratios)."""
        payload = self._get_json(
            f"/v1/stores/{urllib.parse.quote(alias, safe='')}/manifest")
        return dict(payload)

    def stores(self) -> list[str]:
        """Aliases the server is configured with."""
        return list(self._get_json("/v1/stores")["stores"])

    def healthz(self) -> dict[str, Any]:
        """The server's liveness payload."""
        return dict(self._get_json("/healthz"))

    def metrics_json(self) -> dict[str, Any]:
        """The server's metric-registry snapshot."""
        return dict(self._get_json("/metrics.json"))

    def metrics_text(self) -> str:
        """The server's Prometheus text exposition."""
        status, headers, body = self._get("/metrics")
        self._raise_for_status(status, headers, body, "/metrics")
        return body.decode("utf-8")

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
