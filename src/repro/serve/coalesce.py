"""Request coalescing for concurrent chunk decodes (singleflight).

The plain :class:`~repro.store.cache.ChunkCache` is thread-safe but
not *coalescing*: two requests missing on the same chunk both decode
it, and only one result lands in the cache.  For a single reader the
wasted decode is noise; for ``dpz serve`` under a zipf-skewed load it
is the difference between N decodes of the hot chunk and one.

:class:`CoalescingChunkCache` layers a singleflight protocol on top of
the LRU:

* The **first** thread to miss on a key *claims* the decode --
  ``get`` returns ``None`` and the caller proceeds exactly as with the
  plain cache (:meth:`~repro.store.store.Store._load_chunk` is
  unchanged).
* **Subsequent** threads missing on the same key *wait* on the
  claimer's flight instead of decoding
  (``serve.coalesce.waits``).  When the claimer's ``put`` lands they
  wake with the decoded array (``serve.coalesce.hits``) -- handed over
  on the flight itself, so coalescing works even with ``max_bytes=0``.
* A claimer that **fails** (backend error, corrupt payload) calls
  ``cancel``; waiters wake empty-handed and fall back to decoding
  themselves, so one poisoned request never wedges its neighbours.
  The store guarantees this via a try/except around the decode path.
* A waiter that **times out** (default 30 s -- far beyond any sane
  decode) also falls back to decoding itself.  The timeout is a
  last-resort liveness guard, not a tuning knob.

The flight table holds only in-flight keys (bounded by worker-pool
width), so it adds no memory pressure beyond the LRU budget.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.devtools.sanitize import checked_lock
from repro.observability import counter_inc
from repro.store.cache import CacheKey, ChunkCache

__all__ = ["CoalescingChunkCache", "DEFAULT_FLIGHT_TIMEOUT"]

#: How long a waiter parks on someone else's decode before giving up
#: and decoding itself (liveness backstop, not a tuning knob).
DEFAULT_FLIGHT_TIMEOUT = 30.0


class _Flight:
    """One in-progress decode: an event plus a result slot."""

    __slots__ = ("event", "value")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any | None = None


class CoalescingChunkCache(ChunkCache):
    """A :class:`ChunkCache` where concurrent misses decode once.

    Drop-in for the plain cache (``Store.open(chunk_cache=...)``); the
    singleflight handshake rides entirely on the existing
    ``get``/``put``/``cancel`` call pattern.
    """

    def __init__(self, max_bytes: int, *,
                 wait_timeout: float = DEFAULT_FLIGHT_TIMEOUT) -> None:
        super().__init__(max_bytes)
        self._wait_timeout = float(wait_timeout)
        self._flights_lock = checked_lock(
            "serve.coalesce.CoalescingChunkCache._flights_lock")
        self._flights: dict[CacheKey, _Flight] = {}

    def inflight(self) -> int:
        """How many decodes are currently claimed (test/metrics hook)."""
        with self._flights_lock:
            return len(self._flights)

    def get(self, key: CacheKey) -> Any | None:
        """LRU hit, coalesced wait, or a claim (``None``).

        ``None`` means *this caller owns the decode* and must follow
        up with ``put(key, ...)`` on success or ``cancel(key)`` on
        failure -- the contract ``Store._load_chunk`` already honours.
        """
        cached = super().get(key)
        if cached is not None:
            return cached
        with self._flights_lock:
            flight = self._flights.get(key)
            if flight is None:
                self._flights[key] = _Flight()
                return None  # caller claims the decode
        counter_inc("serve.coalesce.waits")
        if not flight.event.wait(self._wait_timeout):
            # Liveness backstop: the claimer is wedged (or gone without
            # resolving). Decode ourselves rather than stall forever.
            return None
        value = flight.value
        if value is None:
            # The claimer cancelled (its decode failed). Retry as our
            # own claimer -- our failure mode may differ (e.g. a
            # transient backend fault).
            return None
        counter_inc("serve.coalesce.hits")
        return value

    def put(self, key: CacheKey, chunk: Any) -> Any:
        """Insert into the LRU and resolve the flight, waking waiters."""
        arr = super().put(key, chunk)
        with self._flights_lock:
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.value = arr
            flight.event.set()
        return arr

    def cancel(self, key: CacheKey) -> None:
        """Resolve the flight empty-handed: waiters wake and self-decode."""
        with self._flights_lock:
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.event.set()

    def clear(self) -> None:
        """Drop LRU entries and resolve every flight empty-handed."""
        super().clear()
        with self._flights_lock:
            flights = list(self._flights.values())
            self._flights.clear()
        for flight in flights:
            flight.event.set()
