"""Wire protocol for ``dpz serve``: URL grammar, region frame, errors.

Everything the server and the stdlib client must agree on lives here,
with no dependency on asyncio or sockets, so the whole protocol is
testable as pure functions (and FORMATS.md's "Serve wire protocol"
section is the normative prose for these bytes).

URL grammar
-----------
::

    GET /healthz                        liveness JSON
    GET /metrics                        Prometheus text exposition
    GET /metrics.json                   metrics snapshot JSON
    GET /v1/stores                      {"stores": ["alias", ...]}
    GET /v1/stores/{alias}/manifest     store + per-field metadata JSON
    GET /v1/stores/{alias}/fields/{field}/region?slices=0:16,8:24,3

``alias`` and ``field`` are percent-encoded path segments.  ``slices``
uses the CLI's region grammar -- comma-separated per-dimension
selectors, each either ``start:stop`` (unit-step, either bound
optional) or a bare integer index (the dimension collapses, NumPy
basic-indexing semantics).

Region response frame
---------------------
A successful region read returns ``application/x-dpz-region``::

    bytes 0..3    magic  b"DPZR"
    bytes 4..7    u32le  header_length H
    bytes 8..8+H  JSON header (UTF-8):
                    {"store": ..., "field": ..., "shape": [...],
                     "dtype": "<f4"|"<f8", "order": "C", "nbytes": N}
    then exactly N bytes of raw little-endian C-order array data.

Error responses are ``application/json``:
``{"error": "...", "status": <int>}`` plus optional context keys
(``routes`` on 404s, ``retry_after`` on 503s).
"""

from __future__ import annotations

import json
import struct
import urllib.parse
from dataclasses import dataclass, field as dc_field
from typing import Any, Sequence, Union

import numpy as np

from repro.errors import ConfigError, FormatError, ServeError

__all__ = [
    "FRAME_MAGIC",
    "REGION_CONTENT_TYPE",
    "ROUTES",
    "RequestFailed",
    "Route",
    "decode_region_frame",
    "encode_region_frame",
    "error_body",
    "format_slices",
    "parse_slices",
    "parse_target",
]

FRAME_MAGIC = b"DPZR"
REGION_CONTENT_TYPE = "application/x-dpz-region"

#: Routes advertised in 404 bodies, in documentation order.
ROUTES = (
    "/healthz",
    "/metrics",
    "/metrics.json",
    "/v1/stores",
    "/v1/stores/{alias}/manifest",
    "/v1/stores/{alias}/fields/{field}/region?slices=...",
)

_FRAME_HEAD = struct.Struct("<4sI")

#: Largest JSON header the decoder will read (a shape list for any
#: sane ndim is well under this; the cap keeps a corrupt length field
#: from driving a giant allocation).
_MAX_HEADER = 1 << 20

RegionSel = Union[int, slice]


class RequestFailed(ServeError):
    """A request that maps to a specific HTTP error status.

    The server's task code raises this (or lets taxonomy errors be
    wrapped into it) and the dispatch layer renders it as the error
    JSON; the client re-raises it so callers see the server's message.
    """

    def __init__(self, status: int, message: str, *,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.status = int(status)
        self.retry_after = retry_after


@dataclass
class Route:
    """One parsed request target.

    ``kind`` is one of ``healthz`` / ``metrics`` / ``metrics_json`` /
    ``stores`` / ``manifest`` / ``region``; ``alias`` and ``field``
    are set for the store routes, ``query`` holds decoded query
    parameters (last occurrence wins).
    """

    kind: str
    alias: str = ""
    field: str = ""
    query: dict[str, str] = dc_field(default_factory=dict)


def parse_target(target: str) -> Route:
    """Parse a request target (path + query) into a :class:`Route`.

    Raises :class:`RequestFailed` (404) for anything outside the
    grammar, carrying the route list for the error body.
    """
    split = urllib.parse.urlsplit(target)
    path = split.path.rstrip("/") or "/"
    query = {k: v for k, v in
             urllib.parse.parse_qsl(split.query, keep_blank_values=True)}
    if path == "/healthz":
        return Route("healthz", query=query)
    if path in ("/metrics", "/"):
        return Route("metrics", query=query)
    if path == "/metrics.json":
        return Route("metrics_json", query=query)
    if path == "/v1/stores":
        return Route("stores", query=query)
    parts = [urllib.parse.unquote(p) for p in path.split("/")[1:]]
    if len(parts) == 4 and parts[:2] == ["v1", "stores"] \
            and parts[3] == "manifest" and parts[2]:
        return Route("manifest", alias=parts[2], query=query)
    if len(parts) == 6 and parts[:2] == ["v1", "stores"] \
            and parts[3] == "fields" and parts[5] == "region" \
            and parts[2] and parts[4]:
        return Route("region", alias=parts[2], field=parts[4],
                     query=query)
    raise RequestFailed(404, f"unknown path {split.path!r}")


def parse_slices(spec: str) -> tuple[RegionSel, ...]:
    """Parse ``"0:16,8:24,3"`` into a tuple of slices and ints.

    The single region grammar shared by the ``dpz store region`` CLI
    and the ``slices=`` query parameter.  Raises
    :class:`~repro.errors.ConfigError` on malformed selectors.
    """
    sels: list[RegionSel] = []
    for part in spec.split(","):
        part = part.strip()
        if ":" in part:
            lo, _, hi = part.partition(":")
            try:
                sels.append(slice(int(lo) if lo else None,
                                  int(hi) if hi else None))
            except ValueError:
                raise ConfigError(
                    f"bad region selector {part!r} (want START:STOP "
                    f"or an integer index)") from None
        elif part:
            try:
                sels.append(int(part))
            except ValueError:
                raise ConfigError(
                    f"bad region selector {part!r} (want START:STOP "
                    f"or an integer index)") from None
        else:
            raise ConfigError(f"empty selector in region spec {spec!r}")
    return tuple(sels)


def format_slices(region: Sequence[RegionSel]) -> str:
    """Render a region tuple back into the ``slices=`` grammar.

    The inverse of :func:`parse_slices` for unit-step slices and
    integer selectors; anything else (a step, a non-int) raises
    :class:`~repro.errors.ConfigError` because the wire grammar cannot
    express it.
    """
    parts: list[str] = []
    for sel in region:
        if isinstance(sel, slice):
            if sel.step not in (None, 1):
                raise ConfigError(
                    f"region slices must be unit-step, got step "
                    f"{sel.step!r}")
            lo = "" if sel.start is None else str(int(sel.start))
            hi = "" if sel.stop is None else str(int(sel.stop))
            parts.append(f"{lo}:{hi}")
        elif isinstance(sel, (int, np.integer)):
            parts.append(str(int(sel)))
        else:
            raise ConfigError(
                f"region selector {sel!r} is neither a slice nor an "
                f"integer")
    if not parts:
        raise ConfigError("region must have at least one selector")
    return ",".join(parts)


def encode_region_frame(store: str, field: str,
                        arr: "np.ndarray[Any, np.dtype[Any]]") -> bytes:
    """Serialize one region result as a ``DPZR`` frame."""
    if arr.dtype.newbyteorder("=") == np.dtype(np.float32):
        wire_dtype = "<f4"
    elif arr.dtype.newbyteorder("=") == np.dtype(np.float64):
        wire_dtype = "<f8"
    else:
        raise ConfigError(
            f"region frame carries <f4/<f8 payloads only, got dtype "
            f"{arr.dtype}")
    payload = np.ascontiguousarray(arr, dtype=wire_dtype).tobytes()
    header = json.dumps({
        "store": store,
        "field": field,
        "shape": [int(n) for n in arr.shape],
        "dtype": wire_dtype,
        "order": "C",
        "nbytes": len(payload),
    }, sort_keys=True).encode("utf-8")
    return _FRAME_HEAD.pack(FRAME_MAGIC, len(header)) + header + payload


def decode_region_frame(buf: bytes) -> tuple[
        dict[str, Any], "np.ndarray[Any, np.dtype[Any]]"]:
    """Parse a ``DPZR`` frame into ``(header, array)``.

    Raises :class:`~repro.errors.FormatError` on any structural
    problem -- wrong magic, truncated header or payload, a header that
    disagrees with the payload length.
    """
    if len(buf) < _FRAME_HEAD.size:
        raise FormatError(
            f"region frame truncated: {len(buf)} bytes is shorter "
            f"than the {_FRAME_HEAD.size}-byte frame head")
    magic, header_len = _FRAME_HEAD.unpack_from(buf)
    if magic != FRAME_MAGIC:
        raise FormatError(
            f"bad region frame magic {magic!r} (want {FRAME_MAGIC!r})")
    if header_len > _MAX_HEADER:
        raise FormatError(
            f"region frame header length {header_len} exceeds the "
            f"{_MAX_HEADER}-byte cap")
    head_end = _FRAME_HEAD.size + header_len
    if len(buf) < head_end:
        raise FormatError(
            f"region frame truncated inside the JSON header "
            f"({len(buf)} of {head_end} bytes)")
    try:
        header = json.loads(buf[_FRAME_HEAD.size:head_end])
    except (ValueError, UnicodeDecodeError) as exc:
        raise FormatError(f"region frame header is not JSON: {exc}") \
            from None
    for key in ("store", "field", "shape", "dtype", "nbytes"):
        if key not in header:
            raise FormatError(f"region frame header missing {key!r}")
    dtype = str(header["dtype"])
    if dtype not in ("<f4", "<f8"):
        raise FormatError(
            f"region frame dtype {dtype!r} is not <f4/<f8")
    shape = tuple(int(n) for n in header["shape"])
    payload = buf[head_end:]
    if len(payload) != int(header["nbytes"]):
        raise FormatError(
            f"region frame payload is {len(payload)} bytes, header "
            f"promised {header['nbytes']}")
    expected = int(np.prod(shape, dtype=np.int64)) * int(dtype[-1])
    if len(payload) != expected:
        raise FormatError(
            f"region frame payload is {len(payload)} bytes but shape "
            f"{shape} x dtype {dtype} needs {expected}")
    arr = np.frombuffer(payload, dtype=dtype).reshape(shape)
    return dict(header), arr


def error_body(status: int, message: str,
               **extra: Any) -> bytes:
    """The error-JSON body shared by every failure response."""
    payload: dict[str, Any] = {"error": message, "status": int(status)}
    payload.update(extra)
    return json.dumps(payload, sort_keys=True).encode("utf-8")
