"""Multi-store registry for ``dpz serve``: aliases, lazy open, caching.

``dpz serve snap.dpzs hot=run42.dpzs`` serves several stores from one
process.  Each positional argument is a *spec*: either a bare path
(the alias is the filename stem) or ``alias=path``.  Stores open
lazily -- the first request touching an alias pays the manifest read
-- and each gets its own :class:`CoalescingChunkCache` sized by an
equal share of the server's ``--cache-bytes`` budget, so one hot store
cannot evict the cache out from under the protocol's coalescing
guarantees on another.
"""

from __future__ import annotations

import os
from typing import Any, Iterable

from repro.devtools.sanitize import checked_lock
from repro.errors import ConfigError, FormatError, StoreError
from repro.serve.coalesce import CoalescingChunkCache
from repro.serve.protocol import RequestFailed
from repro.store import Store

__all__ = ["StoreRegistry", "parse_store_spec"]


def parse_store_spec(spec: str) -> tuple[str, str]:
    """Split one CLI store spec into ``(alias, path)``.

    ``"hot=run42.dpzs"`` -> ``("hot", "run42.dpzs")``;
    ``"snap.dpzs"`` -> ``("snap", "snap.dpzs")``.  Aliases are URL
    path segments, so ``/`` is rejected up front.
    """
    if "=" in spec:
        alias, _, path = spec.partition("=")
        alias = alias.strip()
        path = path.strip()
    else:
        path = spec.strip()
        base = os.path.basename(path.rstrip("/\\"))
        alias = base.rsplit(".", 1)[0] if "." in base else base
    if not alias or not path:
        raise ConfigError(
            f"bad store spec {spec!r}: want PATH or ALIAS=PATH")
    if "/" in alias or "\\" in alias:
        raise ConfigError(
            f"store alias {alias!r} must not contain path separators; "
            f"use ALIAS=PATH to pick one explicitly")
    return alias, path


class StoreRegistry:
    """Alias -> lazily-opened :class:`~repro.store.store.Store` map.

    Thread-safe: worker threads race on first-open; the registry lock
    serialises the open so exactly one handle (and one coalescing
    cache) exists per alias.
    """

    def __init__(self, specs: Iterable[str], *,
                 cache_bytes: int) -> None:
        if cache_bytes < 0:
            raise ConfigError(
                f"cache budget must be >= 0 bytes, got {cache_bytes}")
        self._paths: dict[str, str] = {}
        for spec in specs:
            alias, path = parse_store_spec(spec)
            if alias in self._paths:
                raise ConfigError(
                    f"duplicate store alias {alias!r} "
                    f"({self._paths[alias]!r} vs {path!r}); "
                    f"use ALIAS=PATH to disambiguate")
            self._paths[alias] = path
        if not self._paths:
            raise ConfigError("dpz serve needs at least one store")
        # Equal split keeps per-store caches independent; minimum one
        # spare byte so a single-store server with a tiny budget still
        # coalesces (max_bytes=0 disables the LRU, not the flights).
        self._share = cache_bytes // len(self._paths)
        self._lock = checked_lock("serve.registry.StoreRegistry._lock")
        self._stores: dict[str, Store] = {}
        self._caches: dict[str, CoalescingChunkCache] = {}

    def aliases(self) -> list[str]:
        """Registered aliases in CLI order."""
        return list(self._paths)

    def path(self, alias: str) -> str:
        """The backend path behind one alias (404 when unknown)."""
        try:
            return self._paths[alias]
        except KeyError:
            raise RequestFailed(
                404, f"unknown store {alias!r}; serving "
                f"{self.aliases()}") from None

    def get(self, alias: str) -> Store:
        """The (lazily opened) store behind ``alias``.

        Unknown aliases are a client error (404); a registered path
        that fails to open is a server-side condition (502), because
        the operator pointed the server at it.
        """
        path = self.path(alias)
        with self._lock:
            store = self._stores.get(alias)
            if store is None:
                cache = CoalescingChunkCache(self._share)
                try:
                    store = Store.open(path, chunk_cache=cache)
                except (FormatError, StoreError, OSError) as exc:
                    raise RequestFailed(
                        502, f"store {alias!r} ({path!r}) failed to "
                        f"open: {exc}") from exc
                self._stores[alias] = store
                self._caches[alias] = cache
            return store

    def cache(self, alias: str) -> CoalescingChunkCache | None:
        """The coalescing cache behind an *already-opened* alias."""
        with self._lock:
            return self._caches.get(alias)

    def manifest(self, alias: str) -> dict[str, Any]:
        """The JSON manifest payload for one store."""
        store = self.get(alias)
        fields = [store.info(name) for name in store.names()]
        return {
            "alias": alias,
            "path": self.path(alias),
            "total_cr": store.total_cr() if fields else None,
            "fields": fields,
        }

    def close(self) -> None:
        """Drop handles and wake any flight still parked on a cache."""
        with self._lock:
            caches = list(self._caches.values())
            self._stores.clear()
            self._caches.clear()
        for cache in caches:
            cache.clear()
