"""Chunked random-access store (``dpzs``) with per-chunk codecs.

The paper's premise is *information retrieval* on compressed
scientific data; this package is the persistence layer that makes
retrieval cheap.  A :class:`Store` splits every field into a regular
chunk grid, compresses chunks independently and in parallel, records a
seekable tail manifest, and serves rectangular region reads by
decoding only the overlapping chunks -- zarr's storage model, grown on
this project's container/codec substrate.

* :mod:`repro.store.backends` -- pluggable byte-store backends behind
  a ``MutableMapping[str, bytes]`` interface: the v1 single file
  (default), an in-memory dict, a sharded local directory, and a
  seeded fault-injecting wrapper for the fault-matrix test suite.
* :mod:`repro.store.chunking` -- grid geometry and region overlap.
* :mod:`repro.store.format` -- the ``dpzs`` v1 byte layout, the
  manifest frame, and the key/value integrity frame.
* :mod:`repro.store.select` -- ``codec="auto"``: per-chunk online
  selection between SZ / ZFP / DPZ against an error budget, with a
  lossless fallback guaranteeing the budget always holds.
* :mod:`repro.store.store` -- the :class:`Store` itself.

Codecs resolve through :mod:`repro.codecs.registry`, so anything
registered with ``register_codec`` is usable per chunk immediately.

CLI: ``dpz store pack / list / get / region / from-archive / codecs``
(``--backend`` picks the storage layout).
"""

from repro.store.backends import (
    ByteStore,
    DirectoryStore,
    DpzsFileBackend,
    FaultInjectingStore,
    FaultRule,
    MemoryStore,
    resolve_backend,
)
from repro.store.chunking import (
    chunk_slices,
    default_chunk_shape,
    grid_shape,
    iter_chunks,
    normalize_region,
    overlapping_chunks,
)
from repro.store.format import ChunkRef, FieldMeta
from repro.store.select import AUTO_CANDIDATES, compress_chunk_auto
from repro.store.store import Store, open_store_stats

__all__ = [
    "Store",
    "open_store_stats",
    "ByteStore",
    "MemoryStore",
    "DirectoryStore",
    "DpzsFileBackend",
    "FaultInjectingStore",
    "FaultRule",
    "resolve_backend",
    "ChunkRef",
    "FieldMeta",
    "AUTO_CANDIDATES",
    "compress_chunk_auto",
    "default_chunk_shape",
    "grid_shape",
    "chunk_slices",
    "iter_chunks",
    "normalize_region",
    "overlapping_chunks",
]
