"""Chunked random-access store (``dpzs``) with per-chunk codecs.

The paper's premise is *information retrieval* on compressed
scientific data; this package is the persistence layer that makes
retrieval cheap.  A :class:`Store` splits every field into a regular
chunk grid, compresses chunks independently and in parallel, records a
seekable tail manifest, and serves rectangular region reads by
decoding only the overlapping chunks -- zarr's storage model, grown on
this project's container/codec substrate.

* :mod:`repro.store.chunking` -- grid geometry and region overlap.
* :mod:`repro.store.format` -- the ``dpzs`` v1 byte layout.
* :mod:`repro.store.select` -- ``codec="auto"``: per-chunk online
  selection between SZ / ZFP / DPZ against an error budget, with a
  lossless fallback guaranteeing the budget always holds.
* :mod:`repro.store.store` -- the :class:`Store` itself.

CLI: ``dpz store pack / list / get / region / from-archive``.
"""

from repro.store.chunking import (
    chunk_slices,
    default_chunk_shape,
    grid_shape,
    iter_chunks,
    normalize_region,
    overlapping_chunks,
)
from repro.store.format import ChunkRef, FieldMeta
from repro.store.select import AUTO_CANDIDATES, compress_chunk_auto
from repro.store.store import Store

__all__ = [
    "Store",
    "ChunkRef",
    "FieldMeta",
    "AUTO_CANDIDATES",
    "compress_chunk_auto",
    "default_chunk_shape",
    "grid_shape",
    "chunk_slices",
    "iter_chunks",
    "normalize_region",
    "overlapping_chunks",
]
