"""Pluggable byte-store backends for the chunked store.

The :class:`~repro.store.backends.base.ByteStore` interface is the
storage seam: the :class:`~repro.store.store.Store` reads and writes
opaque key/value bytes, backends decide where they live.

* :mod:`~repro.store.backends.base` -- the ``MutableMapping[str,
  bytes]`` contract, keyspace grammar, durability rules.
* :mod:`~repro.store.backends.memory` -- volatile dict backend.
* :mod:`~repro.store.backends.directory` -- one sharded file per key
  under a local directory, atomic replace writes.
* :mod:`~repro.store.backends.dpzs` -- the v1 single-file layout (the
  default; fully backward compatible with pre-refactor files).
* :mod:`~repro.store.backends.faults` -- seeded fault-injecting
  wrapper (I/O errors, torn writes, bit flips, stale reads) driving
  the fault-matrix test suite.

:func:`resolve_backend` maps a user-facing path + backend id onto a
concrete backend, shared by :meth:`Store.open` and the CLI.
"""

from __future__ import annotations

import os
from typing import Union

from repro.errors import ConfigError
from repro.store.backends.base import (
    MANIFEST_KEY,
    ByteStore,
    check_key,
    chunk_key,
)
from repro.store.backends.directory import DirectoryStore
from repro.store.backends.dpzs import DpzsFileBackend
from repro.store.backends.faults import (
    FAULT_KINDS,
    FaultInjectingStore,
    FaultRule,
)
from repro.store.backends.memory import MemoryStore

__all__ = [
    "ByteStore",
    "MemoryStore",
    "DirectoryStore",
    "DpzsFileBackend",
    "FaultInjectingStore",
    "FaultRule",
    "FAULT_KINDS",
    "MANIFEST_KEY",
    "chunk_key",
    "check_key",
    "resolve_backend",
    "BACKEND_IDS",
]

PathLike = Union[str, "os.PathLike[str]"]

#: Backend ids accepted by :func:`resolve_backend` and the CLI.
BACKEND_IDS = ("auto", "file", "dir", "memory")


def resolve_backend(path: PathLike, *, backend: str = "auto",
                    create: bool = False) -> ByteStore:
    """Map ``(path, backend id)`` to a concrete :class:`ByteStore`.

    ``"file"`` is the v1 single-file layout, ``"dir"`` the sharded
    directory layout, ``"memory"`` a fresh volatile store (the path
    becomes its label).  ``"auto"`` picks ``"dir"`` when the path is
    an existing directory or ends with a path separator, else
    ``"file"`` -- so ``dpz store`` keeps working unchanged on
    ``.dpzs`` files.
    """
    if backend not in BACKEND_IDS:
        raise ConfigError(
            f"unknown store backend {backend!r}; "
            f"use one of {BACKEND_IDS}")
    raw = os.fspath(path)
    if backend == "auto":
        if raw.endswith((os.sep, "/")) or os.path.isdir(raw):
            backend = "dir"
        else:
            backend = "file"
    if backend == "memory":
        return MemoryStore(label=raw or "memory")
    if backend == "dir":
        return DirectoryStore(raw, create=create)
    return DpzsFileBackend(raw, create=create)
