"""The byte-store interface every storage backend implements.

A :class:`ByteStore` is a ``MutableMapping[str, bytes]`` -- zarr's
storage model (``zarr.core`` keeps arrays behind exactly this seam).
Everything the chunked :class:`~repro.store.store.Store` persists is a
key/value pair of opaque bytes; *where* those bytes live (RAM, a
sharded directory, a single ``dpzs`` file, a future object store) is a
backend decision the store never sees.

Keyspace grammar (normative; see FORMATS.md "Byte-store keyspace"):
keys are non-empty ``/``-separated printable-ASCII segments without
``\\``, control characters, or the reserved names ``.`` / ``..``.
:func:`check_key` enforces this uniformly so every backend agrees on
what a key is.

Failure contract: backends raise the repro taxonomy, never bare
``OSError``/``KeyError`` -- a missing key is
:class:`~repro.errors.StoreKeyError`, any other backend failure is
:class:`~repro.errors.StoreError`.

Durability contract: ``__setitem__`` of an existing key must be
*atomic* (a reader sees the old value or the new value, never a
splice), and :meth:`flush` must make every prior write durable.  The
store writes chunk keys first and the manifest key last, so a crash at
any point leaves the previous manifest -- and therefore a consistent
store -- readable.
"""

from __future__ import annotations

from typing import Iterator, MutableMapping

from repro.errors import StoreError

__all__ = ["ByteStore", "check_key", "MANIFEST_KEY", "chunk_key"]

#: Key under which the store keeps its (framed) manifest.
MANIFEST_KEY = "manifest"


def chunk_key(field: str, index: int) -> str:
    """Key for chunk ``index`` (C-order grid index) of ``field``."""
    return f"chunks/{field}/{index:d}"


def check_key(key: str) -> str:
    """Validate ``key`` against the keyspace grammar; returns it.

    Raises :class:`~repro.errors.StoreError` for anything a backend
    could mangle: empty keys or segments, non-printable or
    non-ASCII characters, backslashes, and ``.``/``..`` segments
    (which would escape a directory backend's root).
    """
    if not key:
        raise StoreError("empty byte-store key")
    for ch in key:
        if not (0x20 <= ord(ch) < 0x7F) or ch == "\\":
            raise StoreError(
                f"invalid byte-store key {key!r}: keys are printable "
                f"ASCII without backslashes")
    for segment in key.split("/"):
        if not segment:
            raise StoreError(
                f"invalid byte-store key {key!r}: empty segment")
        if segment in (".", ".."):
            raise StoreError(
                f"invalid byte-store key {key!r}: reserved segment "
                f"{segment!r}")
    return key


class ByteStore(MutableMapping[str, bytes]):
    """Abstract key/value byte store (the storage seam of the store).

    Subclasses implement the five ``MutableMapping`` primitives; the
    mixin methods (``get``, ``pop``, ``update``, ``in``) come free
    because :class:`~repro.errors.StoreKeyError` subclasses
    ``KeyError``.
    """

    #: Whether the store layer wraps values in the integrity frame
    #: (CRC32; see FORMATS.md).  The single-file ``dpzs`` backend
    #: opts out to stay bit-identical with the v1 layout.
    framed: bool = True

    #: Short human-readable backend id (CLI and error messages).
    backend_id: str = "abstract"

    def __getitem__(self, key: str) -> bytes:
        raise NotImplementedError

    def __setitem__(self, key: str, value: bytes) -> None:
        raise NotImplementedError

    def __delitem__(self, key: str) -> None:
        raise NotImplementedError

    def __iter__(self) -> Iterator[str]:
        raise NotImplementedError

    def __len__(self) -> int:
        return sum(1 for _ in self)

    # -- extensions beyond MutableMapping ------------------------------

    @property
    def location(self) -> str:
        """Where the bytes live (path, URL, or a synthetic label)."""
        return f"<{self.backend_id}>"

    def locate(self, key: str) -> tuple[int, int] | None:
        """Physical ``(offset, length)`` of ``key``, if addressable.

        Only meaningful for backends that pack values into one
        seekable artifact (the ``dpzs`` file backend); key/value
        backends return ``None`` and the manifest records lengths
        only.
        """
        return None

    def list_prefix(self, prefix: str) -> list[str]:
        """Sorted keys starting with ``prefix``."""
        return sorted(k for k in self if k.startswith(prefix))

    def flush(self) -> None:
        """Make every prior write durable (default: no-op)."""

    def close(self) -> None:
        """Release any held resources (default: flush)."""
        self.flush()

    def __enter__(self) -> "ByteStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.location!r})"
