"""Local-directory byte-store backend with a sharded key layout.

One file per key, fanned out over 256 shard directories so a store
with millions of chunks never piles them into one directory (the
filesystem analogue of zarr's sharded stores)::

    root/
      meta.json              backend marker (format + version)
      3f/chunks%2Fvx%2F0     value of key "chunks/vx/0"
      a1/manifest            value of key "manifest"

The shard is the first byte of SHA-256 of the key; the filename is the
percent-escaped key, so any grammar-valid key maps to exactly one safe
filename and the mapping inverts losslessly when listing.

Writes are atomic: the value lands in a same-shard temporary file
first and is ``os.replace``d over the final name, so a reader (or a
crash) never observes a spliced value -- this is what makes the
store's "manifest last" append protocol durable on this backend.
"""

from __future__ import annotations

import hashlib
import json
import os
import urllib.parse
from typing import Iterator, Union

from repro.errors import StoreError, StoreKeyError
from repro.store.backends.base import ByteStore, check_key

__all__ = ["DirectoryStore"]

PathLike = Union[str, "os.PathLike[str]"]

_MARKER_NAME = "meta.json"
_MARKER = {"format": "dpzs-directory", "version": 1}


def _shard(key: str) -> str:
    return hashlib.sha256(key.encode("ascii")).hexdigest()[:2]


def _escape(key: str) -> str:
    return urllib.parse.quote(key, safe="")


def _unescape(name: str) -> str:
    return urllib.parse.unquote(name)


class DirectoryStore(ByteStore):
    """Byte store over a local directory, one sharded file per key."""

    backend_id = "directory"

    def __init__(self, root: PathLike, *, create: bool = False) -> None:
        self._root = os.fspath(root)
        marker = os.path.join(self._root, _MARKER_NAME)
        try:
            if create:
                os.makedirs(self._root, exist_ok=True)
                with open(marker, "w", encoding="utf-8") as fh:
                    json.dump(_MARKER, fh)
            elif not os.path.isdir(self._root):
                raise StoreError(
                    f"directory store root {self._root!r} does not "
                    f"exist (pass create=True to initialize it)")
        except OSError as exc:
            raise StoreError(
                f"cannot initialize directory store at "
                f"{self._root!r}: {exc}") from exc

    def _path(self, key: str) -> str:
        check_key(key)
        return os.path.join(self._root, _shard(key), _escape(key))

    def __getitem__(self, key: str) -> bytes:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise StoreKeyError(f"no key {key!r} in {self!r}") from None
        except OSError as exc:
            raise StoreError(
                f"cannot read key {key!r} from {self!r}: {exc}") from exc

    def __setitem__(self, key: str, value: bytes) -> None:
        path = self._path(key)
        tmp = path + ".tmp"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "wb") as fh:
                fh.write(bytes(value))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            raise StoreError(
                f"cannot write key {key!r} to {self!r}: {exc}") from exc

    def __delitem__(self, key: str) -> None:
        path = self._path(key)
        try:
            os.remove(path)
        except FileNotFoundError:
            raise StoreKeyError(f"no key {key!r} in {self!r}") from None
        except OSError as exc:
            raise StoreError(
                f"cannot delete key {key!r} from {self!r}: {exc}") from exc

    def __iter__(self) -> Iterator[str]:
        try:
            shards = sorted(
                d for d in os.listdir(self._root)
                if len(d) == 2 and os.path.isdir(
                    os.path.join(self._root, d)))
        except OSError as exc:
            raise StoreError(
                f"cannot list {self!r}: {exc}") from exc
        keys: list[str] = []
        for shard in shards:
            try:
                names = os.listdir(os.path.join(self._root, shard))
            except OSError as exc:
                raise StoreError(
                    f"cannot list shard {shard!r} of {self!r}: "
                    f"{exc}") from exc
            keys.extend(_unescape(n) for n in names
                        if not n.endswith(".tmp"))
        return iter(sorted(keys))

    @property
    def location(self) -> str:
        return self._root
