"""Single-file ``dpzs`` v1 backend: the default, backward-compatible one.

Presents the v1 on-disk layout (fixed header, packed chunk payloads,
tail manifest -- see FORMATS.md) through the :class:`ByteStore`
interface.  Keys map onto byte ranges instead of files:

* ``manifest`` -> the manifest bytes the header points at;
* ``chunks/<field>/<i>`` -> the payload range recorded by the
  manifest's :class:`~repro.store.format.ChunkRef` table (the backend
  decodes the manifest to build this index -- the one backend that is
  allowed to understand the format, because it *is* the format).

Values are stored naked (``framed = False``): a file written through
this backend is byte-for-byte a v1 ``dpzs`` file, and every pre-refactor
file opens unchanged.

Append/durability protocol (tightened from PR 5): chunk payloads are
appended strictly *after* the current manifest, the new manifest is
written after them and fsynced, and only then is the 16-byte header
pointer patched.  The old manifest is never overwritten mid-append, so
a crash at any point before the header patch leaves the previous
manifest -- and the store -- fully readable.
"""

from __future__ import annotations

import os
import struct
from typing import IO, Iterator, Union

from repro.errors import FormatError, StoreError, StoreKeyError
from repro.store.backends.base import ByteStore, check_key, chunk_key
from repro.store.format import (
    HEADER_SIZE,
    decode_manifest,
    encode_manifest,
    pack_header,
    unpack_header,
)

__all__ = ["DpzsFileBackend"]

PathLike = Union[str, "os.PathLike[str]"]

_HEADER_PTR = struct.Struct("<QQ")
_MANIFEST_KEY = "manifest"


class DpzsFileBackend(ByteStore):
    """The v1 single-file layout behind the byte-store interface."""

    framed = False
    backend_id = "dpzs-file"

    def __init__(self, path: PathLike, *, create: bool = False) -> None:
        self._path = os.fspath(path)
        #: keys appended since the last manifest write: key -> (off, len).
        self._pending: dict[str, tuple[int, int]] = {}
        #: next append offset, lazily initialized to the file tail.
        self._tail: int | None = None
        #: chunk-key index decoded from the manifest, built on demand.
        self._index: dict[str, tuple[int, int]] | None = None
        if create:
            manifest = encode_manifest([])
            try:
                with open(self._path, "wb") as fh:
                    fh.write(pack_header(HEADER_SIZE, len(manifest)))
                    fh.write(manifest)
            except OSError as exc:
                raise StoreError(
                    f"cannot create dpzs file {self._path!r}: "
                    f"{exc}") from exc
        else:
            # Validate magic/version up front so Store.open fails fast
            # on a file that is not a dpzs container at all.
            self._read_header()

    # -- low-level file access -----------------------------------------

    def _open(self, mode: str) -> IO[bytes]:
        try:
            return open(self._path, mode)
        except FileNotFoundError:
            raise StoreError(
                f"dpzs file {self._path!r} does not exist") from None
        except OSError as exc:
            raise StoreError(
                f"cannot open dpzs file {self._path!r}: {exc}") from exc

    def _read_header(self) -> tuple[int, int]:
        with self._open("rb") as fh:
            try:
                head = fh.read(HEADER_SIZE)
            except OSError as exc:
                raise StoreError(
                    f"cannot read dpzs header of {self._path!r}: "
                    f"{exc}") from exc
        return unpack_header(head)

    def _read_manifest(self) -> bytes:
        offset, length = self._read_header()
        with self._open("rb") as fh:
            try:
                fh.seek(offset)
                blob = fh.read(length)
            except OSError as exc:
                raise StoreError(
                    f"cannot read dpzs manifest of {self._path!r}: "
                    f"{exc}") from exc
        if len(blob) != length:
            raise FormatError(
                f"dpzs manifest truncated: header promises {length} "
                f"bytes at offset {offset}, file has {len(blob)}")
        return blob

    def _chunk_index(self) -> dict[str, tuple[int, int]]:
        if self._index is None:
            index: dict[str, tuple[int, int]] = {}
            for meta in decode_manifest(self._read_manifest()):
                for i, ref in enumerate(meta.chunks):
                    index[chunk_key(meta.name, i)] = (ref.offset,
                                                      ref.length)
            self._index = index
        return self._index

    def _next_tail(self) -> int:
        if self._tail is None:
            try:
                self._tail = max(os.path.getsize(self._path),
                                 HEADER_SIZE)
            except OSError as exc:
                raise StoreError(
                    f"cannot stat dpzs file {self._path!r}: "
                    f"{exc}") from exc
        return self._tail

    # -- ByteStore interface -------------------------------------------

    def __getitem__(self, key: str) -> bytes:
        check_key(key)
        if key == _MANIFEST_KEY:
            return self._read_manifest()
        loc = self._pending.get(key) or self._chunk_index().get(key)
        if loc is None:
            raise StoreKeyError(f"no key {key!r} in {self!r}")
        offset, length = loc
        with self._open("rb") as fh:
            try:
                fh.seek(offset)
                return fh.read(length)
            except OSError as exc:
                raise StoreError(
                    f"cannot read key {key!r} from {self!r}: "
                    f"{exc}") from exc

    def __setitem__(self, key: str, value: bytes) -> None:
        check_key(key)
        value = bytes(value)
        if key == _MANIFEST_KEY:
            self._write_manifest(value)
            return
        offset = self._next_tail()
        try:
            with self._open("r+b") as fh:
                fh.seek(offset)
                fh.write(value)
        except OSError as exc:
            raise StoreError(
                f"cannot append key {key!r} to {self!r}: {exc}") from exc
        self._pending[key] = (offset, len(value))
        self._tail = offset + len(value)

    def _write_manifest(self, blob: bytes) -> None:
        offset = self._next_tail()
        try:
            with self._open("r+b") as fh:
                fh.seek(offset)
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
                # The 16-byte pointer patch is the commit point: until
                # it lands, readers resolve the previous manifest.
                fh.seek(4 + 1)
                fh.write(_HEADER_PTR.pack(offset, len(blob)))
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            raise StoreError(
                f"cannot write manifest to {self!r}: {exc}") from exc
        self._tail = offset + len(blob)
        self._pending.clear()
        self._index = None

    def __delitem__(self, key: str) -> None:
        raise StoreError(
            f"the dpzs single-file backend is append-only; cannot "
            f"delete key {key!r}")

    def __iter__(self) -> Iterator[str]:
        keys = set(self._chunk_index()) | set(self._pending)
        keys.add(_MANIFEST_KEY)
        return iter(sorted(keys))

    def locate(self, key: str) -> tuple[int, int] | None:
        check_key(key)
        if key == _MANIFEST_KEY:
            return self._read_header()
        return self._pending.get(key) or self._chunk_index().get(key)

    @property
    def location(self) -> str:
        return self._path
