"""Fault-injecting byte-store wrapper: the store's adversarial tester.

Z-checker's thesis (PAPERS.md) is that compressor infrastructure is
only trustworthy when an assessment layer exercises it systematically;
this backend is that layer for storage.  It wraps any
:class:`ByteStore` and injects *seeded, reproducible* faults on chosen
keys and operations:

* ``io-error``   -- the operation raises ``StoreError``, no effect
  (a crashed write, a failed read);
* ``torn-write`` -- only a random-length prefix of the value reaches
  the inner backend, then ``StoreError`` is raised (an interrupted
  non-atomic write);
* ``bit-flip``   -- one seeded bit of the value is flipped on the way
  in (corruption at rest) or out (corruption on the wire);
* ``stale-read`` -- a read returns the key's *previous* value
  (an eventually-consistent or cached keyspace).

Every injected fault is appended to :attr:`FaultInjectingStore.records`
and can be dumped as NDJSON (:meth:`write_log`) -- CI uploads that log
as an artifact so a failing fault-matrix run is replayable from the
exact fault sequence.

The invariants the store must uphold under this wrapper (and the test
suite asserts): operations either raise the repro taxonomy or return
verified-correct data, and after any failed append the previous
manifest still opens.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterator, Union

from repro.errors import ConfigError, StoreError
from repro.observability import counter_inc
from repro.store.backends.base import ByteStore

__all__ = ["FAULT_KINDS", "FaultRule", "FaultInjectingStore"]

#: Supported fault kinds.
FAULT_KINDS = ("io-error", "torn-write", "bit-flip", "stale-read")

_OPS = ("get", "set", "any")

#: Which operations each kind may target.
_KIND_OPS = {
    "io-error": ("get", "set", "any"),
    "torn-write": ("set",),
    "bit-flip": ("get", "set", "any"),
    "stale-read": ("get",),
}


@dataclass(frozen=True)
class FaultRule:
    """One fault to inject: what, where, how often.

    ``key_glob`` is an ``fnmatch`` pattern over keys (``"manifest"``,
    ``"chunks/vx/*"``); ``probability`` is evaluated per matching
    operation with the wrapper's seeded RNG; ``max_faults`` caps how
    many times the rule fires (``None`` = unlimited).
    """

    kind: str
    op: str = "any"
    key_glob: str = "*"
    probability: float = 1.0
    max_faults: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"use one of {FAULT_KINDS}")
        if self.op not in _OPS:
            raise ConfigError(
                f"unknown fault op {self.op!r}; use one of {_OPS}")
        if self.op not in _KIND_OPS[self.kind]:
            raise ConfigError(
                f"fault kind {self.kind!r} cannot target op "
                f"{self.op!r} (allowed: {_KIND_OPS[self.kind]})")
        if not 0.0 < self.probability <= 1.0:
            raise ConfigError(
                f"fault probability must be in (0, 1], got "
                f"{self.probability}")

    def matches(self, op: str, key: str) -> bool:
        """Static match: op and key pattern (budget/dice live outside)."""
        return (self.op in (op, "any")
                and fnmatchcase(key, self.key_glob))


class FaultInjectingStore(ByteStore):
    """Wrap ``inner`` and inject the configured faults, reproducibly.

    The first rule that matches an operation (in declaration order,
    with its probability and budget) fires; at most one fault is
    injected per operation, so a fault log line maps 1:1 onto an
    observable effect.
    """

    backend_id = "fault"

    def __init__(self, inner: ByteStore,
                 rules: Union[FaultRule, list[FaultRule],
                              tuple[FaultRule, ...]],
                 *, seed: int = 0) -> None:
        if isinstance(rules, FaultRule):
            rules = (rules,)
        self._inner = inner
        self._rules: tuple[FaultRule, ...] = tuple(rules)
        self._rng = random.Random(seed)
        self._seed = seed
        self._fired: dict[int, int] = {}
        self._history: dict[str, bytes] = {}
        #: Injected-fault records, in order (NDJSON-ready dicts).
        self.records: list[dict[str, object]] = []

    @property
    def framed(self) -> bool:  # type: ignore[override]
        """Mirror the wrapped backend: faults change bytes, not layout."""
        return self._inner.framed

    @property
    def inner(self) -> ByteStore:
        """The wrapped backend."""
        return self._inner

    # -- fault machinery -----------------------------------------------

    def _pick(self, op: str, key: str) -> tuple[int, FaultRule] | None:
        for i, fault_rule in enumerate(self._rules):
            if not fault_rule.matches(op, key):
                continue
            if (fault_rule.max_faults is not None
                    and self._fired.get(i, 0) >= fault_rule.max_faults):
                continue
            if (fault_rule.probability < 1.0
                    and self._rng.random() >= fault_rule.probability):
                continue
            return i, fault_rule
        return None

    def _record(self, index: int, fault_rule: FaultRule, op: str,
                key: str, **detail: object) -> None:
        self._fired[index] = self._fired.get(index, 0) + 1
        counter_inc("store.faults.injected")
        self.records.append({
            "event": "fault",
            "seq": len(self.records),
            "kind": fault_rule.kind,
            "op": op,
            "key": key,
            "rule": index,
            "seed": self._seed,
            "backend": self._inner.backend_id,
            "detail": detail,
        })

    @staticmethod
    def _flip_bit(value: bytes, bit: int) -> bytes:
        out = bytearray(value)
        out[bit // 8] ^= 1 << (bit % 8)
        return bytes(out)

    def write_log(self, path: str) -> None:
        """Append the fault records to ``path`` as NDJSON lines."""
        with open(path, "a", encoding="utf-8") as fh:
            for rec in self.records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")

    # -- ByteStore interface -------------------------------------------

    def __getitem__(self, key: str) -> bytes:
        picked = self._pick("get", key)
        if picked is not None and picked[1].kind == "io-error":
            index, fault_rule = picked
            self._record(index, fault_rule, "get", key)
            raise StoreError(
                f"injected I/O error reading key {key!r}")
        value = self._inner[key]
        if picked is None:
            return value
        index, fault_rule = picked
        if fault_rule.kind == "bit-flip" and value:
            bit = self._rng.randrange(len(value) * 8)
            self._record(index, fault_rule, "get", key, bit=bit)
            return self._flip_bit(value, bit)
        if fault_rule.kind == "stale-read" and key in self._history:
            self._record(index, fault_rule, "get", key,
                         stale_nbytes=len(self._history[key]))
            return self._history[key]
        return value

    def __setitem__(self, key: str, value: bytes) -> None:
        value = bytes(value)
        picked = self._pick("set", key)
        if picked is None:
            self._remember(key)
            self._inner[key] = value
            return
        index, fault_rule = picked
        if fault_rule.kind == "io-error":
            self._record(index, fault_rule, "set", key)
            raise StoreError(
                f"injected I/O error writing key {key!r}")
        if fault_rule.kind == "torn-write":
            cut = self._rng.randrange(len(value)) if value else 0
            self._record(index, fault_rule, "set", key,
                         cut=cut, nbytes=len(value))
            self._remember(key)
            self._inner[key] = value[:cut]
            raise StoreError(
                f"injected torn write on key {key!r}: {cut} of "
                f"{len(value)} bytes reached the backend")
        # bit-flip on write: silent corruption at rest.
        self._remember(key)
        if value:
            bit = self._rng.randrange(len(value) * 8)
            self._record(index, fault_rule, "set", key, bit=bit)
            value = self._flip_bit(value, bit)
        self._inner[key] = value

    def _remember(self, key: str) -> None:
        """Snapshot the current value so stale reads can serve it."""
        previous = self._inner.get(key)
        if previous is not None:
            self._history[key] = previous

    def __delitem__(self, key: str) -> None:
        del self._inner[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._inner)

    def __len__(self) -> int:
        return len(self._inner)

    def locate(self, key: str) -> tuple[int, int] | None:
        return self._inner.locate(key)

    def list_prefix(self, prefix: str) -> list[str]:
        return self._inner.list_prefix(prefix)

    def flush(self) -> None:
        self._inner.flush()

    def close(self) -> None:
        self._inner.close()

    @property
    def location(self) -> str:
        return f"fault({self._inner.location})"
