"""In-memory byte-store backend: a dict behind the interface.

The reference implementation of the :class:`ByteStore` contract and
the substrate the fault-injecting wrapper usually wraps in tests --
every operation is atomic and instantaneous, so whatever a fault test
observes is the fault, not the filesystem.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import StoreKeyError
from repro.store.backends.base import ByteStore, check_key

__all__ = ["MemoryStore"]


class MemoryStore(ByteStore):
    """Volatile dict-backed byte store."""

    backend_id = "memory"

    def __init__(self, label: str = "memory") -> None:
        self._data: dict[str, bytes] = {}
        self._label = label

    def __getitem__(self, key: str) -> bytes:
        check_key(key)
        try:
            return self._data[key]
        except KeyError:
            raise StoreKeyError(f"no key {key!r} in {self!r}") from None

    def __setitem__(self, key: str, value: bytes) -> None:
        check_key(key)
        self._data[key] = bytes(value)

    def __delitem__(self, key: str) -> None:
        check_key(key)
        try:
            del self._data[key]
        except KeyError:
            raise StoreKeyError(f"no key {key!r} in {self!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._data))

    def __len__(self) -> int:
        return len(self._data)

    @property
    def location(self) -> str:
        return f"<{self._label}>"
