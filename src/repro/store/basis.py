"""Cross-chunk PCA-basis reuse for DPZ-compressed store chunks.

Sibling chunks of one field are statistically alike: the projection
basis DPZ fits on one 16^3 chunk almost always satisfies the TVE
threshold on the next one.  Without reuse, ``Store.add`` re-pays the
stage-2 eigendecomposition for every chunk -- multiplied again by the
``codec="auto"`` trial loop.  With reuse, the basis is fitted once on a
*representative* chunk and every other chunk merely verifies it
(:meth:`DPZCompressor.compress_with_stats` projects, checks the
achieved TVE against the configured threshold, and silently refits when
the check fails -- the error budget is a guarantee, not a hope).

Determinism: the cache is seeded by exactly one chunk and then
*sealed* before the parallel fan-out.  Every other chunk sees the same
single candidate basis, so the compressed bytes are identical whatever
``n_jobs`` is or how threads interleave.  Letting refits update the
cache mid-flight would make payloads depend on completion order.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.api import scheme_config
from repro.core.compressor import DPZCompressor, DPZStats
from repro.core.config import DPZConfig
from repro.devtools.sanitize import checked_lock
from repro.observability import counter_inc

__all__ = ["BasisCache", "compress_dpz", "representative_index"]

Array = "np.ndarray[Any, np.dtype[Any]]"


class BasisCache:
    """One fitted ``(k, M)`` float32 basis, keyed to one chunk shape.

    Only chunks of the primary (full) chunk shape participate: edge
    chunks have different feature geometry and always fit fresh.  The
    cache is write-once -- :meth:`record` installs the first fitted
    basis of the right shape until :meth:`seal` is called, after which
    it is read-only (see the module docstring on determinism).
    """

    def __init__(self, chunk_shape: tuple[int, ...]) -> None:
        self._shape = tuple(int(c) for c in chunk_shape)
        self._lock = checked_lock("store.basis.BasisCache._lock")
        self._basis: "Array | None" = None
        self._sealed = False

    @property
    def chunk_shape(self) -> tuple[int, ...]:
        """The chunk shape this cache serves."""
        return self._shape

    def get(self, shape: tuple[int, ...]) -> "Array | None":
        """Candidate basis for a chunk of ``shape`` (or ``None``)."""
        if tuple(int(c) for c in shape) != self._shape:
            return None
        with self._lock:
            return self._basis

    def seal(self) -> None:
        """Freeze the cache; later fits only count, never install."""
        with self._lock:
            self._sealed = True

    def record(self, shape: tuple[int, ...], stats: DPZStats,
               had_candidate: bool) -> None:
        """Account one chunk's outcome (and maybe seed the basis).

        * reused -> ``store.basis.reuses``;
        * fresh fit after a declined candidate -> ``store.basis.refits``;
        * first fresh fit of the right shape before sealing -> cached,
          ``store.basis.fits``.
        """
        if stats.basis_reused:
            counter_inc("store.basis.reuses")
            return
        if had_candidate:
            counter_inc("store.basis.refits")
            return
        if (stats.basis is not None
                and tuple(int(c) for c in shape) == self._shape):
            with self._lock:
                if not self._sealed and self._basis is None:
                    self._basis = stats.basis
                    counter_inc("store.basis.fits")


def compress_dpz(chunk: Any, cache: "BasisCache | None" = None, *,
                 scheme: str = "l", tve_nines: int | None = None,
                 knee: bool = False, knee_fit: str = "1d",
                 use_sampling: bool = False,
                 config: DPZConfig | None = None) -> bytes:
    """DPZ-compress one chunk, reusing ``cache``'s basis when it holds.

    Same keywords (and same payload bytes, when no basis is reused) as
    :func:`repro.api.dpz_compress`; a reused basis changes the payload
    but never the self-describing format or the TVE contract.
    """
    cfg = config or scheme_config(scheme, tve_nines=tve_nines, knee=knee,
                                  knee_fit=knee_fit,
                                  use_sampling=use_sampling)
    arr = np.asarray(chunk)
    candidate = cache.get(tuple(arr.shape)) if cache is not None else None
    blob, stats = DPZCompressor(cfg).compress_with_stats(
        arr, reuse_basis=candidate)
    if cache is not None:
        cache.record(tuple(arr.shape), stats, candidate is not None)
    return blob


def representative_index(chunk_shapes: list[tuple[int, ...]],
                         full_shape: tuple[int, ...]) -> int | None:
    """Index of the chunk whose fit should seed the basis cache.

    The middle of the full-shape chunks -- interior chunks see typical
    field structure, corners see boundary effects.  ``None`` when no
    chunk has the full shape (field smaller than one chunk edge-on).
    """
    full = tuple(int(c) for c in full_shape)
    candidates = [i for i, s in enumerate(chunk_shapes)
                  if tuple(int(c) for c in s) == full]
    if not candidates:
        return None
    return candidates[len(candidates) // 2]
