"""Byte-budgeted LRU cache of *decoded* chunks for :class:`Store`.

Region reads decode every overlapping chunk even when the request only
touches a sliver of it -- that is the 7x decoded-byte amplification the
store benchmarks measure.  Workloads with locality (sweeping planes,
re-reading a hot subvolume, ``get`` after ``get_region``) re-decode the
same chunks over and over.  This cache keeps recently decoded chunks in
memory, keyed by ``(field, chunk_index)``, bounded by a byte budget and
evicted least-recently-used first.

Design points:

* **Purely in-memory.**  Nothing about the on-disk format changes; a
  cache is private to one :class:`Store` handle and dies with it.
* **Thread-safe.**  All bookkeeping happens under one lock; payload
  decode happens *outside* the lock (two racing threads may both decode
  the same chunk -- wasted work, never wrong results).
* **Read-only entries.**  Cached arrays are marked non-writable before
  insertion, so a cache hit can safely hand the same array to many
  readers; consumers copy the slices they need.
* **Observable.**  ``store.cache.hits`` / ``misses`` / ``evictions`` /
  ``invalidations`` counters and the ``store.cache.bytes`` gauge make
  hit rates and residency visible in traces.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

import numpy as np

from repro.devtools.sanitize import checked_lock
from repro.errors import ConfigError
from repro.observability import counter_inc, gauge_set

__all__ = ["ChunkCache", "DEFAULT_CACHE_BYTES"]

#: Default decoded-chunk budget per store handle (64 MiB): large enough
#: to hold every chunk of the bench fields, small next to the data
#: sizes the store targets.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024

CacheKey = tuple[str, int]


class ChunkCache:
    """LRU mapping of ``(field, chunk_index) -> decoded ndarray``.

    ``max_bytes=0`` disables caching (every ``get`` misses, ``put`` is
    a no-op), which keeps the calling code branch-free.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes < 0:
            raise ConfigError(
                f"cache budget must be >= 0 bytes, got {max_bytes}")
        self._max_bytes = int(max_bytes)
        self._lock = checked_lock("store.cache.ChunkCache._lock")
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._nbytes = 0

    @property
    def max_bytes(self) -> int:
        """The configured byte budget."""
        return self._max_bytes

    @property
    def nbytes(self) -> int:
        """Bytes currently held."""
        with self._lock:
            return self._nbytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Any | None:
        """Return the cached (read-only) array or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                counter_inc("store.cache.misses")
                return None
            self._entries.move_to_end(key)
            counter_inc("store.cache.hits")
            return entry

    def put(self, key: CacheKey, chunk: Any) -> Any:
        """Insert a decoded chunk; returns the (read-only) stored array.

        The array is marked non-writable in place when owned, else a
        read-only copy is stored.  Chunks larger than the whole budget
        are returned read-only but not cached.
        """
        arr = np.asarray(chunk)
        if not arr.flags.owndata and arr.base is not None:
            arr = arr.copy()
        arr.flags.writeable = False
        size = int(arr.nbytes)
        if size > self._max_bytes:
            return arr
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._nbytes -= int(old.nbytes)
            self._entries[key] = arr
            self._nbytes += size
            while self._nbytes > self._max_bytes:
                _, victim = self._entries.popitem(last=False)
                self._nbytes -= int(victim.nbytes)
                counter_inc("store.cache.evictions")
            gauge_set("store.cache.bytes", float(self._nbytes))
        return arr

    def cancel(self, key: CacheKey) -> None:
        """Abandon a decode the caller claimed but cannot finish.

        A no-op here: the plain cache hands out no claims.  Coalescing
        subclasses (:class:`repro.serve.coalesce.CoalescingChunkCache`)
        override this to wake waiters parked on the failed key --
        :class:`~repro.store.store.Store` calls it whenever a decode
        that followed a cache miss raises.
        """

    def invalidate_field(self, name: str) -> int:
        """Drop every entry of one field; returns how many were held."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == name]
            for key in doomed:
                victim = self._entries.pop(key)
                self._nbytes -= int(victim.nbytes)
            if doomed:
                counter_inc("store.cache.invalidations", len(doomed))
                gauge_set("store.cache.bytes", float(self._nbytes))
        return len(doomed)

    def clear(self) -> None:
        """Drop everything."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._nbytes = 0
            if count:
                counter_inc("store.cache.invalidations", count)
                gauge_set("store.cache.bytes", 0.0)
