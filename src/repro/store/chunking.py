"""Chunk-grid geometry for the ``dpzs`` store.

Pure integer arithmetic, no NumPy: given a field shape and a chunk
shape, these helpers enumerate the regular chunk grid (C-order), map
grid coordinates to array slices, and -- the heart of random access --
compute which chunks overlap an arbitrary rectangular region.  Edge
chunks are simply smaller; nothing is padded, because every chunk
payload is a self-describing codec container that knows its own shape.

The region vocabulary mirrors NumPy basic indexing restricted to what
a seekable store can serve cheaply: integers and unit-step slices per
dimension (negative values allowed, steps other than 1 rejected).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

from repro.errors import ConfigError, DataShapeError

__all__ = [
    "RegionSpec",
    "auto_chunk_shape",
    "default_chunk_shape",
    "validate_chunk_shape",
    "grid_shape",
    "chunk_slices",
    "iter_chunks",
    "chunk_index",
    "normalize_region",
    "overlapping_chunks",
]

#: One per-dimension selector: an index or a unit-step slice.
RegionSpec = Union[int, slice, Sequence[Union[int, slice]]]

#: Default chunk edge by dimensionality: roughly 32k-128k values per
#: chunk, small enough that a point read decodes little, large enough
#: that per-chunk container overhead stays negligible.
_DEFAULT_EDGE = {1: 65536, 2: 256}
_DEFAULT_EDGE_ND = 32


def default_chunk_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    """Pick a chunk shape for ``shape`` (per-dim edge capped by ndim)."""
    edge = _DEFAULT_EDGE.get(len(shape), _DEFAULT_EDGE_ND)
    return tuple(min(n, edge) for n in shape)


#: Value budget for one auto-selected chunk: ~64k values (512 KiB of
#: float64), small enough that a single-plane read decodes little,
#: large enough that per-chunk container overhead stays negligible.
_AUTO_TARGET_VALUES = 65536


def auto_chunk_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    """Plane-aligned chunk shape: full trailing extents, thin axis 0.

    Region reads on scientific fields overwhelmingly select planes or
    slabs along the slowest-varying axis (z-slices of a 3-D volume,
    row ranges of a 2-D table).  A chunk spanning the full extent of
    every trailing dimension serves such a read from contiguous
    chunks whose decoded values are *all* requested -- read
    amplification approaches 1 instead of the edge-cubed blowup a
    cubic chunk pays when only one of its planes is wanted.  The
    leading extent is sized so one chunk holds about
    ``_AUTO_TARGET_VALUES`` values (never less than one plane).

    For 1-D fields plane alignment is meaningless and the per-ndim
    default applies.
    """
    if len(shape) <= 1:
        return default_chunk_shape(shape)
    plane = 1
    for n in shape[1:]:
        plane *= int(n)
    lead = max(1, _AUTO_TARGET_VALUES // max(plane, 1))
    return (min(int(shape[0]), lead),) + tuple(int(n) for n in shape[1:])


def validate_chunk_shape(shape: tuple[int, ...],
                         chunk_shape: tuple[int, ...]) -> tuple[int, ...]:
    """Check ``chunk_shape`` against ``shape``; returns it normalized.

    Every chunk dimension must be a positive integer; oversize chunk
    dims are clamped to the field extent (a 16^3 chunk request on an
    8^3 field is one whole-field chunk, not an error).
    """
    if len(chunk_shape) != len(shape):
        raise DataShapeError(
            f"chunk shape {chunk_shape} has {len(chunk_shape)} dims, "
            f"field shape {shape} has {len(shape)}")
    out = []
    for n, c in zip(shape, chunk_shape):
        if int(c) < 1:
            raise ConfigError(
                f"chunk shape {chunk_shape} has non-positive entry {c}")
        out.append(min(int(c), int(n)))
    return tuple(out)


def grid_shape(shape: tuple[int, ...],
               chunk_shape: tuple[int, ...]) -> tuple[int, ...]:
    """Number of chunks along each dimension (ceil division)."""
    return tuple(-(-n // c) for n, c in zip(shape, chunk_shape))


def chunk_slices(shape: tuple[int, ...], chunk_shape: tuple[int, ...],
                 coord: tuple[int, ...]) -> tuple[slice, ...]:
    """Array slices covered by the chunk at grid coordinate ``coord``."""
    return tuple(slice(c * ch, min((c + 1) * ch, n))
                 for n, ch, c in zip(shape, chunk_shape, coord))


def iter_chunks(shape: tuple[int, ...], chunk_shape: tuple[int, ...]
                ) -> Iterator[tuple[tuple[int, ...], tuple[slice, ...]]]:
    """Yield ``(grid_coord, array_slices)`` for every chunk, C-order."""
    grid = grid_shape(shape, chunk_shape)
    for coord in _iter_grid(grid):
        yield coord, chunk_slices(shape, chunk_shape, coord)


def _iter_grid(grid: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
    """C-order iteration over a grid (last axis fastest)."""
    if not grid:
        yield ()
        return
    coord = [0] * len(grid)
    total = 1
    for g in grid:
        total *= g
    for _ in range(total):
        yield tuple(coord)
        for axis in range(len(grid) - 1, -1, -1):
            coord[axis] += 1
            if coord[axis] < grid[axis]:
                break
            coord[axis] = 0


def chunk_index(grid: tuple[int, ...], coord: tuple[int, ...]) -> int:
    """Linearize a grid coordinate in C-order."""
    idx = 0
    for g, c in zip(grid, coord):
        idx = idx * g + c
    return idx


def normalize_region(shape: tuple[int, ...], region: RegionSpec
                     ) -> tuple[tuple[tuple[int, int], ...],
                                tuple[bool, ...]]:
    """Resolve a region spec to per-dim ``(start, stop)`` bounds.

    Returns ``(bounds, collapse)`` where ``collapse[d]`` is True for
    dimensions selected by an integer (dropped from the result, NumPy
    style).  Missing trailing dimensions default to the full extent.
    Raises :class:`~repro.errors.ConfigError` for non-unit steps,
    out-of-range integer indices, or too many selectors.
    """
    sels: list[int | slice]
    if isinstance(region, (int, slice)):
        sels = [region]
    else:
        sels = list(region)
    if len(sels) > len(shape):
        raise ConfigError(
            f"region has {len(sels)} selectors for a "
            f"{len(shape)}-dimensional field")
    sels += [slice(None)] * (len(shape) - len(sels))
    bounds: list[tuple[int, int]] = []
    collapse: list[bool] = []
    for d, (n, sel) in enumerate(zip(shape, sels)):
        if isinstance(sel, slice):
            if sel.step not in (None, 1):
                raise ConfigError(
                    f"region dim {d}: only unit-step slices are "
                    f"supported, got step {sel.step}")
            start, stop, _ = sel.indices(n)
            bounds.append((start, max(stop, start)))
            collapse.append(False)
        else:
            i = int(sel)
            if i < -n or i >= n:
                raise ConfigError(
                    f"region dim {d}: index {i} out of range for "
                    f"extent {n}")
            if i < 0:
                i += n
            bounds.append((i, i + 1))
            collapse.append(True)
    return tuple(bounds), tuple(collapse)


def overlapping_chunks(shape: tuple[int, ...],
                       chunk_shape: tuple[int, ...],
                       bounds: tuple[tuple[int, int], ...]
                       ) -> Iterator[tuple[int, ...]]:
    """Grid coordinates of every chunk intersecting ``bounds`` (C-order).

    Empty bounds (``start == stop`` in any dimension) yield nothing.
    """
    ranges: list[range] = []
    for (lo, hi), ch in zip(bounds, chunk_shape):
        if hi <= lo:
            return
        ranges.append(range(lo // ch, -(-hi // ch)))
    grid = [len(r) for r in ranges]
    for coord in _iter_grid(tuple(grid)):
        yield tuple(r[c] for r, c in zip(ranges, coord))
