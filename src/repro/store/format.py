"""``dpzs`` v1 on-disk layout: header, chunk payloads, tail manifest.

File layout (see FORMATS.md for the normative spec)::

    offset  0  magic  b"DPZS"
    offset  4  u8     version (1)
    offset  5  u64le  manifest_offset
    offset 13  u64le  manifest_length
    offset 21  chunk payloads (each a self-describing codec container)
    ...        manifest (below), at manifest_offset

The manifest lives at the *tail* so that appending a field never
rewrites existing payloads: new chunks are written over the old
manifest's bytes, a fresh manifest follows them, and the fixed-width
header pointer is patched last.  A reader that opens the store touches
exactly ``HEADER_SIZE + manifest_length`` bytes; chunk payloads are
read individually on demand.

The manifest itself reuses the shared positional-section frame
(:mod:`repro.codecs.container`, magic ``DPZM``), one section per
field.  All integers are LEB128 uvarints, all fixed-width scalars
little-endian.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.codecs.container import pack_sections, unpack_sections
from repro.codecs.varint import decode_uvarint, encode_uvarint
from repro.errors import CodecError, FormatError

__all__ = [
    "MAGIC",
    "MANIFEST_MAGIC",
    "KV_VALUE_MAGIC",
    "VERSION",
    "HEADER_SIZE",
    "DTYPE_TAGS",
    "ChunkRef",
    "FieldMeta",
    "pack_header",
    "unpack_header",
    "encode_manifest",
    "decode_manifest",
    "pack_kv_value",
    "unpack_kv_value",
]

MAGIC = b"DPZS"
MANIFEST_MAGIC = b"DPZM"
KV_VALUE_MAGIC = b"DPZB"
VERSION = 1
HEADER_SIZE = 21

_KV_HEAD = struct.Struct("<4sI")

_HEADER = struct.Struct("<4sBQQ")

#: dtype tag -> little-endian NumPy dtype string.
DTYPE_TAGS = {"f4": "<f4", "f8": "<f8"}


@dataclass(frozen=True)
class ChunkRef:
    """One chunk payload: absolute file offset, byte length, codec."""

    offset: int
    length: int
    codec: str


@dataclass
class FieldMeta:
    """Manifest record for one field of a store."""

    name: str
    codec_label: str
    dtype_tag: str
    shape: tuple[int, ...]
    chunk_shape: tuple[int, ...]
    original_nbytes: int
    error_budget: float | None
    chunks: list[ChunkRef] = field(default_factory=list)


def pack_header(manifest_offset: int, manifest_length: int) -> bytes:
    """Serialize the fixed-width file header."""
    return _HEADER.pack(MAGIC, VERSION, manifest_offset, manifest_length)


def unpack_header(buf: bytes) -> tuple[int, int]:
    """Parse the header; returns ``(manifest_offset, manifest_length)``."""
    if len(buf) < HEADER_SIZE:
        raise FormatError(
            f"dpzs header truncated: {len(buf)} bytes (need "
            f"{HEADER_SIZE})")
    magic, version, offset, length = _HEADER.unpack(buf[:HEADER_SIZE])
    if magic != MAGIC:
        raise FormatError(
            f"bad magic: expected {MAGIC!r}, got {magic!r}")
    if version != VERSION:
        raise FormatError(
            f"unsupported dpzs version {version} (want {VERSION})")
    if offset < HEADER_SIZE:
        raise FormatError(
            f"manifest offset {offset} points inside the header")
    return offset, length


def pack_kv_value(payload: bytes) -> bytes:
    """Wrap a key/value-backend value in the integrity frame.

    ``DPZB || u32le crc32(payload) || payload``.  Generic byte-store
    backends hold naked blobs with no positional redundancy, so the
    store adds this checksum envelope to every value it writes there
    (the single-file v1 backend opts out: its layout predates the
    frame and its payload positions are cross-checked by the
    manifest).
    """
    return _KV_HEAD.pack(KV_VALUE_MAGIC,
                         zlib.crc32(payload) & 0xFFFFFFFF) + payload


def unpack_kv_value(blob: bytes) -> bytes:
    """Validate and strip the integrity frame of :func:`pack_kv_value`.

    A missing magic, truncated head, or checksum mismatch raises
    :class:`~repro.errors.FormatError` -- this is what turns a torn
    write or bit flip inside a key/value backend into a clean,
    detectable failure instead of silent corruption.
    """
    if len(blob) < _KV_HEAD.size:
        raise FormatError(
            f"store value truncated: {len(blob)} bytes (need at "
            f"least {_KV_HEAD.size} for the integrity frame)")
    magic, crc = _KV_HEAD.unpack(blob[: _KV_HEAD.size])
    if magic != KV_VALUE_MAGIC:
        raise FormatError(
            f"store value has bad frame magic: expected "
            f"{KV_VALUE_MAGIC!r}, got {magic!r}")
    payload = blob[_KV_HEAD.size :]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FormatError(
            "store value failed its CRC32 integrity check "
            "(torn write or bit rot in the backend)")
    return payload


def _encode_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return encode_uvarint(len(raw)) + raw


def _decode_str(buf: bytes, pos: int, what: str) -> tuple[str, int]:
    ln, pos = decode_uvarint(buf, pos)
    if pos + ln > len(buf):
        raise FormatError(f"truncated {what} in dpzs manifest")
    return buf[pos : pos + ln].decode("utf-8"), pos + ln


def encode_manifest(fields: list[FieldMeta]) -> bytes:
    """Serialize the manifest (one section per field)."""
    sections: list[bytes] = []
    for meta in fields:
        out = bytearray()
        out += _encode_str(meta.name)
        out += _encode_str(meta.codec_label)
        out += meta.dtype_tag.encode("ascii")
        out += encode_uvarint(len(meta.shape))
        for n in meta.shape:
            out += encode_uvarint(n)
        for c in meta.chunk_shape:
            out += encode_uvarint(c)
        out += encode_uvarint(meta.original_nbytes)
        if meta.error_budget is None:
            out += b"\x00" + struct.pack("<d", 0.0)
        else:
            out += b"\x01" + struct.pack("<d", float(meta.error_budget))
        codecs = sorted({ref.codec for ref in meta.chunks})
        codec_id = {name: i for i, name in enumerate(codecs)}
        out += encode_uvarint(len(codecs))
        for name in codecs:
            out += _encode_str(name)
        out += encode_uvarint(len(meta.chunks))
        for ref in meta.chunks:
            out += encode_uvarint(ref.offset)
            out += encode_uvarint(ref.length)
            out += encode_uvarint(codec_id[ref.codec])
        sections.append(bytes(out))
    return pack_sections(MANIFEST_MAGIC, VERSION, sections)


def _decode_field(sec: bytes) -> FieldMeta:
    pos = 0
    name, pos = _decode_str(sec, pos, "field name")
    codec_label, pos = _decode_str(sec, pos, "codec label")
    if pos + 2 > len(sec):
        raise FormatError(f"field {name!r}: truncated dtype tag")
    dtype_tag = sec[pos : pos + 2].decode("ascii")
    pos += 2
    if dtype_tag not in DTYPE_TAGS:
        raise FormatError(
            f"field {name!r}: unknown dtype tag {dtype_tag!r}")
    ndim, pos = decode_uvarint(sec, pos)
    if ndim < 1 or ndim > 32:
        raise FormatError(
            f"field {name!r}: implausible ndim {ndim}")
    shape: list[int] = []
    for _ in range(ndim):
        n, pos = decode_uvarint(sec, pos)
        shape.append(n)
    chunk_shape: list[int] = []
    for _ in range(ndim):
        c, pos = decode_uvarint(sec, pos)
        if c < 1:
            raise FormatError(
                f"field {name!r}: non-positive chunk extent {c}")
        chunk_shape.append(c)
    original_nbytes, pos = decode_uvarint(sec, pos)
    if pos + 9 > len(sec):
        raise FormatError(f"field {name!r}: truncated error budget")
    has_budget = sec[pos]
    (budget_value,) = struct.unpack("<d", sec[pos + 1 : pos + 9])
    pos += 9
    budget = float(budget_value) if has_budget else None
    n_codecs, pos = decode_uvarint(sec, pos)
    codecs: list[str] = []
    for _ in range(n_codecs):
        cname, pos = _decode_str(sec, pos, f"field {name!r} codec name")
        codecs.append(cname)
    n_chunks, pos = decode_uvarint(sec, pos)
    expected = 1
    for n, c in zip(shape, chunk_shape):
        expected *= -(-n // c)
    if n_chunks != expected:
        raise FormatError(
            f"field {name!r}: manifest lists {n_chunks} chunks, grid "
            f"{tuple(shape)} / {tuple(chunk_shape)} needs {expected}")
    chunks: list[ChunkRef] = []
    for i in range(n_chunks):
        offset, pos = decode_uvarint(sec, pos)
        length, pos = decode_uvarint(sec, pos)
        cid, pos = decode_uvarint(sec, pos)
        if cid >= len(codecs):
            raise FormatError(
                f"field {name!r}: chunk {i} references codec id {cid} "
                f"but only {len(codecs)} codecs are declared")
        if offset < HEADER_SIZE:
            raise FormatError(
                f"field {name!r}: chunk {i} offset {offset} points "
                f"inside the header")
        chunks.append(ChunkRef(offset=offset, length=length,
                               codec=codecs[cid]))
    return FieldMeta(
        name=name, codec_label=codec_label, dtype_tag=dtype_tag,
        shape=tuple(shape), chunk_shape=tuple(chunk_shape),
        original_nbytes=original_nbytes, error_budget=budget,
        chunks=chunks,
    )


def decode_manifest(blob: bytes) -> list[FieldMeta]:
    """Parse :func:`encode_manifest` output.

    Any corruption -- truncated frame, mangled varint, inconsistent
    chunk count -- raises :class:`~repro.errors.FormatError`.
    """
    try:
        sections = unpack_sections(blob, MANIFEST_MAGIC, VERSION)
        fields = [_decode_field(sec) for sec in sections]
    except FormatError:
        raise
    except (CodecError, IndexError, ValueError, OverflowError,
            UnicodeDecodeError, struct.error) as exc:
        raise FormatError(f"corrupt dpzs manifest: {exc}") from exc
    names = [m.name for m in fields]
    if len(set(names)) != len(names):
        raise FormatError(f"dpzs manifest repeats field names: {names}")
    return fields
