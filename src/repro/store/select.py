"""Per-chunk automatic codec selection against an error budget.

Tao et al. ("Optimizing Lossy Compression Rate-Distortion from
Automatic Online Selection between SZ and ZFP") showed that the best
error-bounded compressor flips between SZ and ZFP *per region* of a
field; a chunked store is exactly the granularity at which that choice
pays.  ``codec="auto"`` implements the online-selection loop per
chunk:

1. **trial**: compress a deterministic sampled plane of the chunk with
   each candidate (SZ at ``eps=budget``, ZFP at ``tolerance=budget``,
   DPZ-s), decode it, and discard candidates whose plane error exceeds
   the budget;
2. **rank** the survivors by trial compressed size (best ratio first);
3. **verify**: compress the full chunk with the winner and check the
   *actual* max absolute error against the budget; on violation fall
   through to the next candidate, and ultimately to the lossless
   ``raw`` codec, which satisfies any budget by construction.

Step 3 is what turns a heuristic into a guarantee: whatever the trial
plane missed, no chunk ever leaves ``compress_chunk_auto`` violating
the requested budget.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.codecs.registry import codec_functions
from repro.errors import ConfigError, ReproError
from repro.observability import counter_inc
from repro.store.basis import BasisCache, compress_dpz

__all__ = ["AUTO_CANDIDATES", "candidate_kwargs", "trial_plane",
           "compress_chunk_auto"]

CompressFn = Callable[..., bytes]
DecompressFn = Callable[[bytes], "np.ndarray[Any, np.dtype[Any]]"]

#: Candidate codecs tried by ``codec="auto"``, in declaration order.
AUTO_CANDIDATES: tuple[str, ...] = ("sz", "zfp", "dpz")

#: Per-codec trial/compress keyword arguments for a given budget.
_KWARGS: dict[str, Callable[[float], dict[str, Any]]] = {
    "sz": lambda budget: {"eps": budget},
    "zfp": lambda budget: {"tolerance": budget},
    "dpz": lambda budget: {"scheme": "s", "tve_nines": 6},
    "raw": lambda budget: {},
}


def candidate_kwargs(codec: str, budget: float) -> dict[str, Any]:
    """Codec keyword arguments that target ``budget`` for this codec.

    SZ and ZFP take the budget directly as their error bound; DPZ has
    no absolute-error knob, so it runs its strict scheme and relies on
    the full-chunk verification step to accept or reject the result.
    """
    try:
        return _KWARGS[codec](float(budget))
    except KeyError:
        raise ConfigError(
            f"no auto-selection mapping for codec {codec!r}; "
            f"candidates are {AUTO_CANDIDATES}") from None


def _fns(codec: str) -> tuple[CompressFn, DecompressFn]:
    return codec_functions(codec)


def trial_plane(chunk: "np.ndarray[Any, np.dtype[Any]]"
                ) -> "np.ndarray[Any, np.dtype[Any]]":
    """Deterministic sample of a chunk used for trial compression.

    The middle plane along axis 0 for >= 2-D chunks (the cheapest
    slice that still sees the chunk's full transverse structure); a
    4x-strided subsample for 1-D chunks.  Pure function of the chunk,
    so two runs trial the exact same values.
    """
    if chunk.ndim >= 2:
        return np.ascontiguousarray(chunk[chunk.shape[0] // 2])
    return np.ascontiguousarray(chunk[:: max(1, chunk.size // 4096)])


def _max_abs_err(a: "np.ndarray[Any, np.dtype[Any]]",
                 b: "np.ndarray[Any, np.dtype[Any]]") -> float:
    return float(np.max(np.abs(a.astype("<f8") - b.astype("<f8"))))


def compress_chunk_auto(chunk: "np.ndarray[Any, np.dtype[Any]]",
                        budget: float,
                        basis_cache: "BasisCache | None" = None
                        ) -> tuple[str, bytes]:
    """Pick a codec for ``chunk`` and compress it under ``budget``.

    Returns ``(codec_name, payload)``.  The payload's full-chunk max
    absolute error is verified to be ``<= budget``; the lossless
    ``raw`` codec is the final fallback, so the contract always holds.

    ``basis_cache`` lets the DPZ candidate reuse a sibling chunk's
    fitted projection basis (see :mod:`repro.store.basis`); the
    verification step here is unchanged, so the budget guarantee does
    not depend on the reused basis being any good.
    """
    if not budget > 0.0:
        raise ConfigError(
            f"codec='auto' needs a positive error budget, got {budget}")
    plane = trial_plane(chunk)
    ranked: list[tuple[int, str]] = []
    for codec in AUTO_CANDIDATES:
        compress, decompress = _fns(codec)
        counter_inc("store.auto.trials")
        try:
            blob = compress(plane, **candidate_kwargs(codec, budget))
            recon = decompress(blob)
        except ReproError:
            continue  # candidate cannot represent this plane at all
        if _max_abs_err(plane, recon) <= budget:
            ranked.append((len(blob), codec))
    ranked.sort()
    for _, codec in ranked:
        compress, decompress = _fns(codec)
        try:
            if codec == "dpz" and basis_cache is not None:
                payload = compress_dpz(chunk, basis_cache,
                                       **candidate_kwargs(codec, budget))
            else:
                payload = compress(chunk, **candidate_kwargs(codec, budget))
            recon = decompress(payload)
        except ReproError:
            continue
        if _max_abs_err(chunk, recon) <= budget:
            return codec, payload
        counter_inc("store.auto.fallbacks")
    raw_compress, _ = _fns("raw")
    return "raw", raw_compress(chunk)
