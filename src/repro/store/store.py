"""The :class:`Store`: a chunked, random-access compression container.

Where :class:`~repro.archive.FieldArchive` compresses each field as
one monolithic payload (so reading an 8^3 corner of a 128^3 field
decompresses all of it), a ``Store`` splits every field into a regular
chunk grid, compresses chunks independently (in parallel, via the
pooled :func:`~repro.parallel.executor.parallel_map`), and keeps a
seekable manifest so :meth:`get_region` reads and decodes *only the
chunks that overlap the request*::

    from repro.store import Store

    with Store.create("snapshot.dpzs") as st:
        st.add("vx", field, codec="sz", eps=1e-3,
               chunk_shape=(16, 16, 16), n_jobs=4)
        st.add("rho", density, codec="auto", error_budget=1e-4)

    st = Store.open("snapshot.dpzs")       # reads header+manifest only
    corner = st.get_region("vx", (slice(0, 16), slice(0, 16), 8))

``codec="auto"`` picks a codec *per chunk* (SZ / ZFP / DPZ, lossless
fallback) against an absolute error budget -- see
:mod:`repro.store.select`.  Appending a field to an existing store
rewrites only the tail manifest, never the stored payloads.

Observability: every pack and region read runs under a tracer span and
feeds the ``store.*`` metric namespace (chunks compressed/decoded,
compressed bytes read vs. bytes decoded, region-read latency
histogram), so decoded-byte amplification is measurable in production,
not just in benchmarks.
"""

from __future__ import annotations

import os
import struct
import time
from typing import IO, Any, Iterable, Union

import numpy as np

from repro.archive import CODECS, FieldArchive
from repro.errors import CodecError, ConfigError, DataShapeError, FormatError
from repro.observability import counter_inc, gauge_set, observe, span
from repro.parallel.executor import ParallelConfig, parallel_map
from repro.store import chunking
from repro.store.chunking import RegionSpec
from repro.store.format import (
    DTYPE_TAGS,
    HEADER_SIZE,
    ChunkRef,
    FieldMeta,
    decode_manifest,
    encode_manifest,
    pack_header,
    unpack_header,
)
from repro.store.select import CompressFn, DecompressFn, compress_chunk_auto

__all__ = ["Store"]

PathLike = Union[str, "os.PathLike[str]"]
Array = "np.ndarray[Any, np.dtype[Any]]"

#: Default keyword arguments used when re-chunking an archive whose
#: per-field codec settings were not preserved (they never are: an
#: archive stores payloads, not configurations).  Matches the ``dpz
#: pack`` CLI defaults.
_FROM_ARCHIVE_KW: dict[str, dict[str, Any]] = {
    "sz": {"rel_eps": 1e-4},
    "mgard": {"rel_eps": 1e-4},
    "zfp": {"rate": 8.0},
}


def _codec_fns(codec: str) -> tuple[CompressFn, DecompressFn]:
    compress, decompress = CODECS[codec]
    return compress, decompress  # type: ignore[return-value]


def _canonical(data: Any) -> tuple[Any, str]:
    """Contiguous little-endian array + its dtype tag."""
    arr = np.asarray(data)
    if arr.dtype.newbyteorder("=") == np.dtype(np.float32):
        return np.ascontiguousarray(arr, dtype="<f4"), "f4"
    return np.ascontiguousarray(arr, dtype="<f8"), "f8"


class Store:
    """A chunked multi-field store with random-access region reads.

    Use :meth:`create` / :meth:`open`; the constructor is internal.
    Instances are cheap handles around a path plus the parsed
    manifest -- chunk payloads stay on disk until a read asks for
    them.
    """

    def __init__(self, path: PathLike, fields: list[FieldMeta],
                 manifest_offset: int, manifest_length: int) -> None:
        self._path = os.fspath(path)
        self._fields: dict[str, FieldMeta] = {m.name: m for m in fields}
        self._manifest_offset = manifest_offset
        self._manifest_length = manifest_length

    # -- lifecycle --------------------------------------------------------

    @classmethod
    def create(cls, path: PathLike) -> "Store":
        """Create a new, empty store file (overwrites an existing one)."""
        manifest = encode_manifest([])
        with open(path, "wb") as fh:
            fh.write(pack_header(HEADER_SIZE, len(manifest)))
            fh.write(manifest)
        return cls(path, [], HEADER_SIZE, len(manifest))

    @classmethod
    def open(cls, path: PathLike) -> "Store":
        """Open an existing store *lazily*: header + manifest only.

        No chunk payload is touched; a store holding terabytes of
        chunks opens in one seek and one manifest-sized read.
        """
        with open(path, "rb") as fh:
            offset, length = unpack_header(fh.read(HEADER_SIZE))
            fh.seek(offset)
            manifest = fh.read(length)
        if len(manifest) != length:
            raise FormatError(
                f"dpzs manifest truncated: header promises {length} "
                f"bytes at offset {offset}, file has {len(manifest)}")
        return cls(path, decode_manifest(manifest), offset, length)

    def __enter__(self) -> "Store":
        """Context-manager entry; returns self."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Context-manager exit (the store keeps no open handles)."""

    @property
    def path(self) -> str:
        """The underlying file path."""
        return self._path

    # -- writing ----------------------------------------------------------

    def add(self, name: str, data: Any, *, codec: str = "dpz",
            chunk_shape: int | tuple[int, ...] | None = None,
            error_budget: float | None = None,
            n_jobs: int | None = 1,
            **codec_kwargs: Any) -> None:
        """Chunk, compress (in parallel) and append one field.

        ``codec`` is a fixed codec name (any :data:`repro.archive.CODECS`
        entry) or ``"auto"``, which picks per chunk between SZ / ZFP /
        DPZ under ``error_budget`` (required, absolute).  A scalar (or
        single-element) ``chunk_shape`` broadcasts to every dimension;
        ``None`` picks a per-ndim default.  Existing payloads are never
        rewritten: new chunks and a fresh manifest are appended and the
        header pointer is patched last.

        Raises :class:`~repro.errors.ConfigError` for duplicate names,
        empty arrays, unknown codecs, or a missing/invalid budget.
        """
        if not name or "\x00" in name:
            raise ConfigError(f"invalid field name {name!r}")
        if name in self._fields:
            raise ConfigError(
                f"field {name!r} already exists in store "
                f"{self._path!r}; store fields are immutable")
        if codec != "auto" and codec not in CODECS:
            raise ConfigError(
                f"unknown codec {codec!r}; use 'auto' or one of "
                f"{sorted(CODECS)}")
        if codec == "auto":
            if error_budget is None or not float(error_budget) > 0.0:
                raise ConfigError(
                    "codec='auto' requires a positive error_budget")
        elif error_budget is not None:
            raise ConfigError(
                "error_budget is only meaningful with codec='auto'; "
                f"pass the bound to codec {codec!r} via its own "
                f"keyword (eps=, tolerance=, ...)")
        arr, dtype_tag = _canonical(data)
        if arr.size == 0:
            raise ConfigError(
                f"field {name!r} is empty (shape {arr.shape}); "
                f"an empty field cannot be chunked")
        if chunk_shape is None:
            requested = chunking.default_chunk_shape(arr.shape)
        elif isinstance(chunk_shape, int):
            requested = (chunk_shape,) * arr.ndim
        else:
            requested = tuple(chunk_shape)
            if len(requested) == 1 and arr.ndim > 1:
                requested = requested * arr.ndim
        cshape = chunking.validate_chunk_shape(arr.shape, requested)
        subs = [np.ascontiguousarray(arr[sl])
                for _, sl in chunking.iter_chunks(arr.shape, cshape)]

        if codec == "auto":
            budget = float(error_budget)  # type: ignore[arg-type]

            def compress_one(sub: Any) -> tuple[str, bytes]:
                t0 = time.perf_counter()
                chosen, payload = compress_chunk_auto(sub, budget)
                observe("store.chunk.compress.seconds",
                        time.perf_counter() - t0)
                counter_inc("store.chunks.compressed")
                return chosen, payload
        else:
            compress, _ = _codec_fns(codec)

            def compress_one(sub: Any) -> tuple[str, bytes]:
                t0 = time.perf_counter()
                payload = compress(sub, **codec_kwargs)
                observe("store.chunk.compress.seconds",
                        time.perf_counter() - t0)
                counter_inc("store.chunks.compressed")
                return codec, payload

        with span("store.add", field=name, codec=codec,
                  n_chunks=len(subs), chunk_shape=list(cshape)):
            results = parallel_map(
                compress_one, subs,
                config=ParallelConfig(n_jobs=n_jobs, min_chunk=2))
            meta = FieldMeta(
                name=name, codec_label=codec, dtype_tag=dtype_tag,
                shape=tuple(arr.shape), chunk_shape=cshape,
                original_nbytes=int(arr.nbytes),
                error_budget=(float(error_budget)
                              if error_budget is not None else None),
            )
            self._append(meta, results)
        counter_inc("store.fields.packed")

    def _append(self, meta: FieldMeta,
                payloads: Iterable[tuple[str, bytes]]) -> None:
        """Write payloads over the old manifest, then the new manifest.

        The fixed-width header pointer is patched *last*, so a reader
        holding the file open mid-append still resolves the old
        manifest until the new one is fully on disk.
        """
        with open(self._path, "r+b") as fh:
            fh.seek(self._manifest_offset)
            for chosen, payload in payloads:
                meta.chunks.append(ChunkRef(
                    offset=fh.tell(), length=len(payload), codec=chosen))
                fh.write(payload)
            manifest_offset = fh.tell()
            manifest = encode_manifest(
                list(self._fields.values()) + [meta])
            fh.write(manifest)
            fh.truncate()
            fh.flush()
            fh.seek(4 + 1)
            fh.write(struct.pack("<QQ", manifest_offset, len(manifest)))
        self._fields[meta.name] = meta
        self._manifest_offset = manifest_offset
        self._manifest_length = len(manifest)

    @classmethod
    def from_archive(cls, archive: Union[FieldArchive, PathLike],
                     path: PathLike, *,
                     chunk_shape: int | tuple[int, ...] | None = None,
                     n_jobs: int | None = 1) -> "Store":
        """Re-pack a monolithic :class:`FieldArchive` as a chunked store.

        Each field is decoded once and re-compressed chunkwise with
        the codec recorded in the archive.  Archives do not preserve
        per-field codec *settings*, so lossy codecs run at the ``dpz
        pack`` CLI defaults -- re-pack from the original data when
        exact bounds matter.
        """
        if not isinstance(archive, FieldArchive):
            archive = FieldArchive.load(archive)
        store = cls.create(path)
        for name in archive.names():
            codec = str(archive.info(name)["codec"])
            store.add(name, archive.get(name), codec=codec,
                      chunk_shape=chunk_shape, n_jobs=n_jobs,
                      **_FROM_ARCHIVE_KW.get(codec, {}))
        return store

    # -- reading ----------------------------------------------------------

    def names(self) -> list[str]:
        """Field names in insertion order."""
        return list(self._fields)

    def info(self, name: str) -> dict[str, Any]:
        """Metadata for one field without decoding any chunk."""
        meta = self._require(name)
        compressed = sum(ref.length for ref in meta.chunks)
        by_codec: dict[str, int] = {}
        for ref in meta.chunks:
            by_codec[ref.codec] = by_codec.get(ref.codec, 0) + 1
        return {
            "name": meta.name,
            "codec": meta.codec_label,
            "dtype": meta.dtype_tag,
            "shape": meta.shape,
            "chunk_shape": meta.chunk_shape,
            "n_chunks": len(meta.chunks),
            "chunk_codecs": by_codec,
            "original_nbytes": meta.original_nbytes,
            "compressed_nbytes": compressed,
            "cr": meta.original_nbytes / max(compressed, 1),
            "error_budget": meta.error_budget,
        }

    def total_cr(self) -> float:
        """Aggregate compression ratio over all fields."""
        orig = sum(m.original_nbytes for m in self._fields.values())
        comp = sum(ref.length for m in self._fields.values()
                   for ref in m.chunks)
        return orig / max(comp, 1)

    def get(self, name: str) -> Any:
        """Decode and return one whole field."""
        meta = self._require(name)
        return self.get_region(name, tuple(slice(0, n)
                                           for n in meta.shape))

    def get_region(self, name: str, region: RegionSpec) -> Any:
        """Decode and stitch only the chunks overlapping ``region``.

        ``region`` is a per-dimension sequence of integers and/or
        unit-step slices (NumPy basic-indexing semantics; missing
        trailing dims select everything; integer dims are collapsed).
        Payload bytes for non-overlapping chunks are never read from
        disk, let alone decoded -- the ``store.bytes.read`` /
        ``store.bytes.decoded`` counters record exactly what was.
        """
        meta = self._require(name)
        bounds, collapse = chunking.normalize_region(meta.shape, region)
        out_shape = tuple(hi - lo for lo, hi in bounds)
        dtype = np.dtype(DTYPE_TAGS[meta.dtype_tag])
        out = np.zeros(out_shape, dtype=dtype)
        grid = chunking.grid_shape(meta.shape, meta.chunk_shape)
        coords = list(chunking.overlapping_chunks(
            meta.shape, meta.chunk_shape, bounds))
        t0 = time.perf_counter()
        bytes_read = 0
        bytes_decoded = 0
        with span("store.region", field=name, n_chunks=len(coords)):
            if coords:
                with open(self._path, "rb") as fh:
                    for coord in coords:
                        ref = meta.chunks[chunking.chunk_index(grid, coord)]
                        fh.seek(ref.offset)
                        payload = fh.read(ref.length)
                        bytes_read += len(payload)
                        chunk = self._decode_chunk(meta, ref, payload,
                                                   coord)
                        bytes_decoded += int(chunk.nbytes)
                        self._paste(out, bounds, meta, coord, chunk)
        counter_inc("store.region.reads")
        counter_inc("store.chunks.decoded", len(coords))
        counter_inc("store.bytes.read", bytes_read)
        counter_inc("store.bytes.decoded", bytes_decoded)
        observe("store.region.seconds", time.perf_counter() - t0)
        if out.nbytes:
            gauge_set("store.last.amplification",
                      bytes_decoded / out.nbytes)
        keep = tuple(0 if c else slice(None) for c in collapse)
        return out[keep]

    def _decode_chunk(self, meta: FieldMeta, ref: ChunkRef,
                      payload: bytes, coord: tuple[int, ...]) -> Any:
        if len(payload) != ref.length:
            raise FormatError(
                f"field {meta.name!r} chunk {coord}: payload truncated "
                f"({len(payload)} of {ref.length} bytes)")
        if ref.codec not in CODECS:
            raise FormatError(
                f"field {meta.name!r} chunk {coord} uses unknown codec "
                f"{ref.codec!r}")
        _, decompress = _codec_fns(ref.codec)
        try:
            chunk = decompress(payload)
        except FormatError:
            raise
        except (struct.error, IndexError, ValueError, KeyError,
                OverflowError, CodecError) as exc:
            raise FormatError(
                f"field {meta.name!r} chunk {coord} payload is "
                f"corrupt: {exc}") from exc
        expected = tuple(
            sl.stop - sl.start for sl in chunking.chunk_slices(
                meta.shape, meta.chunk_shape, coord))
        if tuple(chunk.shape) != expected:
            raise FormatError(
                f"field {meta.name!r} chunk {coord} decoded to shape "
                f"{tuple(chunk.shape)}, manifest geometry expects "
                f"{expected}")
        return chunk

    @staticmethod
    def _paste(out: Any, bounds: tuple[tuple[int, int], ...],
               meta: FieldMeta, coord: tuple[int, ...],
               chunk: Any) -> None:
        """Copy the chunk/region intersection into the output array."""
        out_sel: list[slice] = []
        chunk_sel: list[slice] = []
        for (lo, hi), ch, c, ext in zip(bounds, meta.chunk_shape, coord,
                                        chunk.shape):
            base = c * ch
            a = max(lo, base)
            b = min(hi, base + int(ext))
            out_sel.append(slice(a - lo, b - lo))
            chunk_sel.append(slice(a - base, b - base))
        out[tuple(out_sel)] = chunk[tuple(chunk_sel)]

    def _require(self, name: str) -> FieldMeta:
        try:
            return self._fields[name]
        except KeyError:
            raise ConfigError(
                f"no field {name!r} in store; have {self.names()}"
            ) from None
