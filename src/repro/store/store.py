"""The :class:`Store`: a chunked, random-access compression container.

Where :class:`~repro.archive.FieldArchive` compresses each field as
one monolithic payload (so reading an 8^3 corner of a 128^3 field
decompresses all of it), a ``Store`` splits every field into a regular
chunk grid, compresses chunks independently (in parallel, via the
pooled :func:`~repro.parallel.executor.parallel_map`), and keeps a
seekable manifest so :meth:`get_region` reads and decodes *only the
chunks that overlap the request*::

    from repro.store import Store

    with Store.create("snapshot.dpzs") as st:
        st.add("vx", field, codec="sz", eps=1e-3,
               chunk_shape=(16, 16, 16), n_jobs=4)
        st.add("rho", density, codec="auto", error_budget=1e-4)

    st = Store.open("snapshot.dpzs")       # reads header+manifest only
    corner = st.get_region("vx", (slice(0, 16), slice(0, 16), 8))

Storage is pluggable: ``create``/``open`` accept a path (the default
``dpzs`` v1 single-file backend -- fully compatible with pre-existing
files) or any :class:`~repro.store.backends.ByteStore`::

    from repro.store.backends import DirectoryStore, MemoryStore

    with Store.create(DirectoryStore("snap.d", create=True)) as st:
        st.add("vx", field, codec="zfp", rate=12.0)

The store persists exactly two kinds of keys -- ``manifest`` and
``chunks/<field>/<i>`` -- so a backend is ~50 lines of MutableMapping
(see FORMATS.md "Byte-store keyspace" and README "Writing a backend").
Codecs resolve through :mod:`repro.codecs.registry`: anything
registered with ``register_codec`` is immediately usable per chunk,
including ``codec="auto"``'s online SZ/ZFP/DPZ selection
(:mod:`repro.store.select`).

Observability: every pack and region read runs under a tracer span and
feeds the ``store.*`` metric namespace (chunks compressed/decoded,
compressed bytes read vs. bytes decoded, region-read latency
histogram), so decoded-byte amplification is measurable in production,
not just in benchmarks.
"""

from __future__ import annotations

import os
import struct
import time
import weakref
from typing import Any, Iterable, Union

import numpy as np

from repro.archive import FieldArchive
from repro.codecs.registry import codec_functions, codec_ids, have_codec
from repro.errors import (
    CodecError,
    ConfigError,
    FormatError,
    StoreError,
    StoreKeyError,
)
from repro.observability import counter_inc, gauge_set, observe, span
from repro.parallel.executor import ParallelConfig, parallel_map
from repro.store import chunking
from repro.store.backends import (
    MANIFEST_KEY,
    ByteStore,
    chunk_key,
    resolve_backend,
)
from repro.store.basis import (
    BasisCache,
    compress_dpz,
    representative_index,
)
from repro.store.cache import DEFAULT_CACHE_BYTES, ChunkCache
from repro.store.chunking import RegionSpec
from repro.store.format import (
    DTYPE_TAGS,
    HEADER_SIZE,
    ChunkRef,
    FieldMeta,
    decode_manifest,
    encode_manifest,
    pack_kv_value,
    unpack_kv_value,
)
from repro.store.select import compress_chunk_auto

__all__ = ["Store", "open_store_stats"]

PathLike = Union[str, "os.PathLike[str]"]
Array = "np.ndarray[Any, np.dtype[Any]]"

#: Default keyword arguments used when re-chunking an archive whose
#: per-field codec settings were not preserved (they never are: an
#: archive stores payloads, not configurations).  Matches the ``dpz
#: pack`` CLI defaults.
_FROM_ARCHIVE_KW: dict[str, dict[str, Any]] = {
    "sz": {"rel_eps": 1e-4},
    "mgard": {"rel_eps": 1e-4},
    "zfp": {"rate": 8.0},
}


# Every live Store handle, for the telemetry /healthz endpoint.  A
# WeakSet so a handle going out of scope unregisters itself -- Store
# has no close(); its lifecycle *is* garbage collection.
_OPEN_STORES: "weakref.WeakSet[Store]" = weakref.WeakSet()


def open_store_stats() -> dict[str, int]:
    """Aggregate cache occupancy across every live :class:`Store`.

    The ``/healthz`` liveness source: how many handles exist and how
    many decoded-chunk bytes they pin.  Iterating a WeakSet during GC
    is safe -- dead handles simply stop appearing.
    """
    stores = list(_OPEN_STORES)
    return {
        "open_stores": len(stores),
        "cache_bytes": sum(s._cache.nbytes for s in stores),
        "cache_entries": sum(len(s._cache) for s in stores),
    }


def _canonical(data: Any) -> tuple[Any, str]:
    """Contiguous little-endian array + its dtype tag."""
    arr = np.asarray(data)
    if arr.dtype.newbyteorder("=") == np.dtype(np.float32):
        return np.ascontiguousarray(arr, dtype="<f4"), "f4"
    return np.ascontiguousarray(arr, dtype="<f8"), "f8"


class Store:
    """A chunked multi-field store with random-access region reads.

    Use :meth:`create` / :meth:`open`; the constructor is internal.
    Instances are cheap handles around a backend plus the parsed
    manifest -- chunk payloads stay in the backend until a read asks
    for them.
    """

    def __init__(self, backend: ByteStore, fields: list[FieldMeta], *,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 chunk_cache: ChunkCache | None = None) -> None:
        self._backend = backend
        self._fields: dict[str, FieldMeta] = {m.name: m for m in fields}
        self._cache = (chunk_cache if chunk_cache is not None
                       else ChunkCache(cache_bytes))
        _OPEN_STORES.add(self)

    # -- lifecycle --------------------------------------------------------

    @classmethod
    def create(cls, target: Union[PathLike, ByteStore], *,
               backend: str = "auto",
               cache_bytes: int = DEFAULT_CACHE_BYTES) -> "Store":
        """Create a new, empty store.

        ``target`` is a path (resolved via ``backend``: ``"auto"`` /
        ``"file"`` / ``"dir"`` / ``"memory"``; the default is the
        ``dpzs`` v1 single file) or an already-constructed
        :class:`~repro.store.backends.ByteStore`.  ``cache_bytes``
        bounds this handle's in-memory decoded-chunk cache (0
        disables it; the on-disk format is unaffected either way).
        """
        bk = (target if isinstance(target, ByteStore)
              else resolve_backend(target, backend=backend, create=True))
        store = cls(bk, [], cache_bytes=cache_bytes)
        store._write_manifest()
        return store

    @classmethod
    def open(cls, target: Union[PathLike, ByteStore], *,
             backend: str = "auto",
             cache_bytes: int = DEFAULT_CACHE_BYTES,
             chunk_cache: ChunkCache | None = None) -> "Store":
        """Open an existing store *lazily*: manifest only.

        No chunk payload is touched; a store holding terabytes of
        chunks opens with one manifest-sized read.  ``cache_bytes``
        bounds this handle's in-memory decoded-chunk cache (0
        disables it).  ``chunk_cache`` substitutes a pre-built cache
        instance instead -- the hook ``dpz serve`` uses to install its
        coalescing cache -- and overrides ``cache_bytes``.
        """
        bk = (target if isinstance(target, ByteStore)
              else resolve_backend(target, backend=backend))
        try:
            blob = bk[MANIFEST_KEY]
        except StoreKeyError:
            raise FormatError(
                f"no manifest key in backend {bk.location!r}: not a "
                f"store (or never initialized)") from None
        if bk.framed:
            blob = unpack_kv_value(blob)
        return cls(bk, decode_manifest(blob), cache_bytes=cache_bytes,
                   chunk_cache=chunk_cache)

    def __enter__(self) -> "Store":
        """Context-manager entry; returns self."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Context-manager exit: flush the backend."""
        self._backend.flush()

    @property
    def path(self) -> str:
        """Where the store lives (backend location)."""
        return self._backend.location

    @property
    def backend(self) -> ByteStore:
        """The underlying byte-store backend."""
        return self._backend

    # -- writing ----------------------------------------------------------

    def add(self, name: str, data: Any, *, codec: str = "dpz",
            chunk_shape: int | tuple[int, ...] | str | None = None,
            error_budget: float | None = None,
            n_jobs: int | None = 1,
            **codec_kwargs: Any) -> None:
        """Chunk, compress (in parallel) and append one field.

        ``codec`` is any :mod:`repro.codecs.registry` id or
        ``"auto"``, which picks per chunk between SZ / ZFP / DPZ under
        ``error_budget`` (required, absolute).  A scalar (or
        single-element) ``chunk_shape`` broadcasts to every dimension;
        ``None`` picks a per-ndim default; the string ``"auto"`` picks
        a plane-aligned shape tuned for slab reads (see
        :func:`repro.store.chunking.auto_chunk_shape`).  Existing
        payloads are never
        rewritten: new chunks are written first and the manifest key
        last, so a failure mid-append leaves the previous manifest
        intact.

        Raises :class:`~repro.errors.ConfigError` for duplicate names,
        empty arrays, unknown codecs, or a missing/invalid budget.
        """
        if not name or "\x00" in name or "/" in name:
            raise ConfigError(f"invalid field name {name!r}")
        if name in self._fields:
            raise ConfigError(
                f"field {name!r} already exists in store "
                f"{self.path!r}; store fields are immutable")
        if codec != "auto" and not have_codec(codec):
            raise ConfigError(
                f"unknown codec {codec!r}; use 'auto' or one of "
                f"{codec_ids()}")
        if codec == "auto":
            if error_budget is None or not float(error_budget) > 0.0:
                raise ConfigError(
                    "codec='auto' requires a positive error_budget")
        elif error_budget is not None:
            raise ConfigError(
                "error_budget is only meaningful with codec='auto'; "
                f"pass the bound to codec {codec!r} via its own "
                f"keyword (eps=, tolerance=, ...)")
        arr, dtype_tag = _canonical(data)
        if arr.size == 0:
            raise ConfigError(
                f"field {name!r} is empty (shape {arr.shape}); "
                f"an empty field cannot be chunked")
        if chunk_shape is None:
            requested = chunking.default_chunk_shape(arr.shape)
        elif isinstance(chunk_shape, str):
            if chunk_shape != "auto":
                raise ConfigError(
                    f"chunk_shape {chunk_shape!r} not understood; "
                    f"pass a tuple, an int, None, or 'auto'")
            requested = chunking.auto_chunk_shape(arr.shape)
        elif isinstance(chunk_shape, int):
            requested = (chunk_shape,) * arr.ndim
        else:
            requested = tuple(chunk_shape)
            if len(requested) == 1 and arr.ndim > 1:
                requested = requested * arr.ndim
        cshape = chunking.validate_chunk_shape(arr.shape, requested)
        subs = [np.ascontiguousarray(arr[sl])
                for _, sl in chunking.iter_chunks(arr.shape, cshape)]

        basis_cache: BasisCache | None = None
        if codec == "auto":
            budget = float(error_budget)  # type: ignore[arg-type]
            basis_cache = BasisCache(cshape)
            auto_cache = basis_cache

            def compress_one(sub: Any) -> tuple[str, bytes]:
                t0 = time.perf_counter()
                chosen, payload = compress_chunk_auto(sub, budget,
                                                      auto_cache)
                observe("store.chunk.compress.seconds",
                        time.perf_counter() - t0)
                counter_inc("store.chunks.compressed")
                return chosen, payload
        elif codec == "dpz":
            basis_cache = BasisCache(cshape)
            dpz_cache = basis_cache

            def compress_one(sub: Any) -> tuple[str, bytes]:
                t0 = time.perf_counter()
                payload = compress_dpz(sub, dpz_cache, **codec_kwargs)
                observe("store.chunk.compress.seconds",
                        time.perf_counter() - t0)
                counter_inc("store.chunks.compressed")
                return codec, payload
        else:
            compress, _ = codec_functions(codec)

            def compress_one(sub: Any) -> tuple[str, bytes]:
                t0 = time.perf_counter()
                payload = compress(sub, **codec_kwargs)
                observe("store.chunk.compress.seconds",
                        time.perf_counter() - t0)
                counter_inc("store.chunks.compressed")
                return codec, payload

        with span("store.add", field=name, codec=codec,
                  n_chunks=len(subs), chunk_shape=list(cshape)):
            rep = (representative_index([s.shape for s in subs], cshape)
                   if basis_cache is not None and len(subs) > 1 else None)
            pconfig = ParallelConfig(n_jobs=n_jobs, min_chunk=2)
            if rep is None:
                results = parallel_map(compress_one, subs, config=pconfig)
            else:
                # Fit the representative chunk first, seal the basis
                # cache, then fan out: every sibling verifies against
                # one fixed basis, so payload bytes are independent of
                # n_jobs and thread interleaving.
                seeded = compress_one(subs[rep])
                basis_cache.seal()
                rest = parallel_map(compress_one,
                                    subs[:rep] + subs[rep + 1:],
                                    config=pconfig)
                results = rest[:rep] + [seeded] + rest[rep:]
            meta = FieldMeta(
                name=name, codec_label=codec, dtype_tag=dtype_tag,
                shape=tuple(arr.shape), chunk_shape=cshape,
                original_nbytes=int(arr.nbytes),
                error_budget=(float(error_budget)
                              if error_budget is not None else None),
            )
            self._append(meta, results)
        # Appends invalidate any cached chunks under this field name
        # (defensive: names are unique, but a failed append retried on
        # this handle must never serve stale decodes).
        self._cache.invalidate_field(name)
        counter_inc("store.fields.packed")

    def _append(self, meta: FieldMeta,
                payloads: Iterable[tuple[str, bytes]]) -> None:
        """Write chunk keys first, then the manifest key, then flush.

        The manifest is the commit point on every backend: until the
        ``manifest`` key is (atomically) replaced, a reader resolves
        the previous manifest, so a failure while any chunk is in
        flight never exposes a partially-added field.
        """
        framed = self._backend.framed
        for i, (chosen, payload) in enumerate(payloads):
            key = chunk_key(meta.name, i)
            self._backend[key] = (pack_kv_value(payload) if framed
                                  else payload)
            counter_inc("store.backend.writes")
            loc = self._backend.locate(key)
            offset = loc[0] if loc is not None else HEADER_SIZE
            meta.chunks.append(ChunkRef(
                offset=offset, length=len(payload), codec=chosen))
        self._fields[meta.name] = meta
        try:
            self._write_manifest()
        except StoreError:
            # The manifest write failed: the field is not committed.
            del self._fields[meta.name]
            raise
        self._backend.flush()

    def _write_manifest(self) -> None:
        manifest = encode_manifest(list(self._fields.values()))
        self._backend[MANIFEST_KEY] = (
            pack_kv_value(manifest) if self._backend.framed else manifest)
        counter_inc("store.backend.writes")

    @classmethod
    def from_archive(cls, archive: Union[FieldArchive, PathLike],
                     target: Union[PathLike, ByteStore], *,
                     backend: str = "auto",
                     chunk_shape: int | tuple[int, ...] | str
                     | None = None,
                     n_jobs: int | None = 1) -> "Store":
        """Re-pack a monolithic :class:`FieldArchive` as a chunked store.

        Each field is decoded once and re-compressed chunkwise with
        the codec recorded in the archive.  Archives do not preserve
        per-field codec *settings*, so lossy codecs run at the ``dpz
        pack`` CLI defaults -- re-pack from the original data when
        exact bounds matter.
        """
        if not isinstance(archive, FieldArchive):
            archive = FieldArchive.load(archive)
        store = cls.create(target, backend=backend)
        for name in archive.names():
            codec = str(archive.info(name)["codec"])
            store.add(name, archive.get(name), codec=codec,
                      chunk_shape=chunk_shape, n_jobs=n_jobs,
                      **_FROM_ARCHIVE_KW.get(codec, {}))
        return store

    # -- reading ----------------------------------------------------------

    def names(self) -> list[str]:
        """Field names in insertion order."""
        return list(self._fields)

    def info(self, name: str) -> dict[str, Any]:
        """Metadata for one field without decoding any chunk."""
        meta = self._require(name)
        compressed = sum(ref.length for ref in meta.chunks)
        by_codec: dict[str, int] = {}
        for ref in meta.chunks:
            by_codec[ref.codec] = by_codec.get(ref.codec, 0) + 1
        return {
            "name": meta.name,
            "codec": meta.codec_label,
            "dtype": meta.dtype_tag,
            "shape": meta.shape,
            "chunk_shape": meta.chunk_shape,
            "n_chunks": len(meta.chunks),
            "chunk_codecs": by_codec,
            "original_nbytes": meta.original_nbytes,
            "compressed_nbytes": compressed,
            "cr": meta.original_nbytes / max(compressed, 1),
            "error_budget": meta.error_budget,
        }

    def total_cr(self) -> float:
        """Aggregate compression ratio over all fields."""
        orig = sum(m.original_nbytes for m in self._fields.values())
        comp = sum(ref.length for m in self._fields.values()
                   for ref in m.chunks)
        return orig / max(comp, 1)

    def get(self, name: str) -> Any:
        """Decode and return one whole field."""
        meta = self._require(name)
        return self.get_region(name, tuple(slice(0, n)
                                           for n in meta.shape))

    def get_region(self, name: str, region: RegionSpec) -> Any:
        """Decode and stitch only the chunks overlapping ``region``.

        ``region`` is a per-dimension sequence of integers and/or
        unit-step slices (NumPy basic-indexing semantics; missing
        trailing dims select everything; integer dims are collapsed).
        Payload bytes for non-overlapping chunks are never read from
        the backend, let alone decoded -- the ``store.bytes.read`` /
        ``store.bytes.decoded`` counters record exactly what was.
        """
        meta = self._require(name)
        bounds, collapse = chunking.normalize_region(meta.shape, region)
        out_shape = tuple(hi - lo for lo, hi in bounds)
        dtype = np.dtype(DTYPE_TAGS[meta.dtype_tag])
        grid = chunking.grid_shape(meta.shape, meta.chunk_shape)
        coords = list(chunking.overlapping_chunks(
            meta.shape, meta.chunk_shape, bounds))
        t0 = time.perf_counter()
        bytes_read = 0
        bytes_decoded = 0
        with span("store.region", field=name, n_chunks=len(coords)):
            if len(coords) == 1:
                # Single-chunk fast path: no zeroed output buffer, no
                # paste -- copy the slice straight out of the decoded
                # (possibly cached) chunk.
                chunk, br, bd = self._load_chunk(meta, grid, coords[0])
                bytes_read += br
                bytes_decoded += bd
                _, chunk_sel = self._intersect(bounds, meta, coords[0],
                                               chunk.shape)
                out = np.array(chunk[chunk_sel], dtype=dtype)
                counter_inc("store.paste.fastpath")
            else:
                out = np.zeros(out_shape, dtype=dtype)
                for coord in coords:
                    chunk, br, bd = self._load_chunk(meta, grid, coord)
                    bytes_read += br
                    bytes_decoded += bd
                    self._paste(out, bounds, meta, coord, chunk)
        counter_inc("store.region.reads")
        counter_inc("store.bytes.read", bytes_read)
        counter_inc("store.bytes.decoded", bytes_decoded)
        observe("store.region.seconds", time.perf_counter() - t0)
        if out.nbytes:
            gauge_set("store.last.amplification",
                      bytes_decoded / out.nbytes)
        keep = tuple(0 if c else slice(None) for c in collapse)
        return out[keep]

    def _load_chunk(self, meta: FieldMeta, grid: tuple[int, ...],
                    coord: tuple[int, ...]) -> tuple[Any, int, int]:
        """One decoded chunk through the shared cache.

        Returns ``(chunk, bytes_read, bytes_decoded)``; both byte
        counts are 0 on a cache hit -- a hit costs neither a backend
        read nor a decode, which is exactly what the amplification
        gauge should reflect.  The returned array is read-only when it
        came from (or went into) the cache.
        """
        index = chunking.chunk_index(grid, coord)
        cache_key = (meta.name, index)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached, 0, 0
        # A miss claims the decode on coalescing caches: every exit
        # below must either put() the chunk or cancel() the claim, or
        # waiters parked on this key would stall until their timeout.
        try:
            ref = meta.chunks[index]
            key = chunk_key(meta.name, index)
            try:
                value = self._backend[key]
            except StoreKeyError as exc:
                raise FormatError(
                    f"field {meta.name!r} chunk {coord}: backend has "
                    f"no key {key!r} ({exc})") from exc
            counter_inc("store.backend.reads")
            payload = (unpack_kv_value(value) if self._backend.framed
                       else value)
            chunk = self._decode_chunk(meta, ref, payload, coord)
        # Not a swallow: the claim must be released on *any* exit --
        # including KeyboardInterrupt -- and the exception re-raises
        # unchanged.
        except BaseException:  # dpzlint: ignore[DPZ302]
            self._cache.cancel(cache_key)
            raise
        chunk = self._cache.put(cache_key, chunk)
        counter_inc("store.chunks.decoded")
        return chunk, len(payload), int(chunk.nbytes)

    def _decode_chunk(self, meta: FieldMeta, ref: ChunkRef,
                      payload: bytes, coord: tuple[int, ...]) -> Any:
        if len(payload) != ref.length:
            raise FormatError(
                f"field {meta.name!r} chunk {coord}: payload truncated "
                f"({len(payload)} of {ref.length} bytes)")
        if not have_codec(ref.codec):
            raise FormatError(
                f"field {meta.name!r} chunk {coord} uses unknown codec "
                f"{ref.codec!r}")
        _, decompress = codec_functions(ref.codec)
        try:
            chunk = decompress(payload)
        except FormatError:
            raise
        except (struct.error, IndexError, ValueError, KeyError,
                OverflowError, CodecError) as exc:
            raise FormatError(
                f"field {meta.name!r} chunk {coord} payload is "
                f"corrupt: {exc}") from exc
        expected = tuple(
            sl.stop - sl.start for sl in chunking.chunk_slices(
                meta.shape, meta.chunk_shape, coord))
        if tuple(chunk.shape) != expected:
            raise FormatError(
                f"field {meta.name!r} chunk {coord} decoded to shape "
                f"{tuple(chunk.shape)}, manifest geometry expects "
                f"{expected}")
        return chunk

    @staticmethod
    def _intersect(bounds: tuple[tuple[int, int], ...], meta: FieldMeta,
                   coord: tuple[int, ...], chunk_shape: tuple[int, ...]
                   ) -> tuple[tuple[slice, ...], tuple[slice, ...]]:
        """Chunk/region intersection as (output, chunk) slice tuples."""
        out_sel: list[slice] = []
        chunk_sel: list[slice] = []
        for (lo, hi), ch, c, ext in zip(bounds, meta.chunk_shape, coord,
                                        chunk_shape):
            base = c * ch
            a = max(lo, base)
            b = min(hi, base + int(ext))
            out_sel.append(slice(a - lo, b - lo))
            chunk_sel.append(slice(a - base, b - base))
        return tuple(out_sel), tuple(chunk_sel)

    @classmethod
    def _paste(cls, out: Any, bounds: tuple[tuple[int, int], ...],
               meta: FieldMeta, coord: tuple[int, ...],
               chunk: Any) -> None:
        """Copy the chunk/region intersection into the output array."""
        out_sel, chunk_sel = cls._intersect(bounds, meta, coord,
                                            chunk.shape)
        if all(s.start == 0 and s.stop == ext
               for s, ext in zip(chunk_sel, chunk.shape)):
            # Fully-interior chunk: assign it whole, skipping the
            # intersection view.
            out[out_sel] = chunk
            counter_inc("store.paste.fastpath")
        else:
            out[out_sel] = chunk[chunk_sel]

    def _require(self, name: str) -> FieldMeta:
        try:
            return self._fields[name]
        except KeyError:
            raise ConfigError(
                f"no field {name!r} in store; have {self.names()}"
            ) from None
