"""Transform substrate: DCT, PCA and wavelets, all with exact inverses.

DPZ's stage 1 applies an orthonormal DCT-II per block
(:mod:`repro.transforms.dct`); stage 2 projects the DCT-domain block
matrix with PCA (:mod:`repro.transforms.pca`).  The lifting wavelets in
:mod:`repro.transforms.wavelet` back the paper's "PCA in other
transform domains" discussion, and :mod:`repro.transforms.orthogonal`
holds the shared orthogonality checks used by tests and by the
energy-conservation reasoning in DESIGN.md.
"""

from repro.transforms.dct import (
    dct1d,
    dct2d,
    dct_matrix,
    idct1d,
    idct2d,
)
from repro.transforms.orthogonal import is_orthogonal
from repro.transforms.pca import PCA
from repro.transforms.wavelet import (
    cdf53_forward,
    cdf53_inverse,
    haar_forward,
    haar_inverse,
)

__all__ = [
    "dct_matrix",
    "dct1d",
    "idct1d",
    "dct2d",
    "idct2d",
    "PCA",
    "is_orthogonal",
    "haar_forward",
    "haar_inverse",
    "cdf53_forward",
    "cdf53_inverse",
]
