"""Orthonormal DCT-II / DCT-III transforms.

The paper (Section III-A2) uses DCT-II, written as ``z = A^T x`` with
``A`` orthogonal, i.e. the *orthonormalized* DCT-II whose inverse is
its transpose (DCT-III with the same normalization).  Orthonormality is
what makes the energy arguments in Sections III and IV go through:
``||z||_2 == ||x||_2`` exactly, so energy discarded in the transform
domain equals squared error introduced in the data domain.

Two code paths are provided:

* an explicit **matrix** path (:func:`dct_matrix` plus matmul), which is
  the literal ``A^T x`` of the paper and is what the PCA-in-DCT-domain
  proof (Eq. 3-6) manipulates; and
* a **fast** path delegating to :func:`scipy.fft.dct` with
  ``norm='ortho'``, mathematically identical but O(n log n).

Both paths agree to floating-point tolerance; the test suite checks
this, and callers choose via the ``method`` argument (``'auto'`` picks
the fast path for n > 32).
"""

from __future__ import annotations

import numpy as np
import scipy.fft

from repro.errors import DataShapeError

__all__ = ["dct_matrix", "dct1d", "idct1d", "dct2d", "idct2d"]

_MATRIX_CACHE: dict[int, np.ndarray] = {}
_MATRIX_CACHE_LIMIT = 32  # distinct sizes to keep


def dct_matrix(n: int) -> np.ndarray:
    """Return the n-by-n orthonormal DCT-II analysis matrix ``C``.

    ``C @ x`` computes the DCT-II of ``x``; ``C.T @ z`` inverts it.
    Rows are the cosine basis functions::

        C[k, j] = s_k * cos(pi * (2j + 1) * k / (2n)),
        s_0 = sqrt(1/n),  s_k = sqrt(2/n) for k >= 1.

    The matrix is cached per ``n`` (bounded cache) since DPZ reuses one
    block size for a whole dataset.
    """
    if n <= 0:
        raise DataShapeError(f"DCT size must be positive, got {n}")
    cached = _MATRIX_CACHE.get(n)
    if cached is not None:
        return cached
    j = np.arange(n)
    k = np.arange(n).reshape(-1, 1)
    mat = np.cos(np.pi * (2 * j + 1) * k / (2 * n))
    mat *= np.sqrt(2.0 / n)
    mat[0] *= np.sqrt(0.5)
    if len(_MATRIX_CACHE) >= _MATRIX_CACHE_LIMIT:
        _MATRIX_CACHE.clear()
    _MATRIX_CACHE[n] = mat
    return mat


def _resolve_method(method: str, n: int) -> str:
    if method == "auto":
        return "fft" if n > 32 else "matrix"
    if method not in ("fft", "matrix"):
        raise ValueError(f"unknown DCT method {method!r}")
    return method


def dct1d(x: np.ndarray, axis: int = -1, method: str = "auto") -> np.ndarray:
    """Orthonormal DCT-II along ``axis``.

    Energy preserving: ``np.linalg.norm(dct1d(x)) == np.linalg.norm(x)``
    up to floating point.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[axis]
    if _resolve_method(method, n) == "fft":
        return scipy.fft.dct(x, type=2, axis=axis, norm="ortho")
    mat = dct_matrix(n)
    return np.moveaxis(np.tensordot(mat, np.moveaxis(x, axis, 0), axes=1), 0, axis)


def idct1d(z: np.ndarray, axis: int = -1, method: str = "auto") -> np.ndarray:
    """Inverse of :func:`dct1d` (orthonormal DCT-III)."""
    z = np.asarray(z, dtype=np.float64)
    n = z.shape[axis]
    if _resolve_method(method, n) == "fft":
        return scipy.fft.idct(z, type=2, axis=axis, norm="ortho")
    mat = dct_matrix(n)
    return np.moveaxis(np.tensordot(mat.T, np.moveaxis(z, axis, 0), axes=1), 0, axis)


def dct2d(x: np.ndarray, method: str = "auto") -> np.ndarray:
    """Separable 2-D orthonormal DCT-II: ``Z = A_M^T X A_N``.

    This is the 2-D conversion cited at the end of the paper's Eq. 6
    discussion.  Applied as two 1-D passes (rows, then columns).
    """
    if x.ndim != 2:
        raise DataShapeError(f"dct2d expects a 2-D array, got {x.ndim}-D")
    return dct1d(dct1d(x, axis=0, method=method), axis=1, method=method)


def idct2d(z: np.ndarray, method: str = "auto") -> np.ndarray:
    """Inverse of :func:`dct2d`: ``X = A_M Z A_N^T``."""
    if z.ndim != 2:
        raise DataShapeError(f"idct2d expects a 2-D array, got {z.ndim}-D")
    return idct1d(idct1d(z, axis=1, method=method), axis=0, method=method)
