"""Orthogonality and energy-conservation checks.

The correctness of DPZ's error accounting rests on every lossy-free
stage being orthonormal (paper Section III-B2: "both DCT and PCA are
orthogonal linear transformations").  These helpers make that property
testable and are used both by the unit tests and by debug assertions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["is_orthogonal", "energy", "energy_ratio"]


def is_orthogonal(mat: np.ndarray, atol: float = 1e-9) -> bool:
    """True if ``mat @ mat.T`` is the identity within ``atol``.

    For non-square (k, n) matrices with k < n this checks row
    orthonormality (a partial isometry), which is the property PCA's
    truncated component matrix actually has.
    """
    mat = np.asarray(mat, dtype=np.float64)
    if mat.ndim != 2:
        return False
    gram = mat @ mat.T
    return bool(np.allclose(gram, np.eye(mat.shape[0]), atol=atol))


def energy(x: np.ndarray) -> float:
    """Sum of squares of all elements (the paper's "energy")."""
    x = np.asarray(x, dtype=np.float64)
    return float(np.sum(x * x))


def energy_ratio(transformed: np.ndarray, original: np.ndarray) -> float:
    """``energy(transformed) / energy(original)``; 1.0 for orthonormal maps."""
    denom = energy(original)
    if denom == 0.0:
        return 1.0 if energy(transformed) == 0.0 else np.inf
    return energy(transformed) / denom
