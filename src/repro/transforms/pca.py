"""Principal component analysis with exact inverse transform.

Implemented from scratch on top of :mod:`numpy.linalg` (scikit-learn is
deliberately not a dependency).  Matches the paper's formulation
(Section III-A2 and Eq. 3-6): eigenanalysis of the feature covariance
matrix, projection ``y = D^T (x - mean)``, and inverse projection
``x_hat = D y + mean``.

Conventions
-----------
* Input matrices are ``(n_samples, n_features)``.
* ``components_`` is ``(n_components, n_features)`` with orthonormal
  rows (eigenvectors of the covariance matrix, descending eigenvalue),
  mirroring the scikit-learn layout so downstream code reads familiarly.
* Eigenvector sign is fixed deterministically (largest-magnitude entry
  positive) so serialized bases are reproducible across runs/platforms.

Two solvers are available:

* ``'cov'`` -- build the f-by-f covariance matrix and call ``eigh``;
  literal Eq. 3, preferred when ``n_features <= n_samples`` (DPZ always
  arranges M < N, so this is the hot path).
* ``'svd'`` -- thin SVD of the centered data; numerically gentler when
  features outnumber samples.
* ``'eigsh'`` -- truncated Lanczos eigendecomposition of the covariance
  matrix (requires ``n_components``); this is the fast path DPZ's
  sampling strategy unlocks -- once ``k`` is known a priori, only the
  leading ``k`` directions are searched (paper Section IV-D1:
  "the time complexity of k-PCA can be reduced").
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg

from repro.errors import ConfigError, DataShapeError

__all__ = ["PCA"]


def _fix_signs(components: np.ndarray) -> np.ndarray:
    """Flip eigenvector signs so each row's largest-|.| entry is positive."""
    idx = np.argmax(np.abs(components), axis=1)
    signs = np.sign(components[np.arange(components.shape[0]), idx])
    signs[signs == 0] = 1.0
    return components * signs[:, None]


class PCA:
    """Principal component analysis with fit / transform / inverse.

    Parameters
    ----------
    n_components:
        Number of components to keep; ``None`` keeps all
        ``min(n_samples, n_features)``.
    solver:
        ``'auto'`` (default), ``'cov'`` or ``'svd'``; see module docs.
    standardize:
        If True, features are scaled to unit variance before the
        eigenanalysis (and un-scaled on inverse).  DPZ enables this only
        for low-linearity data (VIF < 5); see paper Section IV-B.
    center:
        If False, features are *not* mean-subtracted and the
        eigenanalysis runs on the second-moment matrix instead of the
        covariance.  This is what DPZ's stage 2 uses: on DCT-domain
        features the raw coefficients are already concentrated at zero,
        and skipping the centering keeps the component scores symmetric
        about zero (paper Section IV-C) rather than offset by the
        projected mean -- which is what makes the symmetric stage-3
        quantizer effective.  With ``center=False``, "variance" in all
        attribute names reads as "second moment".

    Attributes (after :meth:`fit`)
    ------------------------------
    mean_ : (n_features,) feature means.
    scale_ : (n_features,) divisors applied when ``standardize`` (else None).
    components_ : (n_components, n_features) orthonormal rows.
    explained_variance_ : (n_components,) eigenvalues, descending.
    explained_variance_ratio_ : eigenvalues / total variance.
    total_variance_ : scalar, sum over *all* feature variances.
    """

    def __init__(self, n_components: int | None = None, *,
                 solver: str = "auto", standardize: bool = False,
                 center: bool = True) -> None:
        if solver not in ("auto", "cov", "svd", "eigsh"):
            raise ConfigError(f"unknown PCA solver {solver!r}")
        if solver == "eigsh" and n_components is None:
            raise ConfigError("solver='eigsh' requires n_components")
        if n_components is not None and n_components < 1:
            raise ConfigError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.solver = solver
        self.standardize = standardize
        self.center = center
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None
        self.total_variance_: float | None = None

    # -- fitting ----------------------------------------------------------

    def fit(self, X: np.ndarray) -> "PCA":
        """Estimate mean, (optional) scale, components and eigenvalues."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise DataShapeError(f"PCA expects a 2-D matrix, got {X.ndim}-D")
        n, f = X.shape
        if n < 2:
            raise DataShapeError("PCA needs at least 2 samples")
        self.mean_ = X.mean(axis=0) if self.center else np.zeros(f)
        # Uncentered: no copy -- every use below is read-only.
        Xc = X - self.mean_ if self.center else X
        if self.standardize:
            # With centering this is the sample std; without, the RMS
            # (second moment) -- the natural scale in either case.
            std = np.sqrt((Xc * Xc).sum(axis=0) / (n - 1))
            std[std == 0] = 1.0
            self.scale_ = std
            Xc = Xc / std
        else:
            self.scale_ = None

        max_rank = min(n, f)
        k = max_rank if self.n_components is None else min(self.n_components,
                                                           max_rank)
        solver = self.solver
        if solver == "auto":
            solver = "cov" if f <= n else "svd"

        if solver == "eigsh":
            cov = (Xc.T @ Xc) / (n - 1)
            total = float(np.trace(cov))
            if k >= f - 1 or k > f // 4 or f <= 256:
                # Lanczos only pays off for a small leading slice of a
                # large matrix; near-full spectra (or small matrices)
                # are faster -- and numerically safer -- dense.
                eigvals, eigvecs = np.linalg.eigh(cov)
                order = np.argsort(eigvals)[::-1][:k]
                eigvals = np.maximum(eigvals[order], 0.0)
                components = eigvecs[:, order].T
            else:
                eigvals, eigvecs = scipy.sparse.linalg.eigsh(
                    cov, k=k, which="LA"
                )
                order = np.argsort(eigvals)[::-1]
                eigvals = np.maximum(eigvals[order], 0.0)
                components = eigvecs[:, order].T
        elif solver == "cov":
            cov = (Xc.T @ Xc) / (n - 1)
            eigvals, eigvecs = np.linalg.eigh(cov)
            order = np.argsort(eigvals)[::-1]
            eigvals = np.maximum(eigvals[order], 0.0)
            components = eigvecs[:, order].T
            total = float(np.trace(cov))
        else:
            _, s, vt = np.linalg.svd(Xc, full_matrices=False)
            eigvals = (s ** 2) / (n - 1)
            components = vt
            total = float((Xc ** 2).sum() / (n - 1))

        components = _fix_signs(np.ascontiguousarray(components[:k]))
        self.components_ = components
        self.explained_variance_ = eigvals[:k].copy()
        self.total_variance_ = max(total, 0.0)
        denom = self.total_variance_ if self.total_variance_ > 0 else 1.0
        self.explained_variance_ratio_ = self.explained_variance_ / denom
        return self

    @classmethod
    def from_covariance(cls, cov: np.ndarray, n_components: int, *,
                        total_variance: float | None = None) -> "PCA":
        """Build a fitted (uncentered, unscaled) PCA from a precomputed
        second-moment/covariance matrix.

        This is the fast path DPZ's sampling strategy uses: the
        covariance is computed once and shared between the k-refinement
        probe and the projection fit, and only the leading
        ``n_components`` eigenpairs are solved for.
        """
        cov = np.asarray(cov, dtype=np.float64)
        if cov.ndim != 2 or cov.shape[0] != cov.shape[1]:
            raise DataShapeError("covariance must be square")
        f = cov.shape[0]
        k = min(int(n_components), f)
        if k < 1:
            raise ConfigError("n_components must be >= 1")
        if k >= f - 1 or k > f // 4 or f <= 256:
            eigvals, eigvecs = np.linalg.eigh(cov)
            order = np.argsort(eigvals)[::-1][:k]
        else:
            eigvals, eigvecs = scipy.sparse.linalg.eigsh(cov, k=k,
                                                         which="LA")
            order = np.argsort(eigvals)[::-1]
        eigvals = np.maximum(eigvals[order], 0.0)
        components = _fix_signs(np.ascontiguousarray(eigvecs[:, order].T))

        pca = cls(n_components=k, center=False)
        pca.mean_ = np.zeros(f)
        pca.scale_ = None
        pca.components_ = components
        pca.explained_variance_ = eigvals
        total = float(np.trace(cov)) if total_variance is None \
            else float(total_variance)
        pca.total_variance_ = max(total, 0.0)
        denom = pca.total_variance_ if pca.total_variance_ > 0 else 1.0
        pca.explained_variance_ratio_ = pca.explained_variance_ / denom
        return pca

    @classmethod
    def from_spectrum(cls, components: np.ndarray,
                      explained_variance: np.ndarray, *,
                      total_variance: float,
                      mean: np.ndarray | None = None,
                      scale: np.ndarray | None = None,
                      standardize: bool = False,
                      center: bool = False) -> "PCA":
        """Assemble a fitted PCA from an already-solved eigensystem.

        Used by :func:`repro.core.kpca.fit_kpca`'s fast path, which
        solves the eigenproblem itself (full or truncated spectrum) so
        the covariance can be shared with the selection step.  The
        attribute bookkeeping here matches :meth:`fit` exactly.
        """
        components = np.asarray(components, dtype=np.float64)
        f = components.shape[1]
        pca = cls(n_components=components.shape[0], standardize=standardize,
                  center=center)
        pca.mean_ = np.zeros(f) if mean is None else mean
        pca.scale_ = scale
        pca.components_ = components
        pca.explained_variance_ = np.asarray(explained_variance,
                                             dtype=np.float64)
        pca.total_variance_ = max(float(total_variance), 0.0)
        denom = pca.total_variance_ if pca.total_variance_ > 0 else 1.0
        pca.explained_variance_ratio_ = pca.explained_variance_ / denom
        return pca

    def _require_fitted(self) -> None:
        if self.components_ is None:
            raise ConfigError("PCA instance is not fitted; call fit() first")

    # -- projection -------------------------------------------------------

    def transform(self, X: np.ndarray, k: int | None = None) -> np.ndarray:
        """Project ``X`` onto the leading ``k`` components.

        Returns an ``(n_samples, k)`` score matrix ``Y = Xc @ D`` where
        ``D = components_[:k].T``.
        """
        self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        # (x - 0.0) is bitwise x, so the all-zero mean of the uncentered
        # path can skip the subtraction (and its full-size temporary).
        Xc = X - self.mean_ if self.mean_.any() else X
        if self.scale_ is not None:
            Xc = Xc / self.scale_
        comp = self.components_ if k is None else self.components_[:k]
        return Xc @ comp.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Equivalent to ``fit(X).transform(X)``."""
        return self.fit(X).transform(X)

    def inverse_transform(self, Y: np.ndarray) -> np.ndarray:
        """Map scores back to the original feature space.

        ``Y`` may have fewer columns than ``n_components``; the missing
        trailing components are treated as zero (truncation), which is
        exactly DPZ's feature-discard step.
        """
        self._require_fitted()
        Y = np.asarray(Y, dtype=np.float64)
        k = Y.shape[-1]
        if k > self.components_.shape[0]:
            raise DataShapeError(
                f"scores have {k} columns but PCA kept "
                f"{self.components_.shape[0]} components"
            )
        X = Y @ self.components_[:k]
        if self.scale_ is not None:
            X = X * self.scale_
        return X + self.mean_

    # -- information-retrieval metrics -------------------------------------

    def tve_curve(self) -> np.ndarray:
        """Cumulative total variance explained, Eq. 2 of the paper.

        ``tve_curve()[k-1]`` is TVE after keeping ``k`` components.
        Nondecreasing; reaches ~1.0 at full rank.
        """
        self._require_fitted()
        denom = self.total_variance_ if self.total_variance_ > 0 else 1.0
        return np.cumsum(self.explained_variance_) / denom

    def components_for_tve(self, tve: float) -> int:
        """Smallest ``k`` with TVE(k) >= ``tve`` (Alg. 1, Method 2).

        Falls back to all kept components when the threshold is never
        reached (possible when ``n_components`` truncated the spectrum).
        """
        if not 0.0 < tve <= 1.0:
            raise ConfigError(f"tve must be in (0, 1], got {tve}")
        curve = self.tve_curve()
        hits = np.flatnonzero(curve >= tve - 1e-12)
        return int(hits[0]) + 1 if hits.size else int(curve.size)
