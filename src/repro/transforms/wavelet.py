"""Lifting-scheme discrete wavelet transforms (Haar and CDF 5/3).

The paper's Section III-B2 notes that "PCA in other transform domains
(e.g., wavelet transforms) should also work if the coefficients show
normality [and] high information preservation".  These two classic
lifting wavelets back that extension (exercised by the ablation bench
``benchmarks/test_ablation_transforms.py``):

* **Haar** -- orthogonal (with the sqrt(2) normalization used here), so
  the same energy-conservation reasoning as DCT applies.
* **CDF 5/3 (LeGall)** -- the biorthogonal integer-friendly wavelet from
  JPEG 2000 lossless; not orthogonal, but perfectly invertible by
  construction of the lifting steps.

Both operate along the last axis, handle odd lengths (trailing sample
carried in the approximation band), and support multi-level transforms
via repeated application to the approximation band.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataShapeError

__all__ = ["haar_forward", "haar_inverse", "cdf53_forward", "cdf53_inverse",
           "multilevel_forward", "multilevel_inverse"]

_SQRT2 = np.sqrt(2.0)


def _split(x: np.ndarray) -> tuple[np.ndarray, np.ndarray, bool]:
    """Split the last axis into (even, odd) samples; report odd length."""
    odd_len = x.shape[-1] % 2 == 1
    if odd_len:
        body, _tail = x[..., :-1], x[..., -1:]
        return body[..., 0::2], body[..., 1::2], True
    return x[..., 0::2], x[..., 1::2], False


def haar_forward(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One-level orthonormal Haar transform along the last axis.

    Returns ``(approx, detail)``.  For odd lengths the final sample is
    appended (scaled) to ``approx`` so the transform stays invertible.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape[-1] < 1:
        raise DataShapeError("cannot transform an empty axis")
    even, odd, had_tail = _split(x)
    approx = (even + odd) / _SQRT2
    detail = (even - odd) / _SQRT2
    if had_tail:
        approx = np.concatenate([approx, x[..., -1:]], axis=-1)
    return approx, detail


def haar_inverse(approx: np.ndarray, detail: np.ndarray) -> np.ndarray:
    """Invert :func:`haar_forward`."""
    approx = np.asarray(approx, dtype=np.float64)
    detail = np.asarray(detail, dtype=np.float64)
    had_tail = approx.shape[-1] == detail.shape[-1] + 1
    core = approx[..., :-1] if had_tail else approx
    if core.shape[-1] != detail.shape[-1]:
        raise DataShapeError("approx/detail band lengths are inconsistent")
    even = (core + detail) / _SQRT2
    odd = (core - detail) / _SQRT2
    n = even.shape[-1] * 2 + (1 if had_tail else 0)
    out = np.empty(approx.shape[:-1] + (n,), dtype=np.float64)
    out[..., 0 : 2 * even.shape[-1] : 2] = even
    out[..., 1 : 2 * even.shape[-1] : 2] = odd
    if had_tail:
        out[..., -1] = approx[..., -1]
    return out


def cdf53_forward(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One-level CDF 5/3 (LeGall) lifting transform along the last axis.

    Lifting steps (symmetric boundary extension)::

        d[i] = odd[i]  - floor-free 0.5*(even[i] + even[i+1])
        a[i] = even[i] + 0.25*(d[i-1] + d[i])
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape[-1] < 2:
        raise DataShapeError("CDF 5/3 needs an axis of length >= 2")
    even, odd, had_tail = _split(x)
    even_next = np.concatenate([even[..., 1:], even[..., -1:]], axis=-1)
    detail = odd - 0.5 * (even + even_next)
    detail_prev = np.concatenate([detail[..., :1], detail[..., :-1]], axis=-1)
    approx = even + 0.25 * (detail_prev + detail)
    if had_tail:
        approx = np.concatenate([approx, x[..., -1:]], axis=-1)
    return approx, detail


def cdf53_inverse(approx: np.ndarray, detail: np.ndarray) -> np.ndarray:
    """Invert :func:`cdf53_forward` by running the lifting steps backwards."""
    approx = np.asarray(approx, dtype=np.float64)
    detail = np.asarray(detail, dtype=np.float64)
    had_tail = approx.shape[-1] == detail.shape[-1] + 1
    core = approx[..., :-1] if had_tail else approx
    if core.shape[-1] != detail.shape[-1]:
        raise DataShapeError("approx/detail band lengths are inconsistent")
    detail_prev = np.concatenate([detail[..., :1], detail[..., :-1]], axis=-1)
    even = core - 0.25 * (detail_prev + detail)
    even_next = np.concatenate([even[..., 1:], even[..., -1:]], axis=-1)
    odd = detail + 0.5 * (even + even_next)
    n = even.shape[-1] * 2 + (1 if had_tail else 0)
    out = np.empty(approx.shape[:-1] + (n,), dtype=np.float64)
    out[..., 0 : 2 * even.shape[-1] : 2] = even
    out[..., 1 : 2 * even.shape[-1] : 2] = odd
    if had_tail:
        out[..., -1] = approx[..., -1]
    return out


_FORWARD = {"haar": haar_forward, "cdf53": cdf53_forward}
_INVERSE = {"haar": haar_inverse, "cdf53": cdf53_inverse}


def multilevel_forward(x: np.ndarray, levels: int,
                       wavelet: str = "haar") -> list[np.ndarray]:
    """Multi-level DWT: returns ``[approx_L, detail_L, ..., detail_1]``.

    Each level halves the approximation band; ``levels`` is clipped so
    the band never drops below 2 samples.
    """
    fwd = _FORWARD[wavelet]
    bands: list[np.ndarray] = []
    approx = np.asarray(x, dtype=np.float64)
    for _ in range(levels):
        if approx.shape[-1] < 2:
            break
        approx, detail = fwd(approx)
        bands.append(detail)
    return [approx] + bands[::-1]


def multilevel_inverse(bands: list[np.ndarray],
                       wavelet: str = "haar") -> np.ndarray:
    """Invert :func:`multilevel_forward`."""
    inv = _INVERSE[wavelet]
    approx = bands[0]
    for detail in bands[1:]:
        approx = inv(approx, detail)
    return approx
