"""Tests for ECR, TVE, entropy and the "n-nines" helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.information import (
    ecr_curve,
    nines_to_tve,
    shannon_entropy,
    tve_curve,
    tve_to_nines,
)
from repro.errors import DataShapeError


class TestECR:
    def test_monotone_and_reaches_one(self, rng):
        curve = ecr_curve(rng.normal(size=100))
        assert np.all(np.diff(curve) >= -1e-12)
        assert np.isclose(curve[-1], 1.0)

    def test_single_dominant_coefficient(self):
        f = np.array([100.0, 0.1, 0.1])
        curve = ecr_curve(f)
        assert curve[0] > 0.9999

    def test_equation_1_literal(self):
        """Check Eq. 1 directly for a hand-computed case."""
        f = np.array([3.0, 4.0])  # energies 9, 16; total 25
        curve = ecr_curve(f)
        np.testing.assert_allclose(curve, [16 / 25, 1.0])

    def test_zero_energy_gives_ones(self):
        np.testing.assert_array_equal(ecr_curve(np.zeros(5)), np.ones(5))

    def test_empty_rejected(self):
        with pytest.raises(DataShapeError):
            ecr_curve(np.zeros(0))


class TestTVE:
    def test_equation_2_literal(self):
        lam = np.array([6.0, 3.0, 1.0])
        np.testing.assert_allclose(tve_curve(lam), [0.6, 0.9, 1.0])

    def test_unsorted_input_sorted_internally(self):
        lam = np.array([1.0, 6.0, 3.0])
        np.testing.assert_allclose(tve_curve(lam), [0.6, 0.9, 1.0])

    def test_negative_eigenvalues_clipped(self):
        lam = np.array([2.0, -1e-12])
        curve = tve_curve(lam)
        assert np.isclose(curve[-1], 1.0)

    def test_zero_spectrum(self):
        np.testing.assert_array_equal(tve_curve(np.zeros(3)), np.ones(3))


class TestEntropy:
    def test_constant_data_zero_entropy(self):
        assert shannon_entropy(np.full(100, 3.0)) == 0.0

    def test_uniform_bins_max_entropy(self, rng):
        x = rng.uniform(size=100_000)
        h = shannon_entropy(x, bins=16)
        assert h > 3.95  # close to log2(16) = 4

    def test_entropy_bounded_by_log_bins(self, rng):
        x = rng.normal(size=1000)
        assert shannon_entropy(x, bins=32) <= 5.0 + 1e-9

    def test_empty_rejected(self):
        with pytest.raises(DataShapeError):
            shannon_entropy(np.zeros(0))


class TestNines:
    @pytest.mark.parametrize("n,expected", [
        (2, 0.99), (3, 0.999), (8, 0.99999999),
    ])
    def test_nines_to_tve(self, n, expected):
        assert np.isclose(nines_to_tve(n), expected)

    def test_roundtrip(self):
        for n in range(1, 9):
            assert np.isclose(tve_to_nines(nines_to_tve(n)), n)

    def test_invalid_inputs(self):
        with pytest.raises(DataShapeError):
            nines_to_tve(0)
        with pytest.raises(DataShapeError):
            tve_to_nines(1.0)


@given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=100))
def test_tve_curve_properties(eigs):
    curve = tve_curve(np.asarray(eigs))
    assert curve.shape == (len(eigs),)
    assert np.all(np.diff(curve) >= -1e-9)
    assert curve[-1] <= 1.0 + 1e-9
