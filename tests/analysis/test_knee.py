"""Tests for knee-point detection (Alg. 1, Method 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.knee import FIT_METHODS, detect_knee
from repro.errors import ConfigError, DataShapeError


def saturating_curve(m: int, tau: float) -> np.ndarray:
    """Exponential-saturation curve with a knee near k ~ tau."""
    k = np.arange(1, m + 1)
    return 1.0 - np.exp(-k / tau)


class TestDetectKnee:
    @pytest.mark.parametrize("method", FIT_METHODS)
    def test_knee_near_the_bend(self, method):
        curve = saturating_curve(200, tau=15.0)
        res = detect_knee(curve, method=method)
        # Curvature of 1-exp(-k/tau) peaks within a small multiple of tau.
        assert 2 <= res.k <= 90
        assert res.method == method

    def test_sharper_bend_gives_smaller_k(self):
        k_sharp = detect_knee(saturating_curve(200, 5.0)).k
        k_soft = detect_knee(saturating_curve(200, 40.0)).k
        assert k_sharp < k_soft

    def test_polyn_keeps_more_components_than_1d(self):
        """The paper's Table II behaviour: polynomial fitting lowers the
        CR (larger k) in exchange for accuracy."""
        curve = saturating_curve(300, tau=12.0)
        k_1d = detect_knee(curve, method="1d").k
        k_poly = detect_knee(curve, method="polyn").k
        assert k_poly >= k_1d

    def test_flat_curve_returns_one(self):
        res = detect_knee(np.ones(50))
        assert res.k == 1

    def test_two_point_curve(self):
        res = detect_knee(np.array([0.5, 1.0]))
        assert 1 <= res.k <= 2

    def test_single_point_curve(self):
        assert detect_knee(np.array([1.0])).k == 1

    def test_empty_curve_rejected(self):
        with pytest.raises(DataShapeError):
            detect_knee(np.zeros(0))

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            detect_knee(np.linspace(0, 1, 10), method="spline9000")

    def test_k_within_bounds(self):
        for m in (3, 10, 47, 500):
            res = detect_knee(saturating_curve(m, m / 8))
            assert 1 <= res.k <= m

    def test_result_fields_populated(self):
        res = detect_knee(saturating_curve(100, 10.0))
        assert 0.0 <= res.x <= 1.0
        assert np.isfinite(res.curvature)

    def test_real_tve_curve(self, rng):
        """Knee detection on an actual PCA TVE curve."""
        from repro.transforms.pca import PCA
        weights = np.concatenate([np.array([50, 20, 10, 5.0]),
                                  np.full(30, 0.01)])
        X = rng.normal(size=(500, 34)) * weights
        pca = PCA().fit(X)
        res = detect_knee(pca.tve_curve())
        assert res.k <= 12  # the informative head, not the noise tail
