"""Tests for the compression-quality metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.metrics import (
    bitrate_from_cr,
    compression_ratio,
    cr_from_bitrate,
    max_abs_error,
    mean_relative_error,
    mse,
    nrmse,
    psnr,
    value_range,
)
from repro.errors import DataShapeError


class TestPSNR:
    def test_exact_reconstruction_is_inf(self, rng):
        x = rng.normal(size=100)
        assert psnr(x, x.copy()) == float("inf")

    def test_known_value(self):
        x = np.array([0.0, 1.0])       # range 1
        y = np.array([0.1, 1.0])       # MSE = 0.005
        expected = -10 * np.log10(0.005)
        assert np.isclose(psnr(x, y), expected)

    def test_scale_invariance(self, rng):
        """PSNR is range-normalized: scaling both arrays leaves it fixed."""
        x = rng.normal(size=1000)
        y = x + 0.01 * rng.normal(size=1000)
        assert np.isclose(psnr(x, y), psnr(100 * x, 100 * y), atol=1e-9)

    def test_constant_original_with_error(self):
        x = np.zeros(10)
        assert psnr(x, x + 1.0) == float("-inf")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataShapeError):
            psnr(np.zeros(3), np.zeros(4))

    def test_monotone_in_noise(self, rng):
        x = rng.normal(size=500)
        small = psnr(x, x + 1e-4 * rng.normal(size=500))
        large = psnr(x, x + 1e-2 * rng.normal(size=500))
        assert small > large


class TestErrorMetrics:
    def test_mse_known(self):
        assert mse(np.array([0.0, 0.0]), np.array([1.0, 1.0])) == 1.0

    def test_nrmse_known(self):
        x = np.array([0.0, 2.0])
        y = np.array([1.0, 2.0])
        assert np.isclose(nrmse(x, y), np.sqrt(0.5) / 2.0)

    def test_nrmse_constant_exact(self):
        x = np.ones(5)
        assert nrmse(x, x) == 0.0

    def test_max_abs_error(self):
        assert max_abs_error(np.array([1.0, 5.0]),
                             np.array([1.5, 4.0])) == 1.0

    def test_mean_relative_error_is_range_scaled(self):
        x = np.array([0.0, 10.0])
        y = np.array([1.0, 10.0])
        assert np.isclose(mean_relative_error(x, y), 0.05)

    def test_value_range_empty_rejected(self):
        with pytest.raises(DataShapeError):
            value_range(np.zeros(0))


class TestSizeMetrics:
    def test_compression_ratio(self):
        assert compression_ratio(1000, 100) == 10.0

    def test_zero_compressed_rejected(self):
        with pytest.raises(DataShapeError):
            compression_ratio(100, 0)

    def test_bitrate_cr_inverse(self):
        for cr in (1.0, 3.7, 128.0):
            assert np.isclose(cr_from_bitrate(bitrate_from_cr(cr)), cr)

    def test_bitrate_32bit_convention(self):
        assert bitrate_from_cr(8.0) == 4.0

    def test_bitrate_64bit(self):
        assert bitrate_from_cr(8.0, bits_per_value=64) == 8.0

    def test_nonpositive_inputs_rejected(self):
        with pytest.raises(DataShapeError):
            bitrate_from_cr(0.0)
        with pytest.raises(DataShapeError):
            cr_from_bitrate(-1.0)


@given(st.integers(0, 2 ** 32), st.floats(1e-6, 1e2))
def test_psnr_consistent_with_mse_property(seed, scale):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=64) * scale
    y = x + rng.normal(size=64) * scale * 1e-3
    if value_range(x) == 0 or mse(x, y) == 0:
        return
    expected = 20 * np.log10(value_range(x)) - 10 * np.log10(mse(x, y))
    assert np.isclose(psnr(x, y), expected)
