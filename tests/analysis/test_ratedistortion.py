"""Tests for the rate-distortion sweep driver."""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import psnr
from repro.analysis.ratedistortion import (
    RDPoint,
    pareto_front,
    rate_distortion_sweep,
)


def fake_compressor(data: np.ndarray, keep: float):
    """Toy compressor: keep a fraction of values, zero the rest."""
    n_keep = max(1, int(keep * data.size))
    recon = data.copy().reshape(-1)
    if n_keep < recon.size:
        recon[n_keep:] = recon[n_keep:].mean()
    nbytes = n_keep * 4 + 16
    return nbytes, recon.reshape(data.shape)


def test_sweep_produces_point_per_param(rng):
    data = rng.normal(size=256).astype(np.float32)
    points = rate_distortion_sweep(data, fake_compressor, [0.1, 0.5, 1.0])
    assert len(points) == 3
    assert all(isinstance(p, RDPoint) for p in points)


def test_cr_and_bitrate_consistent(rng):
    data = rng.normal(size=256).astype(np.float32)
    (p,) = rate_distortion_sweep(data, fake_compressor, [0.5])
    assert np.isclose(p.cr, data.nbytes / p.compressed_nbytes)
    assert np.isclose(p.bitrate, 32.0 / p.cr)


def test_psnr_matches_direct_computation(rng):
    data = rng.normal(size=256).astype(np.float32)
    (p,) = rate_distortion_sweep(data, fake_compressor, [0.25])
    _, recon = fake_compressor(data, 0.25)
    assert np.isclose(p.psnr, psnr(data, recon))


def test_more_budget_is_better(rng):
    data = np.sort(rng.normal(size=512)).astype(np.float32)
    points = rate_distortion_sweep(data, fake_compressor,
                                   [0.1, 0.3, 0.6, 0.95])
    psnrs = [p.psnr for p in points]
    assert psnrs == sorted(psnrs)


def test_row_rendering(rng):
    data = rng.normal(size=64).astype(np.float32)
    (p,) = rate_distortion_sweep(data, fake_compressor, [0.5])
    row = p.row()
    assert "CR=" in row and "PSNR=" in row


class TestParetoFront:
    def make(self, pairs):
        return [RDPoint(param=i, compressed_nbytes=1, cr=1.0,
                        bitrate=b, psnr=p)
                for i, (b, p) in enumerate(pairs)]

    def test_dominated_points_removed(self):
        pts = self.make([(1.0, 40.0), (2.0, 35.0), (3.0, 50.0)])
        front = pareto_front(pts)
        assert [p.bitrate for p in front] == [1.0, 3.0]

    def test_all_nondominated_kept(self):
        pts = self.make([(1.0, 30.0), (2.0, 40.0), (3.0, 50.0)])
        assert len(pareto_front(pts)) == 3

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_sorted_by_bitrate(self):
        pts = self.make([(3.0, 50.0), (1.0, 30.0), (2.0, 40.0)])
        front = pareto_front(pts)
        assert [p.bitrate for p in front] == [1.0, 2.0, 3.0]
