"""Tests for the spectral-fidelity diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.spectrum import (
    radial_power_spectrum,
    spectral_distortion,
    spectral_slope,
)
from repro.datasets.grf import power_law_field
from repro.errors import DataShapeError


def test_spectrum_shapes(rng):
    k, p = radial_power_spectrum(rng.normal(size=(64, 64)))
    assert k.size == p.size
    assert np.all(np.diff(k) > 0)
    assert np.all(p >= 0)


def test_white_noise_flat_spectrum(rng):
    field = rng.normal(size=(128, 128))
    slope = spectral_slope(field)
    assert abs(slope) < 0.5


def test_power_law_slope_recovered():
    field = power_law_field((256, 256), -3.0, np.random.default_rng(5))
    slope = spectral_slope(field, k_lo=0.02, k_hi=0.3)
    assert -4.0 < slope < -2.0


def test_slope_works_in_1d_and_3d(rng):
    assert np.isfinite(spectral_slope(rng.normal(size=4096)))
    assert np.isfinite(spectral_slope(rng.normal(size=(32, 32, 32))))


def test_distortion_zero_for_identity(rng):
    field = rng.normal(size=(64, 64))
    assert spectral_distortion(field, field.copy()) < 1e-12


def test_distortion_detects_smoothing(rng):
    field = rng.normal(size=(128, 128))
    smoothed = 0.25 * (field + np.roll(field, 1, 0) + np.roll(field, 1, 1)
                       + np.roll(field, (1, 1), (0, 1)))
    assert spectral_distortion(field, smoothed) > 0.1


def test_distortion_ranks_compressors(rng):
    """Heavier lossy settings must show larger spectral distortion."""
    import repro
    field = power_law_field((64, 64), -2.5,
                            np.random.default_rng(9)).astype(np.float32)
    mild = repro.dpz_decompress(
        repro.dpz_compress(field, scheme="s", tve_nines=7))
    harsh = repro.dpz_decompress(
        repro.dpz_compress(field, scheme="l", tve_nines=2))
    assert spectral_distortion(field, mild) <= \
        spectral_distortion(field, harsh)


def test_too_small_rejected():
    with pytest.raises(DataShapeError):
        radial_power_spectrum(np.zeros(4))
