"""Tests for the variance-inflation-factor compressibility probe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.vif import (
    VIF_CUTOFF,
    variance_inflation_factors,
    vif_summary,
)
from repro.errors import DataShapeError


def test_independent_features_vif_near_one(rng):
    X = rng.normal(size=(2000, 6))
    vifs = variance_inflation_factors(X)
    assert np.all(vifs < 1.2)


def test_collinear_features_vif_large(rng):
    base = rng.normal(size=2000)
    X = np.stack([
        base + 0.01 * rng.normal(size=2000),
        base + 0.01 * rng.normal(size=2000),
        rng.normal(size=2000),
    ], axis=1)
    vifs = variance_inflation_factors(X)
    assert vifs[0] > 100 and vifs[1] > 100
    assert vifs[2] < 2


def test_exactly_collinear_clipped_not_inf(rng):
    base = rng.normal(size=500)
    X = np.stack([base, base, rng.normal(size=500)], axis=1)
    vifs = variance_inflation_factors(X)
    assert np.all(np.isfinite(vifs))


def test_constant_feature_gets_vif_one(rng):
    X = np.stack([np.full(100, 2.0), rng.normal(size=100),
                  rng.normal(size=100)], axis=1)
    vifs = variance_inflation_factors(X)
    assert vifs[0] == 1.0


def test_feature_subsampling_caps_output(rng):
    X = rng.normal(size=(300, 50))
    vifs = variance_inflation_factors(X, max_features=10, rng=rng)
    assert vifs.shape == (10,)


def test_feature_cap_respects_sample_count(rng):
    """Asking for more features than samples support must be clamped,
    not produce the degenerate all-huge VIFs of a singular matrix."""
    X = rng.normal(size=(21, 50))
    vifs = variance_inflation_factors(X, max_features=40, rng=rng)
    assert vifs.size <= 10
    assert np.all(vifs < 10)


def test_contiguous_window_finds_local_correlation(rng):
    """Features correlated only with neighbors: a contiguous probe sees
    it, mirroring DPZ's locality argument."""
    n, f = 3000, 40
    base = rng.normal(size=(n, f))
    X = base + np.roll(base, 1, axis=1) + np.roll(base, -1, axis=1)
    vifs = variance_inflation_factors(X, max_features=8, contiguous=True,
                                      rng=np.random.default_rng(0))
    assert np.median(vifs) > 1.5


def test_shape_validation():
    with pytest.raises(DataShapeError):
        variance_inflation_factors(np.zeros(5))
    with pytest.raises(DataShapeError):
        variance_inflation_factors(np.zeros((2, 5)))
    with pytest.raises(DataShapeError):
        variance_inflation_factors(np.zeros((10, 1)))


def test_summary_fields(rng):
    vifs = np.array([1.0, 2.0, 3.0, 10.0])
    s = vif_summary(vifs)
    assert s["min"] == 1.0 and s["max"] == 10.0
    assert s["median"] == 2.5
    assert s["frac_below_cutoff"] == 0.75
    assert VIF_CUTOFF == 5.0


def test_summary_empty_rejected():
    with pytest.raises(DataShapeError):
        vif_summary(np.zeros(0))
