"""Tests for the shared block partitioner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.blocking import merge_blocks, split_blocks
from repro.errors import DataShapeError


@pytest.mark.parametrize("shape,bs", [
    ((16,), 4), ((17,), 4), ((8, 12), 4), ((9, 10), 4),
    ((8, 8, 8), 4), ((5, 6, 7), 4), ((10, 11), 3),
])
def test_roundtrip(shape, bs, rng):
    arr = rng.normal(size=shape)
    blocks, padded = split_blocks(arr, bs)
    out = merge_blocks(blocks, padded, shape)
    np.testing.assert_array_equal(out, arr)


def test_block_count_and_shape(rng):
    arr = rng.normal(size=(9, 10))
    blocks, padded = split_blocks(arr, 4)
    assert padded == (12, 12)
    assert blocks.shape == (9, 4, 4)


def test_exact_fit_no_padding(rng):
    arr = rng.normal(size=(8, 8))
    blocks, padded = split_blocks(arr, 4)
    assert padded == (8, 8)
    # First block is the top-left corner.
    np.testing.assert_array_equal(blocks[0], arr[:4, :4])


def test_edge_replication_padding():
    arr = np.arange(5, dtype=np.float64)
    blocks, padded = split_blocks(arr, 4)
    assert padded == (8,)
    np.testing.assert_array_equal(blocks[1], [4, 4, 4, 4])


def test_block_ordering_is_c_order(rng):
    arr = rng.normal(size=(8, 12))
    blocks, _ = split_blocks(arr, 4)
    # Row-major over the 2x3 block grid.
    np.testing.assert_array_equal(blocks[1], arr[:4, 4:8])
    np.testing.assert_array_equal(blocks[3], arr[4:, :4])


def test_invalid_inputs(rng):
    with pytest.raises(DataShapeError):
        split_blocks(np.float64(3.0), 4)
    with pytest.raises(DataShapeError):
        split_blocks(np.zeros(4), 0)


@given(st.integers(1, 40), st.integers(1, 40), st.integers(2, 6))
def test_roundtrip_property_2d(h, w, bs):
    arr = np.arange(h * w, dtype=np.float64).reshape(h, w)
    blocks, padded = split_blocks(arr, bs)
    np.testing.assert_array_equal(merge_blocks(blocks, padded, (h, w)), arr)
